//! Serialiser round-trip tests: a representative report covering every
//! unit and cell type must survive JSON (exactly) and CSV (field-wise).

use report::{Column, ExperimentReport, Metric, Provenance, Unit, Value};

/// A report exercising every corner of the schema: all units, all cell
/// kinds, unicode, embedded separators, precision overrides, negative and
/// subnormal floats.
fn adversarial_report() -> ExperimentReport {
    let mut r = ExperimentReport::new("figX", "Ratios — über \"quotes\", commas, | pipes")
        .with_label_name("bucket (cycles)")
        .with_columns([
            Column::new("count", Unit::Count),
            Column::new("cycles", Unit::Cycles),
            Column::new("share", Unit::Percent).with_precision(2),
            Column::new("speedup", Unit::Factor),
            Column::new("mpki", Unit::Mpki),
            Column::new("ipc", Unit::Ipc),
            Column::new("reach", Unit::Megabytes),
            Column::new("bytes", Unit::Bytes),
            Column::new("raw", Unit::Raw),
            Column::text("label"),
        ])
        .with_provenance(Provenance {
            scale: "Tiny".into(),
            warmup: 5_000,
            instructions: 50_000,
            seed: u64::MAX, // exceeds i64: must survive the JSON integer path
            engine: "victima-sim-engine/1".into(),
            configs: vec!["Radix".into(), "L2TLB-64K-12cyc".into()],
            workloads: vec!["BFS".into(), "RND".into()],
        });
    r.push_row(
        "0-10, [a|b]",
        [
            Value::from(u64::from(u32::MAX)),
            Value::from(136.6),
            Value::from(0.07421),
            Value::from(1.0),
            Value::from(-39.0),
            Value::from(2.0),
            Value::from(220.4),
            Value::from(0u64),
            Value::from(5e-324), // subnormal
            Value::from("naïve \"text\",\nwith newline"),
        ],
    );
    r.push_row("empty", vec![Value::Empty; 10]);
    r.push_metric(Metric::new("gmean_speedup/Victima", 1.074, Unit::Factor).with_tolerance(0.02));
    r.push_metric(Metric::new("zero", 0.0, Unit::Percent).with_tolerance(0.0));
    r.note("paper: +7.4% — em-dash, 100% | pipe");
    r
}

#[test]
fn json_round_trip_is_exact() {
    let original = adversarial_report();
    let text = report::json::to_json(&original);
    let back = report::json::from_json(&text).expect("artifact must re-parse");
    assert_eq!(back, original);
    // Serialising the re-parsed report is byte-identical: artifacts are
    // canonical and diffable.
    assert_eq!(report::json::to_json(&back), text);
}

#[test]
fn json_round_trip_preserves_float_bits() {
    let mut r = ExperimentReport::new("f", "floats").with_columns([Column::new("v", Unit::Raw)]);
    for v in [1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1e308, -0.0, 2.0_f64.powi(-1074)] {
        r.push_row("x", [Value::from(v)]);
    }
    let back = report::json::from_json(&report::json::to_json(&r)).unwrap();
    for (a, b) in r.rows.iter().zip(&back.rows) {
        let (Value::Float(x), Value::Float(y)) = (&a.cells[0], &b.cells[0]) else {
            panic!("cells must stay floats");
        };
        assert_eq!(x.to_bits(), y.to_bits(), "{x} lost bits");
    }
}

#[test]
fn json_round_trip_keeps_ints_and_floats_apart() {
    let mut r = ExperimentReport::new("t", "typed")
        .with_columns([Column::new("i", Unit::Count), Column::new("f", Unit::Raw)]);
    r.push_row("x", [Value::Int(2), Value::Float(2.0)]);
    let back = report::json::from_json(&report::json::to_json(&r)).unwrap();
    assert_eq!(back.rows[0].cells[0], Value::Int(2));
    assert_eq!(back.rows[0].cells[1], Value::Float(2.0));
}

#[test]
fn csv_round_trip_preserves_every_field() {
    let original = adversarial_report();
    let csv = report::csv::to_csv(&original);
    let rows = report::csv::parse_csv(&csv).expect("CSV must re-parse");
    assert_eq!(rows.len(), 1 + original.rows.len());
    assert_eq!(rows[0][0], "bucket (cycles)");
    assert_eq!(rows[0][3], "share:percent");
    for (parsed, row) in rows[1..].iter().zip(&original.rows) {
        assert_eq!(parsed[0], row.label);
        for (field, cell) in parsed[1..].iter().zip(&row.cells) {
            assert_eq!(*field, report::csv::raw_value(cell));
        }
    }
    // Raw values re-parse to the same numbers (full precision).
    let reach: f64 = rows[1][7].parse().unwrap();
    assert_eq!(reach, 220.4);
}

#[test]
fn renderers_accept_the_adversarial_report() {
    let r = adversarial_report();
    let text = report::text::render(&r);
    assert!(text.contains("== figX"));
    assert!(text.contains("7.42%"), "precision override must hold: {text}");
    let md = report::markdown::render(&r);
    assert!(md.contains("## figX"));
    assert!(!md.contains("\n| ."), "pipes in cells must be escaped");
    let combined = report::markdown::render_combined(std::slice::from_ref(&r));
    assert!(combined.starts_with("# Victima reproduction report"));
}

#[test]
fn check_round_trip_passes_against_itself() {
    let r = adversarial_report();
    let baseline = report::json::from_json(&report::json::to_json(&r)).unwrap();
    let outcome = report::check_report(&r, &baseline);
    assert!(outcome.passed(), "{}", outcome.summary());
    assert_eq!(outcome.checked, r.metrics.len());
}
