//! The aligned plain-text renderer — the single formatting path behind
//! every table the CLI and benches print (previously 12 scattered
//! `println!` sites formatting ad-hoc strings).
//!
//! Layout matches the historical `bench::Table` display: a `== id — title
//! ==` banner, right-aligned columns, then `metric:` and `note:` lines.
//!
//! # Examples
//!
//! ```
//! use report::{Column, ExperimentReport, Unit, Value};
//!
//! let mut r = ExperimentReport::new("fig20", "Speedup over Radix")
//!     .with_columns([Column::new("Victima", Unit::Factor)]);
//! r.push_row("BFS", [Value::from(1.074)]);
//! let text = report::text::render(&r);
//! assert!(text.contains("== fig20 — Speedup over Radix =="));
//! assert!(text.contains("1.074"));
//! ```

use crate::schema::ExperimentReport;

/// Renders one report as an aligned plain-text table with trailing
/// `metric:` and `note:` lines.
pub fn render(r: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} — {} ==\n", r.id, r.title));

    // Assemble every line as display strings: header first, then rows.
    let header: Vec<String> =
        std::iter::once(r.label_name.clone()).chain(r.columns.iter().map(|c| c.name.clone())).collect();
    let mut lines: Vec<Vec<String>> = Vec::with_capacity(r.rows.len() + 1);
    if !r.columns.is_empty() || !r.rows.is_empty() {
        lines.push(header);
    }
    for row in &r.rows {
        let mut cells = Vec::with_capacity(row.cells.len() + 1);
        cells.push(row.label.clone());
        for (i, cell) in row.cells.iter().enumerate() {
            match r.columns.get(i) {
                Some(col) => cells.push(col.format(cell)),
                None => cells.push(crate::csv::raw_value(cell)),
            }
        }
        lines.push(cells);
    }

    let mut widths: Vec<usize> = Vec::new();
    for line in &lines {
        for (i, cell) in line.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    for line in &lines {
        for (i, cell) in line.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            out.push_str(&format!("{cell:>w$}  "));
        }
        out.push('\n');
    }
    for m in &r.metrics {
        out.push_str(&format!("  metric: {} = {}\n", m.name, m.display_value()));
    }
    for n in &r.notes {
        out.push_str(&format!("  note: {n}\n"));
    }
    out
}

/// Renders a batch of reports separated by blank lines — what
/// `experiments --format text` prints.
pub fn render_all(reports: &[ExperimentReport]) -> String {
    reports.iter().map(render).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Metric, Unit, Value};

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("figX", "demo")
            .with_columns([Column::text("name"), Column::new("value", Unit::Count)]);
        r.push_row("alpha", [Value::from("a"), Value::from(1u64)]);
        r.push_row("b", [Value::from("bb"), Value::from(10_000u64)]);
        r.push_metric(Metric::new("mean", 0.5, Unit::Percent));
        r.note("a note");
        r
    }

    #[test]
    fn renders_aligned_columns() {
        let s = render(&sample());
        assert!(s.contains("== figX — demo =="));
        assert!(s.contains("metric: mean = 50.0%"));
        assert!(s.contains("note: a note"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and both data rows end aligned at the same column.
        assert_eq!(lines[1].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn rows_longer_than_columns_are_ok() {
        let mut r = ExperimentReport::new("t", "x").with_columns([Column::text("a")]);
        r.push_row("r", [Value::from("1"), Value::from("2"), Value::from("3")]);
        assert!(render(&r).contains('3'));
    }

    #[test]
    fn render_all_separates_reports() {
        let batch = [sample(), sample()];
        let s = render_all(&batch);
        assert_eq!(s.matches("== figX").count(), 2);
    }
}
