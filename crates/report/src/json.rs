//! Hand-rolled JSON serialisation for [`ExperimentReport`] artifacts.
//!
//! The workspace is dependency-free, so this module carries its own
//! minimal JSON value model ([`JsonValue`]), a pretty-printing writer and
//! a recursive-descent parser. Object key order is preserved (objects are
//! association lists). Integers and floats are distinct: the writer spells
//! floats with a decimal point (`2.0`, never `2`) and the parser keeps
//! dot-free numbers as [`JsonValue::Int`], so [`to_json`] followed by
//! [`from_json`] reproduces a report exactly, [`crate::Value::Int`] cells
//! included.
//!
//! # Examples
//!
//! ```
//! use report::{Column, ExperimentReport, Unit, Value};
//!
//! let mut r = ExperimentReport::new("fig04", "PTW latency")
//!     .with_columns([Column::new("walks", Unit::Count)]);
//! r.push_row("20-30", [Value::from(17u64)]);
//! let text = report::json::to_json(&r);
//! assert_eq!(report::json::from_json(&text).unwrap(), r);
//! ```

use crate::schema::{Column, ExperimentReport, Metric, Provenance, Row, Unit, Value};

/// Artifact schema identifier written into every JSON report.
pub const SCHEMA_ID: &str = "victima-report/1";

/// A parsed JSON document. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`/`e` that fits an `i64`.
    Int(i64),
    /// Any other JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered association list.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, when numeric (either variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a slice, when it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------- writing

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float so the parser keeps it a float: shortest round-trip
/// representation with `.0` appended when it would otherwise look
/// integral. Non-finite values become `null` (JSON has no NaN/Inf).
fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_value(out: &mut String, v: &JsonValue, indent: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::Num(n) => push_f64(out, *n),
        JsonValue::Str(s) => escape_into(out, s),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Arrays of scalars print on one line (row cells stay diffable
            // one row per line); arrays holding containers go multi-line.
            let scalar = items.iter().all(|i| !matches!(i, JsonValue::Arr(_) | JsonValue::Obj(_)));
            if scalar {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, item, indent);
                }
                out.push(']');
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        JsonValue::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

/// Pretty-prints a [`JsonValue`] (2-space indent, one row per line,
/// trailing newline) — line-diffable artifacts.
pub fn write_json(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out.push('\n');
    out
}

fn write_value_compact(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::Num(n) => push_f64(out, *n),
        JsonValue::Str(s) => escape_into(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_value_compact(out, val);
            }
            out.push('}');
        }
    }
}

/// Prints a [`JsonValue`] as one compact line (no whitespace, no trailing
/// newline) — the JSON Lines building block: every document fits one
/// `\n`-terminated line, so streams can be produced and consumed
/// incrementally. Output reparses to the same value via [`parse_json`].
pub fn write_json_compact(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value_compact(&mut out, v);
    out
}

// ---------------------------------------------------------------- parsing

/// A JSON parse error with byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.parse_string().map(JsonValue::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos = end;
                Ok(v)
            }
            None => self.err("invalid \\u escape"),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("truncated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect "\uXXXX" for the low half.
                                if !self.eat_literal("\\u") {
                                    return self.err("lone high surrogate");
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting at `c`.
                    let start = self.pos - 1;
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    if start + len > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Num(n)),
            Err(_) => self.err(format!("invalid number {text:?}")),
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(v)
}

// ------------------------------------------------- report <-> JsonValue

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn str_arr(items: &[String]) -> JsonValue {
    JsonValue::Arr(items.iter().map(|s| JsonValue::Str(s.clone())).collect())
}

fn cell_to_json(v: &Value) -> JsonValue {
    match v {
        Value::Empty => JsonValue::Null,
        Value::Int(i) => JsonValue::Int(*i),
        Value::Float(f) => JsonValue::Num(*f),
        Value::Str(s) => JsonValue::Str(s.clone()),
    }
}

/// Converts a report to its JSON document model.
pub fn report_to_value(r: &ExperimentReport) -> JsonValue {
    let columns = r
        .columns
        .iter()
        .map(|c| {
            let mut members =
                vec![("name", JsonValue::Str(c.name.clone())), ("unit", JsonValue::Str(c.unit.tag().into()))];
            if let Some(p) = c.precision {
                members.push(("precision", JsonValue::Int(p as i64)));
            }
            obj(members)
        })
        .collect();
    let rows = r
        .rows
        .iter()
        .map(|row| {
            obj(vec![
                ("label", JsonValue::Str(row.label.clone())),
                ("cells", JsonValue::Arr(row.cells.iter().map(cell_to_json).collect())),
            ])
        })
        .collect();
    let metrics = r
        .metrics
        .iter()
        .map(|m| {
            obj(vec![
                ("name", JsonValue::Str(m.name.clone())),
                ("value", JsonValue::Num(m.value)),
                ("unit", JsonValue::Str(m.unit.tag().into())),
                ("tolerance", JsonValue::Num(m.tolerance)),
            ])
        })
        .collect();
    let provenance = obj(vec![
        ("scale", JsonValue::Str(r.provenance.scale.clone())),
        ("warmup", JsonValue::Int(r.provenance.warmup as i64)),
        ("instructions", JsonValue::Int(r.provenance.instructions as i64)),
        // Hex string: a full 64-bit seed overflows JSON's i64-safe range.
        ("seed", JsonValue::Str(format!("0x{:x}", r.provenance.seed))),
        ("engine", JsonValue::Str(r.provenance.engine.clone())),
        ("configs", str_arr(&r.provenance.configs)),
        ("workloads", str_arr(&r.provenance.workloads)),
    ]);
    obj(vec![
        ("schema", JsonValue::Str(SCHEMA_ID.into())),
        ("id", JsonValue::Str(r.id.clone())),
        ("title", JsonValue::Str(r.title.clone())),
        ("label_name", JsonValue::Str(r.label_name.clone())),
        ("provenance", provenance),
        ("columns", JsonValue::Arr(columns)),
        ("rows", JsonValue::Arr(rows)),
        ("metrics", JsonValue::Arr(metrics)),
        ("notes", str_arr(&r.notes)),
    ])
}

/// Serialises a report as pretty-printed JSON (the artifact and baseline
/// format).
pub fn to_json(r: &ExperimentReport) -> String {
    write_json(&report_to_value(r))
}

/// Deserialises a report from its JSON artifact.
pub fn from_json(text: &str) -> Result<ExperimentReport, ParseError> {
    let doc = parse_json(text)?;
    value_to_report(&doc).map_err(|message| ParseError { offset: 0, message })
}

fn req<'v>(doc: &'v JsonValue, key: &str) -> Result<&'v JsonValue, String> {
    doc.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn req_str(doc: &JsonValue, key: &str) -> Result<String, String> {
    req(doc, key)?.as_str().map(str::to_owned).ok_or_else(|| format!("{key:?} must be a string"))
}

fn req_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    req(doc, key)?.as_u64().ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

fn req_str_arr(doc: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    req(doc, key)?
        .as_arr()
        .ok_or_else(|| format!("{key:?} must be an array"))?
        .iter()
        .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| format!("{key:?} entries must be strings")))
        .collect()
}

fn unit_of(doc: &JsonValue, key: &str) -> Result<Unit, String> {
    let tag = req_str(doc, key)?;
    Unit::from_tag(&tag).ok_or_else(|| format!("unknown unit {tag:?}"))
}

/// Converts a parsed JSON document back into a report.
pub fn value_to_report(doc: &JsonValue) -> Result<ExperimentReport, String> {
    let schema = req_str(doc, "schema")?;
    if schema != SCHEMA_ID {
        return Err(format!("unsupported schema {schema:?} (expected {SCHEMA_ID:?})"));
    }
    let prov = req(doc, "provenance")?;
    let provenance = Provenance {
        scale: req_str(prov, "scale")?,
        warmup: req_u64(prov, "warmup")?,
        instructions: req_u64(prov, "instructions")?,
        seed: {
            let s = req_str(prov, "seed")?;
            let hex = s.strip_prefix("0x").ok_or_else(|| format!("\"seed\" must be 0x-hex, got {s:?}"))?;
            u64::from_str_radix(hex, 16).map_err(|e| format!("\"seed\": {e}"))?
        },
        engine: req_str(prov, "engine")?,
        configs: req_str_arr(prov, "configs")?,
        workloads: req_str_arr(prov, "workloads")?,
    };
    let columns = req(doc, "columns")?
        .as_arr()
        .ok_or("\"columns\" must be an array")?
        .iter()
        .map(|c| {
            let mut col = Column::new(req_str(c, "name")?, unit_of(c, "unit")?);
            if let Some(p) = c.get("precision") {
                col.precision =
                    Some(p.as_u64().ok_or("\"precision\" must be a non-negative integer")? as usize);
            }
            Ok(col)
        })
        .collect::<Result<Vec<_>, String>>()?;
    let rows = req(doc, "rows")?
        .as_arr()
        .ok_or("\"rows\" must be an array")?
        .iter()
        .map(|row| {
            let cells = req(row, "cells")?
                .as_arr()
                .ok_or("\"cells\" must be an array")?
                .iter()
                .map(json_to_cell)
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Row { label: req_str(row, "label")?, cells })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let metrics = req(doc, "metrics")?
        .as_arr()
        .ok_or("\"metrics\" must be an array")?
        .iter()
        .map(|m| {
            Ok(Metric {
                name: req_str(m, "name")?,
                value: req(m, "value")?.as_f64().ok_or("metric \"value\" must be a number")?,
                unit: unit_of(m, "unit")?,
                tolerance: req(m, "tolerance")?.as_f64().ok_or("metric \"tolerance\" must be a number")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ExperimentReport {
        id: req_str(doc, "id")?,
        title: req_str(doc, "title")?,
        label_name: req_str(doc, "label_name")?,
        columns,
        rows,
        metrics,
        notes: req_str_arr(doc, "notes")?,
        provenance,
    })
}

fn json_to_cell(v: &JsonValue) -> Result<Value, String> {
    Ok(match v {
        JsonValue::Null => Value::Empty,
        JsonValue::Str(s) => Value::Str(s.clone()),
        JsonValue::Int(i) => Value::Int(*i),
        JsonValue::Num(n) => Value::Float(*n),
        _ => return Err("cells must be null, a number, or a string".into()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-12.5e1").unwrap(), JsonValue::Num(-125.0));
        assert_eq!(parse_json("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse_json(r#""a\nb\u0041\u00e9""#).unwrap(), JsonValue::Str("a\nbAé".into()));
        let doc = parse_json(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(parse_json("2").unwrap(), JsonValue::Int(2));
        assert_eq!(parse_json("2.0").unwrap(), JsonValue::Num(2.0));
        assert_eq!(write_json(&JsonValue::Num(2.0)), "2.0\n");
        assert_eq!(write_json(&JsonValue::Int(2)), "2\n");
    }

    #[test]
    fn parses_surrogate_pairs() {
        assert_eq!(parse_json(r#""\ud83d\ude00""#).unwrap(), JsonValue::Str("😀".into()));
        assert!(parse_json(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"\\q\"", "{\"a\":}", "[01x]"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn writer_output_reparses() {
        let doc = parse_json(r#"{"s": "x\"y", "n": [1, 2.5, null, false], "e": {}, "u": "naïve"}"#).unwrap();
        let text = write_json(&doc);
        assert_eq!(parse_json(&text).unwrap(), doc);
    }

    #[test]
    fn compact_writer_is_single_line_and_reparses() {
        let doc = parse_json(r#"{"s": "x\"y", "n": [1, 2.5, null, false], "e": {}, "i": 2}"#).unwrap();
        let line = write_json_compact(&doc);
        assert!(!line.contains('\n'));
        assert!(!line.contains(": "), "compact output carries no decorative whitespace");
        assert_eq!(parse_json(&line).unwrap(), doc);
        // Int/float distinction survives the compact path too.
        assert_eq!(write_json_compact(&JsonValue::Num(2.0)), "2.0");
        assert_eq!(write_json_compact(&JsonValue::Int(2)), "2");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(write_json(&JsonValue::Num(f64::NAN)), "null\n");
        assert_eq!(write_json(&JsonValue::Num(f64::INFINITY)), "null\n");
    }
}
