//! Streaming JSON Lines rendering of [`ExperimentReport`]s.
//!
//! Where [`crate::json`] produces one pretty-printed document per report
//! (the committed-baseline format), this module spells each report as a
//! *single compact line* — the natural shape for streams: a sweep
//! service can emit results incrementally as they complete, a consumer
//! can process them with nothing fancier than `lines()`, and a multi-
//! report artifact is just the concatenation of its lines.
//!
//! The line payload is the exact [`crate::json::SCHEMA_ID`] document the
//! pretty renderer writes, minus whitespace, so [`from_line`] is
//! interchangeable with [`crate::json::from_json`] and every line
//! round-trips losslessly.
//!
//! # Examples
//!
//! ```
//! use report::{Column, ExperimentReport, Unit, Value};
//!
//! let mut r = ExperimentReport::new("fig20", "Speedup").with_columns([Column::new("V", Unit::Factor)]);
//! r.push_row("BFS", [Value::from(1.074)]);
//! let line = report::jsonl::to_line(&r);
//! assert!(!line.contains('\n'));
//! assert_eq!(report::jsonl::from_line(&line).unwrap(), r);
//! ```

use crate::json::{self, ParseError};
use crate::schema::ExperimentReport;

/// Renders a report as one compact JSON line (no trailing newline).
pub fn to_line(r: &ExperimentReport) -> String {
    json::write_json_compact(&json::report_to_value(r))
}

/// Renders a report as one `\n`-terminated JSON line.
pub fn render(r: &ExperimentReport) -> String {
    let mut line = to_line(r);
    line.push('\n');
    line
}

/// Renders several reports as a JSON Lines stream, one report per line.
pub fn render_all(reports: &[ExperimentReport]) -> String {
    reports.iter().map(render).collect()
}

/// Parses one JSON line back into a report. The parser is whitespace-
/// agnostic, so pretty-printed documents parse too; the function exists
/// to make stream-consumer code read naturally.
pub fn from_line(line: &str) -> Result<ExperimentReport, ParseError> {
    json::from_json(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Metric, Unit, Value};

    fn sample(id: &str) -> ExperimentReport {
        let mut r = ExperimentReport::new(id, "title with \"quotes\"")
            .with_columns([Column::new("ipc", Unit::Ipc), Column::new("n", Unit::Count)]);
        r.push_row("RND", [Value::from(0.5), Value::from(42u64)]);
        r.push_row("XS", [Value::Empty, Value::from(7u64)]);
        r.push_metric(Metric::new("ipc/RND", 0.5, Unit::Ipc));
        r.note("a note\nwith a newline");
        r
    }

    #[test]
    fn lines_round_trip_and_stay_single_line() {
        let r = sample("fig01");
        let line = to_line(&r);
        assert!(!line.contains('\n'), "newlines in content must be escaped");
        assert_eq!(from_line(&line).unwrap(), r);
        // Identical to the pretty JSON modulo whitespace: both parse to
        // the same report.
        assert_eq!(json::from_json(&json::to_json(&r)).unwrap(), from_line(&line).unwrap());
    }

    #[test]
    fn render_all_is_one_line_per_report() {
        let stream = render_all(&[sample("a"), sample("b")]);
        let lines: Vec<&str> = stream.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(from_line(lines[0]).unwrap().id, "a");
        assert_eq!(from_line(lines[1]).unwrap().id, "b");
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(to_line(&sample("x")), to_line(&sample("x")));
    }
}
