//! CSV artifacts: raw, full-precision values for plotting pipelines.
//!
//! One CSV per experiment. The first line is the header (`label` column
//! first), every following line one data row. Cells carry *raw* values —
//! a `percent` column holds `0.074`, not `"7.4%"` — so downstream tools
//! never re-parse display formatting; units travel in the JSON artifact
//! and in the header's `name:unit` suffixes. Metrics and notes are JSON/
//! markdown concerns and are not emitted here.
//!
//! # Examples
//!
//! ```
//! use report::{Column, ExperimentReport, Unit, Value};
//!
//! let mut r = ExperimentReport::new("fig20", "Speedup")
//!     .with_columns([Column::new("Victima", Unit::Factor)]);
//! r.push_row("BFS", [Value::from(1.5)]);
//! let csv = report::csv::to_csv(&r);
//! assert_eq!(csv, "workload,Victima:factor\nBFS,1.5\n");
//! let rows = report::csv::parse_csv(&csv).unwrap();
//! assert_eq!(rows[1], vec!["BFS", "1.5"]);
//! ```

use crate::schema::{ExperimentReport, Value};

/// Quotes a field per RFC 4180 when it contains a comma, quote or newline.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Full-precision, unit-free rendering of one cell (what CSV emits).
pub fn raw_value(v: &Value) -> String {
    match v {
        Value::Empty => String::new(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => s.clone(),
    }
}

/// Renders the report's data table as CSV (header + rows, `\n` line ends).
pub fn to_csv(r: &ExperimentReport) -> String {
    let mut out = String::new();
    let header: Vec<String> = std::iter::once(r.label_name.clone())
        .chain(r.columns.iter().map(|c| format!("{}:{}", c.name, c.unit.tag())))
        .collect();
    out.push_str(&header.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in &r.rows {
        let line: Vec<String> = std::iter::once(field(&row.label))
            .chain(row.cells.iter().map(|c| field(&raw_value(c))))
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text back into rows of string fields (RFC 4180 quoting).
/// Used by the round-trip tests and by anything re-ingesting artifacts.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut row_started = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                c => cell.push(c),
            }
            continue;
        }
        match c {
            '"' if cell.is_empty() => {
                in_quotes = true;
                row_started = true;
            }
            '"' => return Err("quote inside unquoted field".into()),
            ',' => {
                row.push(std::mem::take(&mut cell));
                row_started = true;
            }
            '\r' => {}
            '\n' => {
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                row_started = false;
            }
            c => {
                cell.push(c);
                row_started = true;
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    if row_started || !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Unit};

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("t", "x")
            .with_columns([Column::new("a", Unit::Percent), Column::text("b")]);
        r.push_row("w1", [Value::from(0.5), Value::from("plain")]);
        r.push_row("w,2", [Value::Empty, Value::from("qu\"oted,\nline")]);
        r
    }

    #[test]
    fn renders_raw_values_with_units_in_header() {
        let csv = to_csv(&sample());
        assert!(csv.starts_with("workload,a:percent,b:text\n"));
        assert!(csv.contains("w1,0.5,plain\n"));
        assert!(csv.contains("\"w,2\""));
        assert!(csv.contains("\"qu\"\"oted,\nline\""));
    }

    #[test]
    fn csv_round_trips_through_the_parser() {
        let r = sample();
        let rows = parse_csv(&to_csv(&r)).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["workload", "a:percent", "b:text"]);
        assert_eq!(rows[1], vec!["w1", "0.5", "plain"]);
        assert_eq!(rows[2], vec!["w,2", "", "qu\"oted,\nline"]);
    }

    #[test]
    fn parser_rejects_malformed_quoting() {
        assert!(parse_csv("a\"b,c\n").is_err());
        assert!(parse_csv("\"abc\n").is_err());
    }

    #[test]
    fn empty_input_parses_to_no_rows() {
        assert_eq!(parse_csv("").unwrap(), Vec::<Vec<String>>::new());
    }
}
