//! Self-rendering markdown reports: one section per paper figure/table,
//! plus the combined `REPORT.md` document.
//!
//! Every section carries the figure's caption, a provenance line, the
//! data as a GitHub-flavoured markdown table, a summary-metrics table and
//! the calibration notes. Nothing schedule-dependent (worker count,
//! wall-clock) is rendered, so the output is byte-identical across
//! `VICTIMA_JOBS` settings — the golden-file test relies on this.
//!
//! # Examples
//!
//! ```
//! use report::{Column, ExperimentReport, Unit, Value};
//!
//! let mut r = ExperimentReport::new("fig20", "Speedup over Radix")
//!     .with_columns([Column::new("Victima", Unit::Factor)]);
//! r.push_row("BFS", [Value::from(1.074)]);
//! let md = report::markdown::render(&r);
//! assert!(md.contains("## fig20 — Speedup over Radix"));
//! assert!(md.contains("| BFS | 1.074 |"));
//! ```

use crate::schema::{ExperimentReport, Provenance};

/// Escapes `|` so cell text can't break the table grid.
fn md_cell(s: &str) -> String {
    s.replace('|', "\\|").replace('\n', " ")
}

fn provenance_line(p: &Provenance) -> String {
    format!(
        "*{} scale, {} warmup + {} measured instructions, seed `0x{:x}`, {} ({} configs × {} workloads)*\n",
        p.scale,
        p.warmup,
        p.instructions,
        p.seed,
        p.engine,
        p.configs.len(),
        p.workloads.len(),
    )
}

/// Renders one report as a markdown section (`##` heading).
pub fn render(r: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} — {}\n\n", md_cell(&r.id), md_cell(&r.title)));
    out.push_str(&provenance_line(&r.provenance));
    out.push('\n');

    if !r.columns.is_empty() {
        let headers: Vec<String> = std::iter::once(md_cell(&r.label_name))
            .chain(r.columns.iter().map(|c| md_cell(&c.name)))
            .collect();
        out.push_str(&format!("| {} |\n", headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
        for row in &r.rows {
            let cells: Vec<String> = std::iter::once(md_cell(&row.label))
                .chain(row.cells.iter().enumerate().map(|(i, cell)| {
                    md_cell(&match r.columns.get(i) {
                        Some(col) => col.format(cell),
                        None => crate::csv::raw_value(cell),
                    })
                }))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out.push('\n');
    }

    if !r.metrics.is_empty() {
        out.push_str("| metric | value | tolerance |\n|---|---|---|\n");
        for m in &r.metrics {
            out.push_str(&format!(
                "| `{}` | {} | ±{}% |\n",
                md_cell(&m.name),
                md_cell(&m.display_value()),
                crate::schema::Unit::Raw.format(m.tolerance * 100.0, None),
            ));
        }
        out.push('\n');
    }

    for n in &r.notes {
        out.push_str(&format!("> {}\n", md_cell(n)));
    }
    if !r.notes.is_empty() {
        out.push('\n');
    }
    out
}

/// Renders the combined `REPORT.md`: a header, a table of contents, and
/// one section per report in the order given.
pub fn render_combined(reports: &[ExperimentReport]) -> String {
    let mut out = String::new();
    out.push_str("# Victima reproduction report\n\n");
    out.push_str(
        "Regenerated figures and tables of *Victima: Drastically Increasing Address \
         Translation Reach by Leveraging Underutilized Cache Resources* (MICRO 2023). \
         Each section lists the measured data, the summary metrics the `--check` \
         regression gate tracks, and the paper's reference points.\n\n",
    );
    out.push_str("| section | title |\n|---|---|\n");
    for r in reports {
        out.push_str(&format!("| [{}](#{}) | {} |\n", r.id, anchor(&r.id, &r.title), md_cell(&r.title)));
    }
    out.push('\n');
    for r in reports {
        out.push_str(&render(r));
    }
    out
}

/// GitHub-style heading anchor for `## id — title`.
fn anchor(id: &str, title: &str) -> String {
    let heading = format!("{id} — {title}");
    let mut out = String::new();
    for c in heading.chars() {
        match c {
            c if c.is_alphanumeric() => out.extend(c.to_lowercase()),
            ' ' | '-' => out.push('-'),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Metric, Unit, Value};

    fn sample(id: &str) -> ExperimentReport {
        let mut r = ExperimentReport::new(id, "A | title").with_columns([Column::new("v", Unit::Percent)]);
        r.push_row("w|1", [Value::from(0.074)]);
        r.push_metric(Metric::new("avg", 0.074, Unit::Percent));
        r.note("paper: 7.4%");
        r
    }

    #[test]
    fn section_contains_table_metrics_and_notes() {
        let md = render(&sample("figX"));
        assert!(md.contains("## figX — A \\| title"));
        assert!(md.contains("| w\\|1 | 7.4% |"));
        assert!(md.contains("| `avg` | 7.4% | ±2% |"));
        assert!(md.contains("> paper: 7.4%"));
    }

    #[test]
    fn combined_document_links_every_section() {
        let md = render_combined(&[sample("fig01"), sample("fig02")]);
        assert!(md.starts_with("# Victima reproduction report"));
        assert!(md.contains("[fig01](#fig01--a--title)"));
        assert_eq!(md.matches("## fig0").count(), 2);
    }

    #[test]
    fn anchors_drop_punctuation_like_github() {
        assert_eq!(anchor("fig20", "Speedup over Radix (native)"), "fig20--speedup-over-radix-native");
    }
}
