//! The reproduction-regression gate: diff a freshly computed report
//! against a committed baseline, metric by metric, with per-metric
//! tolerances.
//!
//! A metric passes when `|actual - expected| <= tolerance * max(|expected|, 1.0)`
//! — relative slack for O(1)-and-larger values (speedups, latencies,
//! MPKI), degrading to absolute slack near zero so a `0.0` baseline
//! doesn't demand exact equality of every future platform's libm.
//! Provenance must match exactly: comparing runs with different budgets,
//! scales or seeds is a user error the gate reports instead of masking.
//!
//! # Examples
//!
//! ```
//! use report::{check_report, ExperimentReport, Metric, Unit};
//!
//! let mut baseline = ExperimentReport::new("fig20", "Speedup");
//! baseline.push_metric(Metric::new("gmean", 1.074, Unit::Factor).with_tolerance(0.02));
//! let mut actual = baseline.clone();
//! actual.metrics[0].value = 1.08; // within 2% of 1.074
//! assert!(check_report(&actual, &baseline).passed());
//! ```

use crate::schema::ExperimentReport;
use std::fmt;

/// One metric that fell outside its baseline tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDiff {
    /// Metric name.
    pub metric: String,
    /// Committed baseline value.
    pub expected: f64,
    /// Freshly computed value.
    pub actual: f64,
    /// The baseline's tolerance.
    pub tolerance: f64,
    /// `|actual - expected| / max(|expected|, 1.0)` — comparable to
    /// `tolerance`.
    pub deviation: f64,
}

impl fmt::Display for MetricDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {} got {} (deviation {:.4} > tolerance {:.4})",
            self.metric, self.expected, self.actual, self.deviation, self.tolerance
        )
    }
}

/// The outcome of checking one experiment against its baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckOutcome {
    /// Experiment id.
    pub id: String,
    /// Number of metrics compared.
    pub checked: usize,
    /// Provenance fields that differ (`"instructions: 50000 != 2000000"`).
    pub provenance_mismatches: Vec<String>,
    /// Baseline metrics absent from the fresh run.
    pub missing: Vec<String>,
    /// Fresh metrics absent from the baseline (new metrics needing a
    /// baseline refresh).
    pub unexpected: Vec<String>,
    /// Metrics outside tolerance.
    pub failures: Vec<MetricDiff>,
}

impl CheckOutcome {
    /// Whether every metric matched within tolerance and the shapes agree.
    pub fn passed(&self) -> bool {
        self.provenance_mismatches.is_empty()
            && self.missing.is_empty()
            && self.unexpected.is_empty()
            && self.failures.is_empty()
    }

    /// One-line human summary ("fig20: 5 metrics OK" / failure counts).
    pub fn summary(&self) -> String {
        if self.passed() {
            format!("{}: {} metric(s) within tolerance", self.id, self.checked)
        } else {
            format!(
                "{}: {} failure(s), {} missing, {} unexpected, {} provenance mismatch(es)",
                self.id,
                self.failures.len(),
                self.missing.len(),
                self.unexpected.len(),
                self.provenance_mismatches.len()
            )
        }
    }
}

fn diff_field(out: &mut Vec<String>, name: &str, expected: &dyn fmt::Debug, actual: &dyn fmt::Debug) {
    let (e, a) = (format!("{expected:?}"), format!("{actual:?}"));
    if e != a {
        out.push(format!("{name}: baseline {e} != actual {a}"));
    }
}

/// Diffs `actual` against `baseline`. Tolerances come from the *baseline*
/// (the committed contract), not from the fresh run.
pub fn check_report(actual: &ExperimentReport, baseline: &ExperimentReport) -> CheckOutcome {
    let mut out = CheckOutcome { id: baseline.id.clone(), ..CheckOutcome::default() };
    let (bp, ap) = (&baseline.provenance, &actual.provenance);
    diff_field(&mut out.provenance_mismatches, "scale", &bp.scale, &ap.scale);
    diff_field(&mut out.provenance_mismatches, "warmup", &bp.warmup, &ap.warmup);
    diff_field(&mut out.provenance_mismatches, "instructions", &bp.instructions, &ap.instructions);
    diff_field(&mut out.provenance_mismatches, "seed", &bp.seed, &ap.seed);
    diff_field(&mut out.provenance_mismatches, "engine", &bp.engine, &ap.engine);
    diff_field(&mut out.provenance_mismatches, "configs", &bp.configs, &ap.configs);
    diff_field(&mut out.provenance_mismatches, "workloads", &bp.workloads, &ap.workloads);

    for bm in &baseline.metrics {
        let Some(am) = actual.metric(&bm.name) else {
            out.missing.push(bm.name.clone());
            continue;
        };
        out.checked += 1;
        let deviation = (am.value - bm.value).abs() / bm.value.abs().max(1.0);
        if deviation > bm.tolerance || !deviation.is_finite() {
            out.failures.push(MetricDiff {
                metric: bm.name.clone(),
                expected: bm.value,
                actual: am.value,
                tolerance: bm.tolerance,
                deviation,
            });
        }
    }
    for am in &actual.metrics {
        if baseline.metric(&am.name).is_none() {
            out.unexpected.push(am.name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Metric, Provenance, Unit};

    fn report(metrics: &[(&str, f64, f64)]) -> ExperimentReport {
        let mut r = ExperimentReport::new("figX", "t")
            .with_provenance(Provenance { instructions: 1000, ..Provenance::default() });
        for &(name, value, tol) in metrics {
            r.push_metric(Metric::new(name, value, Unit::Factor).with_tolerance(tol));
        }
        r
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("a", 1.5, 0.02), ("b", 0.0, 0.02)]);
        let out = check_report(&r, &r);
        assert!(out.passed());
        assert_eq!(out.checked, 2);
        assert!(out.summary().contains("within tolerance"));
    }

    #[test]
    fn deviation_is_relative_above_one_and_absolute_below() {
        // 100 -> 101.5: 1.5% deviation, passes a 2% tolerance.
        let base = report(&[("big", 100.0, 0.02)]);
        assert!(check_report(&report(&[("big", 101.5, 0.02)]), &base).passed());
        assert!(!check_report(&report(&[("big", 103.0, 0.02)]), &base).passed());
        // Near zero the slack is absolute: 0.0 -> 0.015 passes 2%.
        let base = report(&[("small", 0.0, 0.02)]);
        assert!(check_report(&report(&[("small", 0.015, 0.02)]), &base).passed());
        assert!(!check_report(&report(&[("small", 0.5, 0.02)]), &base).passed());
    }

    #[test]
    fn nan_actual_fails() {
        let base = report(&[("a", 1.0, 0.5)]);
        let out = check_report(&report(&[("a", f64::NAN, 0.5)]), &base);
        assert!(!out.passed());
        assert!(out.failures[0].to_string().contains("a: expected 1"));
    }

    #[test]
    fn shape_mismatches_are_reported() {
        let base = report(&[("a", 1.0, 0.1), ("gone", 2.0, 0.1)]);
        let fresh = report(&[("a", 1.0, 0.1), ("new", 3.0, 0.1)]);
        let out = check_report(&fresh, &base);
        assert_eq!(out.missing, vec!["gone"]);
        assert_eq!(out.unexpected, vec!["new"]);
        assert!(!out.passed());
    }

    #[test]
    fn provenance_mismatch_fails_even_when_metrics_agree() {
        let base = report(&[("a", 1.0, 0.1)]);
        let mut fresh = base.clone();
        fresh.provenance.instructions = 9;
        let out = check_report(&fresh, &base);
        assert!(!out.passed());
        assert!(out.provenance_mismatches[0].contains("instructions"));
    }

    #[test]
    fn config_list_drift_fails_the_check() {
        let base = report(&[("a", 1.0, 0.1)]);
        let mut fresh = base.clone();
        fresh.provenance.configs = vec!["Victima+STLB".into()];
        let out = check_report(&fresh, &base);
        assert!(!out.passed());
        assert!(out.provenance_mismatches[0].contains("configs"));
    }

    #[test]
    fn baseline_tolerance_wins_over_actuals() {
        let base = report(&[("a", 1.0, 0.5)]);
        let fresh = report(&[("a", 1.4, 0.001)]); // actual's tighter tolerance ignored
        assert!(check_report(&fresh, &base).passed());
    }
}
