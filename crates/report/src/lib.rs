//! Typed results pipeline for the Victima (MICRO 2023) reproduction.
//!
//! Every figure and table of the paper's evaluation is materialised as an
//! [`ExperimentReport`]: a typed schema carrying units, per-cell values,
//! summary [`Metric`]s with regression tolerances, free-form calibration
//! notes, and full config [`Provenance`] (scale, budgets, seed, engine).
//! Four renderers turn a report into durable artifacts:
//!
//! - [`json::to_json`] / [`json::from_json`] — a hand-rolled, dependency-free
//!   JSON round trip (the `--check` baseline format);
//! - [`jsonl::render`] / [`jsonl::render_all`] — one compact JSON line per
//!   report, the streaming shape the sweep service emits incrementally;
//! - [`csv::to_csv`] — raw full-precision values for plotting pipelines;
//! - [`text::render`] — the aligned plain-text tables the CLI prints;
//! - [`markdown::render`] / [`markdown::render_combined`] — per-figure
//!   sections and the combined self-rendering `REPORT.md`.
//!
//! [`check::check_report`] diffs a freshly computed report against a
//! committed baseline with per-metric tolerances, giving the repo an
//! automated reproduction-regression gate.
//!
//! The crate is std-only and depends on nothing else in the workspace, so
//! any layer (bench harness, examples, external tooling) can consume it.
//!
//! # Examples
//!
//! Build a report with the fluent builder, then render it:
//!
//! ```
//! use report::{Column, ExperimentReport, Metric, Unit, Value};
//!
//! let mut r = ExperimentReport::new("fig20", "Speedup over Radix (native)")
//!     .with_columns([Column::new("Victima", Unit::Factor)]);
//! r.push_row("BFS", [Value::from(1.074)]);
//! r.push_metric(Metric::new("gmean_speedup/Victima", 1.074, Unit::Factor).with_tolerance(0.02));
//! r.note("paper: Victima gains +7.4% GMEAN");
//!
//! let json = report::json::to_json(&r);
//! let back = report::json::from_json(&json).unwrap();
//! assert_eq!(r, back);
//! assert!(report::text::render(&r).contains("fig20"));
//! ```

#![deny(missing_docs)]

pub mod check;
pub mod csv;
pub mod json;
pub mod jsonl;
pub mod markdown;
pub mod schema;
pub mod text;

pub use check::{check_report, CheckOutcome, MetricDiff};
pub use schema::{Column, ExperimentReport, Metric, Provenance, Row, Unit, Value};
