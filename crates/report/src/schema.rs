//! The typed metric schema: units, cell values, columns, rows, summary
//! metrics, provenance, and the [`ExperimentReport`] container.

use std::fmt;

/// Semantic unit of a column or metric. The unit drives display
/// formatting (see [`Unit::format`]) and is carried verbatim into the
/// JSON/CSV artifacts so downstream consumers don't have to guess.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Plain event count (integer display).
    Count,
    /// Simulated clock cycles.
    Cycles,
    /// A fraction in `[0, 1]`, displayed as a percentage.
    Percent,
    /// A dimensionless ratio (speedups), displayed with 3 decimals.
    Factor,
    /// Misses per kilo-instruction.
    Mpki,
    /// Instructions per cycle.
    Ipc,
    /// Mebibytes.
    Megabytes,
    /// Raw bytes.
    Bytes,
    /// A unitless number displayed with shortest round-trip formatting.
    Raw,
    /// Free-form text cells (labels, categorical markers).
    Text,
}

impl Unit {
    /// Stable artifact tag for this unit ("percent", "mpki", …).
    pub fn tag(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Cycles => "cycles",
            Unit::Percent => "percent",
            Unit::Factor => "factor",
            Unit::Mpki => "mpki",
            Unit::Ipc => "ipc",
            Unit::Megabytes => "mb",
            Unit::Bytes => "bytes",
            Unit::Raw => "raw",
            Unit::Text => "text",
        }
    }

    /// Parses an artifact tag back into a unit.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "count" => Unit::Count,
            "cycles" => Unit::Cycles,
            "percent" => Unit::Percent,
            "factor" => Unit::Factor,
            "mpki" => Unit::Mpki,
            "ipc" => Unit::Ipc,
            "mb" => Unit::Megabytes,
            "bytes" => Unit::Bytes,
            "raw" => Unit::Raw,
            "text" => Unit::Text,
            _ => return None,
        })
    }

    /// Default number of decimals for this unit's display formatting.
    pub fn default_precision(self) -> usize {
        match self {
            Unit::Count | Unit::Cycles | Unit::Bytes | Unit::Megabytes => 0,
            Unit::Percent | Unit::Mpki => 1,
            Unit::Factor | Unit::Ipc => 3,
            Unit::Raw | Unit::Text => 0,
        }
    }

    /// Formats `v` for human-facing renderers (text/markdown) with
    /// `precision` decimals (`None` = the unit's default).
    pub fn format(self, v: f64, precision: Option<usize>) -> String {
        let p = precision.unwrap_or_else(|| self.default_precision());
        match self {
            Unit::Percent => format!("{:.p$}%", v * 100.0),
            Unit::Raw => format!("{v}"),
            _ => format!("{v:.p$}"),
        }
    }
}

/// One cell of a report row.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An empty cell (renders as blank, serialises as `null`).
    Empty,
    /// An exact integer (counts).
    Int(i64),
    /// A floating-point measurement.
    Float(f64),
    /// Free-form text.
    Str(String),
}

impl Value {
    /// The cell's value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A data column: name plus the unit its cells are measured in.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// Column header.
    pub name: String,
    /// Unit of every cell in this column.
    pub unit: Unit,
    /// Display precision override (decimals); `None` uses the unit default.
    pub precision: Option<usize>,
}

impl Column {
    /// Creates a column with the unit's default display precision.
    pub fn new(name: impl Into<String>, unit: Unit) -> Self {
        Self { name: name.into(), unit, precision: None }
    }

    /// Creates a free-form text column.
    pub fn text(name: impl Into<String>) -> Self {
        Self::new(name, Unit::Text)
    }

    /// Overrides the display precision (number of decimals).
    pub fn with_precision(mut self, precision: usize) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Formats one cell of this column for human-facing renderers.
    pub fn format(&self, v: &Value) -> String {
        match v {
            Value::Empty => String::new(),
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => self.unit.format(*f, self.precision),
        }
    }
}

/// One labelled data row (the label is the paper's x-axis category —
/// usually a workload name).
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Row label (first column in every rendering).
    pub label: String,
    /// Data cells, one per [`Column`].
    pub cells: Vec<Value>,
}

/// Default relative tolerance applied by [`Metric::new`]: generous enough
/// to absorb cross-platform libm drift, tight enough to flag real
/// regressions.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// A named summary scalar (GMEAN speedup, average MPKI, …) — the values
/// the `--check` regression gate compares against committed baselines.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable name, conventionally `kind/series` ("gmean_speedup/Victima").
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit for display and artifact tagging.
    pub unit: Unit,
    /// Check tolerance: a baseline passes when
    /// `|actual - expected| <= tolerance * max(|expected|, 1.0)`.
    pub tolerance: f64,
}

impl Metric {
    /// Creates a metric with [`DEFAULT_TOLERANCE`].
    pub fn new(name: impl Into<String>, value: f64, unit: Unit) -> Self {
        Self { name: name.into(), value, unit, tolerance: DEFAULT_TOLERANCE }
    }

    /// Overrides the check tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Human-facing rendering of the value ("1.074", "7.4%", …).
    pub fn display_value(&self) -> String {
        self.unit.format(self.value, None)
    }
}

/// Where a report's numbers came from: the run scale, instruction budgets,
/// seed, engine identity, and the configs/workloads swept. Everything
/// needed to decide whether two artifacts are comparable — deliberately
/// *excluding* schedule-dependent facts (worker count, wall-clock), so
/// artifacts are byte-identical across `VICTIMA_JOBS` settings.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Provenance {
    /// Workload footprint scale ("Tiny", "Full").
    pub scale: String,
    /// Warm-up instructions per run (statistics discarded).
    pub warmup: u64,
    /// Measured instructions per run.
    pub instructions: u64,
    /// Base deterministic seed.
    pub seed: u64,
    /// Engine identity string (see `sim::engine::ENGINE_ID`).
    pub engine: String,
    /// Display names of the system configs this experiment ran.
    pub configs: Vec<String>,
    /// Workload abbreviations swept (figure order).
    pub workloads: Vec<String>,
}

/// A fully typed experiment result: one paper figure/table.
///
/// Built with the fluent constructor methods and the `push_*` mutators;
/// see the [crate-level example](crate) for the complete flow from build
/// to JSON round trip.
///
/// # Examples
///
/// ```
/// use report::{Column, ExperimentReport, Metric, Unit, Value};
///
/// let mut r = ExperimentReport::new("fig05", "L2 TLB MPKI vs. size")
///     .with_label_name("workload")
///     .with_columns([Column::new("1.5K", Unit::Mpki), Column::new("64K", Unit::Mpki)]);
/// r.push_row("BFS", [Value::from(39.2), Value::from(24.1)]);
/// r.push_metric(Metric::new("avg_mpki/64K", 24.1, Unit::Mpki));
/// r.note("paper: 1.5K → 64K reduces average MPKI 39 → 24");
/// assert_eq!(r.rows[0].cells.len(), r.columns.len());
/// assert!(r.metric("avg_mpki/64K").is_some());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id ("fig20", "table2", "calibrate", …).
    pub id: String,
    /// Human-readable title (what the paper's caption says).
    pub title: String,
    /// Label header for the row-label column ("workload" unless overridden).
    pub label_name: String,
    /// Data columns.
    pub columns: Vec<Column>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Summary metrics, checked against committed baselines.
    pub metrics: Vec<Metric>,
    /// Calibration notes / paper reference points.
    pub notes: Vec<String>,
    /// Config provenance.
    pub provenance: Provenance,
}

impl ExperimentReport {
    /// Creates an empty report with a `"workload"` label column.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            label_name: "workload".to_owned(),
            columns: Vec::new(),
            rows: Vec::new(),
            metrics: Vec::new(),
            notes: Vec::new(),
            provenance: Provenance::default(),
        }
    }

    /// Sets the data columns.
    pub fn with_columns(mut self, cols: impl IntoIterator<Item = Column>) -> Self {
        self.columns = cols.into_iter().collect();
        self
    }

    /// Renames the row-label column (default `"workload"`).
    pub fn with_label_name(mut self, name: impl Into<String>) -> Self {
        self.label_name = name.into();
        self
    }

    /// Attaches provenance.
    pub fn with_provenance(mut self, p: Provenance) -> Self {
        self.provenance = p;
        self
    }

    /// Appends one labelled row.
    pub fn push_row(&mut self, label: impl Into<String>, cells: impl IntoIterator<Item = Value>) {
        self.rows.push(Row { label: label.into(), cells: cells.into_iter().collect() });
    }

    /// Appends one summary metric.
    pub fn push_metric(&mut self, m: Metric) {
        self.metrics.push(m);
    }

    /// Appends a free-form note line.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

impl fmt::Display for ExperimentReport {
    /// Displays as the aligned plain-text rendering (see [`crate::text`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::text::render(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_tags_round_trip() {
        for u in [
            Unit::Count,
            Unit::Cycles,
            Unit::Percent,
            Unit::Factor,
            Unit::Mpki,
            Unit::Ipc,
            Unit::Megabytes,
            Unit::Bytes,
            Unit::Raw,
            Unit::Text,
        ] {
            assert_eq!(Unit::from_tag(u.tag()), Some(u));
        }
        assert_eq!(Unit::from_tag("nope"), None);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(Unit::Percent.format(0.074, None), "7.4%");
        assert_eq!(Unit::Percent.format(0.0742, Some(2)), "7.42%");
        assert_eq!(Unit::Factor.format(1.2345, None), "1.234"); // banker's-free {:.3}
        assert_eq!(Unit::Cycles.format(136.6, None), "137");
        assert_eq!(Unit::Mpki.format(39.02, None), "39.0");
        assert_eq!(Unit::Raw.format(2.5, None), "2.5");
    }

    #[test]
    fn column_formats_cells_by_unit() {
        let c = Column::new("speedup", Unit::Factor);
        assert_eq!(c.format(&Value::from(1.0)), "1.000");
        assert_eq!(c.format(&Value::Empty), "");
        assert_eq!(c.format(&Value::from("x")), "x");
        assert_eq!(c.format(&Value::from(42u64)), "42");
    }

    #[test]
    fn builder_assembles_a_report() {
        let mut r = ExperimentReport::new("figX", "demo")
            .with_columns([Column::new("v", Unit::Percent)])
            .with_label_name("bucket");
        r.push_row("a", [Value::from(0.5)]);
        r.push_metric(Metric::new("m", 0.5, Unit::Percent).with_tolerance(0.1));
        r.note("n");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.metric("m").unwrap().tolerance, 0.1);
        assert_eq!(r.metric("m").unwrap().display_value(), "50.0%");
        assert!(r.metric("absent").is_none());
    }
}
