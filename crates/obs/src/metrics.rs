//! Allocation-free metrics registry: counters, gauges, and fixed-bucket
//! histograms over a flat arena of `u64` words.
//!
//! The storage philosophy follows the simulator's packed tag arrays
//! (PR 4): every metric is a fixed number of `u64` words in one `Vec`,
//! addressed by a [`MetricId`] handed out at registration time. Updates
//! are relaxed atomic adds/stores — safe to share across the daemon's
//! dispatcher threads via `Arc<Registry>`, and free of allocation, locks
//! and syscalls. Single-owner recorders (the simulator, which fires
//! several events per memory reference) should record through a
//! [`LocalBuf`] instead — plain `Cell` adds, no locked RMW per event —
//! and drain it into the registry at snapshot time.
//!
//! Histograms use [`HIST_BUCKETS`] power-of-two buckets plus dedicated
//! count and sum words: bucket 0 holds zero-valued observations, bucket
//! `i` holds `2^(i-1) <= v < 2^i`, and the last bucket is unbounded.
//! That fixed shape keeps `observe` branch-free (a `leading_zeros` and
//! two adds) and makes snapshots mergeable by plain addition.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets per histogram.
pub const HIST_BUCKETS: usize = 16;

/// Words per histogram: count, sum, then the buckets.
const HIST_WORDS: usize = HIST_BUCKETS + 2;

/// What a registered metric is; drives snapshot decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// Opaque handle to one registered metric (an offset into the word
/// arena). `Copy`, so instrumentation structs can hold one per site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId {
    word: u32,
    kind: Kind,
}

/// A decoded histogram: observation count, value sum, and the
/// power-of-two bucket populations.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Bucket populations; see [`bucket_of`] for the value → bucket map.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot's populations into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// The bucket index a value lands in: 0 for zero, otherwise
/// `1 + floor(log2 v)` clamped to the last bucket — so bucket `i`
/// (for `1 <= i < HIST_BUCKETS-1`) covers `2^(i-1) <= v < 2^i`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (for rendering bucket labels).
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A decoded metric value, as returned by [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written level (stored, not accumulated).
    Gauge(u64),
    /// Fixed-bucket distribution.
    Histogram(HistSnapshot),
}

/// The registry: metric names and kinds, plus the word arena.
///
/// Register every metric up front (allocates), then share the registry
/// (typically `Arc`ed) and update through [`MetricId`]s. Updates take
/// `&self`; registration takes `&mut self`, so sharing freezes the set.
#[derive(Debug, Default)]
pub struct Registry {
    specs: Vec<(String, Kind, u32)>,
    words: Vec<AtomicU64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &str, kind: Kind, words: usize) -> MetricId {
        assert!(!self.specs.iter().any(|(n, _, _)| n == name), "metric {name:?} registered twice");
        let word = u32::try_from(self.words.len()).expect("registry exceeds 2^32 words");
        self.specs.push((name.to_owned(), kind, word));
        self.words.extend((0..words).map(|_| AtomicU64::new(0)));
        MetricId { word, kind }
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, Kind::Counter, 1)
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, Kind::Gauge, 1)
    }

    /// Registers a fixed-bucket histogram.
    pub fn histogram(&mut self, name: &str) -> MetricId {
        self.register(name, Kind::Histogram, HIST_WORDS)
    }

    /// Adds `n` to a counter (relaxed; allocation-free).
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        debug_assert_eq!(id.kind, Kind::Counter);
        self.words[id.word as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Stores a gauge level (relaxed; allocation-free).
    #[inline]
    pub fn set(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind, Kind::Gauge);
        self.words[id.word as usize].store(v, Ordering::Relaxed);
    }

    /// Records one histogram observation (relaxed; allocation-free).
    #[inline]
    pub fn observe(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind, Kind::Histogram);
        let base = id.word as usize;
        self.words[base].fetch_add(1, Ordering::Relaxed);
        self.words[base + 1].fetch_add(v, Ordering::Relaxed);
        self.words[base + 2 + bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads one histogram back out.
    pub fn histogram_snapshot(&self, id: MetricId) -> HistSnapshot {
        debug_assert_eq!(id.kind, Kind::Histogram);
        let base = id.word as usize;
        let mut h = HistSnapshot {
            count: self.words[base].load(Ordering::Relaxed),
            sum: self.words[base + 1].load(Ordering::Relaxed),
            ..HistSnapshot::default()
        };
        for (i, b) in h.buckets.iter_mut().enumerate() {
            *b = self.words[base + 2 + i].load(Ordering::Relaxed);
        }
        h
    }

    /// Reads a counter or gauge word.
    pub fn value(&self, id: MetricId) -> u64 {
        self.words[id.word as usize].load(Ordering::Relaxed)
    }

    /// Decodes every metric, in registration order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.specs
            .iter()
            .map(|(name, kind, word)| {
                let v = match kind {
                    Kind::Counter => MetricValue::Counter(self.words[*word as usize].load(Ordering::Relaxed)),
                    Kind::Gauge => MetricValue::Gauge(self.words[*word as usize].load(Ordering::Relaxed)),
                    Kind::Histogram => {
                        MetricValue::Histogram(self.histogram_snapshot(MetricId { word: *word, kind: *kind }))
                    }
                };
                (name.clone(), v)
            })
            .collect()
    }
}

impl Registry {
    /// A single-writer shadow of this registry's word arena, with every
    /// metric at the same [`MetricId`] offsets.
    ///
    /// The registry's atomic updates are what make it shareable, but a
    /// relaxed `fetch_add` is still a locked RMW — too expensive for a
    /// caller recording several events per simulated memory reference.
    /// A `LocalBuf` trades sharing for speed: plain [`Cell`] words (an
    /// ordinary register add), accumulated privately and drained into
    /// the registry's atomics by [`LocalBuf::flush_into`]. Snapshots
    /// and cross-thread merging stay on the atomic side.
    pub fn local_buf(&self) -> LocalBuf {
        LocalBuf {
            specs: self.specs.iter().map(|(_, kind, word)| (*kind, *word)).collect(),
            words: (0..self.words.len()).map(|_| Cell::new(0)).collect(),
        }
    }
}

/// Single-writer metric buffer; see [`Registry::local_buf`].
///
/// `!Sync` by construction (`Cell` storage): one owner records, and the
/// deltas only become visible to other threads after a flush.
#[derive(Debug)]
pub struct LocalBuf {
    specs: Vec<(Kind, u32)>,
    words: Vec<Cell<u64>>,
}

impl LocalBuf {
    #[inline]
    fn bump(&self, i: usize, n: u64) {
        let w = &self.words[i];
        w.set(w.get().wrapping_add(n));
    }

    /// Adds `n` to a counter (allocation-free, non-atomic).
    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        debug_assert_eq!(id.kind, Kind::Counter);
        self.bump(id.word as usize, n);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Stores a gauge level.
    #[inline]
    pub fn set(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind, Kind::Gauge);
        self.words[id.word as usize].set(v);
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.kind, Kind::Histogram);
        let base = id.word as usize;
        self.bump(base, 1);
        self.bump(base + 1, v);
        self.bump(base + 2 + bucket_of(v), 1);
    }

    /// Drains the buffered deltas into `reg`'s atomic words: counter and
    /// histogram words are added then zeroed locally (so flushing twice
    /// never double-counts); gauge words are stored (last write wins).
    /// `reg` must be the registry this buffer was created from.
    pub fn flush_into(&self, reg: &Registry) {
        debug_assert_eq!(self.words.len(), reg.words.len(), "LocalBuf flushed into a foreign registry");
        for &(kind, word) in &self.specs {
            let base = word as usize;
            match kind {
                Kind::Gauge => reg.words[base].store(self.words[base].get(), Ordering::Relaxed),
                Kind::Counter => self.drain_word(reg, base),
                Kind::Histogram => {
                    for i in base..base + HIST_WORDS {
                        self.drain_word(reg, i);
                    }
                }
            }
        }
    }

    fn drain_word(&self, reg: &Registry, i: usize) {
        let v = self.words[i].replace(0);
        if v != 0 {
            reg.words[i].fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// Merges one snapshot into an accumulator (by name): counters and
/// histograms add, gauges keep the maximum (they track pressure
/// high-water marks across runs). Unseen names are appended in order.
pub fn merge_snapshots(into: &mut Vec<(String, MetricValue)>, from: &[(String, MetricValue)]) {
    for (name, v) in from {
        match into.iter_mut().find(|(n, _)| n == name) {
            Some((_, acc)) => match (acc, v) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                (acc, v) => panic!("metric {name:?} changed kind: {acc:?} vs {v:?}"),
            },
            None => into.push((name.clone(), v.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        reg.add(c, 5);
        reg.inc(c);
        reg.set(g, 41);
        reg.set(g, 17);
        assert_eq!(reg.value(c), 6);
        assert_eq!(reg.value(g), 17);
        let snap = reg.snapshot();
        assert_eq!(snap[0].1, MetricValue::Counter(6));
        assert_eq!(snap[1].1, MetricValue::Gauge(17));
    }

    #[test]
    fn histogram_buckets_follow_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(5), 16);
    }

    #[test]
    fn local_buf_accumulates_and_drains_exactly_once() {
        let mut reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        let buf = reg.local_buf();
        buf.inc(c);
        buf.add(c, 4);
        buf.set(g, 9);
        buf.observe(h, 3);
        buf.observe(h, 100);
        // Nothing visible before the flush.
        assert_eq!(reg.value(c), 0);
        buf.flush_into(&reg);
        assert_eq!(reg.value(c), 5);
        assert_eq!(reg.value(g), 9);
        let snap = reg.histogram_snapshot(h);
        assert_eq!((snap.count, snap.sum), (2, 103));
        // A second flush is a no-op for drained counters/histograms and
        // re-stores the gauge: no double counting.
        buf.flush_into(&reg);
        assert_eq!(reg.value(c), 5);
        assert_eq!(reg.value(g), 9);
        assert_eq!(reg.histogram_snapshot(h).count, 2);
        // New deltas after a flush land on top of the old total.
        buf.inc(c);
        buf.flush_into(&reg);
        assert_eq!(reg.value(c), 6);
    }

    #[test]
    fn histogram_observe_and_snapshot() {
        let mut reg = Registry::new();
        let h = reg.histogram("h");
        for v in [0, 1, 3, 3, 100] {
            reg.observe(h, v);
        }
        let snap = reg.histogram_snapshot(h);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 107);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[bucket_of(100)], 1);
        assert!((snap.mean() - 21.4).abs() < 1e-9);
    }

    #[test]
    fn snapshots_merge_by_kind() {
        let mut reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        reg.add(c, 2);
        reg.set(g, 9);
        reg.observe(h, 4);
        let mut acc = Vec::new();
        merge_snapshots(&mut acc, &reg.snapshot());
        reg.set(g, 3);
        merge_snapshots(&mut acc, &reg.snapshot());
        assert_eq!(acc[0].1, MetricValue::Counter(4));
        assert_eq!(acc[1].1, MetricValue::Gauge(9), "gauges keep the high-water mark");
        match &acc[2].1 {
            MetricValue::Histogram(h) => assert_eq!((h.count, h.sum), (2, 8)),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let mut reg = Registry::new();
        reg.counter("x");
        reg.counter("x");
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let mut reg = Registry::new();
        let c = reg.counter("c");
        let reg = std::sync::Arc::new(reg);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.inc(c);
                    }
                });
            }
        });
        assert_eq!(reg.value(c), 4000);
    }
}
