//! Structured span tracing: named phases with monotonic timings.
//!
//! A [`Tracer`] collects flat [`SpanEvent`]s — one per executed phase
//! (warm-up, detailed window, fast-forward, checkpoint restore, worker
//! exec, …) — stamped in microseconds from the tracer's own
//! [`MonotonicClock`] origin. Events carry numeric fields (instruction
//! budgets, window indices) but no absolute time, so they can ride in
//! artifacts without breaking cross-run reproducibility; rendering to
//! newline-delimited JSON is the consumer's job (the `report` writer in
//! `bench`/`svc`), which keeps this crate dependency-light.
//!
//! # Examples
//!
//! ```
//! use obs::{aggregate, Tracer};
//!
//! let mut t = Tracer::new();
//! let t0 = t.start();
//! // ... do the phase work ...
//! t.record("warmup", t0, &[("instr", 5_000)]);
//! let agg = aggregate(t.events());
//! assert_eq!(agg[0].name, "warmup");
//! assert_eq!(agg[0].count, 1);
//! ```

use vm_types::MonotonicClock;

/// One completed phase: name, start offset, duration, numeric fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name ("warmup", "detailed_window", "fast_forward", …).
    pub name: &'static str,
    /// Microseconds from the tracer origin to the span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Numeric payload: (field name, value) pairs.
    pub fields: Vec<(&'static str, u64)>,
}

/// Collects [`SpanEvent`]s against one monotonic clock.
#[derive(Debug)]
pub struct Tracer {
    clock: MonotonicClock,
    events: Vec<SpanEvent>,
}

impl Tracer {
    /// A fresh tracer with its clock at zero.
    pub fn new() -> Self {
        Self { clock: MonotonicClock::new(), events: Vec::new() }
    }

    /// Stamps a span start; pass the result to [`Tracer::record`].
    pub fn start(&self) -> u64 {
        self.clock.now_us()
    }

    /// Closes a span opened at `start_us` and appends the event.
    pub fn record(&mut self, name: &'static str, start_us: u64, fields: &[(&'static str, u64)]) {
        let now = self.clock.now_us();
        self.events.push(SpanEvent {
            name,
            start_us,
            dur_us: now.saturating_sub(start_us),
            fields: fields.to_vec(),
        });
    }

    /// The events recorded so far, in completion order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Drains the recorded events out of the tracer.
    pub fn take(&mut self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-phase self-time rollup of a span stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Phase name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Total self-time in microseconds. Spans here are flat (phases
    /// never nest), so self-time is just the summed durations.
    pub total_us: u64,
}

/// Aggregates span self-times by phase name, in first-appearance order.
pub fn aggregate(events: &[SpanEvent]) -> Vec<PhaseAgg> {
    let mut agg: Vec<PhaseAgg> = Vec::new();
    for e in events {
        match agg.iter_mut().find(|a| a.name == e.name) {
            Some(a) => {
                a.count += 1;
                a.total_us += e.dur_us;
            }
            None => agg.push(PhaseAgg { name: e.name, count: 1, total_us: e.dur_us }),
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_completion_order() {
        let mut t = Tracer::new();
        let a = t.start();
        t.record("warmup", a, &[("instr", 100)]);
        let b = t.start();
        t.record("measured", b, &[]);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "warmup");
        assert_eq!(events[0].fields, vec![("instr", 100)]);
        assert!(events[1].start_us >= events[0].start_us);
    }

    #[test]
    fn aggregate_rolls_up_self_time_by_phase() {
        let events = vec![
            SpanEvent { name: "w", start_us: 0, dur_us: 10, fields: vec![] },
            SpanEvent { name: "d", start_us: 10, dur_us: 5, fields: vec![] },
            SpanEvent { name: "w", start_us: 15, dur_us: 7, fields: vec![] },
        ];
        let agg = aggregate(&events);
        assert_eq!(agg.len(), 2);
        assert_eq!((agg[0].name, agg[0].count, agg[0].total_us), ("w", 2, 17));
        assert_eq!((agg[1].name, agg[1].count, agg[1].total_us), ("d", 1, 5));
    }

    #[test]
    fn take_drains_the_tracer() {
        let mut t = Tracer::new();
        let s = t.start();
        t.record("x", s, &[]);
        assert_eq!(t.take().len(), 1);
        assert!(t.events().is_empty());
    }
}
