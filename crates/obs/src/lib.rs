//! Unified observability layer for the Victima reproduction.
//!
//! Two small, std-only building blocks shared by the simulator, the
//! sweep daemon, and the experiment harness:
//!
//! * [`metrics`] — a registry of counters, gauges, and fixed-bucket
//!   histograms stored as flat `u64` words (atomic, so one registry can
//!   be shared across daemon threads). Registration allocates; the
//!   update path is a bounds-checked index plus a relaxed atomic add —
//!   no allocation, no locks, no branches beyond the caller's
//!   enabled-check.
//! * [`span`] — structured span tracing: named phases with monotonic
//!   microsecond timings ([`vm_types::MonotonicClock`]) and numeric
//!   fields, plus a self-time aggregator for phase-breakdown reports.
//!
//! # Determinism contract
//!
//! Nothing in this crate may feed a `RunSpec` fingerprint, a `SimStats`
//! field, or a `--check` artifact. Metrics mirror simulation events (and
//! are therefore deterministic), but span timings are wall-clock and
//! exist only in side channels: profile artifacts, the daemon log, and
//! the `metrics` protocol response. The simulator enforces this by
//! keeping the whole layer behind `Option` handles that default to
//! `None` — disabled means not one instruction of overhead on the hot
//! path beyond the `Option` check.
//!
//! # Examples
//!
//! ```
//! use obs::metrics::{Registry, MetricValue};
//!
//! let mut reg = Registry::new();
//! let hits = reg.counter("tlb_l1_hit");
//! let depth = reg.histogram("walk_depth");
//! reg.add(hits, 3);
//! reg.observe(depth, 4);
//! let snap = reg.snapshot();
//! assert_eq!(snap[0], ("tlb_l1_hit".to_owned(), MetricValue::Counter(3)));
//! ```

#![deny(missing_docs)]

pub mod metrics;
pub mod span;

pub use metrics::{merge_snapshots, HistSnapshot, LocalBuf, MetricId, MetricValue, Registry, HIST_BUCKETS};
pub use span::{aggregate, PhaseAgg, SpanEvent, Tracer};
