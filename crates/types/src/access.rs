//! Memory reference records produced by the workload generators and
//! consumed by the full-system simulator.

use crate::addr::VirtAddr;
use std::fmt;

/// The kind of a memory reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum AccessKind {
    /// Data load.
    #[default]
    Load,
    /// Data store.
    Store,
    /// Instruction fetch (used by the I-side of the MMU).
    IFetch,
}

impl AccessKind {
    /// Whether this access writes memory.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Whether this access is on the instruction side.
    #[inline]
    pub const fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::IFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
            AccessKind::IFetch => write!(f, "ifetch"),
        }
    }
}

/// One memory reference emitted by a workload generator.
///
/// `gap` is the number of non-memory instructions the workload executes
/// before this reference; the timing model charges `gap / issue_width`
/// base cycles for them. `pc` identifies the static instruction for the
/// IP-stride prefetcher and for instruction-side translation.
///
/// # Examples
///
/// ```
/// use vm_types::{MemRef, AccessKind, VirtAddr};
/// let r = MemRef::load(VirtAddr::new(0x1000), 0x400_000, 3);
/// assert_eq!(r.kind, AccessKind::Load);
/// assert_eq!(r.instructions(), 4); // 3 gap instructions + the access itself
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Virtual address accessed (guest-virtual in virtualised mode).
    pub vaddr: VirtAddr,
    /// Load / store.
    pub kind: AccessKind,
    /// Program counter of the instruction performing the access.
    pub pc: u64,
    /// Non-memory instructions executed since the previous reference.
    pub gap: u32,
}

impl MemRef {
    /// Convenience constructor for a load.
    #[inline]
    pub const fn load(vaddr: VirtAddr, pc: u64, gap: u32) -> Self {
        Self { vaddr, kind: AccessKind::Load, pc, gap }
    }

    /// Convenience constructor for a store.
    #[inline]
    pub const fn store(vaddr: VirtAddr, pc: u64, gap: u32) -> Self {
        Self { vaddr, kind: AccessKind::Store, pc, gap }
    }

    /// Total instructions this record accounts for (gap + the memory
    /// instruction itself).
    #[inline]
    pub const fn instructions(self) -> u64 {
        self.gap as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let l = MemRef::load(VirtAddr::new(8), 1, 0);
        let s = MemRef::store(VirtAddr::new(8), 1, 0);
        assert!(!l.kind.is_write());
        assert!(s.kind.is_write());
        assert!(!s.kind.is_ifetch());
    }

    #[test]
    fn instruction_accounting_includes_self() {
        assert_eq!(MemRef::load(VirtAddr::new(0), 0, 0).instructions(), 1);
        assert_eq!(MemRef::load(VirtAddr::new(0), 0, 9).instructions(), 10);
    }
}
