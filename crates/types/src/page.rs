//! Page sizes supported by the simulated MMU.
//!
//! The paper's systems use 4KB base pages and 2MB transparent huge pages
//! (Sec. 2.4, Table 3). All TLBs and Victima's TLB blocks are page-size
//! aware.

use std::fmt;

/// A translation granule.
///
/// # Examples
///
/// ```
/// use vm_types::PageSize;
/// assert_eq!(PageSize::Size4K.bytes(), 4096);
/// assert_eq!(PageSize::Size2M.shift(), 21);
/// assert_eq!(PageSize::Size2M.pages_covered_by(32 << 20), 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum PageSize {
    /// 4KB base page (leaf of the 4-level radix walk).
    #[default]
    Size4K,
    /// 2MB huge page (leaf at the PD level).
    Size2M,
}

impl PageSize {
    /// All supported sizes, smallest first.
    pub const ALL: [PageSize; 2] = [PageSize::Size4K, PageSize::Size2M];

    /// log2 of the page size in bytes.
    #[inline]
    pub const fn shift(self) -> u64 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.shift()
    }

    /// Radix level at which the leaf PTE for this size lives
    /// (0 = PT for 4KB pages, 1 = PD for 2MB pages).
    #[inline]
    pub const fn leaf_level(self) -> u8 {
        match self {
            PageSize::Size4K => 0,
            PageSize::Size2M => 1,
        }
    }

    /// Number of pages of this size needed to cover `bytes` (rounded up).
    #[inline]
    pub const fn pages_covered_by(self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes())
    }

    /// Whether this is a huge page.
    #[inline]
    pub const fn is_huge(self) -> bool {
        matches!(self, PageSize::Size2M)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size2M => write!(f, "2MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_consistent() {
        for s in PageSize::ALL {
            assert_eq!(s.bytes(), 1 << s.shift());
        }
        assert!(PageSize::Size4K < PageSize::Size2M);
    }

    #[test]
    fn leaf_levels_match_x86() {
        assert_eq!(PageSize::Size4K.leaf_level(), 0);
        assert_eq!(PageSize::Size2M.leaf_level(), 1);
    }

    #[test]
    fn coverage_rounds_up() {
        assert_eq!(PageSize::Size4K.pages_covered_by(1), 1);
        assert_eq!(PageSize::Size4K.pages_covered_by(4096), 1);
        assert_eq!(PageSize::Size4K.pages_covered_by(4097), 2);
        assert_eq!(PageSize::Size2M.pages_covered_by(0), 0);
    }

    #[test]
    fn display_matches_paper_terms() {
        assert_eq!(PageSize::Size4K.to_string(), "4KB");
        assert_eq!(PageSize::Size2M.to_string(), "2MB");
    }
}
