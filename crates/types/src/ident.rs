//! Address-space and virtual-machine identifiers.
//!
//! The paper stores the ASID/VMID in spare tag bits of Victima's TLB blocks
//! (Sec. 5.1) and notes that Linux uses at most 12 ASIDs per core, so a
//! handful of bits suffice.

use std::fmt;

/// Address-space identifier (per process).
///
/// # Examples
///
/// ```
/// use vm_types::Asid;
/// let a = Asid::new(3);
/// assert_eq!(a.raw(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Asid(u16);

impl Asid {
    /// The kernel / boot address space.
    pub const KERNEL: Asid = Asid(0);

    /// Creates an ASID. Values are masked to 12 bits (the x86 PCID width).
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Self(raw & 0xfff)
    }

    /// Raw 12-bit value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Truncates the ASID to `bits` bits, as happens when Victima has fewer
    /// spare tag bits than the full ASID width (Sec. 5.1).
    #[inline]
    pub const fn truncate(self, bits: u32) -> u16 {
        if bits >= 16 {
            self.0
        } else {
            self.0 & ((1u16 << bits) - 1)
        }
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

impl From<u16> for Asid {
    fn from(raw: u16) -> Self {
        Self::new(raw)
    }
}

/// Virtual-machine identifier (per guest).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Vmid(u16);

impl Vmid {
    /// The host itself.
    pub const HOST: Vmid = Vmid(0);

    /// Creates a VMID.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Vmid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vmid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_masks_to_12_bits() {
        assert_eq!(Asid::new(0xffff).raw(), 0xfff);
    }

    #[test]
    fn truncate_keeps_low_bits() {
        let a = Asid::new(0b1011_0110);
        assert_eq!(a.truncate(4), 0b0110);
        assert_eq!(a.truncate(16), a.raw());
        assert_eq!(a.truncate(12), a.raw());
    }

    #[test]
    fn kernel_is_zero() {
        assert_eq!(Asid::KERNEL.raw(), 0);
        assert_eq!(Vmid::HOST.raw(), 0);
    }
}
