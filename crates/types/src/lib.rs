//! Common virtual-memory types shared by every crate in the Victima
//! (MICRO 2023) reproduction.
//!
//! The crate is intentionally dependency-free: it provides the address
//! newtypes ([`VirtAddr`], [`PhysAddr`]), page-size arithmetic
//! ([`PageSize`]), identifier newtypes ([`Asid`], [`Vmid`]), the memory
//! reference record produced by workload generators ([`MemRef`]), a family
//! of small statistics helpers ([`Histogram`], [`ReuseHistogram`],
//! [`RunningMean`]), a deterministic, allocation-free random number
//! generator ([`SplitMix64`]) used by the procedural workloads, and the
//! LEB128 varint / zigzag codecs ([`codec`]) underlying the binary trace
//! format.
//!
//! # Examples
//!
//! ```
//! use vm_types::{VirtAddr, PageSize};
//!
//! let va = VirtAddr::new(0x7f12_3456_7890);
//! assert_eq!(va.page_offset(PageSize::Size4K), 0x890);
//! assert_eq!(va.vpn(PageSize::Size4K), 0x7f12_3456_7890 >> 12);
//! ```

#![deny(missing_docs)]

pub mod access;
pub mod addr;
pub mod codec;
pub mod ident;
pub mod page;
pub mod rng;
pub mod stats;
pub mod time;

pub use access::{AccessKind, MemRef};
pub use addr::{PhysAddr, VirtAddr, CACHE_BLOCK_BYTES, PA_BITS, VA_BITS};
pub use ident::{Asid, Vmid};
pub use page::PageSize;
pub use rng::{mix2, mix64, SplitMix64, DEFAULT_SEED};
pub use stats::{geomean, Histogram, ReuseHistogram, RunningMean, REUSE_BUCKET_LABELS};
pub use time::{unix_millis, MonotonicClock};

/// Simulated clock cycles. A plain alias keeps arithmetic friction-free in
/// the hot simulation loops while the address types stay strongly typed.
pub type Cycles = u64;
