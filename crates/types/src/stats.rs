//! Small statistics helpers used by the simulator's counters: a bucketed
//! histogram (Fig. 4), the paper's reuse-level histogram (Figs. 11 and 24),
//! and a numerically stable running mean.

use std::fmt;

/// Fixed-width-bucket histogram over `u64` samples.
///
/// Buckets are `[lo, lo+width)`, `[lo+width, lo+2*width)`, …; samples below
/// `lo` land in the first bucket and samples at or above the top in the
/// overflow bucket, matching how the paper cuts off Fig. 4 at 190 cycles.
///
/// # Examples
///
/// ```
/// use vm_types::Histogram;
/// let mut h = Histogram::new(20, 10, 17); // [20,190) in 10-cycle buckets
/// h.record(25);
/// h.record(137);
/// assert_eq!(h.count(), 2);
/// assert!((h.mean() - 81.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: u64,
    width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `n` buckets of `width` starting at `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `n == 0`.
    pub fn new(lo: u64, width: u64, n: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(n > 0, "need at least one bucket");
        Self { lo, width, buckets: vec![0; n], overflow: 0, count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += sample;
        self.max = self.max.max(sample);
        if sample < self.lo {
            self.buckets[0] += 1;
            return;
        }
        let idx = ((sample - self.lo) / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fraction of samples in the overflow bucket.
    pub fn overflow_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.overflow as f64 / self.count as f64
        }
    }

    /// Iterates over `(bucket_lo, bucket_hi, count)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            let lo = self.lo + i as u64 * self.width;
            (lo, lo + self.width, c)
        })
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket count mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram: n={} mean={:.1} max={}", self.count, self.mean(), self.max)?;
        for (lo, hi, c) in self.rows() {
            writeln!(f, "  [{lo:>6},{hi:>6}) {c}")?;
        }
        writeln!(f, "  overflow {}", self.overflow)
    }
}

/// The paper's reuse-level buckets: `0`, `1-5`, `5-10`, `10-20`, `>20`
/// (Figs. 11 and 24).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReuseHistogram {
    counts: [u64; 5],
}

/// Labels for the reuse buckets, in order.
pub const REUSE_BUCKET_LABELS: [&str; 5] = ["0", "1-5", "5-10", "10-20", ">20"];

impl ReuseHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self { counts: [0; 5] }
    }

    /// Records the final reuse count of one evicted block.
    pub fn record(&mut self, reuse: u64) {
        let idx = match reuse {
            0 => 0,
            1..=4 => 1,
            5..=9 => 2,
            10..=19 => 3,
            _ => 4,
        };
        self.counts[idx] += 1;
    }

    /// Total blocks recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of blocks in each bucket (zeros if empty).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total();
        if t == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = c as f64 / t as f64;
        }
        out
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for ReuseHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fr = self.fractions();
        for (label, frac) in REUSE_BUCKET_LABELS.iter().zip(fr) {
            write!(f, "{label}:{:.1}% ", frac * 100.0)?;
        }
        Ok(())
    }
}

/// Numerically stable running mean (Welford without the variance term).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningMean {
    n: u64,
    mean: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        Self { n: 0, mean: 0.0 }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Geometric mean of a slice of positive values, the paper's GMEAN columns.
/// Returns 1.0 for an empty slice; non-positive values are clamped to a tiny
/// epsilon so a single degenerate run cannot poison the mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(20, 10, 17);
        h.record(5); // below lo -> first bucket
        h.record(20);
        h.record(29);
        h.record(30);
        h.record(1000); // overflow
        let rows: Vec<_> = h.rows().collect();
        assert_eq!(rows[0].2, 3); // 5, 20, 29
        assert_eq!(rows[1].2, 1); // 30
        assert!(h.overflow_fraction() > 0.0);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new(0, 10, 4);
        let mut b = Histogram::new(0, 10, 4);
        a.record(5);
        b.record(15);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
    }

    #[test]
    #[should_panic(expected = "lo mismatch")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0, 10, 4);
        let b = Histogram::new(1, 10, 4);
        a.merge(&b);
    }

    #[test]
    fn reuse_buckets_match_paper() {
        let mut r = ReuseHistogram::new();
        for (reuse, expected_bucket) in
            [(0, 0), (1, 1), (4, 1), (5, 2), (9, 2), (10, 3), (19, 3), (20, 4), (500, 4)]
        {
            let before = r.counts();
            r.record(reuse);
            let after = r.counts();
            for i in 0..5 {
                let delta = after[i] - before[i];
                assert_eq!(delta, u64::from(i == expected_bucket), "reuse={reuse} bucket={i}");
            }
        }
    }

    #[test]
    fn reuse_fractions_sum_to_one() {
        let mut r = ReuseHistogram::new();
        for i in 0..100 {
            r.record(i % 25);
        }
        let s: f64 = r.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn running_mean_matches_naive() {
        let mut m = RunningMean::new();
        let xs = [1.0, 2.0, 3.5, -4.0, 10.0];
        for x in xs {
            m.push(x);
        }
        let naive: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - naive).abs() < 1e-12);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!(geomean(&[0.0, 1.0]) >= 0.0);
    }
}
