//! Virtual and physical address newtypes.
//!
//! The reference design point is the paper's: a modern x86-64 system with
//! 48-bit virtual addresses and 52-bit physical addresses (Sec. 5).

use crate::page::PageSize;
use std::fmt;

/// Number of meaningful virtual-address bits (x86-64 4-level paging).
pub const VA_BITS: u32 = 48;
/// Number of meaningful physical-address bits.
pub const PA_BITS: u32 = 52;
/// Cache block size in bytes, used across the whole hierarchy.
pub const CACHE_BLOCK_BYTES: u64 = 64;

/// A 48-bit virtual address.
///
/// # Examples
///
/// ```
/// use vm_types::{VirtAddr, PageSize};
/// let va = VirtAddr::new(0x0000_1234_5678_9abc);
/// assert_eq!(va.vpn(PageSize::Size4K), 0x1234_5678_9);
/// assert_eq!(va.align_down(PageSize::Size2M).raw(), 0x0000_1234_5660_0000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address, masking to [`VA_BITS`].
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw & ((1u64 << VA_BITS) - 1))
    }

    /// Returns the raw 48-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Virtual page number for the given page size.
    #[inline]
    pub const fn vpn(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Byte offset within a page of the given size.
    #[inline]
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Rounds down to the page boundary.
    #[inline]
    pub const fn align_down(self, size: PageSize) -> Self {
        Self(self.0 & !(size.bytes() - 1))
    }

    /// Rounds up to the next page boundary (saturating at the VA limit).
    #[inline]
    pub const fn align_up(self, size: PageSize) -> Self {
        Self::new((self.0 + size.bytes() - 1) & !(size.bytes() - 1))
    }

    /// Address `bytes` later in the address space.
    #[inline]
    pub const fn add(self, bytes: u64) -> Self {
        Self::new(self.0 + bytes)
    }

    /// Index into the radix page table at `level` (3 = PML4 … 0 = PT).
    ///
    /// Each level consumes 9 bits of the VPN, exactly as in Fig. 1 of the
    /// paper.
    #[inline]
    pub const fn radix_index(self, level: u8) -> usize {
        ((self.0 >> (12 + 9 * level as u64)) & 0x1ff) as usize
    }

    /// Cache-block-aligned address (64B blocks).
    #[inline]
    pub const fn block_align(self) -> Self {
        Self(self.0 & !(CACHE_BLOCK_BYTES - 1))
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#014x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

/// A 52-bit physical address.
///
/// # Examples
///
/// ```
/// use vm_types::{PhysAddr, PageSize};
/// let pa = PhysAddr::new(0x0003_dead_b000);
/// assert_eq!(pa.frame(PageSize::Size4K), 0x0003_dead_b000 >> 12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address, masking to [`PA_BITS`].
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw & ((1u64 << PA_BITS) - 1))
    }

    /// Returns the raw 52-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Physical frame number for the given page size.
    #[inline]
    pub const fn frame(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Byte offset within a frame of the given size.
    #[inline]
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Address `bytes` later in physical memory.
    #[inline]
    pub const fn add(self, bytes: u64) -> Self {
        Self::new(self.0 + bytes)
    }

    /// Cache-block-aligned address (64B blocks).
    #[inline]
    pub const fn block_align(self) -> Self {
        Self(self.0 & !(CACHE_BLOCK_BYTES - 1))
    }

    /// The cache block number (address divided by the 64B block size).
    #[inline]
    pub const fn block_number(self) -> u64 {
        self.0 / CACHE_BLOCK_BYTES
    }

    /// Builds a physical address from a frame number and an in-page offset.
    #[inline]
    pub const fn from_frame(frame: u64, size: PageSize, offset: u64) -> Self {
        Self::new((frame << size.shift()) | (offset & (size.bytes() - 1)))
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#014x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_masks_to_48_bits() {
        let va = VirtAddr::new(u64::MAX);
        assert_eq!(va.raw(), (1u64 << 48) - 1);
    }

    #[test]
    fn phys_addr_masks_to_52_bits() {
        let pa = PhysAddr::new(u64::MAX);
        assert_eq!(pa.raw(), (1u64 << 52) - 1);
    }

    #[test]
    fn radix_indices_cover_nine_bits_each() {
        // VA = PML4 index 1, PDPT index 2, PD index 3, PT index 4.
        let raw = (1u64 << 39) | (2 << 30) | (3 << 21) | (4 << 12);
        let va = VirtAddr::new(raw);
        assert_eq!(va.radix_index(3), 1);
        assert_eq!(va.radix_index(2), 2);
        assert_eq!(va.radix_index(1), 3);
        assert_eq!(va.radix_index(0), 4);
    }

    #[test]
    fn align_round_trip() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.align_down(PageSize::Size4K).page_offset(PageSize::Size4K), 0);
        assert!(va.align_up(PageSize::Size2M).raw() >= va.raw());
        assert_eq!(va.align_up(PageSize::Size2M).page_offset(PageSize::Size2M), 0);
    }

    #[test]
    fn vpn_and_offset_recompose() {
        let va = VirtAddr::new(0x0dea_dbee_f123);
        for size in [PageSize::Size4K, PageSize::Size2M] {
            let recomposed = (va.vpn(size) << size.shift()) | va.page_offset(size);
            assert_eq!(recomposed, va.raw());
        }
    }

    #[test]
    fn from_frame_recomposes() {
        let pa = PhysAddr::new(0x0000_0042_3456);
        let f = pa.frame(PageSize::Size4K);
        let o = pa.page_offset(PageSize::Size4K);
        assert_eq!(PhysAddr::from_frame(f, PageSize::Size4K, o), pa);
    }

    #[test]
    fn block_alignment() {
        let pa = PhysAddr::new(0x1043);
        assert_eq!(pa.block_align().raw(), 0x1040);
        assert_eq!(pa.block_number(), 0x1040 / 64);
    }
}
