//! Monotonic clock abstraction for observability.
//!
//! Every simulation result in this workspace is a pure function of its
//! [`RunSpec`](../sim) — wall-clock time must never leak into
//! fingerprints, `SimStats`, or `--check` artifacts. This module is the
//! one sanctioned doorway to the host clock: a [`MonotonicClock`] hands
//! out microsecond offsets from its own origin, which makes span timings
//! self-consistent within a run while keeping absolute time (and with it
//! any cross-run nondeterminism) out of the data. Consumers that need a
//! calendar timestamp (the daemon log) combine these offsets with one
//! [`unix_millis`] stamp taken at process start.
//!
//! # Examples
//!
//! ```
//! use vm_types::MonotonicClock;
//!
//! let clock = MonotonicClock::new();
//! let a = clock.now_us();
//! let b = clock.now_us();
//! assert!(b >= a);
//! ```

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A monotonic stopwatch: microseconds since the clock was created.
///
/// Offsets from one clock are comparable to each other and nothing else;
/// serialising them is safe because they carry no absolute-time
/// information a replay could diverge on.
#[derive(Clone, Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Starts a new stopwatch at zero.
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }

    /// Microseconds elapsed since this clock was created.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Milliseconds elapsed since this clock was created.
    pub fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Milliseconds since the Unix epoch (for log-line stamps only — never
/// for anything that feeds a `--check` artifact or a fingerprint).
pub fn unix_millis() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = MonotonicClock::new();
        let mut last = 0;
        for _ in 0..100 {
            let now = c.now_us();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn ms_lags_us_by_a_factor_of_1000() {
        let c = MonotonicClock::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let us = c.now_us();
        let ms = c.now_ms();
        assert!(us >= 2_000);
        assert!(ms <= us / 1000 + 1);
    }

    #[test]
    fn unix_millis_is_past_2020() {
        assert!(unix_millis() > 1_577_836_800_000);
    }
}
