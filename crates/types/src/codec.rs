//! LEB128 varint and zigzag codecs for compact binary encodings.
//!
//! These sit next to [`crate::SplitMix64`] as the workspace's shared
//! byte-level primitives: the `victima-trace` crate delta-encodes memory
//! reference streams with them, and property tests drive them with
//! SplitMix64 streams. Unsigned values use standard LEB128 (7 payload
//! bits per byte, high bit = continuation, little-endian groups); signed
//! values are zigzag-folded first so small-magnitude deltas of either
//! sign stay short.
//!
//! # Examples
//!
//! ```
//! use vm_types::codec;
//!
//! let mut buf = Vec::new();
//! codec::put_uvarint(&mut buf, 300);
//! codec::put_ivarint(&mut buf, -2);
//! let mut pos = 0;
//! assert_eq!(codec::take_uvarint(&buf, &mut pos), Some(300));
//! assert_eq!(codec::take_ivarint(&buf, &mut pos), Some(-2));
//! assert_eq!(pos, buf.len());
//! ```

/// Maximum encoded length of one 64-bit varint (⌈64 / 7⌉ bytes).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends `v` to `buf` as a LEB128 varint (1–10 bytes).
#[inline]
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decodes one LEB128 varint from `bytes` starting at `*pos`, advancing
/// `*pos` past it. Returns `None` — leaving `*pos` untouched — if the
/// input is truncated mid-varint or the encoding overflows 64 bits (an
/// 11th continuation byte, or a 10th byte above 1).
#[inline]
pub fn take_uvarint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut cursor = *pos;
    for shift_bytes in 0..MAX_VARINT_BYTES {
        let b = *bytes.get(cursor)?;
        cursor += 1;
        let payload = (b & 0x7f) as u64;
        // The 10th byte carries bits 63.. and may only contribute one bit.
        if shift_bytes == MAX_VARINT_BYTES - 1 && payload > 1 {
            return None;
        }
        v |= payload << (7 * shift_bytes);
        if b & 0x80 == 0 {
            *pos = cursor;
            return Some(v);
        }
    }
    None
}

/// Zigzag-folds a signed value so small magnitudes of either sign map to
/// small unsigned values (`0, -1, 1, -2, … → 0, 1, 2, 3, …`).
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends a signed value as a zigzag-folded LEB128 varint.
#[inline]
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Decodes one zigzag-folded varint; same contract as [`take_uvarint`].
#[inline]
pub fn take_ivarint(bytes: &[u8], pos: &mut usize) -> Option<i64> {
    take_uvarint(bytes, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_encode_in_one_byte() {
        for v in 0..0x80u64 {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(buf, vec![v as u8]);
        }
    }

    #[test]
    fn max_value_uses_ten_bytes_and_round_trips() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_BYTES);
        let mut pos = 0;
        assert_eq!(take_uvarint(&buf, &mut pos), Some(u64::MAX));
        assert_eq!(pos, MAX_VARINT_BYTES);
    }

    #[test]
    fn truncated_input_is_rejected_without_advancing() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1 << 40);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(take_uvarint(&buf[..cut], &mut pos), None, "cut at {cut}");
            assert_eq!(pos, 0, "failed decode must not advance");
        }
    }

    #[test]
    fn overflowing_encodings_are_rejected() {
        // 11 continuation bytes: walks past the 10-byte cap.
        let overlong = [0x80u8; 11];
        assert_eq!(take_uvarint(&overlong, &mut 0), None);
        // 10th byte contributing more than bit 63.
        let mut too_big = vec![0x80u8; 9];
        too_big.push(0x02);
        assert_eq!(take_uvarint(&too_big, &mut 0), None);
        // 10th byte equal to 1 is exactly u64::MAX's top bit: accepted.
        let mut max = vec![0xffu8; 9];
        max.push(0x01);
        assert_eq!(take_uvarint(&max, &mut 0), Some(u64::MAX));
    }

    #[test]
    fn zigzag_orders_by_magnitude() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [0, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn mixed_stream_round_trips() {
        // Ok = unsigned entry, Err = signed entry; shifts spread the
        // magnitudes across every encoded length.
        let mut rng = crate::SplitMix64::new(0xc0dec);
        let mut buf = Vec::new();
        let mut expect: Vec<Result<u64, i64>> = Vec::new();
        for _ in 0..4_000 {
            let raw = rng.next_u64() >> (rng.next_below(64) as u32);
            if rng.chance(0.5) {
                put_uvarint(&mut buf, raw);
                expect.push(Ok(raw));
            } else {
                let v = if rng.chance(0.5) { (raw as i64).wrapping_neg() } else { raw as i64 };
                put_ivarint(&mut buf, v);
                expect.push(Err(v));
            }
        }
        let mut pos = 0;
        for e in expect {
            match e {
                Ok(v) => assert_eq!(take_uvarint(&buf, &mut pos), Some(v)),
                Err(v) => assert_eq!(take_ivarint(&buf, &mut pos), Some(v)),
            }
        }
        assert_eq!(pos, buf.len());
    }
}
