//! Deterministic, allocation-free pseudo-random number generation.
//!
//! The procedural workload generators need billions of cheap random draws
//! that are reproducible across runs and platforms, so we use SplitMix64
//! (Steele et al.) plus a stateless mixing function for "random function of
//! (seed, index)" queries such as procedural graph adjacency.

/// SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use vm_types::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw internal state (for serialising a generator mid-stream;
    /// restore with [`SplitMix64::from_state`]).
    #[inline]
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a previously captured [`SplitMix64::state`].
    /// Identical to [`SplitMix64::new`] — SplitMix64's whole state is its
    /// counter — but named so intent survives at call sites.
    #[inline]
    pub const fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform draw in `[0, bound)`. Returns 0 when `bound == 0`.
    ///
    /// Uses the widening-multiply technique; the tiny modulo bias is
    /// irrelevant for workload generation.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Draws from a truncated power-law-ish distribution in `[1, max]` with
    /// exponent ~2.1, used for graph degree sequences.
    #[inline]
    pub fn power_law(&mut self, max: u64) -> u64 {
        let u = self.next_f64().max(1e-12);
        // Inverse-CDF of p(x) ~ x^-2.1 truncated at max.
        let x = (1.0 / u.powf(1.0 / 1.1)).min(max as f64);
        x as u64
    }
}

/// Default seed used throughout the reproduction for determinism.
pub const DEFAULT_SEED: u64 = 0x5afa_7151_c0de_2023;

/// Stateless 64-bit mixer: a high-quality hash of the input, suitable for
/// procedural "random function" evaluation (e.g. the i-th neighbour of
/// vertex v is `mix64(seed ^ v ^ (i << 32)) % V`).
#[inline]
pub const fn mix64(x: u64) -> u64 {
    mix(x.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

#[inline]
const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines two values into one hash, for keyed procedural functions.
#[inline]
pub const fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = SplitMix64::new(7);
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(2);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(3);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn power_law_in_range_and_skewed() {
        let mut r = SplitMix64::new(4);
        let draws: Vec<u64> = (0..10_000).map(|_| r.power_law(1000)).collect();
        assert!(draws.iter().all(|&d| (1..=1000).contains(&d)));
        let ones = draws.iter().filter(|&&d| d <= 2).count();
        assert!(ones > draws.len() / 4, "power law should be head-heavy");
    }

    #[test]
    fn mix64_spreads_bits() {
        // Consecutive inputs should produce wildly different outputs.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }
}
