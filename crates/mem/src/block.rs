//! Cache block metadata.
//!
//! Victima extends each L2 block with a TLB-entry bit and a nested-TLB bit
//! (Sec. 5.1 / Sec. 7 of the paper: 2 extra bits per block, 0.4% storage
//! overhead). We fold both bits into [`BlockKind`] and additionally keep the
//! ASID, the page size of the translations the block holds, replacement
//! state and a reuse counter (used for Figs. 11 and 24).

use vm_types::{Asid, PageSize};

/// What a cache block currently stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BlockKind {
    /// A conventional data block, indexed by physical address.
    #[default]
    Data,
    /// A Victima TLB block: a cluster of 8 PTEs for 8 contiguous virtual
    /// pages, indexed by virtual page number + ASID.
    Tlb,
    /// A Victima nested TLB block: 8 host PTEs mapping guest-physical to
    /// host-physical pages (virtualised mode, Sec. 5.4).
    NestedTlb,
}

impl BlockKind {
    /// Whether the block holds translations rather than data.
    #[inline]
    pub const fn is_translation(self) -> bool {
        !matches!(self, BlockKind::Data)
    }
}

/// One 64-byte cache block's metadata (the simulator never stores the data
/// payload itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheBlock {
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit (set by stores and by POM-TLB entry updates).
    pub dirty: bool,
    /// Tag. For data blocks this is derived from the physical block number;
    /// for (nested) TLB blocks from the virtual page group number.
    pub tag: u64,
    /// Data vs. TLB vs. nested-TLB block.
    pub kind: BlockKind,
    /// Address-space identifier, meaningful only for translation blocks.
    pub asid: Asid,
    /// Page size of the 8 translations held, meaningful only for
    /// translation blocks.
    pub page_size: PageSize,
    /// SRRIP re-reference interval counter.
    pub rrip: u8,
    /// LRU timestamp (monotonic tick of the owning policy).
    pub lru_stamp: u64,
    /// Hits this block has received since it was filled.
    pub reuse: u32,
    /// Whether the block was brought in by a prefetcher.
    pub prefetched: bool,
}

impl CacheBlock {
    /// An invalid block.
    pub const INVALID: CacheBlock = CacheBlock {
        valid: false,
        dirty: false,
        tag: 0,
        kind: BlockKind::Data,
        asid: Asid::KERNEL,
        page_size: PageSize::Size4K,
        rrip: 0,
        lru_stamp: 0,
        reuse: 0,
        prefetched: false,
    };

    /// Whether this block matches a typed lookup.
    #[inline]
    pub fn matches(&self, tag: u64, kind: BlockKind, asid: Asid, size: PageSize) -> bool {
        self.valid
            && self.kind == kind
            && self.tag == tag
            && (kind == BlockKind::Data || (self.asid == asid && self.page_size == size))
    }

    /// Whether this block matches a data lookup.
    #[inline]
    pub fn matches_data(&self, tag: u64) -> bool {
        self.valid && self.kind == BlockKind::Data && self.tag == tag
    }

    /// Resets the block to hold a freshly filled line.
    #[inline]
    pub fn refill(
        &mut self,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        dirty: bool,
        prefetched: bool,
    ) {
        self.valid = true;
        self.dirty = dirty;
        self.tag = tag;
        self.kind = kind;
        self.asid = asid;
        self.page_size = size;
        self.reuse = 0;
        self.prefetched = prefetched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_block_matches_nothing() {
        let b = CacheBlock::INVALID;
        assert!(!b.matches_data(0));
        assert!(!b.matches(0, BlockKind::Data, Asid::KERNEL, PageSize::Size4K));
    }

    #[test]
    fn data_match_ignores_asid_and_size() {
        let mut b = CacheBlock::INVALID;
        b.refill(42, BlockKind::Data, Asid::new(5), PageSize::Size2M, false, false);
        assert!(b.matches(42, BlockKind::Data, Asid::new(9), PageSize::Size4K));
        assert!(b.matches_data(42));
        assert!(!b.matches_data(43));
    }

    #[test]
    fn tlb_match_requires_asid_and_size() {
        let mut b = CacheBlock::INVALID;
        b.refill(42, BlockKind::Tlb, Asid::new(5), PageSize::Size4K, false, false);
        assert!(b.matches(42, BlockKind::Tlb, Asid::new(5), PageSize::Size4K));
        assert!(!b.matches(42, BlockKind::Tlb, Asid::new(6), PageSize::Size4K));
        assert!(!b.matches(42, BlockKind::Tlb, Asid::new(5), PageSize::Size2M));
        assert!(!b.matches(42, BlockKind::NestedTlb, Asid::new(5), PageSize::Size4K));
        assert!(!b.matches_data(42), "a TLB block must not satisfy data lookups");
    }

    #[test]
    fn refill_clears_reuse_and_sets_flags() {
        let mut b = CacheBlock::INVALID;
        b.reuse = 7;
        b.refill(1, BlockKind::Data, Asid::KERNEL, PageSize::Size4K, true, true);
        assert_eq!(b.reuse, 0);
        assert!(b.dirty && b.prefetched && b.valid);
    }

    #[test]
    fn translation_kinds() {
        assert!(!BlockKind::Data.is_translation());
        assert!(BlockKind::Tlb.is_translation());
        assert!(BlockKind::NestedTlb.is_translation());
    }
}
