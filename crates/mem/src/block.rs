//! Cache block metadata.
//!
//! Victima extends each L2 block with a TLB-entry bit and a nested-TLB bit
//! (Sec. 5.1 / Sec. 7 of the paper: 2 extra bits per block, 0.4% storage
//! overhead). We fold both bits into [`BlockKind`] and additionally keep the
//! ASID, the page size of the translations the block holds, and a reuse
//! counter (used for Figs. 11 and 24).
//!
//! # Packed presence words
//!
//! The cache's per-access hot path never scans [`CacheBlock`] structs.
//! Each way's *entire state* — valid bit, kind, page size, ASID, tag,
//! dirty/prefetched bits, a saturating reuse counter and the 2-bit SRRIP
//! counter — packs into one `u64` presence word ([`pack_word`]), so a
//! lookup is one masked equality compare per way over contiguous memory,
//! and hits, fills, victim aging and evictions all mutate the very cache
//! lines the scan just loaded. Layout, low bit first:
//!
//! ```text
//! [63:62] rrip       (2-bit SRRIP counter)
//! [61]    dirty
//! [60]    prefetched
//! [59:50] reuse      (hits since fill, saturating at 1023 — far beyond
//!                     the top ">20" reuse-histogram bucket)
//! [49:16] tag        (34 bits; see below)
//! [15:4]  asid       (12-bit PCID)
//! [3]     page size  (0 = 4KB, 1 = 2MB)
//! [2:1]   kind       (0 = data, 1 = TLB, 2 = nested TLB)
//! [0]     valid
//! ```
//!
//! Everything above bit 49 is masked out of lookups. 34 tag bits cover
//! every reachable identity: data tags are `pa >> (6 + log2 sets)` with
//! physical memory far below 1 TB, and Victima TLB-block tags are
//! `(vpn >> 3) >> log2 sets` of a 48-bit VA, at most 33 bits.
//! `Cache` fills enforce the bound with a hard assert (so an overflowing
//! tag can never be *stored* and alias another block); the packing
//! helpers themselves carry a debug assert only, which keeps the
//! per-lookup path branch-free in release builds — an overflowing
//! *lookup* key deterministically misses.
//!
//! An invalid way is all-zero ([`INVALID_WORD`]), so "any invalid way?"
//! is also a plain masked compare. [`CacheBlock`] is the *reporting*
//! record the cache reconstructs from a presence word when a block is
//! evicted or inspected.

use vm_types::{Asid, PageSize};

/// What a cache block currently stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BlockKind {
    /// A conventional data block, indexed by physical address.
    #[default]
    Data,
    /// A Victima TLB block: a cluster of 8 PTEs for 8 contiguous virtual
    /// pages, indexed by virtual page number + ASID.
    Tlb,
    /// A Victima nested TLB block: 8 host PTEs mapping guest-physical to
    /// host-physical pages (virtualised mode, Sec. 5.4).
    NestedTlb,
}

impl BlockKind {
    /// Whether the block holds translations rather than data.
    #[inline]
    pub const fn is_translation(self) -> bool {
        !matches!(self, BlockKind::Data)
    }

    #[inline]
    const fn code(self) -> u64 {
        match self {
            BlockKind::Data => 0,
            BlockKind::Tlb => 1,
            BlockKind::NestedTlb => 2,
        }
    }

    #[inline]
    const fn from_code(code: u64) -> Self {
        match code {
            1 => BlockKind::Tlb,
            2 => BlockKind::NestedTlb,
            _ => BlockKind::Data,
        }
    }
}

/// The presence word of an invalid way.
pub const INVALID_WORD: u64 = 0;

/// Number of low bits holding the valid/kind/size/asid metadata; the tag
/// occupies the bits between them and the counter fields.
pub const WORD_META_BITS: u32 = 16;

/// Number of tag bits a presence word can hold.
pub const WORD_TAG_BITS: u32 = 34;

/// Bit position of the embedded saturating reuse counter.
pub const WORD_REUSE_SHIFT: u32 = WORD_META_BITS + WORD_TAG_BITS;

/// Saturation value of the embedded reuse counter (10 bits).
pub const WORD_REUSE_MAX: u64 = 0x3ff;

/// Bit position of the prefetched bit.
pub const WORD_PREFETCHED_SHIFT: u32 = 60;

/// Bit position of the dirty bit.
pub const WORD_DIRTY_SHIFT: u32 = 61;

/// Bit position of the embedded 2-bit SRRIP counter.
pub const WORD_RRIP_SHIFT: u32 = 62;

/// Mask selecting the embedded SRRIP counter.
pub const WORD_RRIP_MASK: u64 = 0b11 << WORD_RRIP_SHIFT;

/// Mask selecting a way's identity (valid + kind + size + asid + tag);
/// the mutable counter/flag bits above are excluded from lookups.
pub const WORD_KEY_MASK: u64 = (1 << WORD_REUSE_SHIFT) - 1;

/// Packs a way's identity and fill-time flags into its presence word with
/// zero reuse and RRIP fields (see the module docs for the layout). Data
/// blocks are always stored under `Asid::KERNEL` / `Size4K`, which is
/// what makes a data lookup a single masked compare.
///
/// # Panics
///
/// Panics in debug builds if `tag` exceeds [`WORD_TAG_BITS`] —
/// unreachable for any simulated physical memory below 1 TB and any
/// 48-bit virtual address (the differential model tests exercise the
/// bound).
#[inline]
pub const fn pack_word_flags(
    tag: u64,
    kind: BlockKind,
    asid: Asid,
    size: PageSize,
    dirty: bool,
    prefetched: bool,
) -> u64 {
    debug_assert!(tag < 1 << WORD_TAG_BITS, "tag overflows the presence word");
    ((dirty as u64) << WORD_DIRTY_SHIFT)
        | ((prefetched as u64) << WORD_PREFETCHED_SHIFT)
        | (tag << WORD_META_BITS)
        | ((asid.raw() as u64) << 4)
        | ((size.is_huge() as u64) << 3)
        | (kind.code() << 1)
        | 1
}

/// Packs a clean, demand-filled identity (no flag bits set).
#[inline]
pub const fn pack_word(tag: u64, kind: BlockKind, asid: Asid, size: PageSize) -> u64 {
    pack_word_flags(tag, kind, asid, size, false, false)
}

/// Presence word of a clean data block (the hot-path common case).
#[inline]
pub const fn pack_data_word(tag: u64) -> u64 {
    pack_word(tag, BlockKind::Data, Asid::KERNEL, PageSize::Size4K)
}

/// Whether a presence word denotes a valid way.
#[inline]
pub const fn word_is_valid(word: u64) -> bool {
    word & 1 != 0
}

/// Whether a presence word denotes a valid *translation* (TLB or nested
/// TLB) block.
#[inline]
pub const fn word_is_translation(word: u64) -> bool {
    word_is_valid(word) && (word >> 1) & 0b11 != 0
}

/// The embedded SRRIP counter of a presence word.
#[inline]
pub const fn word_rrip(word: u64) -> u8 {
    (word >> WORD_RRIP_SHIFT) as u8
}

/// Returns `word` with its SRRIP counter replaced.
#[inline]
pub const fn word_with_rrip(word: u64, rrip: u8) -> u64 {
    (word & !WORD_RRIP_MASK) | ((rrip as u64 & 0b11) << WORD_RRIP_SHIFT)
}

/// The embedded reuse counter of a presence word.
#[inline]
pub const fn word_reuse(word: u64) -> u32 {
    ((word >> WORD_REUSE_SHIFT) & WORD_REUSE_MAX) as u32
}

/// Returns `word` with the reuse counter bumped (saturating at
/// [`WORD_REUSE_MAX`], far beyond the top reuse-histogram bucket).
#[inline]
pub const fn word_bump_reuse(word: u64) -> u64 {
    if (word >> WORD_REUSE_SHIFT) & WORD_REUSE_MAX == WORD_REUSE_MAX {
        word
    } else {
        word + (1 << WORD_REUSE_SHIFT)
    }
}

/// The dirty bit of a presence word.
#[inline]
pub const fn word_dirty(word: u64) -> bool {
    (word >> WORD_DIRTY_SHIFT) & 1 != 0
}

/// Returns `word` with the dirty bit set.
#[inline]
pub const fn word_set_dirty(word: u64) -> u64 {
    word | (1 << WORD_DIRTY_SHIFT)
}

/// The prefetched bit of a presence word.
#[inline]
pub const fn word_prefetched(word: u64) -> bool {
    (word >> WORD_PREFETCHED_SHIFT) & 1 != 0
}

/// The tag stored in a presence word.
#[inline]
pub const fn word_tag(word: u64) -> u64 {
    (word & WORD_KEY_MASK) >> WORD_META_BITS
}

/// The block kind stored in a presence word.
#[inline]
pub const fn word_kind(word: u64) -> BlockKind {
    BlockKind::from_code((word >> 1) & 0b11)
}

/// The ASID stored in a presence word.
#[inline]
pub const fn word_asid(word: u64) -> Asid {
    Asid::new(((word >> 4) & 0xfff) as u16)
}

/// The page size stored in a presence word.
#[inline]
pub const fn word_size(word: u64) -> PageSize {
    if (word >> 3) & 1 != 0 {
        PageSize::Size2M
    } else {
        PageSize::Size4K
    }
}

/// One 64-byte cache block's metadata as a self-contained record (the
/// simulator never stores the data payload itself). The hot path keeps
/// this information packed — identity in the presence word, counters in
/// the per-way hot array — and materialises a `CacheBlock` only for
/// evictions, maintenance predicates and inspection.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheBlock {
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit (set by stores and by POM-TLB entry updates).
    pub dirty: bool,
    /// Tag. For data blocks this is derived from the physical block number;
    /// for (nested) TLB blocks from the virtual page group number.
    pub tag: u64,
    /// Data vs. TLB vs. nested-TLB block.
    pub kind: BlockKind,
    /// Address-space identifier, meaningful only for translation blocks.
    pub asid: Asid,
    /// Page size of the 8 translations held, meaningful only for
    /// translation blocks.
    pub page_size: PageSize,
    /// Hits this block has received since it was filled.
    pub reuse: u32,
    /// Whether the block was brought in by a prefetcher.
    pub prefetched: bool,
}

impl CacheBlock {
    /// An invalid block.
    pub const INVALID: CacheBlock = CacheBlock {
        valid: false,
        dirty: false,
        tag: 0,
        kind: BlockKind::Data,
        asid: Asid::KERNEL,
        page_size: PageSize::Size4K,
        reuse: 0,
        prefetched: false,
    };

    /// Whether this block matches a typed lookup.
    #[inline]
    pub fn matches(&self, tag: u64, kind: BlockKind, asid: Asid, size: PageSize) -> bool {
        self.valid
            && self.kind == kind
            && self.tag == tag
            && (kind == BlockKind::Data || (self.asid == asid && self.page_size == size))
    }

    /// Whether this block matches a data lookup.
    #[inline]
    pub fn matches_data(&self, tag: u64) -> bool {
        self.valid && self.kind == BlockKind::Data && self.tag == tag
    }

    /// Resets the block to hold a freshly filled line.
    #[inline]
    pub fn refill(
        &mut self,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        dirty: bool,
        prefetched: bool,
    ) {
        self.valid = true;
        self.dirty = dirty;
        self.tag = tag;
        self.kind = kind;
        self.asid = asid;
        self.page_size = size;
        self.reuse = 0;
        self.prefetched = prefetched;
    }

    /// The presence word this block packs to (RRIP bits zero; the reuse
    /// counter saturates at [`WORD_REUSE_MAX`]).
    #[inline]
    pub fn word(&self) -> u64 {
        if self.valid {
            pack_word_flags(self.tag, self.kind, self.asid, self.page_size, self.dirty, self.prefetched)
                | ((self.reuse as u64).min(WORD_REUSE_MAX) << WORD_REUSE_SHIFT)
        } else {
            INVALID_WORD
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_block_matches_nothing() {
        let b = CacheBlock::INVALID;
        assert!(!b.matches_data(0));
        assert!(!b.matches(0, BlockKind::Data, Asid::KERNEL, PageSize::Size4K));
        assert_eq!(b.word(), INVALID_WORD);
    }

    #[test]
    fn data_match_ignores_asid_and_size() {
        let mut b = CacheBlock::INVALID;
        b.refill(42, BlockKind::Data, Asid::new(5), PageSize::Size2M, false, false);
        assert!(b.matches(42, BlockKind::Data, Asid::new(9), PageSize::Size4K));
        assert!(b.matches_data(42));
        assert!(!b.matches_data(43));
    }

    #[test]
    fn tlb_match_requires_asid_and_size() {
        let mut b = CacheBlock::INVALID;
        b.refill(42, BlockKind::Tlb, Asid::new(5), PageSize::Size4K, false, false);
        assert!(b.matches(42, BlockKind::Tlb, Asid::new(5), PageSize::Size4K));
        assert!(!b.matches(42, BlockKind::Tlb, Asid::new(6), PageSize::Size4K));
        assert!(!b.matches(42, BlockKind::Tlb, Asid::new(5), PageSize::Size2M));
        assert!(!b.matches(42, BlockKind::NestedTlb, Asid::new(5), PageSize::Size4K));
        assert!(!b.matches_data(42), "a TLB block must not satisfy data lookups");
    }

    #[test]
    fn refill_clears_reuse_and_sets_flags() {
        let mut b = CacheBlock::INVALID;
        b.reuse = 7;
        b.refill(1, BlockKind::Data, Asid::KERNEL, PageSize::Size4K, true, true);
        assert_eq!(b.reuse, 0);
        assert!(b.dirty && b.prefetched && b.valid);
    }

    #[test]
    fn translation_kinds() {
        assert!(!BlockKind::Data.is_translation());
        assert!(BlockKind::Tlb.is_translation());
        assert!(BlockKind::NestedTlb.is_translation());
    }

    #[test]
    fn packed_words_are_injective_over_identity() {
        let mut seen = std::collections::HashSet::new();
        for tag in [0u64, 1, 42, 0xffff_ffff] {
            for kind in [BlockKind::Data, BlockKind::Tlb, BlockKind::NestedTlb] {
                for asid in [Asid::KERNEL, Asid::new(1), Asid::new(0xfff)] {
                    for size in PageSize::ALL {
                        assert!(seen.insert(pack_word(tag, kind, asid, size)));
                    }
                }
            }
        }
    }

    #[test]
    fn word_predicates() {
        assert!(!word_is_valid(INVALID_WORD));
        assert!(!word_is_translation(INVALID_WORD));
        let data = pack_data_word(7);
        assert!(word_is_valid(data) && !word_is_translation(data));
        for kind in [BlockKind::Tlb, BlockKind::NestedTlb] {
            let w = pack_word(7, kind, Asid::new(3), PageSize::Size2M);
            assert!(word_is_valid(w) && word_is_translation(w));
        }
    }

    #[test]
    fn word_fields_round_trip() {
        // Largest representable tag: 34 bits.
        let w = pack_word(0x3_ffff_abcd, BlockKind::NestedTlb, Asid::new(0xabc), PageSize::Size2M);
        assert_eq!(word_tag(w), 0x3_ffff_abcd);
        assert_eq!(word_kind(w), BlockKind::NestedTlb);
        assert_eq!(word_asid(w), Asid::new(0xabc));
        assert_eq!(word_size(w), PageSize::Size2M);
        assert!(word_is_valid(w));
    }

    #[test]
    fn rrip_bits_do_not_disturb_identity() {
        let w = pack_word(99, BlockKind::Tlb, Asid::new(7), PageSize::Size4K);
        assert_eq!(word_rrip(w), 0);
        for r in 0..=3u8 {
            let aged = word_with_rrip(w, r);
            assert_eq!(word_rrip(aged), r);
            assert_eq!(aged & WORD_KEY_MASK, w & WORD_KEY_MASK);
            assert_eq!(word_tag(aged), 99);
        }
    }

    #[test]
    fn block_word_round_trips_identity() {
        let mut b = CacheBlock::INVALID;
        b.refill(99, BlockKind::Tlb, Asid::new(7), PageSize::Size2M, false, false);
        assert_eq!(b.word(), pack_word(99, BlockKind::Tlb, Asid::new(7), PageSize::Size2M));
    }
}
