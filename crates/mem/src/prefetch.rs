//! Hardware prefetchers from the paper's Table 3: an IP-stride prefetcher
//! at the L1D [Fu+, MICRO'92] and a stream prefetcher at the L2
//! [Chen & Baer, TC'95].
//!
//! Prefetchers only produce *candidate physical addresses*; the hierarchy
//! decides to fill them (prefetch fills are not charged latency but do
//! displace blocks, which is exactly why underutilised-cache studies such
//! as Fig. 11 see large zero-reuse populations).

use vm_types::{PhysAddr, CACHE_BLOCK_BYTES};

const PAGE_4K: u64 = 4096;

/// Sentinel head block number for an empty stream slot: far beyond any
/// 52-bit physical address's block number, so adjacency checks never
/// match it.
const INVALID_HEAD: u64 = 1 << 62;

/// Per-PC stride detector driving L1D prefetches.
///
/// Prefetches never cross a 4KB page boundary (physical prefetching cannot
/// assume contiguity beyond a page).
#[derive(Clone, Debug)]
pub struct IpStridePrefetcher {
    entries: Vec<StrideEntry>,
    mask: usize,
    /// Prefetch candidates issued.
    pub issued: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

impl IpStridePrefetcher {
    /// Creates a prefetcher with `entries` table slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        Self { entries: vec![StrideEntry::default(); entries], mask: entries - 1, issued: 0 }
    }

    /// Trains on a demand access and possibly returns one prefetch
    /// candidate (the next block in the detected stride, within the page).
    pub fn train(&mut self, pc: u64, pa: PhysAddr) -> Option<PhysAddr> {
        let idx = (vm_types::mix64(pc) as usize) & self.mask;
        let e = &mut self.entries[idx];
        let addr = pa.raw();
        if e.pc_tag != pc {
            *e = StrideEntry { pc_tag: pc, last_addr: addr, stride: 0, confidence: 0 };
            return None;
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        if new_stride == 0 {
            return None;
        }
        if new_stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= 2 {
            let target = addr.wrapping_add(e.stride as u64);
            // Stay within the same 4KB page.
            if target / PAGE_4K == addr / PAGE_4K {
                self.issued += 1;
                return Some(PhysAddr::new(target).block_align());
            }
        }
        None
    }

    /// Number of checkpoint words [`IpStridePrefetcher::save_state`] emits.
    pub fn state_words(&self) -> usize {
        1 + 4 * self.entries.len()
    }

    /// Serialises the training table and issue counter into checkpoint
    /// words.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.issued);
        for e in &self.entries {
            out.push(e.pc_tag);
            out.push(e.last_addr);
            out.push(e.stride as u64);
            out.push(e.confidence as u64);
        }
    }

    /// Restores state captured by [`IpStridePrefetcher::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a message if the word count does not match this table size.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() != self.state_words() {
            return Err(format!(
                "IP-stride prefetcher: checkpoint section has {} words, expected {}",
                words.len(),
                self.state_words()
            ));
        }
        self.issued = words[0];
        for (e, w) in self.entries.iter_mut().zip(words[1..].chunks_exact(4)) {
            *e = StrideEntry { pc_tag: w[0], last_addr: w[1], stride: w[2] as i64, confidence: w[3] as u8 };
        }
        Ok(())
    }
}

impl Default for IpStridePrefetcher {
    fn default() -> Self {
        Self::new(64)
    }
}

/// Stream prefetcher monitoring L2 misses.
///
/// Tracks up to `streams` active streams; when a miss lands adjacent to a
/// tracked stream head, the stream advances and `degree` next blocks are
/// prefetched (within the 4KB page).
///
/// Stream state is kept in packed parallel arrays — the per-miss scan
/// compares one cache line of head block numbers instead of striding
/// through fat per-stream structs.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    /// Head block number per stream (`INVALID_HEAD` = empty slot, far
    /// outside any reachable 46-bit block number so it never matches).
    last_block: Vec<u64>,
    /// Packed direction (+1/-1) and 2-bit confidence per stream.
    meta: Vec<StreamMeta>,
    degree: usize,
    next_victim: usize,
    /// Prefetch candidates issued.
    pub issued: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct StreamMeta {
    /// +1 or -1.
    direction: i8,
    confidence: u8,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher with `streams` trackers issuing
    /// `degree` blocks per advance.
    pub fn new(streams: usize, degree: usize) -> Self {
        Self {
            last_block: vec![INVALID_HEAD; streams],
            meta: vec![StreamMeta::default(); streams],
            degree,
            next_victim: 0,
            issued: 0,
        }
    }

    /// Trains on an L2 demand miss, appending prefetch candidates to the
    /// caller-owned `out` buffer. The buffer is *not* cleared — callers
    /// clear and reuse one scratch `Vec` across misses, keeping the miss
    /// path allocation-free in steady state.
    pub fn train_into(&mut self, pa: PhysAddr, out: &mut Vec<PhysAddr>) {
        let block = pa.raw() / CACHE_BLOCK_BYTES;
        // Find a stream whose head is within 4 blocks of this miss. Only
        // the packed head array is scanned; `INVALID_HEAD` slots sit 2^62
        // blocks away from any real address and can never match.
        let hit = self.last_block.iter().position(|&head| {
            let delta = block as i64 - head as i64;
            delta != 0 && delta.abs() <= 4
        });
        if let Some(s) = hit {
            let delta = block as i64 - self.last_block[s] as i64;
            let dir = delta.signum() as i8;
            let m = &mut self.meta[s];
            if dir == m.direction {
                m.confidence = (m.confidence + 1).min(3);
            } else {
                m.direction = dir;
                m.confidence = 1;
            }
            let confident = m.confidence >= 2;
            let direction = m.direction as i64;
            self.last_block[s] = block;
            if confident {
                for i in 1..=self.degree as i64 {
                    let t = block as i64 + i * direction;
                    if t < 0 {
                        break;
                    }
                    let target = t as u64 * CACHE_BLOCK_BYTES;
                    if target / PAGE_4K == pa.raw() / PAGE_4K {
                        out.push(PhysAddr::new(target));
                        self.issued += 1;
                    }
                }
            }
            return;
        }
        // Allocate a new stream (round-robin victim).
        let victim = self.next_victim;
        self.next_victim = (self.next_victim + 1) % self.last_block.len();
        self.last_block[victim] = block;
        self.meta[victim] = StreamMeta { direction: 1, confidence: 0 };
    }

    /// Number of checkpoint words [`StreamPrefetcher::save_state`] emits.
    pub fn state_words(&self) -> usize {
        2 + 2 * self.last_block.len()
    }

    /// Serialises the stream trackers, round-robin cursor, and issue
    /// counter into checkpoint words.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.issued);
        out.push(self.next_victim as u64);
        for (b, m) in self.last_block.iter().zip(&self.meta) {
            out.push(*b);
            out.push(m.direction as u8 as u64 | (m.confidence as u64) << 8);
        }
    }

    /// Restores state captured by [`StreamPrefetcher::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a message if the word count does not match this tracker
    /// count.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() != self.state_words() {
            return Err(format!(
                "stream prefetcher: checkpoint section has {} words, expected {}",
                words.len(),
                self.state_words()
            ));
        }
        self.issued = words[0];
        self.next_victim = words[1] as usize % self.last_block.len();
        for (i, w) in words[2..].chunks_exact(2).enumerate() {
            self.last_block[i] = w[0];
            self.meta[i] = StreamMeta { direction: w[1] as u8 as i8, confidence: (w[1] >> 8) as u8 };
        }
        Ok(())
    }
}

impl Default for StreamPrefetcher {
    fn default() -> Self {
        Self::new(16, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_stride_detects_constant_stride() {
        let mut p = IpStridePrefetcher::default();
        let pc = 0x400100;
        let mut got = None;
        for i in 0..8u64 {
            got = p.train(pc, PhysAddr::new(0x1000 + i * 64));
        }
        let pf = got.expect("stride should be confirmed after several accesses");
        assert_eq!(pf.raw() % 64, 0);
        assert!(p.issued > 0);
    }

    #[test]
    fn ip_stride_does_not_cross_page() {
        let mut p = IpStridePrefetcher::default();
        let pc = 0x400200;
        // Stride of 1024 starting near the end of a page.
        let mut last = None;
        for i in 0..8u64 {
            last = p.train(pc, PhysAddr::new(0x1800 + i * 1024));
        }
        // The last trained address is 0x1800+7*1024 = 0x3400; +1024 = 0x3800
        // stays in page 3 -> allowed. Check *crossing* explicitly:
        let _ = last;
        let mut p2 = IpStridePrefetcher::default();
        for a in [0xc00u64, 0xd00, 0xe00, 0xf00] {
            last = p2.train(pc, PhysAddr::new(a));
        }
        assert!(last.is_none(), "prefetch from 0xf00 + 0x100 = 0x1000 crosses the page");
    }

    #[test]
    fn ip_stride_retrains_on_pc_conflict() {
        let mut p = IpStridePrefetcher::new(1); // force conflicts
        assert!(p.train(1, PhysAddr::new(0x1000)).is_none());
        assert!(p.train(2, PhysAddr::new(0x8000)).is_none());
        assert!(p.train(1, PhysAddr::new(0x1040)).is_none());
    }

    #[test]
    fn stream_prefetcher_follows_sequential_misses() {
        let mut p = StreamPrefetcher::default();
        let mut candidates = Vec::new();
        for i in 0..6u64 {
            candidates.clear();
            p.train_into(PhysAddr::new(0x10_0000 + i * 64), &mut candidates);
        }
        assert!(!candidates.is_empty(), "confident stream should prefetch");
        assert_eq!(candidates[0].raw(), 0x10_0000 + 6 * 64);
    }

    #[test]
    fn stream_prefetcher_ignores_random_misses() {
        let mut p = StreamPrefetcher::default();
        let mut rng = vm_types::SplitMix64::new(9);
        let mut scratch = Vec::new();
        for _ in 0..64 {
            let pa = PhysAddr::new(rng.next_u64() & 0xfff_ffff & !63);
            p.train_into(pa, &mut scratch);
        }
        assert!(scratch.is_empty(), "random misses should not trigger streams");
    }

    #[test]
    fn stream_prefetcher_respects_page_boundary() {
        let mut p = StreamPrefetcher::default();
        let base = 0x10_0000u64 + 4096 - 3 * 64; // three blocks before page end
        let mut cands = Vec::new();
        for i in 0..6u64 {
            cands.clear();
            p.train_into(PhysAddr::new(base + i * 64), &mut cands);
        }
        for c in cands {
            assert_eq!(c.raw() / 4096, (base + 5 * 64) / 4096);
        }
    }

    #[test]
    fn train_into_appends_without_clearing() {
        // The buffer contract: `train_into` appends and never clears —
        // callers own the clear so one scratch Vec serves every miss.
        let mut p = StreamPrefetcher::default();
        let mut scratch = vec![PhysAddr::new(0xdead_0000)];
        for i in 0..6u64 {
            p.train_into(PhysAddr::new(0x20_0000 + i * 64), &mut scratch);
        }
        assert_eq!(scratch[0].raw(), 0xdead_0000, "pre-existing entries survive");
        assert!(scratch.len() > 1, "confident stream appended candidates");
    }
}
