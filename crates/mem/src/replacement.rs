//! Pluggable cache replacement policies.
//!
//! The baseline system uses LRU in the L1s and SRRIP [Jaleel+, ISCA'10] in
//! the L2/L3 (Table 3). Victima's TLB-aware SRRIP variant (Listing 1) is
//! implemented in the `victima` crate against [`ReplacementPolicy`]; the
//! context it needs — whether address-translation pressure is currently
//! high — travels in [`ReplacementCtx`].

use crate::block::CacheBlock;

/// Maximum re-reference prediction value for 2-bit SRRIP counters.
pub const RRIP_MAX: u8 = 3;
/// Insertion RRPV for SRRIP ("long re-reference interval").
pub const RRIP_INSERT: u8 = 2;

/// Dynamic context a policy may consult when inserting / evicting.
///
/// The paper keys the TLB-aware behaviour on "translation pressure", i.e.
/// the L2 TLB MPKI measured over recent execution exceeding 5 (Listing 1),
/// and bypasses the PTW cost predictor when the L2 *cache* MPKI exceeds 5
/// (Fig. 15). Both signals are epoch-sampled by the `sim` crate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplacementCtx {
    /// L2 TLB misses per kilo-instruction over the last epoch.
    pub l2_tlb_mpki: f64,
    /// L2 cache misses per kilo-instruction over the last epoch.
    pub l2_cache_mpki: f64,
}

impl ReplacementCtx {
    /// The paper's pressure threshold (MPKI > 5) for both signals.
    pub const PRESSURE_THRESHOLD: f64 = 5.0;

    /// Whether address translation pressure is high (Listing 1's
    /// `TLB_MPKI > 5`).
    #[inline]
    pub fn tlb_pressure_high(&self) -> bool {
        self.l2_tlb_mpki > Self::PRESSURE_THRESHOLD
    }

    /// Whether data caching is currently unprofitable (Fig. 15's bypass:
    /// L2 cache MPKI > 5 means data exhibits low locality).
    #[inline]
    pub fn cache_pressure_high(&self) -> bool {
        self.l2_cache_mpki > Self::PRESSURE_THRESHOLD
    }
}

/// A cache replacement policy.
///
/// Policies are stateless per-block (all state lives in [`CacheBlock`]
/// metadata) except for bookkeeping like LRU's global tick, hence the
/// `&mut self` receivers. One policy instance serves one cache.
pub trait ReplacementPolicy: Send {
    /// Called after `set[way]` has been (re)filled.
    fn on_fill(&mut self, set: &mut [CacheBlock], way: usize, ctx: &ReplacementCtx);

    /// Called when `set[way]` hits.
    fn on_hit(&mut self, set: &mut [CacheBlock], way: usize, ctx: &ReplacementCtx);

    /// Chooses a victim way. May mutate replacement metadata (SRRIP ages
    /// the whole set). Invalid ways must be preferred.
    fn choose_victim(&mut self, set: &mut [CacheBlock], ctx: &ReplacementCtx) -> usize;

    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Least-recently-used replacement (used by the L1 caches).
#[derive(Debug, Default)]
pub struct Lru {
    tick: u64,
}

impl Lru {
    /// Creates an LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn touch(&mut self, block: &mut CacheBlock) {
        self.tick += 1;
        block.lru_stamp = self.tick;
    }
}

impl ReplacementPolicy for Lru {
    fn on_fill(&mut self, set: &mut [CacheBlock], way: usize, _ctx: &ReplacementCtx) {
        self.touch(&mut set[way]);
    }

    fn on_hit(&mut self, set: &mut [CacheBlock], way: usize, _ctx: &ReplacementCtx) {
        self.touch(&mut set[way]);
    }

    fn choose_victim(&mut self, set: &mut [CacheBlock], _ctx: &ReplacementCtx) -> usize {
        if let Some(way) = set.iter().position(|b| !b.valid) {
            return way;
        }
        set.iter()
            .enumerate()
            .min_by_key(|(_, b)| b.lru_stamp)
            .map(|(i, _)| i)
            .expect("cache sets are never empty")
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

/// Static re-reference interval prediction (SRRIP-HP) with 2-bit RRPVs.
///
/// Fills insert at a long re-reference interval ([`RRIP_INSERT`]), hits
/// promote by one (the paper's Listing 1 baseline), and victim selection
/// searches for an RRPV of [`RRIP_MAX`], aging the set until one is found.
#[derive(Debug, Default)]
pub struct Srrip;

impl Srrip {
    /// Creates an SRRIP policy.
    pub fn new() -> Self {
        Self
    }

    /// Shared victim scan: returns the first way whose RRPV is RRIP_MAX,
    /// aging the set until one exists. Exposed for the TLB-aware variant in
    /// the `victima` crate.
    pub fn scan_victim(set: &mut [CacheBlock]) -> usize {
        if let Some(way) = set.iter().position(|b| !b.valid) {
            return way;
        }
        loop {
            if let Some(way) = set.iter().position(|b| b.rrip >= RRIP_MAX) {
                return way;
            }
            for b in set.iter_mut() {
                b.rrip = (b.rrip + 1).min(RRIP_MAX);
            }
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_fill(&mut self, set: &mut [CacheBlock], way: usize, _ctx: &ReplacementCtx) {
        set[way].rrip = RRIP_INSERT;
    }

    fn on_hit(&mut self, set: &mut [CacheBlock], way: usize, _ctx: &ReplacementCtx) {
        set[way].rrip = set[way].rrip.saturating_sub(1);
    }

    fn choose_victim(&mut self, set: &mut [CacheBlock], _ctx: &ReplacementCtx) -> usize {
        Self::scan_victim(set)
    }

    fn name(&self) -> &'static str {
        "SRRIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use vm_types::{Asid, PageSize};

    fn valid_set(n: usize) -> Vec<CacheBlock> {
        let mut set = vec![CacheBlock::INVALID; n];
        for (i, b) in set.iter_mut().enumerate() {
            b.refill(i as u64, BlockKind::Data, Asid::KERNEL, PageSize::Size4K, false, false);
        }
        set
    }

    #[test]
    fn lru_prefers_invalid_ways() {
        let mut lru = Lru::new();
        let mut set = valid_set(4);
        set[2].valid = false;
        assert_eq!(lru.choose_victim(&mut set, &ReplacementCtx::default()), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = Lru::new();
        let ctx = ReplacementCtx::default();
        let mut set = valid_set(4);
        for way in [0, 1, 2, 3, 0, 1, 3] {
            lru.on_hit(&mut set, way, &ctx);
        }
        // Way 2 was touched least recently.
        assert_eq!(lru.choose_victim(&mut set, &ctx), 2);
    }

    #[test]
    fn srrip_inserts_long_and_promotes_on_hit() {
        let mut p = Srrip::new();
        let ctx = ReplacementCtx::default();
        let mut set = valid_set(2);
        p.on_fill(&mut set, 0, &ctx);
        assert_eq!(set[0].rrip, RRIP_INSERT);
        p.on_hit(&mut set, 0, &ctx);
        assert_eq!(set[0].rrip, RRIP_INSERT - 1);
    }

    #[test]
    fn srrip_ages_until_victim_found() {
        let mut p = Srrip::new();
        let ctx = ReplacementCtx::default();
        let mut set = valid_set(4);
        for b in set.iter_mut() {
            b.rrip = 0;
        }
        set[1].rrip = 2;
        let victim = p.choose_victim(&mut set, &ctx);
        assert_eq!(victim, 1, "the block closest to RRIP_MAX is aged there first");
        // Everyone has been aged by the same amount.
        assert!(set.iter().all(|b| b.rrip >= 1));
    }

    #[test]
    fn ctx_thresholds_follow_paper() {
        let ctx = ReplacementCtx { l2_tlb_mpki: 5.1, l2_cache_mpki: 4.9 };
        assert!(ctx.tlb_pressure_high());
        assert!(!ctx.cache_pressure_high());
        let ctx = ReplacementCtx { l2_tlb_mpki: 5.0, l2_cache_mpki: 5.0 };
        assert!(!ctx.tlb_pressure_high(), "threshold is strictly greater-than");
    }
}
