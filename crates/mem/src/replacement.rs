//! Cache replacement policies, statically dispatched.
//!
//! The baseline system uses LRU in the L1s and SRRIP [Jaleel+, ISCA'10] in
//! the L2/L3 (Table 3); Victima's TLB-aware SRRIP variant (Listing 1 of
//! the paper) is the third [`Policy`] variant. Policies are an `enum`
//! rather than a trait object so the per-access hot path pays a jump
//! table, not a vtable load, and so the compiler can inline the match
//! arms into [`crate::Cache`]'s scan loops.
//!
//! Replacement state never lives in fat per-block structs: the 2-bit
//! SRRIP counters are embedded in the packed presence words the lookup
//! already scanned (see [`crate::block`]), and LRU stamps sit in a packed
//! `Vec<u64>`. Victim selection therefore mutates the cache lines the
//! probe just loaded instead of re-walking cold struct fields, and the
//! SRRIP aging loop is folded into a closed form (one max-scan, one
//! add-pass) rather than repeated rescans.
//!
//! The dynamic context a policy may consult — whether address-translation
//! pressure is currently high — travels in [`ReplacementCtx`].

use crate::block::{word_is_translation, word_is_valid, word_rrip, word_with_rrip};

/// Maximum re-reference prediction value for 2-bit SRRIP counters.
pub const RRIP_MAX: u8 = 3;
/// Insertion RRPV for SRRIP ("long re-reference interval").
pub const RRIP_INSERT: u8 = 2;

/// Dynamic context a policy may consult when inserting / evicting.
///
/// The paper keys the TLB-aware behaviour on "translation pressure", i.e.
/// the L2 TLB MPKI measured over recent execution exceeding 5 (Listing 1),
/// and bypasses the PTW cost predictor when the L2 *cache* MPKI exceeds 5
/// (Fig. 15). Both signals are epoch-sampled by the `sim` crate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplacementCtx {
    /// L2 TLB misses per kilo-instruction over the last epoch.
    pub l2_tlb_mpki: f64,
    /// L2 cache misses per kilo-instruction over the last epoch.
    pub l2_cache_mpki: f64,
}

impl ReplacementCtx {
    /// The paper's pressure threshold (MPKI > 5) for both signals.
    pub const PRESSURE_THRESHOLD: f64 = 5.0;

    /// Whether address translation pressure is high (Listing 1's
    /// `TLB_MPKI > 5`).
    #[inline]
    pub fn tlb_pressure_high(&self) -> bool {
        self.l2_tlb_mpki > Self::PRESSURE_THRESHOLD
    }

    /// Whether data caching is currently unprofitable (Fig. 15's bypass:
    /// L2 cache MPKI > 5 means data exhibits low locality).
    #[inline]
    pub fn cache_pressure_high(&self) -> bool {
        self.l2_cache_mpki > Self::PRESSURE_THRESHOLD
    }
}

/// One set's replacement view: the packed presence words (identity +
/// embedded SRRIP counters) and the packed LRU stamps.
#[derive(Debug)]
pub struct ReplSet<'a> {
    /// Packed presence words, one per way (see [`crate::block`]). Policies
    /// read validity/kind and mutate the embedded RRIP bits; they never
    /// touch the identity bits.
    pub words: &'a mut [u64],
    /// LRU stamps, one per way.
    pub lru: &'a mut [u64],
}

/// A statically dispatched cache replacement policy. One value serves one
/// cache; the only policy-global state is LRU's monotonic tick.
#[derive(Clone, Debug)]
pub enum Policy {
    /// Least-recently-used (the L1 caches).
    Lru {
        /// Monotonic touch tick; the way with the smallest stamp loses.
        tick: u64,
    },
    /// Static re-reference interval prediction (SRRIP-HP) with 2-bit
    /// RRPVs: fills insert at [`RRIP_INSERT`], hits promote by one, and
    /// victim selection searches for [`RRIP_MAX`], aging the set until
    /// one is found.
    Srrip,
    /// Victima's TLB-aware SRRIP (Listing 1). Three deviations from
    /// baseline SRRIP, all gated on high translation pressure:
    /// TLB blocks insert at RRPV 0, a hit on one promotes by 3, and a
    /// TLB-block victim triggers one retry for a non-TLB alternative.
    TlbAwareSrrip,
}

impl Policy {
    /// Creates the LRU policy.
    pub fn lru() -> Self {
        Policy::Lru { tick: 0 }
    }

    /// Creates the SRRIP policy.
    pub fn srrip() -> Self {
        Policy::Srrip
    }

    /// Creates Victima's TLB-aware SRRIP policy.
    pub fn tlb_aware_srrip() -> Self {
        Policy::TlbAwareSrrip
    }

    /// Human-readable policy name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Lru { .. } => "LRU",
            Policy::Srrip => "SRRIP",
            Policy::TlbAwareSrrip => "TLB-aware-SRRIP",
        }
    }

    /// Called after `way` has been (re)filled.
    #[inline]
    pub fn on_fill(&mut self, set: &mut ReplSet<'_>, way: usize, ctx: &ReplacementCtx) {
        match self {
            Policy::Lru { tick } => {
                *tick += 1;
                set.lru[way] = *tick;
            }
            Policy::Srrip => set.words[way] = word_with_rrip(set.words[way], RRIP_INSERT),
            Policy::TlbAwareSrrip => {
                let w = set.words[way];
                let rrip = if word_is_translation(w) && ctx.tlb_pressure_high() { 0 } else { RRIP_INSERT };
                set.words[way] = word_with_rrip(w, rrip);
            }
        }
    }

    /// Called when `way` hits.
    #[inline]
    pub fn on_hit(&mut self, set: &mut ReplSet<'_>, way: usize, ctx: &ReplacementCtx) {
        match self {
            Policy::Lru { tick } => {
                *tick += 1;
                set.lru[way] = *tick;
            }
            Policy::Srrip => {
                let w = set.words[way];
                set.words[way] = word_with_rrip(w, word_rrip(w).saturating_sub(1));
            }
            Policy::TlbAwareSrrip => {
                let w = set.words[way];
                let promote = if word_is_translation(w) && ctx.tlb_pressure_high() { 3 } else { 1 };
                set.words[way] = word_with_rrip(w, word_rrip(w).saturating_sub(promote));
            }
        }
    }

    /// Chooses a victim way. May mutate replacement metadata (the SRRIP
    /// family ages the whole set). Invalid ways are preferred.
    #[inline]
    pub fn choose_victim(&mut self, set: &mut ReplSet<'_>, ctx: &ReplacementCtx) -> usize {
        match self {
            Policy::Lru { .. } => {
                if let Some(way) = set.words.iter().position(|&w| !word_is_valid(w)) {
                    return way;
                }
                let mut best = 0;
                for (way, &stamp) in set.lru.iter().enumerate() {
                    if stamp < set.lru[best] {
                        best = way;
                    }
                }
                best
            }
            Policy::Srrip => scan_victim(set),
            Policy::TlbAwareSrrip => {
                let way = scan_victim(set);
                if word_is_translation(set.words[way]) && ctx.tlb_pressure_high() {
                    // One more attempt (Listing 1 line 23): prefer any
                    // non-TLB block that has also aged to RRIP_MAX. If none
                    // exists, the TLB block is evicted (and dropped, not
                    // written back).
                    let alt = set.words.iter().position(|&w| {
                        word_is_valid(w) && !word_is_translation(w) && word_rrip(w) >= RRIP_MAX
                    });
                    if let Some(alt) = alt {
                        return alt;
                    }
                }
                way
            }
        }
    }
}

/// Shared SRRIP victim scan: the first invalid way, else the first way
/// whose RRPV is [`RRIP_MAX`], aging the whole set until one exists. The
/// iterate-and-age loop is folded into a closed form — age everyone by
/// `RRIP_MAX - max(rrip)` in one pass; the first way that *was* at the
/// maximum is exactly the way the stepwise loop would have found.
#[inline]
fn scan_victim(set: &mut ReplSet<'_>) -> usize {
    if let Some(way) = set.words.iter().position(|&w| !word_is_valid(w)) {
        return way;
    }
    let max = set.words.iter().map(|&w| word_rrip(w)).max().expect("cache sets are never empty");
    let victim = set.words.iter().position(|&w| word_rrip(w) >= max).expect("max exists");
    if max < RRIP_MAX {
        // All ways age together until the closest one reaches RRIP_MAX.
        // No saturation is needed: every counter is ≤ max, so counter +
        // (RRIP_MAX - max) ≤ RRIP_MAX.
        let age = RRIP_MAX - max;
        for w in set.words.iter_mut() {
            *w = word_with_rrip(*w, word_rrip(*w) + age);
        }
    }
    victim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{pack_word, BlockKind, INVALID_WORD};
    use vm_types::{Asid, PageSize};

    const PRESSURE: ReplacementCtx = ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 0.0 };
    const CALM: ReplacementCtx = ReplacementCtx { l2_tlb_mpki: 0.0, l2_cache_mpki: 0.0 };

    /// A free-standing set for driving policies directly in tests.
    struct TestSet {
        words: Vec<u64>,
        lru: Vec<u64>,
    }

    impl TestSet {
        fn new(kinds: &[BlockKind]) -> Self {
            Self {
                words: kinds
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| pack_word(i as u64, k, Asid::new(1), PageSize::Size4K))
                    .collect(),
                lru: vec![0; kinds.len()],
            }
        }

        fn view(&mut self) -> ReplSet<'_> {
            ReplSet { words: &mut self.words, lru: &mut self.lru }
        }

        fn rrip(&self, way: usize) -> u8 {
            word_rrip(self.words[way])
        }

        fn set_rrip(&mut self, way: usize, r: u8) {
            self.words[way] = word_with_rrip(self.words[way], r);
        }
    }

    #[test]
    fn lru_prefers_invalid_ways() {
        let mut lru = Policy::lru();
        let mut set = TestSet::new(&[BlockKind::Data; 4]);
        set.words[2] = INVALID_WORD;
        assert_eq!(lru.choose_victim(&mut set.view(), &CALM), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut lru = Policy::lru();
        let mut set = TestSet::new(&[BlockKind::Data; 4]);
        for way in [0, 1, 2, 3, 0, 1, 3] {
            lru.on_hit(&mut set.view(), way, &CALM);
        }
        // Way 2 was touched least recently.
        assert_eq!(lru.choose_victim(&mut set.view(), &CALM), 2);
    }

    #[test]
    fn srrip_inserts_long_and_promotes_on_hit() {
        let mut p = Policy::srrip();
        let mut set = TestSet::new(&[BlockKind::Data; 2]);
        p.on_fill(&mut set.view(), 0, &CALM);
        assert_eq!(set.rrip(0), RRIP_INSERT);
        p.on_hit(&mut set.view(), 0, &CALM);
        assert_eq!(set.rrip(0), RRIP_INSERT - 1);
    }

    #[test]
    fn srrip_ages_until_victim_found() {
        let mut p = Policy::srrip();
        let mut set = TestSet::new(&[BlockKind::Data; 4]);
        set.set_rrip(1, 2);
        let victim = p.choose_victim(&mut set.view(), &CALM);
        assert_eq!(victim, 1, "the block closest to RRIP_MAX is aged there first");
        // Everyone has been aged by the same amount.
        assert!((0..4).all(|w| set.rrip(w) >= 1));
    }

    #[test]
    fn closed_form_aging_matches_stepwise_semantics() {
        // rrip = [1, 0, 2, 1]: the stepwise loop ages once (→ [2,1,3,2])
        // then picks way 2; everyone's counter must read exactly that.
        let mut p = Policy::srrip();
        let mut set = TestSet::new(&[BlockKind::Data; 4]);
        for (way, r) in [1u8, 0, 2, 1].into_iter().enumerate() {
            set.set_rrip(way, r);
        }
        assert_eq!(p.choose_victim(&mut set.view(), &CALM), 2);
        assert_eq!((0..4).map(|w| set.rrip(w)).collect::<Vec<_>>(), vec![2, 1, 3, 2]);
        // A way already at RRIP_MAX means no aging at all.
        let mut set = TestSet::new(&[BlockKind::Data; 3]);
        for (way, r) in [0u8, 3, 3].into_iter().enumerate() {
            set.set_rrip(way, r);
        }
        assert_eq!(p.choose_victim(&mut set.view(), &CALM), 1, "first way at the max wins");
        assert_eq!(set.rrip(0), 0, "no aging when a victim already exists");
    }

    #[test]
    fn tlb_fill_under_pressure_gets_rrpv_zero() {
        let mut p = Policy::tlb_aware_srrip();
        let mut set = TestSet::new(&[BlockKind::Tlb, BlockKind::Data]);
        set.set_rrip(0, 3);
        set.set_rrip(1, 3);
        p.on_fill(&mut set.view(), 0, &PRESSURE);
        p.on_fill(&mut set.view(), 1, &PRESSURE);
        assert_eq!(set.rrip(0), 0);
        assert_eq!(set.rrip(1), RRIP_INSERT);
    }

    #[test]
    fn tlb_fill_without_pressure_is_ordinary() {
        let mut p = Policy::tlb_aware_srrip();
        let mut set = TestSet::new(&[BlockKind::Tlb]);
        p.on_fill(&mut set.view(), 0, &CALM);
        assert_eq!(set.rrip(0), RRIP_INSERT);
    }

    #[test]
    fn tlb_hit_promotes_by_three() {
        let mut p = Policy::tlb_aware_srrip();
        let mut set = TestSet::new(&[BlockKind::Tlb, BlockKind::Data]);
        set.set_rrip(0, 3);
        set.set_rrip(1, 3);
        p.on_hit(&mut set.view(), 0, &PRESSURE);
        p.on_hit(&mut set.view(), 1, &PRESSURE);
        assert_eq!(set.rrip(0), 0, "TLB promotion is -3");
        assert_eq!(set.rrip(1), 2, "data promotion is -1");
    }

    #[test]
    fn victim_diverts_away_from_tlb_blocks_under_pressure() {
        let mut p = Policy::tlb_aware_srrip();
        let mut set = TestSet::new(&[BlockKind::Tlb, BlockKind::Data]);
        set.set_rrip(0, RRIP_MAX);
        set.set_rrip(1, RRIP_MAX);
        // The scan finds way 0 (the TLB block) first; the second attempt
        // must divert to the data block.
        assert_eq!(p.choose_victim(&mut set.view(), &PRESSURE), 1);
        // Without pressure the TLB block is fair game.
        set.set_rrip(0, RRIP_MAX);
        set.set_rrip(1, RRIP_MAX);
        assert_eq!(p.choose_victim(&mut set.view(), &CALM), 0);
    }

    #[test]
    fn tlb_block_still_evictable_when_no_alternative() {
        let mut p = Policy::tlb_aware_srrip();
        let mut set = TestSet::new(&[BlockKind::Tlb, BlockKind::Tlb]);
        set.set_rrip(0, RRIP_MAX);
        set.set_rrip(1, 1);
        assert_eq!(p.choose_victim(&mut set.view(), &PRESSURE), 0, "all-TLB set must still yield a victim");
    }

    #[test]
    fn nested_tlb_blocks_get_the_same_treatment() {
        let mut p = Policy::tlb_aware_srrip();
        let mut set = TestSet::new(&[BlockKind::NestedTlb]);
        set.set_rrip(0, 3);
        p.on_fill(&mut set.view(), 0, &PRESSURE);
        assert_eq!(set.rrip(0), 0);
    }

    #[test]
    fn invalid_ways_win_immediately() {
        let mut p = Policy::tlb_aware_srrip();
        let mut set = TestSet::new(&[BlockKind::Data, BlockKind::Data]);
        set.words[1] = INVALID_WORD;
        assert_eq!(p.choose_victim(&mut set.view(), &PRESSURE), 1);
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::lru().name(), "LRU");
        assert_eq!(Policy::srrip().name(), "SRRIP");
        assert_eq!(Policy::tlb_aware_srrip().name(), "TLB-aware-SRRIP");
    }

    #[test]
    fn ctx_thresholds_follow_paper() {
        let ctx = ReplacementCtx { l2_tlb_mpki: 5.1, l2_cache_mpki: 4.9 };
        assert!(ctx.tlb_pressure_high());
        assert!(!ctx.cache_pressure_high());
        let ctx = ReplacementCtx { l2_tlb_mpki: 5.0, l2_cache_mpki: 5.0 };
        assert!(!ctx.tlb_pressure_high(), "threshold is strictly greater-than");
    }
}
