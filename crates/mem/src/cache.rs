//! Set-associative cache with typed blocks.
//!
//! Data blocks are indexed by physical block number. Victima's TLB blocks
//! live in the same data store but are indexed by a *virtual* set/tag pair
//! computed by the `victima` crate (Fig. 13 of the paper shows how the same
//! address maps to different sets as a data vs. TLB block); the typed
//! lookup/fill/invalidate entry points here take the precomputed set and
//! tag so this crate stays mechanism-agnostic.
//!
//! # Hot-path layout
//!
//! The per-access path scans one *packed tag array*; fat [`CacheBlock`]
//! records are materialised only for evictions and inspection:
//!
//! - `words` — one presence word per way ([`crate::block::pack_word`]):
//!   valid + kind + page size + ASID + tag + dirty/prefetched + reuse +
//!   the 2-bit SRRIP counter in a single `u64`. A lookup is one masked
//!   compare per way over contiguous memory, and hits, fills, victim
//!   aging and evictions mutate the same cache lines the scan loaded.
//! - `lru` — packed LRU stamps, allocated only for LRU (L1) caches.
//!
//! A 16-way set is exactly two cache lines versus ~1 KB of block structs
//! in a naive layout; a simulated 2 MB cache's whole state is 256 KB and
//! lives comfortably in the host's cache hierarchy.

use crate::block::{
    pack_data_word, pack_word, pack_word_flags, word_asid, word_bump_reuse, word_dirty, word_is_translation,
    word_is_valid, word_kind, word_prefetched, word_reuse, word_set_dirty, word_size, word_tag, BlockKind,
    CacheBlock, INVALID_WORD, WORD_KEY_MASK,
};
use crate::replacement::{Policy, ReplSet, ReplacementCtx};
use vm_types::{Asid, Cycles, PageSize, PhysAddr, ReuseHistogram};

/// Geometry and latency of one cache.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Human-readable name, e.g. "L2".
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes (64 throughout the paper).
    pub block_bytes: u64,
    /// Access latency in cycles when this cache hits.
    pub latency: Cycles,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or not a power of two.
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0 && self.block_bytes > 0 && self.size_bytes > 0);
        let sets = (self.size_bytes / self.block_bytes) as usize / self.ways;
        assert!(sets > 0, "{}: capacity too small for geometry", self.name);
        assert!(sets.is_power_of_two(), "{}: set count must be a power of two", self.name);
        sets
    }
}

/// Statistics for one cache.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Demand lookups that hit (any kind).
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Lines filled (demand).
    pub fills: u64,
    /// Lines filled by prefetchers.
    pub prefetch_fills: u64,
    /// Valid lines evicted.
    pub evictions: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Reuse at eviction for data blocks (Fig. 11).
    pub data_reuse: ReuseHistogram,
    /// Reuse at eviction for TLB blocks (Fig. 24).
    pub tlb_reuse: ReuseHistogram,
    /// Typed (TLB-block) probes that hit.
    pub tlb_probe_hits: u64,
    /// Typed (TLB-block) probes that missed.
    pub tlb_probe_misses: u64,
    /// TLB blocks evicted to make room for other lines.
    pub tlb_block_evictions: u64,
}

impl CacheStats {
    /// Demand accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Demand miss ratio (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// A block displaced by a fill, reported to the caller so upper layers can
/// track writebacks or react to TLB-block eviction (Victima drops them).
#[derive(Clone, Copy, Debug)]
pub struct EvictedBlock {
    /// Metadata of the evicted line.
    pub block: CacheBlock,
}

/// A set-associative, typed-block cache over packed tag arrays.
pub struct Cache {
    cfg: CacheConfig,
    num_sets: usize,
    set_mask: u64,
    /// log2(block_bytes): set/tag math is pure shifts, no division.
    block_shift: u32,
    /// log2(block_bytes * num_sets): the tag's right-shift distance.
    tag_shift: u32,
    /// Packed presence words, one per way: the only per-access array.
    words: Vec<u64>,
    /// Packed per-way LRU stamps; allocated only for [`Policy::Lru`]
    /// caches (the SRRIP family never reads them, and the empty `Vec`
    /// keeps a big L2/L3's footprint out of the host's caches).
    lru: Vec<u64>,
    policy: Policy,
    /// Count of valid TLB/NestedTlb blocks (translation-reach sampling).
    translation_blocks: usize,
    /// Statistics.
    pub stats: CacheStats,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("name", &self.cfg.name)
            .field("size_bytes", &self.cfg.size_bytes)
            .field("ways", &self.cfg.ways)
            .field("sets", &self.num_sets)
            .field("policy", &self.policy.name())
            .field("translation_blocks", &self.translation_blocks)
            .finish()
    }
}

impl Cache {
    /// Creates a cache with the given geometry and replacement policy.
    pub fn new(cfg: CacheConfig, policy: Policy) -> Self {
        let num_sets = cfg.num_sets();
        assert!(cfg.block_bytes.is_power_of_two(), "{}: block size must be a power of two", cfg.name);
        let n = num_sets * cfg.ways;
        let block_shift = cfg.block_bytes.trailing_zeros();
        Self {
            set_mask: num_sets as u64 - 1,
            block_shift,
            tag_shift: block_shift + num_sets.trailing_zeros(),
            words: vec![INVALID_WORD; n],
            lru: if matches!(policy, Policy::Lru { .. }) { vec![0; n] } else { Vec::new() },
            num_sets,
            cfg,
            policy,
            translation_blocks: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency.
    #[inline]
    pub fn latency(&self) -> Cycles {
        self.cfg.latency
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.cfg.ways
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.words.len()
    }

    /// Number of valid translation (TLB + nested TLB) blocks currently held.
    #[inline]
    pub fn translation_block_count(&self) -> usize {
        self.translation_blocks
    }

    /// Replacement policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Set index for a physical (data) address.
    #[inline]
    pub fn data_set_index(&self, pa: PhysAddr) -> usize {
        ((pa.raw() >> self.block_shift) & self.set_mask) as usize
    }

    /// Tag for a physical (data) address.
    #[inline]
    pub fn data_tag(&self, pa: PhysAddr) -> u64 {
        pa.raw() >> self.tag_shift
    }

    /// Scans one set's presence words for the identity `key` (counter and
    /// flag bits masked out); returns the way.
    #[inline]
    fn find(&self, start: usize, key: u64) -> Option<usize> {
        self.words[start..start + self.cfg.ways].iter().position(|&w| w & WORD_KEY_MASK == key)
    }

    /// Materialises the reporting record for way `i`.
    #[inline]
    fn block_at(&self, i: usize) -> CacheBlock {
        let w = self.words[i];
        if !word_is_valid(w) {
            return CacheBlock::INVALID;
        }
        CacheBlock {
            valid: true,
            dirty: word_dirty(w),
            tag: word_tag(w),
            kind: word_kind(w),
            asid: word_asid(w),
            page_size: word_size(w),
            reuse: word_reuse(w),
            prefetched: word_prefetched(w),
        }
    }

    /// Splits out one set's replacement view alongside the policy (the
    /// borrows are disjoint fields, which the compiler can only see inside
    /// a single function body).
    #[inline]
    fn set_repl(&mut self, start: usize) -> (ReplSet<'_>, &mut Policy) {
        let end = start + self.cfg.ways;
        // The LRU stamp array is empty for SRRIP-family caches; hand those
        // policies an empty window (they never index it).
        let lru_range = if self.lru.is_empty() { 0..0 } else { start..end };
        (ReplSet { words: &mut self.words[start..end], lru: &mut self.lru[lru_range] }, &mut self.policy)
    }

    /// Demand data access. Returns `true` on hit and updates replacement /
    /// reuse state; on a miss the caller is expected to fetch the line from
    /// the next level and call [`Cache::fill_data`].
    pub fn access_data(&mut self, pa: PhysAddr, write: bool, ctx: &ReplacementCtx) -> bool {
        let start = self.data_set_index(pa) * self.cfg.ways;
        match self.find(start, pack_data_word(self.data_tag(pa))) {
            Some(w) => {
                self.stats.hits += 1;
                let word = &mut self.words[start + w];
                *word = word_bump_reuse(*word);
                if write {
                    *word = word_set_dirty(*word);
                }
                let (mut set, policy) = self.set_repl(start);
                policy.on_hit(&mut set, w, ctx);
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Non-destructive data probe: no stats, no replacement update.
    pub fn contains_data(&self, pa: PhysAddr) -> bool {
        let start = self.data_set_index(pa) * self.cfg.ways;
        self.find(start, pack_data_word(self.data_tag(pa))).is_some()
    }

    /// Fills a data line after a miss. Returns the displaced block, if any
    /// valid line had to be evicted.
    pub fn fill_data(
        &mut self,
        pa: PhysAddr,
        dirty: bool,
        prefetched: bool,
        ctx: &ReplacementCtx,
    ) -> Option<EvictedBlock> {
        let set = self.data_set_index(pa);
        let tag = self.data_tag(pa);
        self.fill_at(set, tag, BlockKind::Data, Asid::KERNEL, PageSize::Size4K, dirty, prefetched, ctx)
    }

    /// Typed probe used by Victima: looks up a translation block by
    /// precomputed set/tag plus ASID and page size. Counts toward the TLB
    /// probe statistics and updates replacement state on hit.
    pub fn probe_translation(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        ctx: &ReplacementCtx,
    ) -> bool {
        debug_assert!(kind.is_translation());
        let start = set * self.cfg.ways;
        match self.find(start, pack_word(tag, kind, asid, size)) {
            Some(w) => {
                self.stats.tlb_probe_hits += 1;
                let word = &mut self.words[start + w];
                *word = word_bump_reuse(*word);
                let (mut set, policy) = self.set_repl(start);
                policy.on_hit(&mut set, w, ctx);
                true
            }
            None => {
                self.stats.tlb_probe_misses += 1;
                false
            }
        }
    }

    /// Non-destructive typed probe.
    pub fn contains_translation(
        &self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
    ) -> bool {
        self.find(set * self.cfg.ways, pack_word(tag, kind, asid, size)).is_some()
    }

    /// Inserts a translation block at the given (virtually indexed) set.
    /// Returns the displaced block, if any.
    pub fn fill_translation(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        ctx: &ReplacementCtx,
    ) -> Option<EvictedBlock> {
        debug_assert!(kind.is_translation());
        self.fill_at(set, tag, kind, asid, size, false, false, ctx)
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_at(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        dirty: bool,
        prefetched: bool,
        ctx: &ReplacementCtx,
    ) -> Option<EvictedBlock> {
        // Hard bound check on the (rare) fill path: an overflowing tag
        // must never be stored, or it would alias another block's key
        // (lookups with overflowing tags simply miss).
        assert!(tag < 1 << crate::block::WORD_TAG_BITS, "{}: tag overflows the presence word", self.cfg.name);
        let start = set * self.cfg.ways;
        let victim_way = {
            let (mut set, policy) = self.set_repl(start);
            policy.choose_victim(&mut set, ctx)
        };
        let victim = start + victim_way;
        let evicted = word_is_valid(self.words[victim]).then(|| {
            let block = self.block_at(victim);
            self.account_eviction(&block);
            EvictedBlock { block }
        });
        self.words[victim] = pack_word_flags(tag, kind, asid, size, dirty, prefetched);
        if kind.is_translation() {
            self.translation_blocks += 1;
        }
        if prefetched {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.fills += 1;
        }
        let (mut set, policy) = self.set_repl(start);
        policy.on_fill(&mut set, victim_way, ctx);
        evicted
    }

    fn account_eviction(&mut self, block: &CacheBlock) {
        self.stats.evictions += 1;
        if block.dirty {
            self.stats.writebacks += 1;
        }
        match block.kind {
            BlockKind::Data => self.stats.data_reuse.record(block.reuse as u64),
            BlockKind::Tlb | BlockKind::NestedTlb => {
                self.stats.tlb_reuse.record(block.reuse as u64);
                self.stats.tlb_block_evictions += 1;
                self.translation_blocks = self.translation_blocks.saturating_sub(1);
            }
        }
    }

    /// Invalidates the data block holding `pa`, if present. Returns whether
    /// a block was invalidated. Used by Victima's block transformation: the
    /// PTE cluster's data copy is re-tagged as a TLB block.
    pub fn invalidate_data(&mut self, pa: PhysAddr) -> bool {
        let start = self.data_set_index(pa) * self.cfg.ways;
        match self.find(start, pack_data_word(self.data_tag(pa))) {
            Some(w) => {
                self.words[start + w] = INVALID_WORD;
                true
            }
            None => false,
        }
    }

    /// Invalidates one translation block identified by its exact location
    /// key (single-entry shootdown, Sec. 6.2(i): invalidating one TLB entry
    /// drops the whole 8-entry block). Returns whether a block was dropped.
    pub fn invalidate_translation_at(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
    ) -> bool {
        let start = set * self.cfg.ways;
        match self.find(start, pack_word(tag, kind, asid, size)) {
            Some(w) => {
                self.words[start + w] = INVALID_WORD;
                self.translation_blocks = self.translation_blocks.saturating_sub(1);
                true
            }
            None => false,
        }
    }

    /// Invalidates every translation block matching `pred`, returning how
    /// many were dropped. Implements the paper's Sec. 6 maintenance
    /// operations (full flush, per-ASID flush, per-VA shootdown).
    pub fn invalidate_translation_blocks<F>(&mut self, mut pred: F) -> usize
    where
        F: FnMut(&CacheBlock) -> bool,
    {
        let mut dropped = 0;
        for i in 0..self.words.len() {
            if word_is_translation(self.words[i]) && pred(&self.block_at(i)) {
                self.words[i] = INVALID_WORD;
                dropped += 1;
            }
        }
        self.translation_blocks = self.translation_blocks.saturating_sub(dropped);
        dropped
    }

    /// Iterates over all valid blocks (materialised records), for
    /// inspection in tests and reach sampling.
    pub fn iter_valid(&self) -> impl Iterator<Item = CacheBlock> + '_ {
        (0..self.words.len()).filter(|&i| word_is_valid(self.words[i])).map(|i| self.block_at(i))
    }

    /// Clears all contents and statistics (used between warm-up and
    /// measurement only for stats; contents are kept warm).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of checkpoint words [`Cache::save_state`] emits for this
    /// geometry: one policy word plus the packed presence and LRU arrays.
    pub fn state_words(&self) -> usize {
        1 + self.words.len() + self.lru.len()
    }

    /// Serialises the cache's contents into checkpoint words: the
    /// replacement policy's global tick (0 for the stateless SRRIP
    /// family), the packed presence words, and the LRU stamp array (empty
    /// for SRRIP caches — their RRPV state lives in the presence words).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(match &self.policy {
            Policy::Lru { tick } => *tick,
            _ => 0,
        });
        out.extend_from_slice(&self.words);
        out.extend_from_slice(&self.lru);
    }

    /// Restores state captured by [`Cache::save_state`] into a cache of
    /// identical geometry and policy, recomputing the translation-block
    /// count from the restored presence words.
    ///
    /// # Errors
    ///
    /// Returns a message if the word count does not match this geometry.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() != self.state_words() {
            return Err(format!(
                "{}: checkpoint section has {} words, geometry needs {}",
                self.cfg.name,
                words.len(),
                self.state_words()
            ));
        }
        if let Policy::Lru { tick } = &mut self.policy {
            *tick = words[0];
        }
        let n = self.words.len();
        self.words.copy_from_slice(&words[1..1 + n]);
        self.lru.copy_from_slice(&words[1 + n..]);
        self.translation_blocks = self.words.iter().filter(|&&w| word_is_translation(w)).count();
        Ok(())
    }

    /// Consistency check (tests): the translation-block counter must
    /// match the packed population.
    pub fn assert_packed_consistency(&self) {
        let translations = self.words.iter().filter(|&&w| word_is_translation(w)).count();
        assert_eq!(translations, self.translation_blocks, "translation block count diverged");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(
            CacheConfig { name: "T", size_bytes: 4096, ways: 4, block_bytes: 64, latency: 10 },
            Policy::lru(),
        )
    }

    #[test]
    fn geometry() {
        let c = small_cache();
        assert_eq!(c.num_sets(), 16);
        assert_eq!(c.num_blocks(), 64);
        assert_eq!(c.latency(), 10);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x1040);
        assert!(!c.access_data(pa, false, &ctx));
        assert!(c.fill_data(pa, false, false, &ctx).is_none());
        assert!(c.access_data(pa, false, &ctx));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert!(c.contains_data(pa));
        c.assert_packed_consistency();
    }

    #[test]
    fn same_block_different_offset_hits() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_data(PhysAddr::new(0x1040), false, false, &ctx);
        assert!(c.access_data(PhysAddr::new(0x107f), false, &ctx));
        assert!(!c.access_data(PhysAddr::new(0x1080), false, &ctx));
    }

    #[test]
    fn eviction_reports_displaced_block_and_reuse() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        // Fill one set (set 0) beyond capacity: addresses with identical
        // set index, different tags. Set stride = 16 sets * 64B = 1024B.
        for i in 0..4u64 {
            c.fill_data(PhysAddr::new(i * 1024), false, false, &ctx);
        }
        // Hit way 0 twice so its reuse counter is 2.
        assert!(c.access_data(PhysAddr::new(0), false, &ctx));
        assert!(c.access_data(PhysAddr::new(8), false, &ctx));
        let evicted = c.fill_data(PhysAddr::new(4 * 1024), false, false, &ctx);
        assert!(evicted.is_some());
        assert_eq!(c.stats.evictions, 1);
        // One data block was recorded in the reuse histogram.
        assert_eq!(c.stats.data_reuse.total(), 1);
        c.assert_packed_consistency();
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_data(PhysAddr::new(0), true, false, &ctx);
        for i in 1..=4u64 {
            c.fill_data(PhysAddr::new(i * 1024), false, false, &ctx);
        }
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn translation_blocks_tracked_and_probed() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let asid = Asid::new(3);
        assert!(!c.probe_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size4K, &ctx));
        c.fill_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size4K, &ctx);
        assert_eq!(c.translation_block_count(), 1);
        assert!(c.probe_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size4K, &ctx));
        // Wrong ASID, page size, or kind must miss.
        assert!(!c.probe_translation(5, 0xaa, BlockKind::Tlb, Asid::new(4), PageSize::Size4K, &ctx));
        assert!(!c.probe_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size2M, &ctx));
        assert!(!c.probe_translation(5, 0xaa, BlockKind::NestedTlb, asid, PageSize::Size4K, &ctx));
        assert_eq!(c.stats.tlb_probe_hits, 1);
        assert_eq!(c.stats.tlb_probe_misses, 4);
        c.assert_packed_consistency();
    }

    #[test]
    fn translation_block_eviction_updates_count_and_histogram() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &ctx);
        // Displace it with data fills into the same set.
        for i in 0..4u64 {
            c.fill_data(PhysAddr::new(i * 1024), false, false, &ctx);
        }
        assert_eq!(c.translation_block_count(), 0);
        assert_eq!(c.stats.tlb_reuse.total(), 1);
        assert_eq!(c.stats.tlb_block_evictions, 1);
    }

    #[test]
    fn invalidate_data_removes_block() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x2040);
        c.fill_data(pa, false, false, &ctx);
        assert!(c.invalidate_data(pa));
        assert!(!c.contains_data(pa));
        assert!(!c.invalidate_data(pa));
        c.assert_packed_consistency();
    }

    #[test]
    fn invalidate_translation_blocks_by_asid() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_translation(1, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &ctx);
        c.fill_translation(2, 0x2, BlockKind::Tlb, Asid::new(2), PageSize::Size4K, &ctx);
        c.fill_translation(3, 0x3, BlockKind::NestedTlb, Asid::new(1), PageSize::Size4K, &ctx);
        let dropped = c.invalidate_translation_blocks(|b| b.asid == Asid::new(1));
        assert_eq!(dropped, 2);
        assert_eq!(c.translation_block_count(), 1);
        assert!(c.contains_translation(2, 0x2, BlockKind::Tlb, Asid::new(2), PageSize::Size4K));
        c.assert_packed_consistency();
    }

    #[test]
    fn srrip_cache_end_to_end() {
        let mut c = Cache::new(
            CacheConfig { name: "S", size_bytes: 4096, ways: 4, block_bytes: 64, latency: 16 },
            Policy::srrip(),
        );
        let ctx = ReplacementCtx::default();
        for i in 0..64u64 {
            let pa = PhysAddr::new(i * 64);
            if !c.access_data(pa, false, &ctx) {
                c.fill_data(pa, false, false, &ctx);
            }
        }
        // Cache exactly full: all 64 blocks valid, no evictions.
        assert_eq!(c.iter_valid().count(), 64);
        assert_eq!(c.stats.evictions, 0);
        // Re-touch everything: all hits.
        for i in 0..64u64 {
            assert!(c.access_data(PhysAddr::new(i * 64), false, &ctx));
        }
        c.assert_packed_consistency();
    }

    #[test]
    fn materialised_blocks_round_trip_identity() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_translation(3, 0x7, BlockKind::NestedTlb, Asid::new(9), PageSize::Size2M, &ctx);
        let b = c.iter_valid().next().expect("one valid block");
        assert!(b.valid && !b.dirty && !b.prefetched);
        assert_eq!(b.tag, 0x7);
        assert_eq!(b.kind, BlockKind::NestedTlb);
        assert_eq!(b.asid, Asid::new(9));
        assert_eq!(b.page_size, PageSize::Size2M);
        assert!(b.matches(0x7, BlockKind::NestedTlb, Asid::new(9), PageSize::Size2M));
    }

    #[test]
    fn save_restore_round_trips_contents_and_policy_state() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        for i in 0..12u64 {
            c.fill_data(PhysAddr::new(i * 1024), i % 3 == 0, false, &ctx);
        }
        c.fill_translation(5, 0xaa, BlockKind::Tlb, Asid::new(3), PageSize::Size4K, &ctx);
        c.access_data(PhysAddr::new(0), false, &ctx);
        let mut words = Vec::new();
        c.save_state(&mut words);
        assert_eq!(words.len(), c.state_words());
        let mut d = small_cache();
        d.restore_state(&words).expect("same geometry");
        d.assert_packed_consistency();
        assert_eq!(d.translation_block_count(), 1);
        assert!(d.contains_translation(5, 0xaa, BlockKind::Tlb, Asid::new(3), PageSize::Size4K));
        // The two caches must make identical eviction decisions from here.
        for i in 12..40u64 {
            let pa = PhysAddr::new(i * 1024);
            let ec = c.fill_data(pa, false, false, &ctx).map(|e| e.block.tag);
            let ed = d.fill_data(pa, false, false, &ctx).map(|e| e.block.tag);
            assert_eq!(ec, ed, "divergent victim at fill {i}");
        }
        assert!(d.restore_state(&words[1..]).is_err(), "short section must be rejected");
    }

    #[test]
    fn miss_ratio_math() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0);
        c.access_data(pa, false, &ctx);
        c.fill_data(pa, false, false, &ctx);
        c.access_data(pa, false, &ctx);
        assert!((c.stats.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
