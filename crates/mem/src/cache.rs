//! Set-associative cache with typed blocks.
//!
//! Data blocks are indexed by physical block number. Victima's TLB blocks
//! live in the same data store but are indexed by a *virtual* set/tag pair
//! computed by the `victima` crate (Fig. 13 of the paper shows how the same
//! address maps to different sets as a data vs. TLB block); the typed
//! lookup/fill/invalidate entry points here take the precomputed set and
//! tag so this crate stays mechanism-agnostic.

use crate::block::{BlockKind, CacheBlock};
use crate::replacement::{ReplacementCtx, ReplacementPolicy};
use vm_types::{Asid, Cycles, PageSize, PhysAddr, ReuseHistogram};

/// Geometry and latency of one cache.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Human-readable name, e.g. "L2".
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes (64 throughout the paper).
    pub block_bytes: u64,
    /// Access latency in cycles when this cache hits.
    pub latency: Cycles,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or not a power of two.
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0 && self.block_bytes > 0 && self.size_bytes > 0);
        let sets = (self.size_bytes / self.block_bytes) as usize / self.ways;
        assert!(sets > 0, "{}: capacity too small for geometry", self.name);
        assert!(sets.is_power_of_two(), "{}: set count must be a power of two", self.name);
        sets
    }
}

/// Statistics for one cache.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Demand lookups that hit (any kind).
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Lines filled (demand).
    pub fills: u64,
    /// Lines filled by prefetchers.
    pub prefetch_fills: u64,
    /// Valid lines evicted.
    pub evictions: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Reuse at eviction for data blocks (Fig. 11).
    pub data_reuse: ReuseHistogram,
    /// Reuse at eviction for TLB blocks (Fig. 24).
    pub tlb_reuse: ReuseHistogram,
    /// Typed (TLB-block) probes that hit.
    pub tlb_probe_hits: u64,
    /// Typed (TLB-block) probes that missed.
    pub tlb_probe_misses: u64,
    /// TLB blocks evicted to make room for other lines.
    pub tlb_block_evictions: u64,
}

impl CacheStats {
    /// Demand accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Demand miss ratio (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// A block displaced by a fill, reported to the caller so upper layers can
/// track writebacks or react to TLB-block eviction (Victima drops them).
#[derive(Clone, Copy, Debug)]
pub struct EvictedBlock {
    /// Metadata of the evicted line.
    pub block: CacheBlock,
}

/// A set-associative, typed-block cache.
pub struct Cache {
    cfg: CacheConfig,
    num_sets: usize,
    set_mask: u64,
    blocks: Vec<CacheBlock>,
    policy: Box<dyn ReplacementPolicy>,
    /// Count of valid TLB/NestedTlb blocks (translation-reach sampling).
    translation_blocks: usize,
    /// Statistics.
    pub stats: CacheStats,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("name", &self.cfg.name)
            .field("size_bytes", &self.cfg.size_bytes)
            .field("ways", &self.cfg.ways)
            .field("sets", &self.num_sets)
            .field("policy", &self.policy.name())
            .field("translation_blocks", &self.translation_blocks)
            .finish()
    }
}

impl Cache {
    /// Creates a cache with the given geometry and replacement policy.
    pub fn new(cfg: CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        let num_sets = cfg.num_sets();
        Self {
            set_mask: num_sets as u64 - 1,
            blocks: vec![CacheBlock::INVALID; num_sets * cfg.ways],
            num_sets,
            cfg,
            policy,
            translation_blocks: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency.
    #[inline]
    pub fn latency(&self) -> Cycles {
        self.cfg.latency
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.cfg.ways
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of valid translation (TLB + nested TLB) blocks currently held.
    #[inline]
    pub fn translation_block_count(&self) -> usize {
        self.translation_blocks
    }

    /// Replacement policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Set index for a physical (data) address.
    #[inline]
    pub fn data_set_index(&self, pa: PhysAddr) -> usize {
        ((pa.raw() / self.cfg.block_bytes) & self.set_mask) as usize
    }

    /// Tag for a physical (data) address.
    #[inline]
    pub fn data_tag(&self, pa: PhysAddr) -> u64 {
        (pa.raw() / self.cfg.block_bytes) >> self.set_mask.count_ones()
    }

    #[inline]
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    #[inline]
    fn set_mut(&mut self, set: usize) -> &mut [CacheBlock] {
        let r = self.set_range(set);
        &mut self.blocks[r]
    }

    #[inline]
    fn set_ref(&self, set: usize) -> &[CacheBlock] {
        let r = self.set_range(set);
        &self.blocks[r]
    }

    /// Demand data access. Returns `true` on hit and updates replacement /
    /// reuse state; on a miss the caller is expected to fetch the line from
    /// the next level and call [`Cache::fill_data`].
    pub fn access_data(&mut self, pa: PhysAddr, write: bool, ctx: &ReplacementCtx) -> bool {
        let set = self.data_set_index(pa);
        let tag = self.data_tag(pa);
        let ways = self.cfg.ways;
        let start = set * ways;
        let way = (0..ways).find(|&w| self.blocks[start + w].matches_data(tag));
        match way {
            Some(w) => {
                self.stats.hits += 1;
                {
                    let blocks = self.set_mut(set);
                    blocks[w].reuse = blocks[w].reuse.saturating_add(1);
                    if write {
                        blocks[w].dirty = true;
                    }
                }
                let set_slice = &mut self.blocks[start..start + ways];
                self.policy.on_hit(set_slice, w, ctx);
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Non-destructive data probe: no stats, no replacement update.
    pub fn contains_data(&self, pa: PhysAddr) -> bool {
        let set = self.data_set_index(pa);
        let tag = self.data_tag(pa);
        self.set_ref(set).iter().any(|b| b.matches_data(tag))
    }

    /// Fills a data line after a miss. Returns the displaced block, if any
    /// valid line had to be evicted.
    pub fn fill_data(
        &mut self,
        pa: PhysAddr,
        dirty: bool,
        prefetched: bool,
        ctx: &ReplacementCtx,
    ) -> Option<EvictedBlock> {
        let set = self.data_set_index(pa);
        let tag = self.data_tag(pa);
        self.fill_at(set, tag, BlockKind::Data, Asid::KERNEL, PageSize::Size4K, dirty, prefetched, ctx)
    }

    /// Typed probe used by Victima: looks up a translation block by
    /// precomputed set/tag plus ASID and page size. Counts toward the TLB
    /// probe statistics and updates replacement state on hit.
    pub fn probe_translation(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        ctx: &ReplacementCtx,
    ) -> bool {
        debug_assert!(kind.is_translation());
        let ways = self.cfg.ways;
        let start = set * ways;
        let way = (0..ways).find(|&w| self.blocks[start + w].matches(tag, kind, asid, size));
        match way {
            Some(w) => {
                self.stats.tlb_probe_hits += 1;
                self.blocks[start + w].reuse = self.blocks[start + w].reuse.saturating_add(1);
                let set_slice = &mut self.blocks[start..start + ways];
                self.policy.on_hit(set_slice, w, ctx);
                true
            }
            None => {
                self.stats.tlb_probe_misses += 1;
                false
            }
        }
    }

    /// Non-destructive typed probe.
    pub fn contains_translation(
        &self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
    ) -> bool {
        self.set_ref(set).iter().any(|b| b.matches(tag, kind, asid, size))
    }

    /// Inserts a translation block at the given (virtually indexed) set.
    /// Returns the displaced block, if any.
    pub fn fill_translation(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        ctx: &ReplacementCtx,
    ) -> Option<EvictedBlock> {
        debug_assert!(kind.is_translation());
        self.fill_at(set, tag, kind, asid, size, false, false, ctx)
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_at(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        dirty: bool,
        prefetched: bool,
        ctx: &ReplacementCtx,
    ) -> Option<EvictedBlock> {
        let ways = self.cfg.ways;
        let start = set * ways;
        let victim_way = {
            let set_slice = &mut self.blocks[start..start + ways];
            self.policy.choose_victim(set_slice, ctx)
        };
        let evicted = {
            let victim = &self.blocks[start + victim_way];
            victim.valid.then_some(EvictedBlock { block: *victim })
        };
        if let Some(ev) = &evicted {
            self.account_eviction(&ev.block);
        }
        {
            let b = &mut self.blocks[start + victim_way];
            b.refill(tag, kind, asid, size, dirty, prefetched);
        }
        if kind.is_translation() {
            self.translation_blocks += 1;
        }
        if prefetched {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.fills += 1;
        }
        let set_slice = &mut self.blocks[start..start + ways];
        self.policy.on_fill(set_slice, victim_way, ctx);
        Some(()).and(evicted)
    }

    fn account_eviction(&mut self, block: &CacheBlock) {
        self.stats.evictions += 1;
        if block.dirty {
            self.stats.writebacks += 1;
        }
        match block.kind {
            BlockKind::Data => self.stats.data_reuse.record(block.reuse as u64),
            BlockKind::Tlb | BlockKind::NestedTlb => {
                self.stats.tlb_reuse.record(block.reuse as u64);
                self.stats.tlb_block_evictions += 1;
                self.translation_blocks = self.translation_blocks.saturating_sub(1);
            }
        }
    }

    /// Invalidates the data block holding `pa`, if present. Returns whether
    /// a block was invalidated. Used by Victima's block transformation: the
    /// PTE cluster's data copy is re-tagged as a TLB block.
    pub fn invalidate_data(&mut self, pa: PhysAddr) -> bool {
        let set = self.data_set_index(pa);
        let tag = self.data_tag(pa);
        let blocks = self.set_mut(set);
        for b in blocks.iter_mut() {
            if b.matches_data(tag) {
                b.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates one translation block identified by its exact location
    /// key (single-entry shootdown, Sec. 6.2(i): invalidating one TLB entry
    /// drops the whole 8-entry block). Returns whether a block was dropped.
    pub fn invalidate_translation_at(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
    ) -> bool {
        let range = self.set_range(set);
        for b in &mut self.blocks[range] {
            if b.matches(tag, kind, asid, size) {
                b.valid = false;
                self.translation_blocks = self.translation_blocks.saturating_sub(1);
                return true;
            }
        }
        false
    }

    /// Invalidates every translation block matching `pred`, returning how
    /// many were dropped. Implements the paper's Sec. 6 maintenance
    /// operations (full flush, per-ASID flush, per-VA shootdown).
    pub fn invalidate_translation_blocks<F>(&mut self, mut pred: F) -> usize
    where
        F: FnMut(&CacheBlock) -> bool,
    {
        let mut dropped = 0;
        for b in self.blocks.iter_mut() {
            if b.valid && b.kind.is_translation() && pred(b) {
                b.valid = false;
                dropped += 1;
            }
        }
        self.translation_blocks = self.translation_blocks.saturating_sub(dropped);
        dropped
    }

    /// Iterates over all valid blocks (read-only), for inspection in tests
    /// and reach sampling.
    pub fn iter_valid(&self) -> impl Iterator<Item = &CacheBlock> {
        self.blocks.iter().filter(|b| b.valid)
    }

    /// Clears all contents and statistics (used between warm-up and
    /// measurement only for stats; contents are kept warm).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::{Lru, Srrip};

    fn small_cache() -> Cache {
        Cache::new(
            CacheConfig { name: "T", size_bytes: 4096, ways: 4, block_bytes: 64, latency: 10 },
            Box::new(Lru::new()),
        )
    }

    #[test]
    fn geometry() {
        let c = small_cache();
        assert_eq!(c.num_sets(), 16);
        assert_eq!(c.num_blocks(), 64);
        assert_eq!(c.latency(), 10);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x1040);
        assert!(!c.access_data(pa, false, &ctx));
        assert!(c.fill_data(pa, false, false, &ctx).is_none());
        assert!(c.access_data(pa, false, &ctx));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert!(c.contains_data(pa));
    }

    #[test]
    fn same_block_different_offset_hits() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_data(PhysAddr::new(0x1040), false, false, &ctx);
        assert!(c.access_data(PhysAddr::new(0x107f), false, &ctx));
        assert!(!c.access_data(PhysAddr::new(0x1080), false, &ctx));
    }

    #[test]
    fn eviction_reports_displaced_block_and_reuse() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        // Fill one set (set 0) beyond capacity: addresses with identical
        // set index, different tags. Set stride = 16 sets * 64B = 1024B.
        for i in 0..4u64 {
            c.fill_data(PhysAddr::new(i * 1024), false, false, &ctx);
        }
        // Hit way 0 twice so its reuse counter is 2.
        assert!(c.access_data(PhysAddr::new(0), false, &ctx));
        assert!(c.access_data(PhysAddr::new(8), false, &ctx));
        let evicted = c.fill_data(PhysAddr::new(4 * 1024), false, false, &ctx);
        assert!(evicted.is_some());
        assert_eq!(c.stats.evictions, 1);
        // One data block was recorded in the reuse histogram.
        assert_eq!(c.stats.data_reuse.total(), 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_data(PhysAddr::new(0), true, false, &ctx);
        for i in 1..=4u64 {
            c.fill_data(PhysAddr::new(i * 1024), false, false, &ctx);
        }
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn translation_blocks_tracked_and_probed() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let asid = Asid::new(3);
        assert!(!c.probe_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size4K, &ctx));
        c.fill_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size4K, &ctx);
        assert_eq!(c.translation_block_count(), 1);
        assert!(c.probe_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size4K, &ctx));
        // Wrong ASID, page size, or kind must miss.
        assert!(!c.probe_translation(5, 0xaa, BlockKind::Tlb, Asid::new(4), PageSize::Size4K, &ctx));
        assert!(!c.probe_translation(5, 0xaa, BlockKind::Tlb, asid, PageSize::Size2M, &ctx));
        assert!(!c.probe_translation(5, 0xaa, BlockKind::NestedTlb, asid, PageSize::Size4K, &ctx));
        assert_eq!(c.stats.tlb_probe_hits, 1);
        assert_eq!(c.stats.tlb_probe_misses, 4);
    }

    #[test]
    fn translation_block_eviction_updates_count_and_histogram() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &ctx);
        // Displace it with data fills into the same set.
        for i in 0..4u64 {
            c.fill_data(PhysAddr::new(i * 1024), false, false, &ctx);
        }
        assert_eq!(c.translation_block_count(), 0);
        assert_eq!(c.stats.tlb_reuse.total(), 1);
        assert_eq!(c.stats.tlb_block_evictions, 1);
    }

    #[test]
    fn invalidate_data_removes_block() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x2040);
        c.fill_data(pa, false, false, &ctx);
        assert!(c.invalidate_data(pa));
        assert!(!c.contains_data(pa));
        assert!(!c.invalidate_data(pa));
    }

    #[test]
    fn invalidate_translation_blocks_by_asid() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        c.fill_translation(1, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &ctx);
        c.fill_translation(2, 0x2, BlockKind::Tlb, Asid::new(2), PageSize::Size4K, &ctx);
        c.fill_translation(3, 0x3, BlockKind::NestedTlb, Asid::new(1), PageSize::Size4K, &ctx);
        let dropped = c.invalidate_translation_blocks(|b| b.asid == Asid::new(1));
        assert_eq!(dropped, 2);
        assert_eq!(c.translation_block_count(), 1);
        assert!(c.contains_translation(2, 0x2, BlockKind::Tlb, Asid::new(2), PageSize::Size4K));
    }

    #[test]
    fn srrip_cache_end_to_end() {
        let mut c = Cache::new(
            CacheConfig { name: "S", size_bytes: 4096, ways: 4, block_bytes: 64, latency: 16 },
            Box::new(Srrip::new()),
        );
        let ctx = ReplacementCtx::default();
        for i in 0..64u64 {
            let pa = PhysAddr::new(i * 64);
            if !c.access_data(pa, false, &ctx) {
                c.fill_data(pa, false, false, &ctx);
            }
        }
        // Cache exactly full: all 64 blocks valid, no evictions.
        assert_eq!(c.iter_valid().count(), 64);
        assert_eq!(c.stats.evictions, 0);
        // Re-touch everything: all hits.
        for i in 0..64u64 {
            assert!(c.access_data(PhysAddr::new(i * 64), false, &ctx));
        }
    }

    #[test]
    fn miss_ratio_math() {
        let mut c = small_cache();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0);
        c.access_data(pa, false, &ctx);
        c.fill_data(pa, false, false, &ctx);
        c.access_data(pa, false, &ctx);
        assert!((c.stats.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
