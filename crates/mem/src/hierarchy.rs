//! The three-level cache hierarchy plus DRAM, with the paper's Table 3
//! defaults: 32KB 8-way L1I/L1D (4-cycle, LRU, IP-stride prefetcher),
//! 2MB 16-way L2 (16-cycle, SRRIP, stream prefetcher) and 2MB/core 16-way
//! L3 (35-cycle, SRRIP).
//!
//! Latency convention: a hit at level X costs X's configured latency from
//! the core's point of view (not the sum of the levels above); a DRAM
//! access costs the L3 latency (the lookup that missed) plus the DRAM
//! device latency. Page-table-walk and POM-TLB accesses bypass the L1s and
//! are served from L2 downward, which is also where Victima finds the leaf
//! PTE cluster it transforms into a TLB block.

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::prefetch::{IpStridePrefetcher, StreamPrefetcher};
use crate::replacement::{Policy, ReplacementCtx};
use std::cell::{Ref, RefCell};
use std::rc::Rc;
use vm_types::{Cycles, PhysAddr};

/// Which unit issued a memory access; determines entry level and fills.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemClass {
    /// Instruction fetch: L1I → L2 → L3 → DRAM.
    IFetch,
    /// Demand data: L1D → L2 → L3 → DRAM.
    Data,
    /// Page-table-walker access: L2 → L3 → DRAM (PTEs are cached as data
    /// in L2/L3 but not in the L1s).
    Ptw,
    /// POM-TLB entry access: L2 → L3 → DRAM.
    PomTlb,
}

impl MemClass {
    /// Whether the access starts at an L1.
    #[inline]
    pub const fn uses_l1(self) -> bool {
        matches!(self, MemClass::IFetch | MemClass::Data)
    }
}

/// Which level served an access.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MemLevel {
    /// Served by L1I or L1D.
    L1,
    /// Served by the unified L2.
    L2,
    /// Served by the last-level cache.
    L3,
    /// Served by main memory.
    Dram,
}

/// Outcome of one hierarchy access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResult {
    /// Total latency seen by the requester.
    pub latency: Cycles,
    /// Level that provided the line.
    pub served_by: MemLevel,
    /// Whether DRAM was touched (drives the PTW-cost PTE counter).
    pub dram_access: bool,
}

/// Configuration of the whole hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// Enable the IP-stride (L1D) and stream (L2) prefetchers.
    pub prefetchers: bool,
}

impl Default for HierarchyConfig {
    /// The paper's Table 3 baseline.
    fn default() -> Self {
        Self {
            l1i: CacheConfig { name: "L1I", size_bytes: 32 << 10, ways: 8, block_bytes: 64, latency: 4 },
            l1d: CacheConfig { name: "L1D", size_bytes: 32 << 10, ways: 8, block_bytes: 64, latency: 4 },
            l2: CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
            l3: CacheConfig { name: "L3", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 35 },
            dram: DramConfig::default(),
            prefetchers: true,
        }
    }
}

/// Per-class hierarchy statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// Demand accesses per class (ifetch, data, ptw, pom).
    pub accesses: [u64; 4],
    /// DRAM accesses per class.
    pub dram_accesses: [u64; 4],
}

impl HierarchyStats {
    #[inline]
    fn idx(class: MemClass) -> usize {
        match class {
            MemClass::IFetch => 0,
            MemClass::Data => 1,
            MemClass::Ptw => 2,
            MemClass::PomTlb => 3,
        }
    }
}

/// The backing store behind the private caches: the last-level cache plus
/// DRAM. One instance can be shared by several [`Hierarchy`] front-ends
/// (the multi-core model's shared LLC); a single-core hierarchy owns a
/// private one. Shared through `Rc<RefCell<_>>` — simulation cores are
/// stepped one at a time by a deterministic scheduler, never concurrently.
pub struct SharedLlc {
    l3: Cache,
    dram: Dram,
}

impl std::fmt::Debug for SharedLlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedLlc").field("l3", &self.l3).field("dram", &self.dram).finish()
    }
}

impl SharedLlc {
    /// Builds an LLC + DRAM pair.
    pub fn new(l3: CacheConfig, dram: DramConfig) -> Self {
        Self { l3: Cache::new(l3, Policy::srrip()), dram: Dram::new(dram) }
    }

    /// Builds one wrapped for sharing between hierarchies.
    pub fn shared(l3: CacheConfig, dram: DramConfig) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(Self::new(l3, dram)))
    }

    /// The last-level cache.
    pub fn l3(&self) -> &Cache {
        &self.l3
    }

    /// The DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// One demand access below the L2: L3 probe, then DRAM + L3 fill on a
    /// miss. Returns the latency seen by the L2 and whether DRAM was
    /// touched.
    fn access(&mut self, pa: PhysAddr, ctx: &ReplacementCtx) -> (Cycles, bool) {
        if self.l3.access_data(pa, false, ctx) {
            (self.l3.latency(), false)
        } else {
            let dram_latency = self.dram.access(pa);
            self.l3.fill_data(pa, false, false, ctx);
            (self.l3.latency() + dram_latency, true)
        }
    }

    /// Whether the L3 holds the line (prefetch-path check; no statistics).
    fn contains(&self, pa: PhysAddr) -> bool {
        self.l3.contains_data(pa)
    }

    /// Prefetch fill: DRAM fetch plus an L3 fill marked as a prefetch.
    fn prefetch_fill(&mut self, pa: PhysAddr, ctx: &ReplacementCtx) {
        self.dram.access(pa);
        self.l3.fill_data(pa, false, true, ctx);
    }

    /// Clears statistics (contents stay warm).
    pub fn reset_stats(&mut self) {
        self.l3.reset_stats();
        self.dram.stats = Default::default();
    }
}

/// The L1I/L1D/L2 stack in front of a (possibly shared) [`SharedLlc`].
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Rc<RefCell<SharedLlc>>,
    ip_stride: IpStridePrefetcher,
    stream: StreamPrefetcher,
    prefetchers: bool,
    /// Reused stream-prefetch candidate buffer: cleared per L2 demand
    /// miss, never reallocated in steady state (capacity sticks at the
    /// prefetch degree).
    pf_scratch: Vec<PhysAddr>,
    /// Per-class statistics.
    pub stats: HierarchyStats,
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("l1i", &self.l1i)
            .field("l1d", &self.l1d)
            .field("l2", &self.l2)
            .field("llc", &self.llc.borrow())
            .finish()
    }
}

impl Hierarchy {
    /// Builds the hierarchy with default policies (LRU L1s, SRRIP L2/L3).
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self::with_l2_policy(cfg, Policy::srrip())
    }

    /// Builds the hierarchy with a caller-supplied L2 replacement policy —
    /// this is how Victima and POM-TLB install the TLB-aware SRRIP.
    pub fn with_l2_policy(cfg: HierarchyConfig, l2_policy: Policy) -> Self {
        let llc = SharedLlc::shared(cfg.l3.clone(), cfg.dram.clone());
        Self::with_shared_llc(cfg, l2_policy, llc)
    }

    /// Builds the core-private part of the hierarchy (L1s + L2) in front of
    /// an externally owned LLC. `cfg.l3`/`cfg.dram` are ignored: the shared
    /// LLC was sized by whoever built it (the multi-core system scales the
    /// L3 by core count).
    pub fn with_shared_llc(cfg: HierarchyConfig, l2_policy: Policy, llc: Rc<RefCell<SharedLlc>>) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i.clone(), Policy::lru()),
            l1d: Cache::new(cfg.l1d.clone(), Policy::lru()),
            l2: Cache::new(cfg.l2.clone(), l2_policy),
            llc,
            ip_stride: IpStridePrefetcher::default(),
            stream: StreamPrefetcher::default(),
            prefetchers: cfg.prefetchers,
            pf_scratch: Vec::new(),
            stats: HierarchyStats::default(),
        }
    }

    /// Installs a recycled prefetch scratch buffer (the batch engine hands
    /// workers' buffers from one finished run to the next so a fresh
    /// system starts with warmed capacity).
    pub fn set_prefetch_scratch(&mut self, mut scratch: Vec<PhysAddr>) {
        scratch.clear();
        self.pf_scratch = scratch;
    }

    /// Takes the prefetch scratch buffer back out (end of a run).
    pub fn take_prefetch_scratch(&mut self) -> Vec<PhysAddr> {
        std::mem::take(&mut self.pf_scratch)
    }

    /// Immutable access to the L2 (Victima probes TLB blocks there).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Mutable access to the L2 for Victima's typed-block operations.
    pub fn l2_mut(&mut self) -> &mut Cache {
        &mut self.l2
    }

    /// Immutable access to the L3 (a `RefCell` guard: the LLC may be shared
    /// with other cores' hierarchies).
    pub fn l3(&self) -> Ref<'_, Cache> {
        Ref::map(self.llc.borrow(), |llc| &llc.l3)
    }

    /// Immutable access to the L1D.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Immutable access to the L1I.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The DRAM model (a `RefCell` guard, like [`Hierarchy::l3`]).
    pub fn dram(&self) -> Ref<'_, Dram> {
        Ref::map(self.llc.borrow(), |llc| &llc.dram)
    }

    /// The LLC handle this hierarchy drains into (shared in multi-core
    /// systems, private otherwise).
    pub fn llc(&self) -> &Rc<RefCell<SharedLlc>> {
        &self.llc
    }

    /// One demand access with `pc = 0` (no prefetcher training context).
    pub fn access(
        &mut self,
        pa: PhysAddr,
        write: bool,
        class: MemClass,
        ctx: &ReplacementCtx,
    ) -> AccessResult {
        self.access_pc(pa, write, class, 0, ctx)
    }

    /// One demand access, with the program counter for IP-stride training.
    pub fn access_pc(
        &mut self,
        pa: PhysAddr,
        write: bool,
        class: MemClass,
        pc: u64,
        ctx: &ReplacementCtx,
    ) -> AccessResult {
        self.stats.accesses[HierarchyStats::idx(class)] += 1;

        // L1 stage.
        if class.uses_l1() {
            let l1 = match class {
                MemClass::IFetch => &mut self.l1i,
                _ => &mut self.l1d,
            };
            let hit = l1.access_data(pa, write, ctx);
            let latency = l1.latency();
            if class == MemClass::Data && self.prefetchers && pc != 0 {
                if let Some(target) = self.ip_stride.train(pc, pa) {
                    self.prefetch_fill_l1d(target, ctx);
                }
            }
            if hit {
                return AccessResult { latency, served_by: MemLevel::L1, dram_access: false };
            }
        }

        // L2 stage.
        if self.l2.access_data(pa, write && !class.uses_l1(), ctx) {
            self.fill_upper(pa, class, ctx);
            return AccessResult { latency: self.l2.latency(), served_by: MemLevel::L2, dram_access: false };
        }
        if class == MemClass::Data && self.prefetchers {
            // Reuse one scratch buffer across misses (allocation-free in
            // steady state); it is taken out while the fills run because
            // they need `&mut self` too.
            let mut candidates = std::mem::take(&mut self.pf_scratch);
            candidates.clear();
            self.stream.train_into(pa, &mut candidates);
            for &c in &candidates {
                self.prefetch_fill_l2(c, ctx);
            }
            self.pf_scratch = candidates;
        }

        // L3 + DRAM stage (the shared LLC).
        let (latency, dram_access) = self.llc.borrow_mut().access(pa, ctx);
        if dram_access {
            self.stats.dram_accesses[HierarchyStats::idx(class)] += 1;
        }
        self.l2.fill_data(pa, write && !class.uses_l1(), false, ctx);
        self.fill_upper(pa, class, ctx);
        AccessResult {
            latency,
            served_by: if dram_access { MemLevel::Dram } else { MemLevel::L3 },
            dram_access,
        }
    }

    /// Fills the appropriate L1 after a lower-level hit/fill.
    fn fill_upper(&mut self, pa: PhysAddr, class: MemClass, ctx: &ReplacementCtx) {
        match class {
            MemClass::IFetch => {
                self.l1i.fill_data(pa, false, false, ctx);
            }
            MemClass::Data => {
                self.l1d.fill_data(pa, false, false, ctx);
            }
            MemClass::Ptw | MemClass::PomTlb => {}
        }
    }

    fn prefetch_fill_l1d(&mut self, pa: PhysAddr, ctx: &ReplacementCtx) {
        if !self.l1d.contains_data(pa) {
            {
                let mut llc = self.llc.borrow_mut();
                if !llc.contains(pa) {
                    llc.prefetch_fill(pa, ctx);
                }
            }
            if !self.l2.contains_data(pa) {
                self.l2.fill_data(pa, false, true, ctx);
            }
            self.l1d.fill_data(pa, false, true, ctx);
        }
    }

    fn prefetch_fill_l2(&mut self, pa: PhysAddr, ctx: &ReplacementCtx) {
        if !self.l2.contains_data(pa) {
            {
                let mut llc = self.llc.borrow_mut();
                if !llc.contains(pa) {
                    llc.prefetch_fill(pa, ctx);
                }
            }
            self.l2.fill_data(pa, false, true, ctx);
        }
    }

    /// Serialises the whole hierarchy's microarchitectural state — the
    /// three private caches, the LLC and DRAM behind them, and both
    /// prefetchers — into one flat checkpoint-word stream. Sub-component
    /// boundaries are implied by each component's geometry
    /// (`state_words`), so a stream only restores into an identically
    /// configured hierarchy.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.l1i.save_state(out);
        self.l1d.save_state(out);
        self.l2.save_state(out);
        let llc = self.llc.borrow();
        llc.l3.save_state(out);
        llc.dram.save_state(out);
        self.ip_stride.save_state(out);
        self.stream.save_state(out);
    }

    /// Restores state captured by [`Hierarchy::save_state`] into an
    /// identically configured hierarchy.
    ///
    /// # Errors
    ///
    /// Returns a message if the stream's length does not match this
    /// hierarchy's geometry, or any sub-section is malformed.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        let mut llc = self.llc.borrow_mut();
        let sizes = [
            self.l1i.state_words(),
            self.l1d.state_words(),
            self.l2.state_words(),
            llc.l3.state_words(),
            llc.dram.state_words(),
            self.ip_stride.state_words(),
            self.stream.state_words(),
        ];
        let total: usize = sizes.iter().sum();
        if words.len() != total {
            return Err(format!(
                "hierarchy: checkpoint section has {} words, geometry needs {total}",
                words.len()
            ));
        }
        let mut pos = 0;
        let mut next = |n: usize| {
            let s = &words[pos..pos + n];
            pos += n;
            s
        };
        self.l1i.restore_state(next(sizes[0]))?;
        self.l1d.restore_state(next(sizes[1]))?;
        self.l2.restore_state(next(sizes[2]))?;
        llc.l3.restore_state(next(sizes[3]))?;
        llc.dram.restore_state(next(sizes[4]))?;
        self.ip_stride.restore_state(next(sizes[5]))?;
        self.stream.restore_state(next(sizes[6]))?;
        Ok(())
    }

    /// Clears statistics on every component (contents stay warm). Also
    /// resets the LLC — idempotent when the LLC is shared and each core's
    /// hierarchy resets in turn.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.borrow_mut().reset_stats();
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig { prefetchers: false, ..HierarchyConfig::default() })
    }

    #[test]
    fn cold_access_goes_to_dram_then_warms_all_levels() {
        let mut h = hier();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x40_0000);
        let r1 = h.access(pa, false, MemClass::Data, &ctx);
        assert_eq!(r1.served_by, MemLevel::Dram);
        assert!(r1.dram_access);
        assert!(r1.latency > 100);
        let r2 = h.access(pa, false, MemClass::Data, &ctx);
        assert_eq!(r2.served_by, MemLevel::L1);
        assert_eq!(r2.latency, 4);
    }

    #[test]
    fn ptw_class_skips_l1_but_warms_l2() {
        let mut h = hier();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x80_0000);
        let r1 = h.access(pa, false, MemClass::Ptw, &ctx);
        assert_eq!(r1.served_by, MemLevel::Dram);
        let r2 = h.access(pa, false, MemClass::Ptw, &ctx);
        assert_eq!(r2.served_by, MemLevel::L2);
        assert_eq!(r2.latency, 16);
        // The L1D never saw the line.
        assert!(!h.l1d().contains_data(pa));
        // But the L2 holds it, which is what Victima's transform relies on.
        assert!(h.l2().contains_data(pa));
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut h = hier();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x1000);
        h.access(pa, false, MemClass::IFetch, &ctx);
        let r = h.access(pa, false, MemClass::IFetch, &ctx);
        assert_eq!(r.served_by, MemLevel::L1);
        assert!(h.l1i().contains_data(pa));
        assert!(!h.l1d().contains_data(pa));
    }

    #[test]
    fn l3_hit_after_l2_eviction() {
        // Give the L3 twice the L2's sets so an L2 conflict pattern spreads
        // over two L3 sets and the victim line survives there.
        let mut cfg = HierarchyConfig { prefetchers: false, ..HierarchyConfig::default() };
        cfg.l3.size_bytes = 4 << 20;
        let mut h = Hierarchy::new(cfg);
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0x123_4000);
        h.access(pa, false, MemClass::Ptw, &ctx);
        // Thrash the L2 set holding `pa` with conflicting PTW lines.
        // L2: 2MB/64B/16 = 2048 sets; set stride = 2048*64 = 128KB.
        for i in 1..=16u64 {
            h.access(PhysAddr::new(pa.raw() + i * 2048 * 64), false, MemClass::Ptw, &ctx);
        }
        let r = h.access(pa, false, MemClass::Ptw, &ctx);
        assert!(r.served_by == MemLevel::L3 || r.served_by == MemLevel::L2);
    }

    #[test]
    fn per_class_stats_are_tracked() {
        let mut h = hier();
        let ctx = ReplacementCtx::default();
        h.access(PhysAddr::new(0x9000), false, MemClass::Data, &ctx);
        h.access(PhysAddr::new(0xa000), false, MemClass::Ptw, &ctx);
        h.access(PhysAddr::new(0xb000), false, MemClass::PomTlb, &ctx);
        assert_eq!(h.stats.accesses, [0, 1, 1, 1]);
        assert_eq!(h.stats.dram_accesses, [0, 1, 1, 1]);
    }

    #[test]
    fn stores_mark_lines_dirty_for_writeback() {
        let mut h = hier();
        let ctx = ReplacementCtx::default();
        let pa = PhysAddr::new(0xc000);
        h.access(pa, true, MemClass::Data, &ctx);
        h.access(pa, true, MemClass::Data, &ctx);
        // Dirty bit is tracked in L1D after the write hit.
        assert!(h.l1d().iter_valid().any(|b| b.dirty));
    }

    #[test]
    fn save_restore_keeps_timing_in_lockstep() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let ctx = ReplacementCtx::default();
        let mut rng = vm_types::SplitMix64::new(42);
        for _ in 0..2_000 {
            let pa = PhysAddr::new(rng.next_below(8 << 20) & !7);
            h.access_pc(pa, rng.chance(0.2), MemClass::Data, 0x400000 + rng.next_below(64), &ctx);
        }
        let mut words = Vec::new();
        h.save_state(&mut words);
        let mut g = Hierarchy::new(HierarchyConfig::default());
        g.restore_state(&words).expect("same geometry");
        // Replay an identical access sequence on both: every latency and
        // serving level must match, or warm state diverged somewhere.
        let mut ra = vm_types::SplitMix64::new(7);
        let mut rb = vm_types::SplitMix64::new(7);
        for i in 0..2_000 {
            let pa_a = PhysAddr::new(ra.next_below(8 << 20) & !7);
            let pa_b = PhysAddr::new(rb.next_below(8 << 20) & !7);
            let a = h.access_pc(pa_a, false, MemClass::Data, 0x400abc, &ctx);
            let b = g.access_pc(pa_b, false, MemClass::Data, 0x400abc, &ctx);
            assert_eq!((a.latency, a.served_by), (b.latency, b.served_by), "divergence at access {i}");
        }
        assert!(g.restore_state(&words[..100]).is_err(), "short stream must be rejected");
    }

    #[test]
    fn prefetchers_fill_without_timing_charge() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let ctx = ReplacementCtx::default();
        // Strided loads from one PC: after training, next blocks appear.
        for i in 0..16u64 {
            h.access_pc(PhysAddr::new(0x50_0000 + i * 64), false, MemClass::Data, 0x400abc, &ctx);
        }
        assert!(h.l1d().stats.prefetch_fills > 0 || h.l2().stats.prefetch_fills > 0);
    }
}
