//! Cache hierarchy, prefetchers and DRAM model for the Victima (MICRO 2023)
//! reproduction.
//!
//! The centrepiece is a set-associative [`Cache`] whose blocks are *typed*
//! ([`BlockKind`]): ordinary data blocks are indexed by physical address,
//! while Victima repurposes L2 blocks as TLB blocks indexed by virtual page
//! number (the tag/set math for those lives in the `victima` crate; this
//! crate provides the kind-aware storage, replacement and statistics).
//!
//! The per-access hot path scans packed parallel tag arrays (one presence
//! word per way, see [`block`]) and dispatches replacement through the
//! [`Policy`] enum — LRU, SRRIP, and the paper's TLB-aware SRRIP
//! (Listing 1) — statically, over packed per-set victim metadata. See
//! DESIGN.md, "Hot path & performance model".
//!
//! # Examples
//!
//! ```
//! use mem_sim::{Hierarchy, HierarchyConfig, MemClass, ReplacementCtx};
//! use vm_types::PhysAddr;
//!
//! let mut hier = Hierarchy::new(HierarchyConfig::default());
//! let ctx = ReplacementCtx::default();
//! let first = hier.access(PhysAddr::new(0x4000), false, MemClass::Data, &ctx);
//! let second = hier.access(PhysAddr::new(0x4000), false, MemClass::Data, &ctx);
//! assert!(second.latency < first.latency, "second access should hit in L1");
//! ```

pub mod block;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod prefetch;
pub mod replacement;

pub use block::{BlockKind, CacheBlock};
pub use cache::{Cache, CacheConfig, CacheStats, EvictedBlock};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{AccessResult, Hierarchy, HierarchyConfig, MemClass, MemLevel, SharedLlc};
pub use prefetch::{IpStridePrefetcher, StreamPrefetcher};
pub use replacement::{Policy, ReplSet, ReplacementCtx, RRIP_INSERT, RRIP_MAX};
