//! Open-row DRAM timing model.
//!
//! A deliberately small model: per-bank open-row tracking with two latency
//! classes (row hit vs. row conflict). Calibrated so that a page-table-walk
//! leaf access that misses the whole cache hierarchy costs ≈131–181 cycles
//! end to end, reproducing the paper's Fig. 4 distribution (mean ≈137
//! cycles, tail to ≈190, rare outliers beyond).

use vm_types::{Cycles, PhysAddr};

/// DRAM geometry and latencies.
#[derive(Clone, Debug)]
pub struct DramConfig {
    /// Number of banks (power of two).
    pub banks: usize,
    /// log2 of the row size in bytes (bits of the address that stay within
    /// one row).
    pub row_shift: u32,
    /// Latency of a row-buffer hit, in core cycles.
    pub row_hit_latency: Cycles,
    /// Latency of a row-buffer conflict (precharge + activate + access).
    pub row_miss_latency: Cycles,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self { banks: 16, row_shift: 13, row_hit_latency: 80, row_miss_latency: 130 }
    }
}

/// Per-run DRAM statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
}

/// The DRAM device model.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    open_rows: Vec<Option<u64>>,
    /// Statistics.
    pub stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks.is_power_of_two(), "bank count must be a power of two");
        Self { open_rows: vec![None; cfg.banks], cfg, stats: DramStats::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Performs one access and returns its latency.
    pub fn access(&mut self, pa: PhysAddr) -> Cycles {
        self.stats.accesses += 1;
        let bank = (pa.raw() >> self.cfg.row_shift) as usize & (self.cfg.banks - 1);
        let row = pa.raw() >> (self.cfg.row_shift + self.cfg.banks.trailing_zeros());
        let hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        if hit {
            self.stats.row_hits += 1;
            self.cfg.row_hit_latency
        } else {
            self.cfg.row_miss_latency
        }
    }

    /// Number of checkpoint words [`Dram::save_state`] emits (one open-row
    /// word per bank).
    pub fn state_words(&self) -> usize {
        self.open_rows.len()
    }

    /// Serialises the per-bank open rows into checkpoint words
    /// (`row << 1 | 1`, or 0 for a closed bank).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.open_rows.iter().map(|r| match r {
            Some(row) => row << 1 | 1,
            None => 0,
        }));
    }

    /// Restores state captured by [`Dram::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a message if the word count does not match the bank count.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() != self.open_rows.len() {
            return Err(format!(
                "DRAM: checkpoint section has {} words, {} banks configured",
                words.len(),
                self.open_rows.len()
            ));
        }
        for (r, &w) in self.open_rows.iter_mut().zip(words) {
            *r = (w & 1 != 0).then_some(w >> 1);
        }
        Ok(())
    }

    /// Row-buffer hit rate so far.
    pub fn row_hit_rate(&self) -> f64 {
        if self.stats.accesses == 0 {
            0.0
        } else {
            self.stats.row_hits as f64 / self.stats.accesses as f64
        }
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_row_miss() {
        let mut d = Dram::default();
        let lat = d.access(PhysAddr::new(0x10_0000));
        assert_eq!(lat, d.config().row_miss_latency);
    }

    #[test]
    fn same_row_hits() {
        let mut d = Dram::default();
        d.access(PhysAddr::new(0x10_0000));
        let lat = d.access(PhysAddr::new(0x10_0040));
        assert_eq!(lat, d.config().row_hit_latency);
        assert_eq!(d.stats.row_hits, 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = Dram::default();
        let cfg = d.config().clone();
        let a = PhysAddr::new(0);
        // Same bank, next row: advance by banks * row_size.
        let b = PhysAddr::new((cfg.banks as u64) << cfg.row_shift);
        d.access(a);
        assert_eq!(d.access(b), cfg.row_miss_latency);
        assert_eq!(d.access(a), cfg.row_miss_latency);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut d = Dram::default();
        let cfg = d.config().clone();
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(1 << cfg.row_shift); // next bank
        d.access(a);
        d.access(b);
        assert_eq!(d.access(a), cfg.row_hit_latency);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut d = Dram::default();
        d.access(PhysAddr::new(0));
        d.access(PhysAddr::new(8));
        d.access(PhysAddr::new(16));
        assert!((d.row_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
