//! Differential property test: the packed-tag-array [`Cache`] against a
//! naive reference model.
//!
//! The reference model stores one fat struct per way and scans/updates it
//! exactly the way the pre-packing implementation did (linear `matches`
//! scans, policy state in the block structs). Both models are driven with
//! the same SplitMix64-seeded stream of accesses, typed probes, fills and
//! invalidations — 100K+ operations per policy — and must produce
//! identical hit/miss results, identical eviction reports and identical
//! statistics at every step.

use mem_sim::{BlockKind, Cache, CacheConfig, CacheStats, EvictedBlock, Policy, ReplacementCtx};
use vm_types::{Asid, PageSize, PhysAddr, SplitMix64};

const RRIP_MAX: u8 = 3;
const RRIP_INSERT: u8 = 2;

/// One way of the reference model: every field the original fat layout
/// kept per block.
#[derive(Clone, Copy, Default)]
struct RefBlock {
    valid: bool,
    dirty: bool,
    tag: u64,
    kind: BlockKind,
    asid: Asid,
    size: PageSize,
    rrip: u8,
    lru: u64,
    reuse: u32,
    prefetched: bool,
}

impl RefBlock {
    fn matches(&self, tag: u64, kind: BlockKind, asid: Asid, size: PageSize) -> bool {
        self.valid
            && self.kind == kind
            && self.tag == tag
            && (kind == BlockKind::Data || (self.asid == asid && self.size == size))
    }
}

enum RefPolicy {
    Lru,
    Srrip,
    TlbAware,
}

/// The naive reference cache: linear scans over fat structs, stepwise
/// SRRIP aging, policy switch by enum.
struct RefCache {
    ways: usize,
    set_mask: u64,
    blocks: Vec<RefBlock>,
    policy: RefPolicy,
    tick: u64,
    translation_blocks: usize,
    hits: u64,
    misses: u64,
    fills: u64,
    prefetch_fills: u64,
    evictions: u64,
    writebacks: u64,
    tlb_probe_hits: u64,
    tlb_probe_misses: u64,
    tlb_block_evictions: u64,
}

impl RefCache {
    fn new(size_bytes: u64, ways: usize, policy: RefPolicy) -> Self {
        let sets = (size_bytes / 64) as usize / ways;
        Self {
            ways,
            set_mask: sets as u64 - 1,
            blocks: vec![RefBlock::default(); sets * ways],
            policy,
            tick: 0,
            translation_blocks: 0,
            hits: 0,
            misses: 0,
            fills: 0,
            prefetch_fills: 0,
            evictions: 0,
            writebacks: 0,
            tlb_probe_hits: 0,
            tlb_probe_misses: 0,
            tlb_block_evictions: 0,
        }
    }

    fn data_set(&self, pa: u64) -> usize {
        ((pa / 64) & self.set_mask) as usize
    }

    fn data_tag(&self, pa: u64) -> u64 {
        (pa / 64) >> self.set_mask.count_ones()
    }

    fn on_hit(&mut self, start: usize, way: usize, ctx: &ReplacementCtx) {
        let b = &mut self.blocks[start + way];
        match self.policy {
            RefPolicy::Lru => {
                self.tick += 1;
                b.lru = self.tick;
            }
            RefPolicy::Srrip => b.rrip = b.rrip.saturating_sub(1),
            RefPolicy::TlbAware => {
                let p = if b.kind.is_translation() && ctx.tlb_pressure_high() { 3 } else { 1 };
                b.rrip = b.rrip.saturating_sub(p);
            }
        }
    }

    fn on_fill(&mut self, start: usize, way: usize, ctx: &ReplacementCtx) {
        let b = &mut self.blocks[start + way];
        match self.policy {
            RefPolicy::Lru => {
                self.tick += 1;
                b.lru = self.tick;
            }
            RefPolicy::Srrip => b.rrip = RRIP_INSERT,
            RefPolicy::TlbAware => {
                b.rrip = if b.kind.is_translation() && ctx.tlb_pressure_high() { 0 } else { RRIP_INSERT };
            }
        }
    }

    /// The original stepwise SRRIP victim scan.
    fn scan_victim(set: &mut [RefBlock]) -> usize {
        if let Some(way) = set.iter().position(|b| !b.valid) {
            return way;
        }
        loop {
            if let Some(way) = set.iter().position(|b| b.rrip >= RRIP_MAX) {
                return way;
            }
            for b in set.iter_mut() {
                b.rrip = (b.rrip + 1).min(RRIP_MAX);
            }
        }
    }

    fn choose_victim(&mut self, start: usize, ctx: &ReplacementCtx) -> usize {
        let set = &mut self.blocks[start..start + self.ways];
        match self.policy {
            RefPolicy::Lru => match set.iter().position(|b| !b.valid) {
                Some(w) => w,
                None => set.iter().enumerate().min_by_key(|(_, b)| b.lru).map(|(i, _)| i).expect("nonempty"),
            },
            RefPolicy::Srrip => Self::scan_victim(set),
            RefPolicy::TlbAware => {
                let way = Self::scan_victim(set);
                if set[way].valid && set[way].kind.is_translation() && ctx.tlb_pressure_high() {
                    if let Some(alt) =
                        set.iter().position(|b| b.valid && !b.kind.is_translation() && b.rrip >= RRIP_MAX)
                    {
                        return alt;
                    }
                }
                way
            }
        }
    }

    fn access_data(&mut self, pa: u64, write: bool, ctx: &ReplacementCtx) -> bool {
        let start = self.data_set(pa) * self.ways;
        let tag = self.data_tag(pa);
        let way = (0..self.ways)
            .find(|&w| self.blocks[start + w].matches(tag, BlockKind::Data, Asid::KERNEL, PageSize::Size4K));
        match way {
            Some(w) => {
                self.hits += 1;
                let b = &mut self.blocks[start + w];
                b.reuse = b.reuse.saturating_add(1);
                if write {
                    b.dirty = true;
                }
                self.on_hit(start, w, ctx);
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    fn probe_translation(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        ctx: &ReplacementCtx,
    ) -> bool {
        let start = set * self.ways;
        let way = (0..self.ways).find(|&w| self.blocks[start + w].matches(tag, kind, asid, size));
        match way {
            Some(w) => {
                self.tlb_probe_hits += 1;
                self.blocks[start + w].reuse = self.blocks[start + w].reuse.saturating_add(1);
                self.on_hit(start, w, ctx);
                true
            }
            None => {
                self.tlb_probe_misses += 1;
                false
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fill_at(
        &mut self,
        set: usize,
        tag: u64,
        kind: BlockKind,
        asid: Asid,
        size: PageSize,
        dirty: bool,
        prefetched: bool,
        ctx: &ReplacementCtx,
    ) -> Option<RefBlock> {
        let start = set * self.ways;
        let victim = self.choose_victim(start, ctx);
        let old = self.blocks[start + victim];
        let evicted = old.valid.then_some(old);
        if let Some(ev) = &evicted {
            self.evictions += 1;
            if ev.dirty {
                self.writebacks += 1;
            }
            if ev.kind.is_translation() {
                self.tlb_block_evictions += 1;
                self.translation_blocks -= 1;
            }
        }
        self.blocks[start + victim] =
            RefBlock { valid: true, dirty, tag, kind, asid, size, rrip: 0, lru: 0, reuse: 0, prefetched };
        if kind.is_translation() {
            self.translation_blocks += 1;
        }
        if prefetched {
            self.prefetch_fills += 1;
        } else {
            self.fills += 1;
        }
        self.on_fill(start, victim, ctx);
        evicted
    }

    fn fill_data(
        &mut self,
        pa: u64,
        dirty: bool,
        prefetched: bool,
        ctx: &ReplacementCtx,
    ) -> Option<RefBlock> {
        let set = self.data_set(pa);
        let tag = self.data_tag(pa);
        self.fill_at(set, tag, BlockKind::Data, Asid::KERNEL, PageSize::Size4K, dirty, prefetched, ctx)
    }

    fn invalidate_data(&mut self, pa: u64) -> bool {
        let start = self.data_set(pa) * self.ways;
        let tag = self.data_tag(pa);
        for w in 0..self.ways {
            if self.blocks[start + w].matches(tag, BlockKind::Data, Asid::KERNEL, PageSize::Size4K) {
                self.blocks[start + w].valid = false;
                return true;
            }
        }
        false
    }

    fn invalidate_translation_blocks_by_asid(&mut self, asid: Asid) -> usize {
        let mut dropped = 0;
        for b in self.blocks.iter_mut() {
            if b.valid && b.kind.is_translation() && b.asid == asid {
                b.valid = false;
                dropped += 1;
            }
        }
        self.translation_blocks -= dropped;
        dropped
    }
}

/// Asserts the packed cache's statistics equal the reference's.
fn assert_stats(model: &RefCache, stats: &CacheStats, translation_blocks: usize, ctx_label: &str) {
    assert_eq!(stats.hits, model.hits, "{ctx_label}: hits diverged");
    assert_eq!(stats.misses, model.misses, "{ctx_label}: misses diverged");
    assert_eq!(stats.fills, model.fills, "{ctx_label}: fills diverged");
    assert_eq!(stats.prefetch_fills, model.prefetch_fills, "{ctx_label}: prefetch fills diverged");
    assert_eq!(stats.evictions, model.evictions, "{ctx_label}: evictions diverged");
    assert_eq!(stats.writebacks, model.writebacks, "{ctx_label}: writebacks diverged");
    assert_eq!(stats.tlb_probe_hits, model.tlb_probe_hits, "{ctx_label}: tlb probe hits diverged");
    assert_eq!(stats.tlb_probe_misses, model.tlb_probe_misses, "{ctx_label}: tlb probe misses diverged");
    assert_eq!(
        stats.tlb_block_evictions, model.tlb_block_evictions,
        "{ctx_label}: tlb block evictions diverged"
    );
    assert_eq!(translation_blocks, model.translation_blocks, "{ctx_label}: translation population diverged");
}

fn assert_same_eviction(packed: Option<EvictedBlock>, reference: Option<RefBlock>, op: u64) {
    match (packed, reference) {
        (None, None) => {}
        (Some(p), Some(r)) => {
            let b = p.block;
            assert_eq!(b.tag, r.tag, "op {op}: evicted tag diverged");
            assert_eq!(b.kind, r.kind, "op {op}: evicted kind diverged");
            assert_eq!(b.asid, r.asid, "op {op}: evicted asid diverged");
            assert_eq!(b.page_size, r.size, "op {op}: evicted size diverged");
            assert_eq!(b.dirty, r.dirty, "op {op}: evicted dirty bit diverged");
            assert_eq!(b.reuse, r.reuse, "op {op}: evicted reuse diverged");
            assert_eq!(b.prefetched, r.prefetched, "op {op}: evicted prefetched bit diverged");
        }
        (p, r) => {
            panic!("op {op}: eviction presence diverged (packed {:?} vs ref {:?})", p.is_some(), r.is_some())
        }
    }
}

/// Drives both models with one op stream and checks every observable.
fn run_differential(policy_name: &str, ops: u64, seed: u64) {
    let cfg = CacheConfig { name: "DUT", size_bytes: 64 << 10, ways: 8, block_bytes: 64, latency: 1 };
    let (policy, rp) = match policy_name {
        "lru" => (Policy::lru(), RefPolicy::Lru),
        "srrip" => (Policy::srrip(), RefPolicy::Srrip),
        _ => (Policy::tlb_aware_srrip(), RefPolicy::TlbAware),
    };
    let mut dut = Cache::new(cfg, policy);
    let mut model = RefCache::new(64 << 10, 8, rp);
    let sets = dut.num_sets();

    let mut rng = SplitMix64::new(seed);
    // Alternate pressure regimes so the TLB-aware arms both fire.
    let contexts = [ReplacementCtx::default(), ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 2.0 }];

    for op in 0..ops {
        let ctx = contexts[(op / 1000 % 2) as usize];
        // Addresses over 4x the cache: plenty of conflict misses.
        let pa = rng.next_below(4 * (64 << 10)) & !63;
        let group = rng.next_below(8192);
        let set = (group as usize) & (sets - 1);
        let tag = group >> sets.trailing_zeros();
        let asid = Asid::new(1 + (rng.next_below(3) as u16));
        let kind = if rng.chance(0.5) { BlockKind::Tlb } else { BlockKind::NestedTlb };
        let size = if rng.chance(0.3) { PageSize::Size2M } else { PageSize::Size4K };
        match rng.next_below(100) {
            // Demand access; fill on miss (the hierarchy's usage pattern).
            0..=44 => {
                let write = rng.chance(0.3);
                let a = dut.access_data(PhysAddr::new(pa), write, &ctx);
                let b = model.access_data(pa, write, &ctx);
                assert_eq!(a, b, "op {op}: data hit/miss diverged");
                if !a {
                    let dirty = rng.chance(0.2);
                    let pf = rng.chance(0.2);
                    let e1 = dut.fill_data(PhysAddr::new(pa), dirty, pf, &ctx);
                    let e2 = model.fill_data(pa, dirty, pf, &ctx);
                    assert_same_eviction(e1, e2, op);
                }
            }
            // Typed probe; fill on miss (Victima's usage pattern).
            45..=79 => {
                let a = dut.probe_translation(set, tag, kind, asid, size, &ctx);
                let b = model.probe_translation(set, tag, kind, asid, size, &ctx);
                assert_eq!(a, b, "op {op}: translation hit/miss diverged");
                if !a {
                    let e1 = dut.fill_translation(set, tag, kind, asid, size, &ctx);
                    let e2 = model.fill_at(set, tag, kind, asid, size, false, false, &ctx);
                    assert_same_eviction(e1, e2, op);
                }
            }
            // Data invalidation (Victima's block transform).
            80..=89 => {
                assert_eq!(
                    dut.invalidate_data(PhysAddr::new(pa)),
                    model.invalidate_data(pa),
                    "op {op}: data invalidation diverged"
                );
            }
            // Presence checks (non-destructive).
            90..=94 => {
                assert_eq!(
                    dut.contains_data(PhysAddr::new(pa)),
                    (0..8).any(|w| model.blocks[model.data_set(pa) * 8 + w].matches(
                        model.data_tag(pa),
                        BlockKind::Data,
                        Asid::KERNEL,
                        PageSize::Size4K
                    )),
                    "op {op}: contains_data diverged"
                );
            }
            // ASID flush (Sec. 6 maintenance).
            _ => {
                let a = dut.invalidate_translation_blocks(|b| b.asid == asid);
                let b = model.invalidate_translation_blocks_by_asid(asid);
                assert_eq!(a, b, "op {op}: asid flush drop count diverged");
            }
        }
    }
    assert_stats(&model, &dut.stats, dut.translation_block_count(), policy_name);

    // Final population must agree block for block.
    let key =
        |tag: u64, kind: BlockKind, asid: Asid, size: PageSize| (tag, kind as u8, asid.raw(), size.shift());
    let mut packed: Vec<_> = dut.iter_valid().map(|b| key(b.tag, b.kind, b.asid, b.page_size)).collect();
    let mut reference: Vec<_> =
        model.blocks.iter().filter(|b| b.valid).map(|b| key(b.tag, b.kind, b.asid, b.size)).collect();
    packed.sort_unstable();
    reference.sort_unstable();
    assert_eq!(packed, reference, "{policy_name}: final populations diverged");
}

#[test]
fn packed_cache_matches_reference_model_lru() {
    run_differential("lru", 100_000, 0xCAFE_0001);
}

#[test]
fn packed_cache_matches_reference_model_srrip() {
    run_differential("srrip", 100_000, 0xCAFE_0002);
}

#[test]
fn packed_cache_matches_reference_model_tlb_aware() {
    run_differential("tlb-aware", 100_000, 0xCAFE_0003);
}
