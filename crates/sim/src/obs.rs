//! Simulator-side observability: the hot-path metric set and the
//! engine's enablement knob.
//!
//! [`SimMetrics`] registers one [`obs::Registry`] entry per hot-path
//! flow — TLB/cache/PWC hits and misses, walk depths and latencies,
//! prefetch fills, frame-pool pressure — and hands the `Copy` metric ids
//! to [`crate::system::System`]'s instrumentation sites. The whole
//! struct lives behind an `Option` on the system (the same pattern as
//! the trace record hook and the feature tracker), so a disabled run
//! pays exactly one `Option` discriminant test per site and allocates
//! nothing (`crates/sim/tests/obs_overhead.rs` pins this). Enabled
//! recording goes through an [`obs::LocalBuf`] — the system owns its
//! metric set exclusively, so the hot path pays a plain `Cell` add,
//! not an atomic RMW; deltas drain into the shared registry when a
//! snapshot is taken.
//!
//! Metrics mirror deterministic simulation events and *span the whole
//! execution* (warm-up included) — they are diagnostics, not results.
//! [`crate::stats::SimStats`] remains the sole source of `--check`
//! truth; nothing here feeds a fingerprint or a baseline artifact.
//!
//! # Metric naming
//!
//! Dotted lowercase paths, `sim.`-rooted: `sim.<component>.<event>`
//! (counters), with histograms named after the observed quantity
//! (`sim.ptw.depth` observes per-walk memory accesses). The daemon's
//! registry uses the `svc.` root; see DESIGN.md "Observability".

use obs::{HistSnapshot, LocalBuf, MetricId, MetricValue, Registry};
use std::sync::Arc;

/// Whether (and how much of) the observability layer a run enables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No metrics, no tracing: the instrumentation handles stay `None`.
    #[default]
    Off,
    /// Hot-path metrics only (the throughput-bench configuration).
    Metrics,
    /// Metrics plus phase-span tracing.
    Full,
}

impl ObsMode {
    /// Reads the `VICTIMA_OBS` environment knob: unset, empty, `0` or
    /// `off` → [`ObsMode::Off`]; `metrics` → [`ObsMode::Metrics`];
    /// anything else (`1`, `full`, `trace`) → [`ObsMode::Full`].
    pub fn from_env() -> Self {
        match std::env::var("VICTIMA_OBS").as_deref() {
            Err(_) | Ok("") | Ok("0") | Ok("off") => ObsMode::Off,
            Ok("metrics") => ObsMode::Metrics,
            Ok(_) => ObsMode::Full,
        }
    }

    /// Whether hot-path metrics are collected.
    pub fn metrics_enabled(self) -> bool {
        self != ObsMode::Off
    }

    /// Whether phase spans are collected.
    pub fn tracing_enabled(self) -> bool {
        self == ObsMode::Full
    }
}

/// The simulator's registered metric set plus its backing registry.
/// Boxed behind `Option` on [`crate::system::System`].
#[derive(Debug)]
pub struct SimMetrics {
    reg: Arc<Registry>,
    /// Single-writer buffer the hot path records into: plain `Cell`
    /// adds instead of atomic RMWs (each system owns its metric set
    /// exclusively), drained into `reg` whenever a snapshot is taken.
    buf: LocalBuf,
    /// L1 D-TLB hits (either page-size TLB).
    pub(crate) l1_tlb_hit: MetricId,
    /// L1 D-TLB misses.
    pub(crate) l1_tlb_miss: MetricId,
    /// Unified L2 TLB hits.
    pub(crate) l2_tlb_hit: MetricId,
    /// Unified L2 TLB misses.
    pub(crate) l2_tlb_miss: MetricId,
    /// I-TLB misses (instruction side).
    pub(crate) itlb_miss: MetricId,
    /// Hardware L3 TLB hits (Fig. 8 design point).
    pub(crate) l3_tlb_hit: MetricId,
    /// Victima L2-cache TLB-block probe hits.
    pub(crate) victima_hit: MetricId,
    /// Victima TLB-block insertions (walk- and eviction-flow).
    pub(crate) victima_insert: MetricId,
    /// Victima background (eviction-flow) walks.
    pub(crate) victima_bg_walk: MetricId,
    /// POM-TLB lookup hits.
    pub(crate) pom_hit: MetricId,
    /// POM-TLB lookup misses.
    pub(crate) pom_miss: MetricId,
    /// Demand page-table walks.
    pub(crate) ptw: MetricId,
    /// Walks largely served by the page-walk caches.
    pub(crate) pwc_hit: MetricId,
    /// Walks that had to touch the full radix depth.
    pub(crate) pwc_miss: MetricId,
    /// Histogram: memory accesses per demand walk (walk depth).
    pub(crate) walk_depth: MetricId,
    /// Histogram: demand-walk latency in cycles.
    pub(crate) walk_latency: MetricId,
    /// Histogram: total L2-TLB-miss resolution latency in cycles.
    pub(crate) l2_miss_latency: MetricId,
    /// L1D / L2 / L3 demand hits and misses (finalize-time snapshot).
    pub(crate) cache_hit: [MetricId; 3],
    /// Per-level demand misses.
    pub(crate) cache_miss: [MetricId; 3],
    /// Prefetcher outcomes: lines filled by the prefetchers, per level
    /// (a fill that is later hit shows up in the level's demand hits).
    pub(crate) prefetch_fill: [MetricId; 3],
    /// Gauge: physical frames in use at finalize time.
    pub(crate) frames_used: MetricId,
    /// Gauge: physical frames still free at finalize time.
    pub(crate) frames_free: MetricId,
}

impl SimMetrics {
    /// Builds a fresh registry with every simulator metric registered.
    pub fn install() -> Box<Self> {
        let mut reg = Registry::new();
        let m = |reg: &mut Registry, name: &str| reg.counter(name);
        Box::new(Self {
            l1_tlb_hit: m(&mut reg, "sim.tlb.l1.hit"),
            l1_tlb_miss: m(&mut reg, "sim.tlb.l1.miss"),
            l2_tlb_hit: m(&mut reg, "sim.tlb.l2.hit"),
            l2_tlb_miss: m(&mut reg, "sim.tlb.l2.miss"),
            itlb_miss: m(&mut reg, "sim.tlb.itlb.miss"),
            l3_tlb_hit: m(&mut reg, "sim.tlb.l3.hit"),
            victima_hit: m(&mut reg, "sim.victima.hit"),
            victima_insert: m(&mut reg, "sim.victima.insert"),
            victima_bg_walk: m(&mut reg, "sim.victima.bg_walk"),
            pom_hit: m(&mut reg, "sim.pom.hit"),
            pom_miss: m(&mut reg, "sim.pom.miss"),
            ptw: m(&mut reg, "sim.ptw.walks"),
            pwc_hit: m(&mut reg, "sim.pwc.hit"),
            pwc_miss: m(&mut reg, "sim.pwc.miss"),
            walk_depth: reg.histogram("sim.ptw.depth"),
            walk_latency: reg.histogram("sim.ptw.latency"),
            l2_miss_latency: reg.histogram("sim.tlb.l2_miss_latency"),
            cache_hit: [
                m(&mut reg, "sim.cache.l1d.hit"),
                m(&mut reg, "sim.cache.l2.hit"),
                m(&mut reg, "sim.cache.l3.hit"),
            ],
            cache_miss: [
                m(&mut reg, "sim.cache.l1d.miss"),
                m(&mut reg, "sim.cache.l2.miss"),
                m(&mut reg, "sim.cache.l3.miss"),
            ],
            prefetch_fill: [
                m(&mut reg, "sim.prefetch.l1d.fill"),
                m(&mut reg, "sim.prefetch.l2.fill"),
                m(&mut reg, "sim.prefetch.l3.fill"),
            ],
            frames_used: reg.gauge("sim.frames.used"),
            frames_free: reg.gauge("sim.frames.free"),
            buf: reg.local_buf(),
            reg: Arc::new(reg),
        })
    }

    /// The backing registry, with all buffered deltas drained into it
    /// (for snapshotting or external sharing).
    pub fn registry(&self) -> &Arc<Registry> {
        self.buf.flush_into(&self.reg);
        &self.reg
    }

    /// Decodes every metric in registration order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.buf.flush_into(&self.reg);
        self.reg.snapshot()
    }

    /// Reads one histogram back out (tests, reports).
    pub fn histogram(&self, id: MetricId) -> HistSnapshot {
        self.buf.flush_into(&self.reg);
        self.reg.histogram_snapshot(id)
    }

    /// Increments a counter (allocation-free, non-atomic).
    #[inline]
    pub(crate) fn inc(&self, id: MetricId) {
        self.buf.inc(id);
    }

    /// Adds to a counter (allocation-free, non-atomic).
    #[inline]
    pub(crate) fn add(&self, id: MetricId, n: u64) {
        self.buf.add(id, n);
    }

    /// Stores a gauge level (allocation-free, non-atomic).
    #[inline]
    pub(crate) fn set(&self, id: MetricId, v: u64) {
        self.buf.set(id, v);
    }

    /// Records a histogram observation (allocation-free, non-atomic).
    #[inline]
    pub(crate) fn observe(&self, id: MetricId, v: u64) {
        self.buf.observe(id, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_registers_the_full_metric_set() {
        let m = SimMetrics::install();
        let snap = m.snapshot();
        assert!(snap.len() >= 20);
        assert_eq!(snap[0].0, "sim.tlb.l1.hit");
        assert!(snap.iter().all(|(n, _)| n.starts_with("sim.")));
        m.inc(m.l1_tlb_hit);
        m.observe(m.walk_depth, 4);
        assert_eq!(m.snapshot()[0].1, MetricValue::Counter(1));
        assert_eq!(m.histogram(m.walk_depth).count, 1);
    }

    #[test]
    fn obs_mode_gates_metrics_and_tracing() {
        assert!(!ObsMode::Off.metrics_enabled());
        assert!(ObsMode::Metrics.metrics_enabled());
        assert!(!ObsMode::Metrics.tracing_enabled());
        assert!(ObsMode::Full.metrics_enabled());
        assert!(ObsMode::Full.tracing_enabled());
    }
}
