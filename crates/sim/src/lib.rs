//! Full-system address-translation/timing simulator for the Victima
//! (MICRO 2023) reproduction.
//!
//! A [`System`] wires together one core's memory system — the two-level
//! TLB hierarchy, page-walk caches and hardware walker (`tlb-sim`), the
//! cache hierarchy and DRAM (`mem-sim`), real radix page tables
//! (`page-table`) and, depending on the configured
//! [`TranslationMechanism`], POM-TLB, a hardware L3 TLB, or Victima
//! (`victima`) — and drives it with a workload's memory-reference stream
//! (`workloads`). Both native execution and virtualised execution (nested
//! paging, ideal shadow paging) are supported (Sec. 8, Table 3).
//!
//! Sweeps — the paper's (workload × config) result matrices — run through
//! the parallel batch engine: build a `Vec` of [`RunSpec`]s and hand it
//! to a [`SimEngine`], which fans the runs out over `VICTIMA_JOBS`
//! workers and returns deterministic results in submission order.
//!
//! The multi-programmed evaluation (Figs. 12–13) instantiates several
//! cores over a shared LLC and frame pool: see [`MultiCoreSystem`], the
//! quantum [`Scheduler`] with its context-switch policies, and
//! [`multicore::run_mix_pinned`] (DESIGN.md, "Multi-core model").
//!
//! # Examples
//!
//! ```
//! use sim::{Runner, SystemConfig};
//! use workloads::Scale;
//!
//! let cfg = SystemConfig::victima();
//! let stats = Runner::new(Scale::Tiny).run("RND", &cfg, 20_000, 200_000);
//! assert!(stats.instructions >= 200_000);
//! assert!(stats.cycles() > 0);
//! ```

#![deny(missing_docs)]

pub mod ckpt;
pub mod config;
pub mod engine;
pub mod epochs;
pub mod multicore;
pub mod obs;
pub mod runner;
pub mod sampling;
pub mod scheduler;
pub mod stats;
pub mod system;
pub mod virt;

pub use config::{ExecMode, SystemConfig, TimingConfig, TranslationMechanism};
pub use engine::{suite_specs, RunResult, RunScratch, RunSpec, SimEngine, ENGINE_ID};
pub use epochs::EpochTracker;
pub use multicore::{slot_seed, MultiCoreStats, MultiCoreSystem, ProcSummary};
pub use obs::{ObsMode, SimMetrics};
pub use runner::Runner;
pub use sampling::SamplingConfig;
pub use scheduler::{CtxSwitchPolicy, SchedConfig, SchedMode, Scheduler};
pub use stats::{weighted_speedup, SamplingMeta, SimStats};
pub use system::{ProcessCtx, System};
