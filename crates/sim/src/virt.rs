//! Virtualised translation flows: nested paging's two-dimensional walk,
//! ideal shadow paging, and Victima's virtualised extensions (TLB blocks
//! for guest translations plus nested TLB blocks for gPA→hPA, Figs. 18/19).
//!
//! Hardware TLB entries in virtualised mode hold the *composed* gVA→hPA
//! translation at the splintered granularity: 2MB only when both the
//! guest page and its host backing are 2MB-aligned huge mappings.

use crate::config::{ExecMode, TranslationMechanism};
use crate::system::{Memory, MissResolution, System};
use mem_sim::{BlockKind, MemClass};
use page_table::nested::gpa_as_va_addr;
use tlb_sim::{TlbEntry, WalkOutcome};
use vm_types::{Cycles, PageSize, PhysAddr, VirtAddr};

/// PWC probe latency (mirrors `tlb_sim::pwc::PWC_LATENCY`).
const PWC_LATENCY: Cycles = 2;

impl System {
    /// Resolves an L2 TLB miss in a virtualised mode.
    pub(crate) fn resolve_l2_miss_virt(&mut self, gva: VirtAddr) -> MissResolution {
        match self.cfg.mode {
            ExecMode::VirtualizedShadow => self.shadow_resolve(gva),
            ExecMode::VirtualizedNested => self.nested_resolve(gva),
            ExecMode::Native => unreachable!("native misses use resolve_l2_miss"),
        }
    }

    /// I-SP: one four-level walk of the shadow table (gVA → hPA); shadow
    /// maintenance is free by definition of the ideal baseline.
    fn shadow_resolve(&mut self, gva: VirtAddr) -> MissResolution {
        let ctx = self.epoch.ctx();
        let Memory::Virt { nested } = &mut self.proc.memory else {
            unreachable!("virtualised flow");
        };
        let walk = self
            .walker
            .walk(&mut nested.shadow.table, gva, self.proc.asid, &mut self.hier, &ctx)
            .unwrap_or_else(|| panic!("shadow page fault at {gva}"));
        self.stats.ptws += 1;
        let entry = TlbEntry::with_counters(
            gva.vpn(walk.page_size),
            self.proc.asid,
            walk.page_size,
            walk.frame,
            walk.leaf_pte.ptw_freq(),
            walk.leaf_pte.ptw_cost(),
        );
        MissResolution { entry, latency: walk.latency, components: [0, 0, walk.latency, 0] }
    }

    /// Nested paging resolution, with the POM-TLB / Victima front-ends
    /// when configured.
    fn nested_resolve(&mut self, gva: VirtAddr) -> MissResolution {
        let ctx = self.epoch.ctx();

        // Victima: probe the L2 cache for a guest TLB block (Fig. 19). On
        // a hit the guest walk is skipped entirely; only the gPA→hPA step
        // remains (nested TLB, nested block, or host walk).
        if let Some(v) = self.victima.as_mut() {
            if let Some(hit) = v.probe(self.hier.l2_mut(), gva, self.proc.asid, BlockKind::Tlb, &ctx) {
                // Validate the view — the cluster must actually map this
                // gVA at the hit size (see the native flow) — and compose
                // the entry from the *same* guest translation instead of
                // re-walking. Virtualised TLB blocks store *direct*
                // gVA→hPA mappings (Fig. 19): a hit costs one L2 access
                // and skips both the guest and the host walk.
                if let Some(entry) = self.compose_entry_sw_if_sized(gva, hit.size) {
                    let latency = self.hier.l2().latency();
                    let mut components = [0u64; 4];
                    components[1] += latency;
                    self.stats.victima_hits += 1;
                    return MissResolution { entry, latency, components };
                }
            }
        }

        // POM-TLB (stores composed gVA→hPA translations).
        if self.pom.is_some() {
            let mut pom_lat: Cycles = 0;
            let mut hit: Option<TlbEntry> = None;
            for size in PageSize::ALL {
                let lk = self.pom.as_mut().expect("checked").lookup(gva.vpn(size), self.proc.asid, size);
                let r = self.hier.access(lk.line, false, MemClass::PomTlb, &ctx);
                pom_lat = pom_lat.max(r.latency);
                if let Some(frame) = lk.frame {
                    hit = Some(TlbEntry::new(gva.vpn(size), self.proc.asid, size, frame));
                    break;
                }
            }
            if let Some(entry) = hit {
                self.stats.pom_hits += 1;
                return MissResolution { entry, latency: pom_lat, components: [pom_lat, 0, 0, 0] };
            }
            self.stats.pom_misses += 1;
            let mut res = self.nested_walk(gva, true);
            res.latency += pom_lat;
            res.components[0] += pom_lat;
            // Install the composed translation in the POM-TLB.
            let e = res.entry;
            let line = self.pom.as_mut().expect("checked").insert(e.vpn, e.asid, e.size, e.frame);
            self.hier.access(line, true, MemClass::PomTlb, &ctx);
            return res;
        }

        self.nested_walk(gva, true)
    }

    /// The two-dimensional nested walk (Sec. 2.3): every guest page-table
    /// access needs its own gPA→hPA translation, and so does the final
    /// data page — up to 24 memory accesses when everything misses.
    ///
    /// `demand` distinguishes core-visible walks from Victima's background
    /// eviction-flow walks (traffic without stall, and no demand
    /// statistics).
    pub(crate) fn nested_walk(&mut self, gva: VirtAddr, demand: bool) -> MissResolution {
        let ctx = self.epoch.ctx();
        let gw = {
            let Memory::Virt { nested } = &self.proc.memory else {
                unreachable!("virtualised flow");
            };
            nested.guest.page_table.walk(gva).unwrap_or_else(|| panic!("guest page fault at {gva}"))
        };
        let leaf_level = gw.page_size.leaf_level();
        let mut guest_lat = PWC_LATENCY;
        let mut host_lat: Cycles = 0;
        let mut guest_dram = false;
        let mut accesses = 0u8;
        let deepest = self.walker.pwc.deepest_hit(gva, self.proc.asid, leaf_level);
        for step in gw.steps() {
            if let Some(l) = deepest {
                if step.level >= l {
                    continue;
                }
            }
            // The guest PTE lives at a guest-physical address; translate it.
            let (pte_hpa, h) = self.host_translate(step.pte_paddr, demand);
            host_lat += h;
            let r = self.hier.access(pte_hpa, false, MemClass::Ptw, &ctx);
            guest_lat += r.latency;
            guest_dram |= r.dram_access;
            accesses += 1;
        }
        self.walker.pwc.fill_all(gva, self.proc.asid, leaf_level);

        // Update the guest leaf's predictor counters.
        let mut leaf_pte = gw.leaf_pte;
        {
            let Memory::Virt { nested } = &mut self.proc.memory else {
                unreachable!("virtualised flow");
            };
            nested.guest.page_table.update_leaf(gva, |p| {
                p.bump_ptw_freq();
                if guest_dram {
                    p.bump_ptw_cost();
                }
                leaf_pte = *p;
            });
        }
        if demand {
            self.stats.ptws += 1;
        }

        // Compose the final gVA→hPA entry (+ final host translation).
        let (entry_base, h) = self.compose_entry(gva, gw.page_size, demand);
        host_lat += h;
        let entry = TlbEntry::with_counters(
            entry_base.vpn,
            entry_base.asid,
            entry_base.size,
            entry_base.frame,
            leaf_pte.ptw_freq(),
            leaf_pte.ptw_cost(),
        );

        // Victima: transform the guest leaf PTE cluster (cached under its
        // host-physical address) into a guest TLB block.
        let victima_active = self.victima.is_some();
        if victima_active {
            let leaf_hpa = {
                let Memory::Virt { nested } = &self.proc.memory else {
                    unreachable!("virtualised flow");
                };
                nested.host_translate(gw.leaf_pte_paddr()).map(|(hpa, _)| hpa)
            };
            if let Some(leaf_hpa) = leaf_hpa {
                let wo = WalkOutcome {
                    latency: guest_lat,
                    dram_touched: guest_dram,
                    frame: gw.frame,
                    page_size: gw.page_size,
                    leaf_pte,
                    leaf_pte_paddr: leaf_hpa,
                    memory_accesses: accesses,
                };
                let Some(v) = self.victima.as_mut() else { unreachable!("victima_active checked") };
                let inserted = if demand {
                    v.insert_after_walk(self.hier.l2_mut(), gva, self.proc.asid, BlockKind::Tlb, &wo, &ctx)
                } else {
                    v.insert_after_eviction_walk(
                        self.hier.l2_mut(),
                        gva,
                        self.proc.asid,
                        BlockKind::Tlb,
                        &wo,
                        &ctx,
                    )
                };
                if inserted {
                    self.stats.victima_inserts += 1;
                }
            }
        }

        MissResolution { entry, latency: guest_lat + host_lat, components: [0, 0, guest_lat, host_lat] }
    }

    /// Builds the composed gVA→hPA entry without timing — the TLB-block
    /// hit path, where the hardware reads the composed mapping straight
    /// out of the hit block (Fig. 19). Returns `None` when the guest
    /// mapping's page size differs from `gsize` (a stale 2MB/4KB view):
    /// one guest translation serves both the view validation and the
    /// entry composition.
    fn compose_entry_sw_if_sized(&self, gva: VirtAddr, gsize: PageSize) -> Option<TlbEntry> {
        let Memory::Virt { nested } = &self.proc.memory else {
            unreachable!("virtualised flow");
        };
        let (gpa, s) = nested.guest.page_table.translate(gva)?;
        if s != gsize {
            return None;
        }
        if gsize == PageSize::Size2M {
            let gpa_base = PhysAddr::new(gpa.raw() & !((2u64 << 20) - 1));
            if let Some((hpa_base, PageSize::Size2M)) = nested.host_translate(gpa_base) {
                if hpa_base.page_offset(PageSize::Size2M) == 0 {
                    return Some(TlbEntry::new(
                        gva.vpn(PageSize::Size2M),
                        self.proc.asid,
                        PageSize::Size2M,
                        hpa_base.frame(PageSize::Size4K),
                    ));
                }
            }
        }
        let gpa_piece = PhysAddr::new(gpa.raw() & !0xfff);
        let (hpa_piece, _) = nested.host_translate(gpa_piece).expect("gpa host-mapped");
        Some(TlbEntry::new(
            gva.vpn(PageSize::Size4K),
            self.proc.asid,
            PageSize::Size4K,
            hpa_piece.frame(PageSize::Size4K),
        ))
    }

    /// Builds the composed (possibly splintered) gVA→hPA TLB entry for a
    /// guest page of `gsize`, charging the final host translation.
    fn compose_entry(&mut self, gva: VirtAddr, gsize: PageSize, demand: bool) -> (TlbEntry, Cycles) {
        // Guest-physical address of the accessed 4KB piece.
        let (gpa_page, host_view) = {
            let Memory::Virt { nested } = &self.proc.memory else {
                unreachable!("virtualised flow");
            };
            let (gpa, s) = nested.guest.page_table.translate(gva).expect("guest mapped");
            debug_assert_eq!(s, gsize);
            let gpa_piece = PhysAddr::new(gpa.raw() & !0xfff);
            // For 2MB guest pages, check whether the host backs the whole
            // page with an aligned 2MB mapping (no splintering).
            let host_view = if gsize == PageSize::Size2M {
                let gpa_base = PhysAddr::new(gpa.raw() & !((2u64 << 20) - 1));
                nested.host_translate(gpa_base)
            } else {
                None
            };
            (gpa_piece, host_view)
        };
        let (hpa_piece, lat) = self.host_translate(gpa_page, demand);
        if gsize == PageSize::Size2M {
            if let Some((hpa_base, PageSize::Size2M)) = host_view {
                if hpa_base.page_offset(PageSize::Size2M) == 0 {
                    let entry = TlbEntry::new(
                        gva.vpn(PageSize::Size2M),
                        self.proc.asid,
                        PageSize::Size2M,
                        hpa_base.frame(PageSize::Size4K),
                    );
                    return (entry, lat);
                }
            }
        }
        let entry = TlbEntry::new(
            gva.vpn(PageSize::Size4K),
            self.proc.asid,
            PageSize::Size4K,
            hpa_piece.frame(PageSize::Size4K),
        );
        (entry, lat)
    }

    /// Translates a guest-physical address to host-physical through the
    /// nested TLB, Victima's nested TLB blocks (Fig. 18) and the host
    /// page-table walker, returning the hPA and the latency.
    pub(crate) fn host_translate(&mut self, gpa: PhysAddr, demand: bool) -> (PhysAddr, Cycles) {
        if demand {
            self.stats.host_translations += 1;
        }
        let ctx = self.epoch.ctx();
        let gpa_va = gpa_as_va_addr(gpa);
        let mut latency = self.nested_tlb.latency();

        // Nested TLB, both host page sizes.
        for size in PageSize::ALL {
            if let Some(e) = self.nested_tlb.probe(gpa_va.vpn(size), self.proc.asid, size) {
                if demand {
                    self.stats.nested_tlb_hits += 1;
                }
                return (compose(e.frame, size, gpa_va), latency);
            }
        }

        // Victima: nested TLB block in the L2 cache.
        if let Some(v) = self.victima.as_mut() {
            if let Some(hit) = v.probe(self.hier.l2_mut(), gpa_va, self.proc.asid, BlockKind::NestedTlb, &ctx)
            {
                // One software walk of the host table validates the hit's
                // page-size view *and* yields the entry (previously a
                // translate followed by a full re-walk).
                let entry = {
                    let Memory::Virt { nested } = &self.proc.memory else {
                        unreachable!("virtualised flow");
                    };
                    nested
                        .host_pt
                        .walk(gpa_va)
                        .filter(|w| w.page_size == hit.size)
                        .map(|w| crate::system::soft_walk_entry(gpa_va, self.proc.asid, &w))
                };
                if let Some(e) = entry {
                    latency += self.hier.l2().latency();
                    if demand {
                        self.stats.nested_block_hits += 1;
                    }
                    self.fill_nested_tlb(e);
                    return (compose(e.frame, e.size, gpa_va), latency);
                }
            }
        }

        // Host page-table walk.
        let walk = {
            let Memory::Virt { nested } = &mut self.proc.memory else {
                unreachable!("virtualised flow");
            };
            self.host_walker
                .walk(&mut nested.host_pt, gpa_va, self.proc.asid, &mut self.hier, &ctx)
                .unwrap_or_else(|| panic!("host page fault at gpa {gpa}"))
        };
        if demand {
            self.stats.host_ptws += 1;
        }
        latency += walk.latency;
        let e = TlbEntry::with_counters(
            gpa_va.vpn(walk.page_size),
            self.proc.asid,
            walk.page_size,
            walk.frame,
            walk.leaf_pte.ptw_freq(),
            walk.leaf_pte.ptw_cost(),
        );
        self.fill_nested_tlb(e);
        if let Some(v) = self.victima.as_mut() {
            v.insert_after_walk(
                self.hier.l2_mut(),
                gpa_va,
                self.proc.asid,
                BlockKind::NestedTlb,
                &walk,
                &ctx,
            );
        }
        (compose(walk.frame, walk.page_size, gpa_va), latency)
    }

    /// Fills the nested TLB; a displaced entry runs Victima's nested
    /// eviction flow (background host walk + nested-block insert).
    fn fill_nested_tlb(&mut self, e: TlbEntry) {
        let Some(ev) = self.nested_tlb.fill(e) else {
            return;
        };
        let ev_va = VirtAddr::new(ev.vpn << ev.size.shift());
        let ctx = self.epoch.ctx();
        let Some(v) = self.victima.as_mut() else {
            return;
        };
        if !v.wants_eviction_insert(
            self.hier.l2(),
            ev_va,
            ev.asid,
            BlockKind::NestedTlb,
            ev.size,
            ev.ptw_freq,
            ev.ptw_cost,
            &ctx,
        ) {
            return;
        }
        self.stats.victima_background_walks += 1;
        let walk = {
            let Memory::Virt { nested } = &mut self.proc.memory else {
                unreachable!("virtualised flow");
            };
            self.bg_walker.walk(&mut nested.host_pt, ev_va, ev.asid, &mut self.hier, &ctx)
        };
        if let Some(w) = walk {
            let v = self.victima.as_mut().expect("checked above");
            if v.insert_after_eviction_walk(
                self.hier.l2_mut(),
                ev_va,
                ev.asid,
                BlockKind::NestedTlb,
                &w,
                &ctx,
            ) {
                self.stats.victima_inserts += 1;
            }
        }
    }

    /// Victima's guest-side eviction flow (an L2 TLB entry for a guest
    /// translation was displaced): background 2D walk, then insert the
    /// guest TLB block.
    pub(crate) fn victima_eviction_flow_virt(&mut self, ev: TlbEntry, ev_va: VirtAddr) {
        debug_assert_eq!(self.cfg.mode, ExecMode::VirtualizedNested);
        // TLB entries may be splintered; the TLB *block* is keyed by the
        // guest page size.
        let gsize = self.page_size_of(ev_va);
        let ctx = self.epoch.ctx();
        let v = self.victima.as_mut().expect("victima mechanism has an engine");
        if !v.wants_eviction_insert(
            self.hier.l2(),
            ev_va,
            ev.asid,
            BlockKind::Tlb,
            gsize,
            ev.ptw_freq,
            ev.ptw_cost,
            &ctx,
        ) {
            return;
        }
        self.stats.victima_background_walks += 1;
        // Background 2D walk: full traffic, no core stall, and the
        // eviction-mode insert at the end.
        self.nested_walk(ev_va, false);
    }
}

#[inline]
fn compose(frame: u64, size: PageSize, gpa_va: VirtAddr) -> PhysAddr {
    match size {
        PageSize::Size4K => {
            PhysAddr::from_frame(frame, PageSize::Size4K, gpa_va.page_offset(PageSize::Size4K))
        }
        PageSize::Size2M => {
            PhysAddr::from_frame(frame >> 9, PageSize::Size2M, gpa_va.page_offset(PageSize::Size2M))
        }
    }
}

/// Guards against misuse of virtualised-only mechanisms.
pub(crate) fn assert_mode_supported(mechanism: &TranslationMechanism, mode: ExecMode) {
    if matches!(mechanism, TranslationMechanism::IdealBackstop(_)) {
        assert_eq!(mode, ExecMode::Native, "the Fig. 10 ideal backstop is a native-mode study");
    }
}
