//! End-of-run statistics: everything the paper's figures read off.

use vm_types::{Histogram, ReuseHistogram};

/// How a sampled run's statistics were put together (SMARTS-style
/// interval sampling; see `sim::sampling`). Attached to [`SimStats`]
/// so artifacts record that the numbers are estimates, with how much of
/// the run was measured in detail and how tight the estimate is.
#[derive(Clone, Debug, PartialEq)]
pub struct SamplingMeta {
    /// Detailed measurement windows taken.
    pub periods: u64,
    /// Instructions simulated in detail (sum of the windows; equals
    /// `SimStats::instructions` of the aggregate).
    pub measured_instructions: u64,
    /// Instructions advanced functionally (fast-forward, no timing).
    pub skipped_instructions: u64,
    /// Instructions run in detailed warm-up before each window
    /// (timing discarded; repairs microarchitectural state after each
    /// functional interval).
    pub warm_instructions: u64,
    /// Mean per-window IPC.
    pub ipc_mean: f64,
    /// Half-width of the 95% confidence interval on the window IPC
    /// (`1.96·s/√n`); zero when fewer than two windows were taken.
    pub ipc_ci95: f64,
}

/// Aggregate statistics of one simulation run.
///
/// `PartialEq` compares every counter and distribution exactly — the
/// batch engine's determinism tests rely on byte-identical stats across
/// worker counts.
#[derive(Clone, Debug, PartialEq)]
pub struct SimStats {
    /// Instructions executed (memory + gap instructions).
    pub instructions: u64,
    /// Memory references processed.
    pub mem_refs: u64,
    cycles_f: f64,
    /// Raw translation latency accumulated (pre-exposure).
    pub translation_cycles: u64,
    /// Raw exposed data-stall latency accumulated (pre-exposure factor).
    pub data_cycles: u64,

    /// L1 D-TLB hits (either page size).
    pub l1_tlb_hits: u64,
    /// L1 D-TLB misses.
    pub l1_tlb_misses: u64,
    /// L2 TLB hits.
    pub l2_tlb_hits: u64,
    /// L2 TLB misses.
    pub l2_tlb_misses: u64,
    /// Hardware L3 TLB hits (when configured).
    pub l3_tlb_hits: u64,

    /// Page-table walks (guest-side 2D walks in virtualised mode).
    pub ptws: u64,
    /// Host page-table walks (virtualised mode only).
    pub host_ptws: u64,
    /// Host translations requested during walks / after TLB-block hits
    /// (nested-TLB probes, virtualised mode).
    pub host_translations: u64,
    /// Nested TLB hits.
    pub nested_tlb_hits: u64,
    /// Nested TLB-block (L2 cache) hits.
    pub nested_block_hits: u64,

    /// Total latency of L2-TLB-miss handling (Fig. 9/22/29 numerator).
    pub l2_miss_latency_sum: u64,
    /// ... the POM-TLB lookup component.
    pub l2_miss_pom_component: u64,
    /// ... the L2-cache (Victima TLB-block probe hit) component.
    pub l2_miss_cache_component: u64,
    /// ... the radix-walk component (guest side in virtualised mode).
    pub l2_miss_walk_component: u64,
    /// ... the host-side component (virtualised mode).
    pub l2_miss_host_component: u64,

    /// POM-TLB lookups that hit.
    pub pom_hits: u64,
    /// POM-TLB lookups that missed.
    pub pom_misses: u64,
    /// Victima TLB-block probe hits on the translation path.
    pub victima_hits: u64,
    /// Victima background walks issued by the eviction flow.
    pub victima_background_walks: u64,
    /// Victima TLB blocks inserted.
    pub victima_inserts: u64,

    /// PTW latency distribution (Fig. 4 buckets).
    pub ptw_latency_hist: Histogram,
    /// Mean PTW latency.
    pub ptw_latency_mean: f64,
    /// Fraction of walks that touched DRAM.
    pub ptw_dram_fraction: f64,

    /// L2 cache data-block reuse at eviction (Fig. 11).
    pub l2_data_reuse: ReuseHistogram,
    /// L2 cache TLB-block reuse at eviction (Fig. 24).
    pub l2_tlb_block_reuse: ReuseHistogram,

    /// Mean translation reach provided by TLB blocks in the L2, bytes
    /// (Fig. 23).
    pub reach_mean_bytes: f64,
    /// Peak reach sample.
    pub reach_max_bytes: u64,

    /// Present when these stats were aggregated from sampled detailed
    /// windows rather than one contiguous measured run (`None` for
    /// full-detail runs, so existing baselines compare unchanged).
    pub sampling: Option<SamplingMeta>,
}

impl Default for SimStats {
    fn default() -> Self {
        Self {
            instructions: 0,
            mem_refs: 0,
            cycles_f: 0.0,
            translation_cycles: 0,
            data_cycles: 0,
            l1_tlb_hits: 0,
            l1_tlb_misses: 0,
            l2_tlb_hits: 0,
            l2_tlb_misses: 0,
            l3_tlb_hits: 0,
            ptws: 0,
            host_ptws: 0,
            host_translations: 0,
            nested_tlb_hits: 0,
            nested_block_hits: 0,
            l2_miss_latency_sum: 0,
            l2_miss_pom_component: 0,
            l2_miss_cache_component: 0,
            l2_miss_walk_component: 0,
            l2_miss_host_component: 0,
            pom_hits: 0,
            pom_misses: 0,
            victima_hits: 0,
            victima_background_walks: 0,
            victima_inserts: 0,
            ptw_latency_hist: Histogram::new(20, 10, 17),
            ptw_latency_mean: 0.0,
            ptw_dram_fraction: 0.0,
            l2_data_reuse: ReuseHistogram::new(),
            l2_tlb_block_reuse: ReuseHistogram::new(),
            reach_mean_bytes: 0.0,
            reach_max_bytes: 0,
            sampling: None,
        }
    }
}

impl SimStats {
    /// Adds core cycles (floating-point accumulation).
    #[inline]
    pub fn add_cycles(&mut self, c: f64) {
        self.cycles_f += c;
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles_f.round() as u64
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles_f == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles_f
        }
    }

    /// L2 TLB misses per kilo-instruction (Fig. 5's metric).
    pub fn l2_tlb_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_tlb_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Mean L2-TLB-miss handling latency (Figs. 9/22/29).
    pub fn l2_miss_latency(&self) -> f64 {
        if self.l2_tlb_misses == 0 {
            0.0
        } else {
            self.l2_miss_latency_sum as f64 / self.l2_tlb_misses as f64
        }
    }

    /// Fraction of execution cycles spent on address translation
    /// (exposure-adjusted share is computed by the caller; this is the
    /// raw translation share of `translation + data + base`).
    pub fn translation_cycle_share(&self, t_expose: f64, d_expose: f64) -> f64 {
        let t = self.translation_cycles as f64 * t_expose;
        if self.cycles_f == 0.0 {
            0.0
        } else {
            let _ = d_expose;
            t / self.cycles_f
        }
    }

    /// Speedup of `self` relative to `baseline` (execution-time ratio for
    /// the same instruction count).
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        let self_cpi = self.cycles_f / self.instructions.max(1) as f64;
        let base_cpi = baseline.cycles_f / baseline.instructions.max(1) as f64;
        if self_cpi == 0.0 {
            1.0
        } else {
            base_cpi / self_cpi
        }
    }

    /// Fractional reduction of `self.ptws` relative to `baseline`.
    pub fn ptw_reduction_vs(&self, baseline: &SimStats) -> f64 {
        reduction(self.normalized(self.ptws), baseline.normalized(baseline.ptws))
    }

    /// Fractional reduction of host PTWs relative to `baseline`.
    pub fn host_ptw_reduction_vs(&self, baseline: &SimStats) -> f64 {
        reduction(self.normalized(self.host_ptws), baseline.normalized(baseline.host_ptws))
    }

    fn normalized(&self, count: u64) -> f64 {
        count as f64 / self.instructions.max(1) as f64
    }

    /// Folds one finalized detailed-window's stats into this aggregate
    /// (the `sim::sampling` accumulator). Counters and distributions
    /// sum/merge; derived means (`ptw_latency_mean`, `ptw_dram_fraction`,
    /// `reach_mean_bytes`) combine weighted by their window's population
    /// so the aggregate equals what one long run over the same windows
    /// would report.
    ///
    /// # Panics
    ///
    /// Panics if the histograms' geometries differ (they never do: every
    /// window uses the default [`SimStats`] geometry).
    pub fn absorb_window(&mut self, w: &SimStats) {
        // Weighted means first — they need the pre-absorption counts.
        let ptws = (self.ptws + w.ptws).max(1) as f64;
        self.ptw_latency_mean =
            (self.ptw_latency_mean * self.ptws as f64 + w.ptw_latency_mean * w.ptws as f64) / ptws;
        self.ptw_dram_fraction =
            (self.ptw_dram_fraction * self.ptws as f64 + w.ptw_dram_fraction * w.ptws as f64) / ptws;
        let instrs = (self.instructions + w.instructions).max(1) as f64;
        self.reach_mean_bytes = (self.reach_mean_bytes * self.instructions as f64
            + w.reach_mean_bytes * w.instructions as f64)
            / instrs;
        self.reach_max_bytes = self.reach_max_bytes.max(w.reach_max_bytes);

        self.instructions += w.instructions;
        self.mem_refs += w.mem_refs;
        self.cycles_f += w.cycles_f;
        self.translation_cycles += w.translation_cycles;
        self.data_cycles += w.data_cycles;
        self.l1_tlb_hits += w.l1_tlb_hits;
        self.l1_tlb_misses += w.l1_tlb_misses;
        self.l2_tlb_hits += w.l2_tlb_hits;
        self.l2_tlb_misses += w.l2_tlb_misses;
        self.l3_tlb_hits += w.l3_tlb_hits;
        self.ptws += w.ptws;
        self.host_ptws += w.host_ptws;
        self.host_translations += w.host_translations;
        self.nested_tlb_hits += w.nested_tlb_hits;
        self.nested_block_hits += w.nested_block_hits;
        self.l2_miss_latency_sum += w.l2_miss_latency_sum;
        self.l2_miss_pom_component += w.l2_miss_pom_component;
        self.l2_miss_cache_component += w.l2_miss_cache_component;
        self.l2_miss_walk_component += w.l2_miss_walk_component;
        self.l2_miss_host_component += w.l2_miss_host_component;
        self.pom_hits += w.pom_hits;
        self.pom_misses += w.pom_misses;
        self.victima_hits += w.victima_hits;
        self.victima_background_walks += w.victima_background_walks;
        self.victima_inserts += w.victima_inserts;
        self.ptw_latency_hist.merge(&w.ptw_latency_hist);
        self.l2_data_reuse.merge(&w.l2_data_reuse);
        self.l2_tlb_block_reuse.merge(&w.l2_tlb_block_reuse);
    }
}

fn reduction(ours: f64, theirs: f64) -> f64 {
    if theirs == 0.0 {
        0.0
    } else {
        1.0 - ours / theirs
    }
}

/// Weighted speedup of a multi-programmed run: the mean of each process's
/// co-running IPC over its alone-run IPC (Snavely & Tullsen's metric; the
/// Figs. 12–13 y-axis). 1.0 means no contention loss; `alone_ipc` entries
/// of zero contribute zero.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn weighted_speedup(multi_ipc: &[f64], alone_ipc: &[f64]) -> f64 {
    assert_eq!(multi_ipc.len(), alone_ipc.len(), "one alone-run IPC per process");
    assert!(!multi_ipc.is_empty(), "weighted speedup of zero processes");
    let sum: f64 = multi_ipc.iter().zip(alone_ipc).map(|(&m, &a)| if a == 0.0 { 0.0 } else { m / a }).sum();
    sum / multi_ipc.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accounting_and_ipc() {
        let mut s = SimStats { instructions: 4000, ..SimStats::default() };
        s.add_cycles(1000.0);
        s.add_cycles(1000.0);
        assert_eq!(s.cycles(), 2000);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_math() {
        let s = SimStats { instructions: 1_000_000, l2_tlb_misses: 39_000, ..SimStats::default() };
        assert!((s.l2_tlb_mpki() - 39.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_cpi_ratio() {
        let mut base = SimStats { instructions: 1000, ..SimStats::default() };
        base.add_cycles(2000.0);
        let mut fast = SimStats { instructions: 1000, ..SimStats::default() };
        fast.add_cycles(1000.0);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reductions_normalise_by_instructions() {
        let base = SimStats { instructions: 1000, ptws: 100, host_ptws: 400, ..SimStats::default() };
        let ours = SimStats { instructions: 2000, ptws: 100, host_ptws: 8, ..SimStats::default() };
        // Same PTW count over twice the instructions = 50% reduction.
        assert!((ours.ptw_reduction_vs(&base) - 0.5).abs() < 1e-12);
        assert!(ours.host_ptw_reduction_vs(&base) > 0.98);
    }

    #[test]
    fn miss_latency_handles_zero_misses() {
        let s = SimStats::default();
        assert_eq!(s.l2_miss_latency(), 0.0);
    }

    #[test]
    fn weighted_speedup_is_mean_of_ipc_ratios() {
        // Two processes at half their alone IPC, one unimpeded.
        let ws = weighted_speedup(&[1.0, 0.5, 2.0], &[2.0, 1.0, 2.0]);
        assert!((ws - (0.5 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
        // Zero alone-IPC degrades gracefully.
        assert_eq!(weighted_speedup(&[1.0], &[0.0]), 0.0);
    }
}
