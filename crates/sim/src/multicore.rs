//! The multi-core, multi-programmed system (Figs. 12–13).
//!
//! A [`MultiCoreSystem`] instantiates N cores — each a full [`System`]
//! with private L1/L2 caches, private L1/L2 TLBs, page-walk caches,
//! walkers and (when configured) a Victima engine over its own L2 — in
//! front of **one shared LLC** (L3 + DRAM, sized at the paper's 2MB/core)
//! and **one shared [`FrameAllocator`]**. M ≥ N processes, each with its
//! own [`AddressSpace`](page_table::AddressSpace) under a distinct ASID,
//! are interleaved over the cores by the quantum [`Scheduler`]: pinned
//! placement reproduces the paper's multi-programmed setup, round-robin
//! oversubscription exercises context-switch invalidation policies.
//!
//! Inter-core TLB shootdowns ride the existing single-core hooks: a page
//! migration in one process triggers `tlb_shootdown_asid` on *every* core,
//! dropping the page from all private TLBs, POM-TLB copies and Victima's
//! TLB blocks regardless of where the process last ran.
//!
//! Everything is deterministic: cores step one at a time in index order,
//! the shared LLC and allocator are `Rc<RefCell<_>>` (no threads inside
//! one system), and per-slot workload seeding is derived with
//! [`slot_seed`].

use crate::config::{ExecMode, SystemConfig};
use crate::scheduler::{CtxSwitchPolicy, SchedConfig, Scheduler};
use crate::stats::SimStats;
use crate::system::{ProcessCtx, System};
use mem_sim::SharedLlc;
use page_table::FrameAllocator;
use std::cell::RefCell;
use std::rc::Rc;
use vm_types::{Asid, PhysAddr, SplitMix64, VirtAddr};
use workloads::{mixes::Mix, Scale, Workload};

/// Derives the deterministic seed for mix slot `slot` from a base seed.
/// Distinct slots of the same base draw independent streams, so a mix may
/// contain the same workload twice without replaying identical accesses.
pub fn slot_seed(base: u64, slot: usize) -> u64 {
    let mut rng = SplitMix64::new(base ^ (slot as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    rng.next_u64()
}

/// System-level (cross-core) event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MultiCoreStats {
    /// Context switches performed by the scheduler.
    pub context_switches: u64,
    /// Page migrations (each fans out one shootdown IPI per core).
    pub migrations: u64,
    /// Hardware TLB entries dropped by inter-core shootdowns.
    pub shootdown_invalidations: u64,
}

/// Per-process summary, read after the measured phase.
#[derive(Clone, Debug)]
pub struct ProcSummary {
    /// The process's workload abbreviation.
    pub workload: &'static str,
    /// Its address-space identifier.
    pub asid: Asid,
    /// Instructions retired during the measured phase.
    pub instructions: u64,
    /// Instructions per cycle over the measured phase.
    pub ipc: f64,
}

/// N cores, M processes, one shared LLC and frame allocator.
pub struct MultiCoreSystem {
    cores: Vec<System>,
    /// Parked processes; `None` while resident in a core.
    parked: Vec<Option<ProcessCtx>>,
    /// Which process each core currently holds.
    resident: Vec<usize>,
    scheduler: Scheduler,
    llc: Rc<RefCell<SharedLlc>>,
    alloc: Rc<RefCell<FrameAllocator>>,
    /// Cross-core event counters.
    pub stats: MultiCoreStats,
}

impl std::fmt::Debug for MultiCoreSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCoreSystem")
            .field("cores", &self.cores.len())
            .field("procs", &self.parked.len())
            .finish()
    }
}

impl MultiCoreSystem {
    /// Builds `cores` cores sharing one LLC (L3 scaled to 2MB/core per
    /// Table 3) and one physical-memory pool, with one process per
    /// workload in `workloads` (slot `i` gets ASID `i + 1` and region
    /// placement seeded by [`slot_seed`]). The first N processes start
    /// resident on cores 0..N in slot order.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.mode` is native, `workloads.len() >= cores`, and
    /// the scheduler accepts the (M, N) pair (pinned needs M == N).
    pub fn new(
        cfg: &SystemConfig,
        workloads: Vec<Box<dyn Workload>>,
        cores: usize,
        sched: SchedConfig,
    ) -> Self {
        assert_eq!(cfg.mode, ExecMode::Native, "multi-core systems are native-mode");
        let procs = workloads.len();
        let scheduler = Scheduler::new(sched, procs, cores);

        // Shared backing: every process allocates frames from one pool.
        // Physical memory and the LLC both scale with the core count
        // (Table 3 provisions per core: the config's `phys_mem_bytes` and
        // 2MB of L3 are single-core figures).
        let pool = cfg.phys_mem_bytes * cores as u64;
        let alloc = Rc::new(RefCell::new(FrameAllocator::new(pool, cfg.seed)));
        let mut l3 = cfg.hierarchy.l3.clone();
        l3.size_bytes *= cores as u64;
        let llc = SharedLlc::shared(l3, cfg.hierarchy.dram.clone());

        let mut all_procs: Vec<ProcessCtx> = workloads
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                ProcessCtx::new_native(Asid::new((i + 1) as u16), w, &alloc, slot_seed(cfg.seed, i))
            })
            .collect();

        let mut parked: Vec<Option<ProcessCtx>> = Vec::with_capacity(procs);
        let mut core_systems = Vec::with_capacity(cores);
        // Cores 0..N take processes 0..N; the rest start parked.
        let rest = all_procs.split_off(cores);
        for proc in all_procs {
            core_systems.push(System::new_shared(cfg.clone(), proc, Rc::clone(&llc), &alloc));
            parked.push(None);
        }
        for proc in rest {
            parked.push(Some(proc));
        }

        Self {
            resident: (0..cores).collect(),
            cores: core_systems,
            parked,
            scheduler,
            llc,
            alloc,
            stats: MultiCoreStats::default(),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of processes.
    pub fn num_procs(&self) -> usize {
        self.parked.len()
    }

    /// The shared LLC handle (inspection).
    pub fn llc(&self) -> &Rc<RefCell<SharedLlc>> {
        &self.llc
    }

    /// The cores (per-core `SimStats` live on each [`System`]).
    pub fn cores(&self) -> &[System] {
        &self.cores
    }

    /// Instructions process `p` has retired so far.
    fn retired(&self, p: usize) -> u64 {
        match &self.parked[p] {
            Some(ctx) => ctx.retired,
            None => {
                let core = self.resident.iter().position(|&r| r == p).expect("resident somewhere");
                self.cores[core].process().retired
            }
        }
    }

    /// Where process `p` currently lives: `Some(core)` or `None` (parked).
    fn residency(&self) -> Vec<Option<usize>> {
        let mut out = vec![None; self.parked.len()];
        for (core, &p) in self.resident.iter().enumerate() {
            out[p] = Some(core);
        }
        out
    }

    /// Makes process `p` resident on `core`, applying the context-switch
    /// policy to the core's TLB state first.
    fn make_resident(&mut self, core: usize, p: usize) {
        let old = self.resident[core];
        if old == p {
            return;
        }
        let sys = &mut self.cores[core];
        let outgoing_asid = sys.process().asid();
        match self.scheduler.config().policy {
            CtxSwitchPolicy::AsidTagged => {}
            CtxSwitchPolicy::AsidSelective => {
                sys.invalidate_asid(outgoing_asid);
            }
            CtxSwitchPolicy::FullFlush => sys.context_switch_flush(),
        }
        let mut incoming = self.parked[p].take().expect("picked process is parked");
        sys.swap_process(&mut incoming);
        self.parked[old] = Some(incoming);
        self.resident[core] = p;
        self.stats.context_switches += 1;
    }

    /// Runs every process for `instructions` further instructions, cores
    /// interleaved at quantum granularity in index order.
    pub fn run(&mut self, instructions: u64) {
        let quantum = self.scheduler.config().quantum;
        let targets: Vec<u64> = (0..self.num_procs()).map(|p| self.retired(p) + instructions).collect();
        loop {
            let finished: Vec<bool> = (0..self.num_procs()).map(|p| self.retired(p) >= targets[p]).collect();
            if finished.iter().all(|&f| f) {
                break;
            }
            let mut progressed = false;
            for core in 0..self.cores.len() {
                let residency = self.residency();
                let Some(p) = self.scheduler.pick(core, &finished, &residency) else {
                    continue;
                };
                if self.retired(p) >= targets[p] {
                    continue;
                }
                self.make_resident(core, p);
                let remaining = targets[p] - self.cores[core].process().retired;
                self.cores[core].run_quantum(remaining.min(quantum));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Warm-up, statistics reset, then the measured phase — the multi-core
    /// analogue of [`System::run_with_warmup`]. Both budgets are
    /// *per process*.
    pub fn run_with_warmup(&mut self, warmup: u64, measured: u64) {
        self.run(warmup);
        self.reset_stats();
        self.run(measured);
        for core in &mut self.cores {
            core.finalize_stats();
        }
    }

    /// Clears per-core and cross-core statistics; cache, TLB and scheduler
    /// state stay warm.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
            core.process_mut().reset_counters();
        }
        for slot in self.parked.iter_mut().flatten() {
            slot.reset_counters();
        }
        self.stats = MultiCoreStats::default();
    }

    /// Migrates one 4KB page of process `p` to a fresh frame from the
    /// shared pool and broadcasts the shootdown to every core (the
    /// inter-core IPI protocol). Returns the new physical address.
    pub fn migrate_page(&mut self, p: usize, va: VirtAddr) -> PhysAddr {
        let (new_pa, asid) = match &mut self.parked[p] {
            Some(ctx) => (ctx.migrate_page(va), ctx.asid()),
            None => {
                let core = self.resident.iter().position(|&r| r == p).expect("resident somewhere");
                let proc = self.cores[core].process_mut();
                (proc.migrate_page(va), proc.asid())
            }
        };
        self.stats.migrations += 1;
        for core in &mut self.cores {
            let before = core.invalidation_count();
            core.tlb_shootdown_asid(va, asid);
            self.stats.shootdown_invalidations += core.invalidation_count() - before;
        }
        new_pa
    }

    /// Per-process summaries (measured phase), in slot order.
    pub fn proc_summaries(&self) -> Vec<ProcSummary> {
        let residency = self.residency();
        (0..self.num_procs())
            .map(|p| {
                let ctx = match residency[p] {
                    Some(core) => self.cores[core].process(),
                    None => self.parked[p].as_ref().expect("parked"),
                };
                ProcSummary {
                    workload: ctx.workload_name(),
                    asid: ctx.asid(),
                    instructions: ctx.retired,
                    ipc: ctx.ipc(),
                }
            })
            .collect()
    }

    /// Per-core statistics in core order (TLB MPKIs, walk latencies, …).
    pub fn core_stats(&self) -> Vec<&SimStats> {
        self.cores.iter().map(|c| &c.stats).collect()
    }

    /// Frames handed out from the shared pool (rough footprint gauge).
    pub fn frames_used(&self) -> u64 {
        self.alloc.borrow().frames_used()
    }
}

/// The outcome of one mix run (everything the Figs. 12–13 reports read).
#[derive(Clone, Debug)]
pub struct MixRunResult {
    /// The mix name.
    pub mix: &'static str,
    /// The config's display name.
    pub config_name: String,
    /// Per-process summaries in slot order.
    pub procs: Vec<ProcSummary>,
    /// Per-core statistics in core order.
    pub cores: Vec<SimStats>,
    /// Cross-core event counters.
    pub stats: MultiCoreStats,
}

/// Builds and runs one mix pinned one-process-per-core: the standard
/// Figs. 12–13 measurement. Budgets are per process; slot workloads are
/// seeded with [`slot_seed`] off `cfg.seed`. Deterministic: a pure
/// function of its arguments, safe to fan out on the engine's
/// [`map`](crate::SimEngine::map).
pub fn run_mix_pinned(
    cfg: &SystemConfig,
    mix: &Mix,
    scale: Scale,
    quantum: u64,
    warmup: u64,
    instructions: u64,
) -> MixRunResult {
    let seeds: Vec<u64> = (0..mix.width()).map(|i| slot_seed(cfg.seed, i)).collect();
    let workloads = mix.build(scale, &seeds);
    let mut sys = MultiCoreSystem::new(cfg, workloads, mix.width(), SchedConfig::pinned(quantum));
    sys.run_with_warmup(warmup, instructions);
    MixRunResult {
        mix: mix.name,
        config_name: cfg.name.clone(),
        procs: sys.proc_summaries(),
        cores: sys.core_stats().into_iter().cloned().collect(),
        stats: sys.stats,
    }
}
