//! Warm-state checkpointing: capture a [`System`] at the post-warm-up
//! boundary into a `.vckpt` [`Checkpoint`], and restore one into a
//! freshly built system for byte-identical resumption.
//!
//! The boundary is exactly where [`System::run_with_warmup`] sits after
//! its statistics reset: warm-up has executed, every statistic is zero,
//! and the only things distinguishing the system from a fresh build are
//! its microarchitectural contents and the workload stream position.
//! Capture therefore serializes *state, not statistics*: TLB and cache
//! tag arrays (with replacement clocks), page-walk caches, prefetcher
//! tables, DRAM open rows, the POM-TLB directory, and the page-table
//! access counters — plus the stream position (`refs_consumed`) and a
//! frame-allocator fingerprint. Resume rebuilds the system from the
//! same configuration and seed (construction is deterministic: regions,
//! frames and generator state all derive from the seed), drains the
//! stream back to the recorded position, restores each section, and
//! verifies the fingerprint. Running the measured phase then produces
//! [`SimStats`](crate::SimStats) byte-identical to the uninterrupted
//! run — `tests/checkpoint.rs` pins this.
//!
//! Checkpointing is native-mode only (the virtualised image is not
//! serialized), matching the sampling restriction. Components that are
//! either stateless (the Victima engine — its TLB blocks live *in* the
//! serialized L2 cache words) or rebuilt fresh on both sides of the
//! boundary (the epoch tracker) are deliberately absent.

use crate::config::ExecMode;
use crate::engine::ENGINE_ID;
use crate::system::{Memory, System};
use victima_trace::{Checkpoint, CheckpointMeta, TraceError, TraceScale};
use workloads::Scale;

fn bad(msg: impl Into<String>) -> TraceError {
    TraceError::Format(msg.into())
}

/// Runs `warmup` instructions, resets statistics (the
/// [`System::run_with_warmup`] boundary), and captures the warm state.
///
/// # Errors
///
/// Returns [`TraceError::Format`] for a virtualised system (the guest
/// memory image is not serializable).
pub fn capture_warm(sys: &mut System, scale: Scale, warmup: u64) -> Result<Checkpoint, TraceError> {
    if sys.cfg.mode != ExecMode::Native {
        return Err(bad("virtualised systems cannot be checkpointed (native mode only)"));
    }
    sys.run(warmup);
    sys.reset_stats();
    sys.proc.reset_counters();

    let meta = CheckpointMeta {
        engine: ENGINE_ID.to_string(),
        config: sys.cfg.name.to_string(),
        workload: sys.workload_name().to_string(),
        scale: TraceScale::from(scale),
        seed: sys.cfg.seed,
        warmup,
        refs_consumed: sys.refs_consumed(),
    };
    let mut ck = Checkpoint::new(meta);

    let mut words = Vec::new();
    let grab = |out: &mut Vec<u64>| std::mem::take(out);

    sys.itlb.save_state(&mut words);
    ck.add_section("itlb", grab(&mut words));
    sys.dtlb4k.save_state(&mut words);
    ck.add_section("dtlb4k", grab(&mut words));
    sys.dtlb2m.save_state(&mut words);
    ck.add_section("dtlb2m", grab(&mut words));
    sys.l2_tlb.save_state(&mut words);
    ck.add_section("l2_tlb", grab(&mut words));
    if let Some(l3) = &sys.l3_tlb {
        l3.save_state(&mut words);
        ck.add_section("l3_tlb", grab(&mut words));
    }
    sys.walker.pwc.save_state(&mut words);
    ck.add_section("pwc", grab(&mut words));
    sys.bg_walker.pwc.save_state(&mut words);
    ck.add_section("bg_pwc", grab(&mut words));
    sys.hier.save_state(&mut words);
    ck.add_section("hier", grab(&mut words));
    if let Some(pom) = &sys.pom {
        pom.save_state(&mut words);
        ck.add_section("pom", grab(&mut words));
    }

    let Memory::Native { alloc, aspace } = &sys.proc.memory else {
        unreachable!("native mode checked above");
    };
    aspace.page_table.save_counters(&mut words);
    ck.add_section("pt_counters", grab(&mut words));
    let a = alloc.borrow();
    ck.add_section("frame_alloc", vec![a.frames_used(), a.rng_state(), a.max_skip]);

    Ok(ck)
}

fn section<'a>(ck: &'a Checkpoint, name: &str) -> Result<&'a [u64], TraceError> {
    ck.section(name).ok_or_else(|| bad(format!("checkpoint is missing section {name:?}")))
}

fn apply(name: &str, r: Result<(), String>) -> Result<(), TraceError> {
    r.map_err(|e| bad(format!("section {name:?}: {e}")))
}

/// Restores a checkpoint into `sys`, which must be a *freshly built*
/// system over the same configuration, workload and scale the
/// checkpoint was captured from. On success the system sits at the
/// post-warm-up boundary of the original run: running the measured
/// phase yields byte-identical statistics.
///
/// # Errors
///
/// Returns [`TraceError::Format`] when the checkpoint's identity
/// (engine, configuration, workload, scale, seed) does not match `sys`,
/// when `sys` has already executed, when a section is missing or sized
/// for a different geometry, or when the frame-allocator fingerprint
/// shows the rebuild allocated differently.
pub fn restore_into(sys: &mut System, ck: &Checkpoint, scale: Scale) -> Result<(), TraceError> {
    let span = sys.span_start();
    let r = restore_into_inner(sys, ck, scale);
    if r.is_ok() {
        sys.span_end("checkpoint_restore", span, &[("refs", ck.meta.refs_consumed)]);
    }
    r
}

fn restore_into_inner(sys: &mut System, ck: &Checkpoint, scale: Scale) -> Result<(), TraceError> {
    if sys.cfg.mode != ExecMode::Native {
        return Err(bad("virtualised systems cannot be checkpointed (native mode only)"));
    }
    if sys.refs_consumed() != 0 {
        return Err(bad(format!(
            "restore target must be freshly built ({} references already consumed)",
            sys.refs_consumed()
        )));
    }
    let m = &ck.meta;
    if m.engine != ENGINE_ID {
        return Err(bad(format!("engine mismatch: checkpoint {:?}, this build {ENGINE_ID:?}", m.engine)));
    }
    if m.config != sys.cfg.name {
        return Err(bad(format!("config mismatch: checkpoint {:?}, system {:?}", m.config, sys.cfg.name)));
    }
    if m.workload != sys.workload_name() {
        return Err(bad(format!(
            "workload mismatch: checkpoint {:?}, system {:?}",
            m.workload,
            sys.workload_name()
        )));
    }
    if m.scale != TraceScale::from(scale) {
        return Err(bad(format!("scale mismatch: checkpoint {}, run {:?}", m.scale.name(), scale)));
    }
    if m.seed != sys.cfg.seed {
        return Err(bad(format!("seed mismatch: checkpoint {}, system {}", m.seed, sys.cfg.seed)));
    }

    // Drain the deterministic generator back to the recorded stream
    // position before touching any state: on error the system is dead
    // anyway, but the happy path must consume exactly this many refs.
    sys.drain_stream_refs(m.refs_consumed);

    apply("itlb", sys.itlb.restore_state(section(ck, "itlb")?))?;
    apply("dtlb4k", sys.dtlb4k.restore_state(section(ck, "dtlb4k")?))?;
    apply("dtlb2m", sys.dtlb2m.restore_state(section(ck, "dtlb2m")?))?;
    apply("l2_tlb", sys.l2_tlb.restore_state(section(ck, "l2_tlb")?))?;
    match (&mut sys.l3_tlb, ck.section("l3_tlb")) {
        (Some(l3), Some(words)) => apply("l3_tlb", l3.restore_state(words))?,
        (None, None) => {}
        (Some(_), None) => return Err(bad("checkpoint is missing section \"l3_tlb\"")),
        (None, Some(_)) => return Err(bad("checkpoint has an L3 TLB but this system does not")),
    }
    apply("pwc", sys.walker.pwc.restore_state(section(ck, "pwc")?))?;
    apply("bg_pwc", sys.bg_walker.pwc.restore_state(section(ck, "bg_pwc")?))?;
    apply("hier", sys.hier.restore_state(section(ck, "hier")?))?;
    match (&mut sys.pom, ck.section("pom")) {
        (Some(pom), Some(words)) => apply("pom", pom.restore_state(words))?,
        (None, None) => {}
        (Some(_), None) => return Err(bad("checkpoint is missing section \"pom\"")),
        (None, Some(_)) => return Err(bad("checkpoint has a POM-TLB but this system does not")),
    }

    let pt_words = section(ck, "pt_counters")?;
    let fp = section(ck, "frame_alloc")?;
    let Memory::Native { alloc, aspace } = &mut sys.proc.memory else {
        unreachable!("native mode checked above");
    };
    apply("pt_counters", aspace.page_table.restore_counters(pt_words))?;
    if fp.len() != 3 {
        return Err(bad(format!("section \"frame_alloc\": expected 3 words, got {}", fp.len())));
    }
    let a = alloc.borrow();
    let here = [a.frames_used(), a.rng_state(), a.max_skip];
    if here != [fp[0], fp[1], fp[2]] {
        return Err(bad(format!(
            "frame-allocator fingerprint mismatch (checkpoint {fp:?}, rebuild {here:?}) — \
             different construction?"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use workloads::{registry, Scale};

    const WARMUP: u64 = 2_000;
    const MEASURED: u64 = 10_000;

    fn build(cfg: SystemConfig) -> System {
        let w = registry::by_name_seeded("RND", Scale::Tiny, cfg.seed).unwrap();
        System::new(cfg, w)
    }

    #[test]
    fn capture_restore_resumes_byte_identically() {
        for cfg in [SystemConfig::radix(), SystemConfig::victima(), SystemConfig::pom_tlb()] {
            // The uninterrupted reference run.
            let mut reference = build(cfg.clone());
            reference.run_with_warmup(WARMUP, MEASURED);
            reference.finalize_stats();

            // Capture, round-trip through bytes, restore, resume.
            let mut warm = build(cfg.clone());
            let ck = capture_warm(&mut warm, Scale::Tiny, WARMUP).unwrap();
            let ck = Checkpoint::decode(&ck.encode()).unwrap();
            let mut resumed = build(cfg.clone());
            restore_into(&mut resumed, &ck, Scale::Tiny).unwrap();
            resumed.run(MEASURED);
            resumed.finalize_stats();

            assert_eq!(resumed.stats, reference.stats, "config {}", cfg.name);
        }
    }

    #[test]
    fn restore_rejects_identity_mismatches() {
        let mut warm = build(SystemConfig::radix());
        let ck = capture_warm(&mut warm, Scale::Tiny, WARMUP).unwrap();

        // Wrong config.
        let mut other = build(SystemConfig::victima());
        let err = restore_into(&mut other, &ck, Scale::Tiny).unwrap_err();
        assert!(err.to_string().contains("config mismatch"), "{err}");

        // Wrong scale.
        let mut same = build(SystemConfig::radix());
        let err = restore_into(&mut same, &ck, Scale::Full).unwrap_err();
        assert!(err.to_string().contains("scale mismatch"), "{err}");

        // Wrong seed.
        let mut cfg = SystemConfig::radix();
        cfg.seed ^= 1;
        let mut reseeded = build(cfg);
        let err = restore_into(&mut reseeded, &ck, Scale::Tiny).unwrap_err();
        assert!(err.to_string().contains("seed mismatch"), "{err}");

        // Already-run target.
        let mut used = build(SystemConfig::radix());
        used.run(100);
        let err = restore_into(&mut used, &ck, Scale::Tiny).unwrap_err();
        assert!(err.to_string().contains("freshly built"), "{err}");
    }

    #[test]
    fn restore_rejects_missing_section() {
        let mut warm = build(SystemConfig::radix());
        let full = capture_warm(&mut warm, Scale::Tiny, WARMUP).unwrap();
        let mut stripped = Checkpoint::new(full.meta.clone());
        for (name, words) in full.sections() {
            if name != "hier" {
                stripped.add_section(name, words.to_vec());
            }
        }
        let mut fresh = build(SystemConfig::radix());
        let err = restore_into(&mut fresh, &stripped, Scale::Tiny).unwrap_err();
        assert!(err.to_string().contains("missing section \"hier\""), "{err}");
    }

    #[test]
    fn virtualised_systems_are_rejected() {
        let w = registry::by_name("RND", Scale::Tiny).unwrap();
        let mut sys = System::new(SystemConfig::nested_paging(), w);
        let err = capture_warm(&mut sys, Scale::Tiny, 100).unwrap_err();
        assert!(err.to_string().contains("native mode only"), "{err}");
    }
}
