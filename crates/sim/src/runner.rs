//! Convenience layer for building and running systems on the paper's
//! workload suite. A [`Runner`] is a thin wrapper over the parallel
//! batch engine ([`SimEngine`]): it pins a scale and default budgets and
//! turns (workload, config) pairs into [`crate::RunSpec`]s.

use crate::config::SystemConfig;
use crate::engine::{suite_specs, RunSpec, SimEngine};
use crate::stats::SimStats;
use crate::system::System;
use workloads::{registry, Scale};

/// Builds systems bound to registry workloads and runs them with a
/// warm-up.
///
/// Default instruction budgets come from the `VICTIMA_INSTR` /
/// `VICTIMA_WARMUP` environment variables (see DESIGN.md, "Scale knobs").
#[derive(Clone, Debug)]
pub struct Runner {
    /// Workload footprint scale.
    pub scale: Scale,
    /// Measured instructions per run.
    pub instructions: u64,
    /// Warm-up instructions (statistics discarded).
    pub warmup: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Runner {
    /// Creates a runner with environment-configurable budgets.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            instructions: env_u64("VICTIMA_INSTR", 2_000_000),
            warmup: env_u64("VICTIMA_WARMUP", 200_000),
        }
    }

    /// Creates a runner with explicit budgets.
    pub fn with_budget(scale: Scale, warmup: u64, instructions: u64) -> Self {
        Self { scale, instructions, warmup }
    }

    /// Builds a system for one registry workload.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not one of the paper's 11 names.
    pub fn build(&self, workload: &str, cfg: &SystemConfig) -> System {
        crate::virt::assert_mode_supported(&cfg.mechanism, cfg.mode);
        let w =
            registry::by_name(workload, self.scale).unwrap_or_else(|| panic!("unknown workload {workload}"));
        System::new(cfg.clone(), w)
    }

    /// Turns one (workload, config) pair into a batch spec with the
    /// runner's scale and default budgets.
    pub fn spec(&self, workload: &str, cfg: &SystemConfig) -> RunSpec {
        RunSpec::new(workload, cfg.clone(), self.scale, self.warmup, self.instructions)
    }

    /// Builds, warms, runs and finalises one (workload, system) pair with
    /// explicit budgets.
    pub fn run(&self, workload: &str, cfg: &SystemConfig, warmup: u64, instructions: u64) -> SimStats {
        let spec = RunSpec::new(workload, cfg.clone(), self.scale, warmup, instructions);
        SimEngine::run_one(0, &spec).stats
    }

    /// Runs with the runner's default budgets.
    pub fn run_default(&self, workload: &str, cfg: &SystemConfig) -> SimStats {
        self.run(workload, cfg, self.warmup, self.instructions)
    }

    /// Runs the full 11-workload suite through the parallel engine
    /// (`VICTIMA_JOBS` workers), returning `(name, stats)` pairs in
    /// figure order.
    pub fn run_suite(&self, cfg: &SystemConfig) -> Vec<(&'static str, SimStats)> {
        let engine = SimEngine::new();
        let results = engine.run_batch(suite_specs(cfg, self.scale, self.warmup, self.instructions));
        registry::WORKLOAD_NAMES.iter().zip(results).map(|(&name, r)| (name, r.stats)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    #[test]
    fn tiny_radix_run_produces_activity() {
        let r = Runner::with_budget(Scale::Tiny, 5_000, 50_000);
        let s = r.run("RND", &SystemConfig::radix(), r.warmup, r.instructions);
        assert!(s.instructions >= 50_000);
        assert!(s.cycles() > s.instructions / 4, "at least base CPI");
        assert!(s.l2_tlb_misses > 0, "RND must thrash the TLB");
        assert!(s.ptws > 0);
        assert!(s.ptw_latency_mean > 20.0);
    }

    #[test]
    fn victima_reduces_walks_on_rnd() {
        let r = Runner::with_budget(Scale::Tiny, 20_000, 150_000);
        let base = r.run("RND", &SystemConfig::radix(), r.warmup, r.instructions);
        let vic = r.run("RND", &SystemConfig::victima(), r.warmup, r.instructions);
        assert!(vic.victima_hits > 0, "Victima should serve some misses from the L2 cache");
        assert!(
            vic.ptw_reduction_vs(&base) > 0.05,
            "expected a PTW reduction, got {:.3}",
            vic.ptw_reduction_vs(&base)
        );
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let r = Runner::with_budget(Scale::Tiny, 10, 10);
        r.build("NOPE", &SystemConfig::radix());
    }
}
