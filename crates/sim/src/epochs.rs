//! Epoch-based pressure signals and translation-reach sampling.
//!
//! The paper keys both the TLB-aware replacement policy and the PTW-CP
//! bypass on MPKI signals "the application experiences" (Listing 1,
//! Fig. 15). We measure the L2 TLB MPKI and L2 cache MPKI over
//! 100K-instruction epochs and expose the previous epoch's values as the
//! live [`ReplacementCtx`]. Translation reach (Fig. 23) is sampled every
//! 1K instructions.

use mem_sim::ReplacementCtx;
use vm_types::RunningMean;

/// Instructions per pressure epoch.
pub const EPOCH_INSTRUCTIONS: u64 = 100_000;
/// Instructions per translation-reach sample (Fig. 23's epochs).
pub const REACH_SAMPLE_INSTRUCTIONS: u64 = 1_000;

/// Tracks epochs and produces the live replacement context.
#[derive(Clone, Debug)]
pub struct EpochTracker {
    instr_in_epoch: u64,
    l2_tlb_misses: u64,
    l2_cache_misses: u64,
    ctx: ReplacementCtx,
    reach_clock: u64,
    /// Mean of per-sample translation reach in bytes.
    pub reach: RunningMean,
    /// Largest reach sample observed.
    pub reach_max: u64,
}

impl Default for EpochTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochTracker {
    /// Creates a tracker. The pre-first-epoch context reports high
    /// pressure so mechanisms behave actively during warm-up.
    pub fn new() -> Self {
        Self {
            instr_in_epoch: 0,
            l2_tlb_misses: 0,
            l2_cache_misses: 0,
            ctx: ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 10.0 },
            reach_clock: 0,
            reach: RunningMean::new(),
            reach_max: 0,
        }
    }

    /// The context mechanisms should consult right now.
    #[inline]
    pub fn ctx(&self) -> ReplacementCtx {
        self.ctx
    }

    /// Advances instruction count; rolls the epoch when due. Returns true
    /// when a reach sample is due (caller provides the sample via
    /// [`EpochTracker::sample_reach`]).
    #[inline]
    pub fn on_instructions(&mut self, n: u64) -> bool {
        self.instr_in_epoch += n;
        if self.instr_in_epoch >= EPOCH_INSTRUCTIONS {
            let k = self.instr_in_epoch as f64 / 1000.0;
            self.ctx = ReplacementCtx {
                l2_tlb_mpki: self.l2_tlb_misses as f64 / k,
                l2_cache_mpki: self.l2_cache_misses as f64 / k,
            };
            self.instr_in_epoch = 0;
            self.l2_tlb_misses = 0;
            self.l2_cache_misses = 0;
        }
        self.reach_clock += n;
        if self.reach_clock >= REACH_SAMPLE_INSTRUCTIONS {
            self.reach_clock = 0;
            true
        } else {
            false
        }
    }

    /// Records one L2 TLB miss in the current epoch.
    #[inline]
    pub fn on_l2_tlb_miss(&mut self) {
        self.l2_tlb_misses += 1;
    }

    /// Records one L2 cache (demand) miss in the current epoch.
    #[inline]
    pub fn on_l2_cache_miss(&mut self) {
        self.l2_cache_misses += 1;
    }

    /// Records one translation-reach sample in bytes.
    pub fn sample_reach(&mut self, bytes: u64) {
        self.reach.push(bytes as f64);
        self.reach_max = self.reach_max.max(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_context_reports_pressure() {
        let t = EpochTracker::new();
        assert!(t.ctx().tlb_pressure_high());
        assert!(t.ctx().cache_pressure_high());
    }

    #[test]
    fn epoch_rollover_computes_mpki() {
        let mut t = EpochTracker::new();
        for _ in 0..800 {
            t.on_l2_tlb_miss();
        }
        for _ in 0..100 {
            t.on_l2_cache_miss();
        }
        t.on_instructions(EPOCH_INSTRUCTIONS);
        let ctx = t.ctx();
        assert!((ctx.l2_tlb_mpki - 8.0).abs() < 1e-9);
        assert!((ctx.l2_cache_mpki - 1.0).abs() < 1e-9);
        assert!(ctx.tlb_pressure_high());
        assert!(!ctx.cache_pressure_high());
    }

    #[test]
    fn counters_reset_each_epoch() {
        let mut t = EpochTracker::new();
        t.on_l2_tlb_miss();
        t.on_instructions(EPOCH_INSTRUCTIONS);
        t.on_instructions(EPOCH_INSTRUCTIONS);
        assert_eq!(t.ctx().l2_tlb_mpki, 0.0);
    }

    #[test]
    fn reach_sampling_cadence() {
        let mut t = EpochTracker::new();
        let mut samples = 0;
        for _ in 0..5000 {
            if t.on_instructions(1) {
                samples += 1;
                t.sample_reach(1000);
            }
        }
        assert_eq!(samples, 5);
        assert!((t.reach.mean() - 1000.0).abs() < 1e-9);
        assert_eq!(t.reach_max, 1000);
    }
}
