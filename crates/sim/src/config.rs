//! System configurations: the paper's Table 3 baseline plus every
//! evaluated variant.

use mem_sim::HierarchyConfig;
use tlb_sim::{MmuConfig, PomTlbConfig};
use vm_types::Cycles;

/// Which mechanism backs the L2 TLB on a miss.
#[derive(Clone, Debug)]
pub enum TranslationMechanism {
    /// Conventional four-level radix PTW (the `Radix` baseline; with a
    /// hardware L3 TLB configured in [`MmuConfig::l3_tlb`], this is the
    /// "Opt. L3 TLB" design of Fig. 8).
    Radix,
    /// POM-TLB: a 64K-entry software-managed TLB in DRAM (Ryoo+, ISCA'17).
    PomTlb(PomTlbConfig),
    /// Victima with the TLB-aware SRRIP policy (the paper's design).
    Victima(victima::VictimaConfig),
    /// Victima with TLB-agnostic baseline SRRIP (Fig. 26 ablation).
    VictimaAgnostic(victima::VictimaConfig),
    /// Idealised study of Fig. 10: every L2 TLB miss is served at a fixed
    /// latency (the hit latency of L1/L2/LLC).
    IdealBackstop(Cycles),
    /// Victima combined with a large in-memory software TLB behind it
    /// (the DUCATI-style scheme of Sec. 10, which the paper reports gains
    /// only +0.8% over Victima alone).
    VictimaPom(victima::VictimaConfig, PomTlbConfig),
}

impl TranslationMechanism {
    /// Whether this mechanism runs the Victima engine.
    pub fn is_victima(&self) -> bool {
        matches!(
            self,
            TranslationMechanism::Victima(_)
                | TranslationMechanism::VictimaAgnostic(_)
                | TranslationMechanism::VictimaPom(..)
        )
    }
}

/// Execution environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Native execution, single-level translation.
    Native,
    /// Virtualised execution with nested paging (two-dimensional walks).
    VirtualizedNested,
    /// Virtualised execution with ideal shadow paging (I-SP): one
    /// four-level walk of the shadow table; shadow updates are free.
    VirtualizedShadow,
}

/// Core timing model parameters (see DESIGN.md, "Timing model").
#[derive(Clone, Copy, Debug)]
pub struct TimingConfig {
    /// Sustained non-memory IPC.
    pub issue_width: f64,
    /// Fraction of translation latency exposed to the critical path.
    pub t_expose: f64,
    /// Fraction of load latency exposed (stores retire via the store
    /// buffer and expose nothing).
    pub d_expose: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self { issue_width: 4.0, t_expose: 0.2, d_expose: 0.18 }
    }
}

/// A complete system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Display name (used in experiment tables).
    pub name: String,
    /// MMU shape (TLB sizes and latencies).
    pub mmu: MmuConfig,
    /// Cache hierarchy shape.
    pub hierarchy: HierarchyConfig,
    /// L2-TLB-miss mechanism.
    pub mechanism: TranslationMechanism,
    /// Native or virtualised.
    pub mode: ExecMode,
    /// Core timing parameters.
    pub timing: TimingConfig,
    /// Simulated physical memory (host side in virtualised mode).
    pub phys_mem_bytes: u64,
    /// Deterministic seed for allocators / page-size mixing.
    pub seed: u64,
}

/// CLI keys accepted by [`SystemConfig::by_name`], in display order.
pub const CONFIG_KEYS: [&str; 4] = ["radix", "victima", "victima+stlb", "pom"];

impl SystemConfig {
    /// Resolves a CLI config key ([`CONFIG_KEYS`]) to its configuration —
    /// the shared registry behind `--config` flags and the sweep
    /// service's job requests, so every surface accepts the same names.
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "radix" => Self::radix(),
            "victima" => Self::victima(),
            "victima+stlb" => Self::victima_plus_stlb(),
            "pom" => Self::pom_tlb(),
            _ => return None,
        })
    }

    fn base(name: &str, mechanism: TranslationMechanism, mode: ExecMode) -> Self {
        Self {
            name: name.to_owned(),
            mmu: MmuConfig::baseline(),
            hierarchy: HierarchyConfig::default(),
            mechanism,
            mode,
            timing: TimingConfig::default(),
            phys_mem_bytes: 24 << 30,
            seed: vm_types::DEFAULT_SEED,
        }
    }

    /// The `Radix` baseline (Table 3).
    pub fn radix() -> Self {
        Self::base("Radix", TranslationMechanism::Radix, ExecMode::Native)
    }

    /// Baseline with a resized L2 TLB (Figs. 5–7).
    pub fn with_l2_tlb(entries: usize, latency: Cycles) -> Self {
        let mut cfg = Self::radix();
        cfg.name = format!("L2TLB-{}K-{}cyc", entries / 1024, latency);
        cfg.mmu = MmuConfig::with_l2_tlb(entries, latency);
        cfg
    }

    /// Baseline plus a hardware L3 TLB (Fig. 8, "Opt. L3 TLB").
    pub fn with_l3_tlb(entries: usize, latency: Cycles) -> Self {
        let mut cfg = Self::radix();
        cfg.name = format!("L3TLB-{}K-{}cyc", entries / 1024, latency);
        cfg.mmu = MmuConfig::with_l3_tlb(entries, latency);
        cfg
    }

    /// POM-TLB with the TLB-aware SRRIP at the L2 cache (Table 3).
    pub fn pom_tlb() -> Self {
        Self::base("POM-TLB", TranslationMechanism::PomTlb(PomTlbConfig::default()), ExecMode::Native)
    }

    /// Victima (the paper's design point).
    pub fn victima() -> Self {
        Self::base(
            "Victima",
            TranslationMechanism::Victima(victima::VictimaConfig::default()),
            ExecMode::Native,
        )
    }

    /// Victima plus a 64K-entry in-memory STLB behind it (Sec. 10's
    /// DUCATI-style combination).
    pub fn victima_plus_stlb() -> Self {
        Self::base(
            "Victima+STLB",
            TranslationMechanism::VictimaPom(victima::VictimaConfig::default(), PomTlbConfig::default()),
            ExecMode::Native,
        )
    }

    /// Victima with TLB-agnostic SRRIP (Fig. 26 ablation).
    pub fn victima_agnostic_srrip() -> Self {
        Self::base(
            "Victima-agnostic-SRRIP",
            TranslationMechanism::VictimaAgnostic(victima::VictimaConfig::default()),
            ExecMode::Native,
        )
    }

    /// The Fig. 10 idealised backstop at the given hit latency.
    pub fn ideal_backstop(latency: Cycles, name: &str) -> Self {
        Self::base(name, TranslationMechanism::IdealBackstop(latency), ExecMode::Native)
    }

    /// Virtualised baseline: nested paging (Table 3, "Nested Paging").
    pub fn nested_paging() -> Self {
        Self::base("NP", TranslationMechanism::Radix, ExecMode::VirtualizedNested)
    }

    /// Virtualised POM-TLB.
    pub fn pom_tlb_virt() -> Self {
        Self::base(
            "POM-TLB-virt",
            TranslationMechanism::PomTlb(PomTlbConfig::default()),
            ExecMode::VirtualizedNested,
        )
    }

    /// Ideal shadow paging (I-SP).
    pub fn ideal_shadow_paging() -> Self {
        Self::base("I-SP", TranslationMechanism::Radix, ExecMode::VirtualizedShadow)
    }

    /// Virtualised Victima (TLB blocks + nested TLB blocks).
    pub fn victima_virt() -> Self {
        Self::base(
            "Victima-virt",
            TranslationMechanism::Victima(victima::VictimaConfig::default()),
            ExecMode::VirtualizedNested,
        )
    }

    /// Rescales the L2 cache (Fig. 25 sensitivity study).
    pub fn with_l2_cache_bytes(mut self, bytes: u64) -> Self {
        self.hierarchy.l2.size_bytes = bytes;
        self.name = format!("{}-L2-{}MB", self.name, bytes >> 20);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_keys_all_resolve() {
        for key in CONFIG_KEYS {
            assert!(SystemConfig::by_name(key).is_some(), "{key} must resolve");
        }
        assert_eq!(SystemConfig::by_name("radix").unwrap().name, "Radix");
        assert_eq!(SystemConfig::by_name("pom").unwrap().name, "POM-TLB");
        assert!(SystemConfig::by_name("Radix").is_none(), "keys are lowercase CLI spellings");
    }

    #[test]
    fn named_configs_have_expected_shapes() {
        assert!(matches!(SystemConfig::radix().mechanism, TranslationMechanism::Radix));
        assert!(SystemConfig::victima().mechanism.is_victima());
        assert!(SystemConfig::victima_agnostic_srrip().mechanism.is_victima());
        assert_eq!(SystemConfig::nested_paging().mode, ExecMode::VirtualizedNested);
        assert_eq!(SystemConfig::ideal_shadow_paging().mode, ExecMode::VirtualizedShadow);
    }

    #[test]
    fn l2_tlb_sweep_points() {
        let cfg = SystemConfig::with_l2_tlb(65536, 39);
        assert_eq!(cfg.mmu.l2_tlb.entries, 65536);
        assert_eq!(cfg.mmu.l2_tlb.latency, 39);
        assert!(cfg.name.contains("64K"));
    }

    #[test]
    fn cache_resize_builder() {
        let cfg = SystemConfig::victima().with_l2_cache_bytes(8 << 20);
        assert_eq!(cfg.hierarchy.l2.size_bytes, 8 << 20);
        assert!(cfg.name.contains("8MB"));
    }

    #[test]
    fn timing_defaults_are_sane() {
        let t = TimingConfig::default();
        assert!(t.issue_width >= 1.0);
        assert!((0.0..=1.0).contains(&t.t_expose));
        assert!((0.0..=1.0).contains(&t.d_expose));
    }
}
