//! Parallel batch execution engine.
//!
//! Every result in the paper is a matrix of (workload × config × mode)
//! simulations. [`SimEngine`] takes that matrix as a flat `Vec` of
//! [`RunSpec`]s, fans the runs out across a scoped worker pool, and
//! returns [`RunResult`]s in submission order. Each run is a pure
//! function of its spec — workloads are constructed *on the worker* from
//! the registry's `Send` builders and seeded per spec — so the returned
//! statistics are byte-identical regardless of worker count or schedule.
//!
//! The worker count comes from the `VICTIMA_JOBS` environment variable,
//! defaulting to the machine's available parallelism (see DESIGN.md,
//! "Scale knobs").
//!
//! # Examples
//!
//! ```
//! use sim::{RunSpec, SimEngine, SystemConfig};
//! use workloads::Scale;
//!
//! let engine = SimEngine::with_jobs(2);
//! let specs = vec![
//!     RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 5_000, 50_000),
//!     RunSpec::new("RND", SystemConfig::victima(), Scale::Tiny, 5_000, 50_000),
//! ];
//! let results = engine.run_batch(specs);
//! assert_eq!(results[0].config_name, "Radix");
//! assert!(results[1].stats.instructions >= 50_000);
//! ```

use crate::config::SystemConfig;
use crate::obs::ObsMode;
use crate::sampling::{run_sampled, SamplingConfig};
use crate::stats::SimStats;
use crate::system::System;
use obs::{MetricValue, SpanEvent};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use victima::features::FeatureTracker;
use workloads::{registry, Scale};

/// Engine identity string recorded in artifact provenance (`report`
/// crate). Bump the trailing version when a change intentionally alters
/// simulation results, so stale baselines fail the `--check` gate with a
/// provenance mismatch instead of a wall of metric diffs.
pub const ENGINE_ID: &str = "victima-sim-engine/1";

/// One simulation to run: a (workload, config, scale, budgets, seed)
/// tuple. Specs are cheap to clone and `Send`, so batches can be built
/// anywhere and executed on any worker.
///
/// # Examples
///
/// ```
/// use sim::{RunSpec, SystemConfig};
/// use workloads::Scale;
///
/// let spec = RunSpec::new("BFS", SystemConfig::victima(), Scale::Tiny, 1_000, 10_000).with_seed(7);
/// assert_eq!(spec.label(), "Victima/BFS");
/// assert_eq!(spec.seed, 7);
/// assert!(!spec.collect_features);
/// ```
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Registry workload abbreviation ("BFS", "RND", …).
    pub workload: String,
    /// The system to simulate.
    pub config: SystemConfig,
    /// Workload footprint scale.
    pub scale: Scale,
    /// Warm-up instructions (statistics discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Base seed for the run: drives the workload generator and the
    /// system's allocators. Defaults to the config's seed; two specs
    /// differing only in seed simulate statistically independent runs.
    pub seed: u64,
    /// Collect per-page Table 1 features during the measured window
    /// (slower; used by the Table 2 design study).
    pub collect_features: bool,
    /// Interval-sampling schedule. `None` (the default) runs every
    /// measured instruction in full detail; `Some` runs SMARTS-style
    /// alternating detailed/functional intervals ([`crate::sampling`])
    /// and stamps the result's [`SimStats::sampling`].
    pub sampling: Option<SamplingConfig>,
}

impl RunSpec {
    /// Creates a spec with no feature collection. The run seed is taken
    /// from `config.seed`, so a caller-seeded [`SystemConfig`] keeps its
    /// seed; [`RunSpec::with_seed`] overrides it for the whole run.
    pub fn new(
        workload: impl Into<String>,
        config: SystemConfig,
        scale: Scale,
        warmup: u64,
        instructions: u64,
    ) -> Self {
        let seed = config.seed;
        Self {
            workload: workload.into(),
            config,
            scale,
            warmup,
            instructions,
            seed,
            collect_features: false,
            sampling: None,
        }
    }

    /// Overrides the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-page feature collection.
    pub fn with_features(mut self) -> Self {
        self.collect_features = true;
        self
    }

    /// Runs the measured window under interval sampling instead of full
    /// detail.
    pub fn with_sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = Some(sampling);
        self
    }

    /// A short "config/workload" label for logs.
    pub fn label(&self) -> String {
        format!("{}/{}", self.config.name, self.workload)
    }

    /// The canonical pre-image of [`RunSpec::fingerprint`]: a stable text
    /// rendering of everything that determines this spec's results — the
    /// engine identity, workload, scale, budgets, seed, sampling schedule,
    /// feature collection, and the *fully resolved* system configuration
    /// (so two configs sharing a display name but differing in any
    /// parameter fingerprint differently).
    pub fn fingerprint_text(&self) -> String {
        let sampling = match &self.sampling {
            Some(s) => s.spec(),
            None => "none".to_owned(),
        };
        format!(
            "{} workload={} scale={:?} warmup={} instr={} seed={:#x} sampling={} features={} config={:?}",
            ENGINE_ID,
            self.workload,
            self.scale,
            self.warmup,
            self.instructions,
            self.seed,
            sampling,
            self.collect_features,
            self.config
        )
    }

    /// Content-address of this spec's deterministic result: the 64-bit
    /// FNV-1a hash of [`RunSpec::fingerprint_text`] as 16 lowercase hex
    /// digits. Because every run is a pure function of its spec and the
    /// engine version is folded in via [`ENGINE_ID`], two specs with the
    /// same fingerprint produce byte-identical statistics — the sweep
    /// service's result cache is keyed on exactly this value.
    ///
    /// # Examples
    ///
    /// ```
    /// use sim::{RunSpec, SystemConfig};
    /// use workloads::Scale;
    ///
    /// let a = RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 1_000, 10_000);
    /// let b = a.clone();
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// assert_ne!(a.fingerprint(), a.clone().with_seed(7).fingerprint());
    /// ```
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a64(self.fingerprint_text().as_bytes()))
    }
}

/// 64-bit FNV-1a over a byte string (the spec-fingerprint hash; stable
/// across platforms and builds by construction).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reusable per-worker simulation scratch. Each pool worker owns one and
/// hands it from a finished run to the next spec it picks up, so
/// fill/prefetch buffers keep their grown capacity across runs instead of
/// being reallocated per spec. Purely an allocation-reuse vehicle: it
/// carries no results, so determinism is untouched.
#[derive(Debug, Default)]
pub struct RunScratch {
    /// Recycled stream-prefetch candidate buffer (see
    /// `Hierarchy::set_prefetch_scratch`).
    prefetch: Vec<vm_types::PhysAddr>,
}

/// The outcome of one [`RunSpec`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Index of the spec in the submitted batch.
    pub index: usize,
    /// The spec's workload abbreviation.
    pub workload: String,
    /// The spec's config display name.
    pub config_name: String,
    /// End-of-run statistics.
    pub stats: SimStats,
    /// Wall-clock time this run took on its worker.
    pub wall: Duration,
    /// The feature tracker, when the spec asked for collection.
    pub features: Option<FeatureTracker>,
    /// Phase spans recorded when tracing was enabled (empty otherwise).
    /// Wall-clock payload: never folded into [`SimStats`] or `--check`
    /// artifacts.
    pub spans: Vec<SpanEvent>,
    /// Metric-registry snapshot when metrics were enabled (`None`
    /// otherwise). Deterministic: mirrors simulation events only.
    pub metrics: Option<Vec<(String, MetricValue)>>,
}

/// Multi-threaded batch runner over [`RunSpec`]s.
#[derive(Clone, Debug)]
pub struct SimEngine {
    jobs: usize,
    obs: ObsMode,
}

fn env_jobs() -> usize {
    std::env::var("VICTIMA_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

impl SimEngine {
    /// Creates an engine with the worker count from `VICTIMA_JOBS`
    /// (default: available parallelism).
    pub fn new() -> Self {
        Self::with_jobs(env_jobs())
    }

    /// Creates an engine with an explicit worker count (clamped to ≥ 1).
    /// Observability defaults to the ambient `VICTIMA_OBS` knob
    /// ([`ObsMode::from_env`]); [`SimEngine::with_obs`] overrides it.
    pub fn with_jobs(jobs: usize) -> Self {
        Self { jobs: jobs.max(1), obs: ObsMode::from_env() }
    }

    /// Overrides the observability mode for every run this engine
    /// executes. Metrics and spans ride back on the [`RunResult`];
    /// statistics are identical in every mode.
    pub fn with_obs(mut self, obs: ObsMode) -> Self {
        self.obs = obs;
        self
    }

    /// The engine's observability mode.
    pub fn obs(&self) -> ObsMode {
        self.obs
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Builds and runs one spec to completion. Pure function of the spec
    /// (plus `index`, which is echoed into the result): this is the unit
    /// of work the pool schedules, and the determinism guarantee rests on
    /// it touching no shared state.
    ///
    /// # Panics
    ///
    /// Panics if the spec names an unknown workload or pairs a mechanism
    /// with an unsupported execution mode.
    pub fn run_one(index: usize, spec: &RunSpec) -> RunResult {
        Self::run_one_reusing(index, spec, &mut RunScratch::default())
    }

    /// [`SimEngine::run_one`] with a caller-owned [`RunScratch`]: the
    /// worker-pool entry point, which recycles each worker's buffers
    /// across the specs it executes.
    pub fn run_one_reusing(index: usize, spec: &RunSpec, scratch: &mut RunScratch) -> RunResult {
        Self::run_one_observed(index, spec, scratch, ObsMode::from_env())
    }

    /// [`SimEngine::run_one_reusing`] with an explicit observability
    /// mode. Enablement is post-construction system state (like the
    /// record hook), so the spec fingerprint and the statistics are
    /// untouched in every mode; metrics and spans come back on the
    /// result as side channels.
    pub fn run_one_observed(
        index: usize,
        spec: &RunSpec,
        scratch: &mut RunScratch,
        obs: ObsMode,
    ) -> RunResult {
        let start = Instant::now();
        let mut cfg = spec.config.clone();
        cfg.seed = spec.seed;
        crate::virt::assert_mode_supported(&cfg.mechanism, cfg.mode);
        let workload = registry::by_name_seeded(&spec.workload, spec.scale, spec.seed)
            .unwrap_or_else(|| panic!("unknown workload {}", spec.workload));
        let mut sys = System::new(cfg, workload);
        sys.hier.set_prefetch_scratch(std::mem::take(&mut scratch.prefetch));
        if spec.collect_features {
            sys.enable_feature_tracking();
        }
        if obs.metrics_enabled() {
            sys.enable_metrics();
        }
        if obs.tracing_enabled() {
            sys.enable_tracing();
        }
        match &spec.sampling {
            Some(sampling) => run_sampled(&mut sys, spec.warmup, spec.instructions, sampling),
            None => {
                sys.run_with_warmup(spec.warmup, spec.instructions);
                sys.finalize_stats();
            }
        }
        scratch.prefetch = sys.hier.take_prefetch_scratch();
        RunResult {
            index,
            workload: spec.workload.clone(),
            config_name: spec.config.name.clone(),
            stats: sys.stats.clone(),
            wall: start.elapsed(),
            features: sys.tracker.take(),
            spans: sys.take_tracer().map(|mut t| t.take()).unwrap_or_default(),
            metrics: sys.take_metrics().map(|m| m.snapshot()),
        }
    }

    /// Runs a batch across the worker pool. Results come back in
    /// submission order and are byte-identical for any worker count.
    ///
    /// # Examples
    ///
    /// ```
    /// use sim::{RunSpec, SimEngine, SystemConfig};
    /// use workloads::Scale;
    ///
    /// let specs = vec![
    ///     RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000),
    ///     RunSpec::new("RND", SystemConfig::victima(), Scale::Tiny, 2_000, 20_000),
    /// ];
    /// let results = SimEngine::with_jobs(2).run_batch(specs);
    /// assert_eq!(results.len(), 2);
    /// assert_eq!(results[1].config_name, "Victima");
    /// assert!(results[0].stats.instructions >= 20_000);
    /// ```
    pub fn run_batch(&self, specs: Vec<RunSpec>) -> Vec<RunResult> {
        let obs = self.obs;
        self.map_reusing(specs, RunScratch::default, move |i, spec, scratch| {
            Self::run_one_observed(i, spec, scratch, obs)
        })
    }

    /// Deterministic parallel map over arbitrary work items: applies `f`
    /// to every item on the worker pool and returns the results in item
    /// order. `f` must be a pure function of `(index, item)` — that is
    /// what makes the output schedule-independent. This is the engine's
    /// generic fan-out primitive; [`SimEngine::run_batch`] and the
    /// multi-core mix sweeps are built on it.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_reusing(items, || (), |i, item, ()| f(i, item))
    }

    /// [`SimEngine::map`] with worker-local state: `init` builds one `W`
    /// per pool worker, and `f` receives it mutably alongside each item
    /// the worker executes. `W` must not influence results (it is a
    /// scratch-reuse vehicle — see [`RunScratch`]); determinism still
    /// rests on `f` being a pure function of `(index, item)`.
    pub fn map_reusing<T, R, W, F, I>(&self, items: Vec<T>, init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &mut W) -> R + Sync,
        I: Fn() -> W + Sync,
    {
        let n = self.jobs.min(items.len());
        if n <= 1 {
            let mut scratch = init();
            return items.iter().enumerate().map(|(i, s)| f(i, s, &mut scratch)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..n {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let result = f(i, &items[i], &mut scratch);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
            .collect()
    }

    /// Runs one config over the full 11-workload suite (figure order).
    pub fn run_suite(
        &self,
        cfg: &SystemConfig,
        scale: Scale,
        warmup: u64,
        instructions: u64,
    ) -> Vec<RunResult> {
        self.run_batch(suite_specs(cfg, scale, warmup, instructions))
    }
}

impl Default for SimEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// The 11 suite specs for one config, in figure order.
pub fn suite_specs(cfg: &SystemConfig, scale: Scale, warmup: u64, instructions: u64) -> Vec<RunSpec> {
    registry::WORKLOAD_NAMES
        .iter()
        .map(|&name| RunSpec::new(name, cfg.clone(), scale, warmup, instructions))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_specs() -> Vec<RunSpec> {
        vec![
            RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000),
            RunSpec::new("RND", SystemConfig::victima(), Scale::Tiny, 2_000, 20_000),
            RunSpec::new("XS", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000),
            // A duplicate of the first spec: must produce identical stats.
            RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000),
        ]
    }

    #[test]
    fn results_preserve_submission_order() {
        let results = SimEngine::with_jobs(3).run_batch(tiny_specs());
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert_eq!(results[0].config_name, "Radix");
        assert_eq!(results[1].config_name, "Victima");
        assert_eq!(results[2].workload, "XS");
    }

    #[test]
    fn worker_count_does_not_change_stats() {
        let seq = SimEngine::with_jobs(1).run_batch(tiny_specs());
        let par = SimEngine::with_jobs(4).run_batch(tiny_specs());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.stats, b.stats, "{}: stats diverged across worker counts", a.workload);
        }
    }

    #[test]
    fn duplicated_specs_produce_identical_stats() {
        let results = SimEngine::with_jobs(2).run_batch(tiny_specs());
        assert_eq!(results[0].stats, results[3].stats);
    }

    #[test]
    fn seed_changes_the_run() {
        let base = RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000);
        let reseeded = base.clone().with_seed(0xfeed);
        let results = SimEngine::with_jobs(2).run_batch(vec![base, reseeded]);
        assert_ne!(results[0].stats, results[1].stats, "a fresh seed must perturb the run");
    }

    #[test]
    fn feature_collection_rides_along() {
        let spec = RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000).with_features();
        let r = SimEngine::with_jobs(1).run_batch(vec![spec]);
        assert!(r[0].features.is_some());
        assert!(!r[0].features.as_ref().unwrap().dataset(0.3).is_empty());
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(SimEngine::with_jobs(4).run_batch(Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let spec = RunSpec::new("NOPE", SystemConfig::radix(), Scale::Tiny, 10, 10);
        SimEngine::with_jobs(1).run_batch(vec![spec]);
    }

    #[test]
    fn fingerprints_separate_every_spec_dimension() {
        let base = RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000);
        let same = RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000);
        assert_eq!(base.fingerprint(), same.fingerprint());
        assert_eq!(base.fingerprint().len(), 16);
        let variants = [
            RunSpec::new("XS", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000),
            RunSpec::new("RND", SystemConfig::victima(), Scale::Tiny, 2_000, 20_000),
            RunSpec::new("RND", SystemConfig::radix(), Scale::Small, 2_000, 20_000),
            RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 1_000, 20_000),
            RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 30_000),
            base.clone().with_seed(7),
            base.clone().with_features(),
            base.clone().with_sampling(SamplingConfig { fast: 10_000, detailed: 1_000, warm: 500 }),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{} must differ", v.fingerprint_text());
        }
        // Config *parameters* count, not just the display name.
        let mut tweaked = SystemConfig::radix();
        tweaked.phys_mem_bytes += 1;
        let c = RunSpec::new("RND", tweaked, Scale::Tiny, 2_000, 20_000);
        assert_ne!(base.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_folds_in_the_engine_id() {
        let spec = RunSpec::new("RND", SystemConfig::radix(), Scale::Tiny, 2_000, 20_000);
        assert!(spec.fingerprint_text().starts_with(ENGINE_ID));
    }

    #[test]
    fn env_jobs_parsing() {
        // Engine clamps to >= 1 regardless of input.
        assert_eq!(SimEngine::with_jobs(0).jobs(), 1);
        assert_eq!(SimEngine::with_jobs(7).jobs(), 7);
    }
}
