//! SMARTS-style interval sampling (Wunderlich et al., ISCA 2003):
//! alternate short *detailed* measurement windows with long *functional*
//! fast-forward intervals, and aggregate the windows into one
//! [`SimStats`] with a confidence interval on the per-window IPC.
//!
//! The schedule is `U:D[:W]` — fast-forward `U` instructions, then run
//! `W` instructions of detailed warm-up (timing discarded; repairs the
//! small structures functional mode skips: L1 TLBs, caches, PWCs,
//! prefetchers), then measure `D` instructions in full detail. The run
//! opens with the caller's ordinary warm-up and its first window starts
//! immediately after, so a `U:D` run with one window degenerates to a
//! plain `run_with_warmup`.
//!
//! Each fast-forward interval is itself split in two: a pure *skip*
//! ([`System::skip`]: stream advancement only, no simulation — sound
//! because the page table cannot change while no instructions retire)
//! followed by a [`FUNC_WARM`]-instruction functional-warming tail
//! ([`System::fast_forward`]) that rebuilds the L2 TLB's contents
//! before the window. The tail covers the TLB's reach many times over,
//! so the structure detailed warm-up cannot repair is warm again.
//!
//! Honesty contract: fast-forwarding advances the L2 TLB and the
//! stream but not the rest of the machine, so sampled statistics
//! are estimates. The differential harness (`tests/sampling.rs`) bounds
//! the estimate against full-detail references for every workload; the
//! aggregate carries a [`SamplingMeta`] so artifacts can never pass a
//! sampled number off as an exact one.

use crate::stats::{SamplingMeta, SimStats};
use crate::system::System;

/// Functional-warming tail of each fast-forward interval, in
/// instructions: the stretch immediately before a window's detailed
/// warm-up during which [`System::fast_forward`] fills the L2 TLB;
/// anything earlier is a pure [`System::skip`]. 50K instructions is
/// ~12K references — the paper's 1536-entry L2 TLB is refilled several
/// times over even by a workload that touches a new page every
/// reference.
pub const FUNC_WARM: u64 = 50_000;

/// A sampling schedule: instruction counts for the three interval
/// phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Functional fast-forward instructions per interval (`U`).
    pub fast: u64,
    /// Detailed measured instructions per window (`D`).
    pub detailed: u64,
    /// Detailed warm-up instructions after each fast-forward (`W`).
    pub warm: u64,
}

impl SamplingConfig {
    /// Parses the CLI spelling `U:D` or `U:D:W` (instruction counts;
    /// `W` defaults to `D/2`) and validates the schedule up front
    /// ([`SamplingConfig::validate`]), so malformed flags surface as a
    /// friendly CLI error instead of a panic mid-run.
    ///
    /// # Examples
    ///
    /// ```
    /// use sim::sampling::SamplingConfig;
    /// let c = SamplingConfig::parse("100000:5000").unwrap();
    /// assert_eq!((c.fast, c.detailed, c.warm), (100_000, 5_000, 2_500));
    /// assert!(SamplingConfig::parse("1000:5000").is_err()); // U < D
    /// ```
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!("bad sampling spec {s:?}: expected U:D or U:D:W"));
        }
        let num = |p: &str, what: &str| {
            p.parse::<u64>().map_err(|_| format!("bad sampling spec {s:?}: {what} {p:?} is not a number"))
        };
        let fast = num(parts[0], "fast-forward interval")?;
        let detailed = num(parts[1], "detailed window")?;
        let warm = match parts.get(2) {
            Some(p) => num(p, "warm-up window")?,
            None => detailed / 2,
        };
        let cfg = Self { fast, detailed, warm };
        cfg.validate().map_err(|e| format!("bad sampling spec {s:?}: {e}"))?;
        Ok(cfg)
    }

    /// Checks the schedule is meaningful: the detailed window `D` must be
    /// positive (a zero-width window would measure nothing and never make
    /// progress) and the fast-forward interval `U` must be at least `D` —
    /// a schedule that skips less than it measures is not sampling, and
    /// the estimate contract (detail fraction `D/(U+D+W)` well under 1)
    /// silently breaks. Direct struct construction stays unchecked so
    /// tests can build degenerate schedules deliberately.
    pub fn validate(&self) -> Result<(), String> {
        if self.detailed == 0 {
            return Err("detailed window D must be positive".to_owned());
        }
        if self.fast < self.detailed {
            return Err(format!(
                "fast-forward interval U ({}) must be at least the detailed window D ({}) — \
                 a schedule measuring more than it skips is not sampling; run full detail instead",
                self.fast, self.detailed
            ));
        }
        Ok(())
    }

    /// The canonical `U:D:W` rendering.
    pub fn spec(&self) -> String {
        format!("{}:{}:{}", self.fast, self.detailed, self.warm)
    }
}

/// 95% normal-approximation confidence half-width of a sample mean
/// (`1.96·s/√n`, sample standard deviation; 0 for fewer than two
/// samples).
fn ci95(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    1.96 * var.sqrt() / (n as f64).sqrt()
}

/// Runs `sys` with interval sampling: ordinary `warmup`, then detailed
/// windows of `cfg.detailed` instructions separated by
/// `cfg.fast`-instruction functional intervals (each followed by
/// `cfg.warm` detailed warm-up instructions), until `measured`
/// instructions have been measured in detail. Leaves the aggregate in
/// `sys.stats` with [`SimStats::sampling`] populated; do **not** call
/// [`System::finalize_stats`] afterwards (each window is finalized
/// before being absorbed).
///
/// # Panics
///
/// Panics in virtualised mode (see [`System::fast_forward`]).
pub fn run_sampled(sys: &mut System, warmup: u64, measured: u64, cfg: &SamplingConfig) {
    let t0 = sys.span_start();
    sys.run(warmup);
    sys.span_end("warmup", t0, &[("instr", warmup)]);
    let mut agg = SimStats::default();
    let mut window_ipc = Vec::new();
    let mut measured_done = 0u64;
    let mut skipped = 0u64;
    let mut warmed = 0u64;
    while measured_done < measured {
        let window = cfg.detailed.min(measured - measured_done);
        sys.reset_stats();
        sys.process_mut().reset_counters();
        let t0 = sys.span_start();
        sys.run(window);
        sys.finalize_stats();
        sys.span_end("detailed_window", t0, &[("window", window_ipc.len() as u64), ("instr", window)]);
        window_ipc.push(sys.stats.ipc());
        agg.absorb_window(&sys.stats);
        measured_done += window;
        if measured_done >= measured {
            break;
        }
        let tail = cfg.fast.min(FUNC_WARM);
        let t0 = sys.span_start();
        sys.skip(cfg.fast - tail);
        sys.fast_forward(tail);
        sys.span_end("fast_forward", t0, &[("instr", cfg.fast), ("func_warm_tail", tail)]);
        skipped += cfg.fast;
        let t0 = sys.span_start();
        sys.run(cfg.warm);
        sys.span_end("detailed_warm", t0, &[("instr", cfg.warm)]);
        warmed += cfg.warm;
    }
    agg.sampling = Some(SamplingMeta {
        periods: window_ipc.len() as u64,
        measured_instructions: agg.instructions,
        skipped_instructions: skipped,
        warm_instructions: warmed,
        ipc_mean: window_ipc.iter().sum::<f64>() / window_ipc.len().max(1) as f64,
        ipc_ci95: ci95(&window_ipc),
    });
    sys.stats = agg;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::runner::Runner;

    #[test]
    fn parse_accepts_two_and_three_part_specs() {
        assert_eq!(
            SamplingConfig::parse("50000:2000:1000"),
            Ok(SamplingConfig { fast: 50_000, detailed: 2_000, warm: 1_000 })
        );
        let c = SamplingConfig::parse("9000:400").unwrap();
        assert_eq!(c.warm, 200);
        assert_eq!(c.spec(), "9000:400:200");
        assert!(SamplingConfig::parse("100").is_err());
        assert!(SamplingConfig::parse("a:b").is_err());
        assert!(SamplingConfig::parse("1:0").is_err());
        assert!(SamplingConfig::parse("1:2:3:4").is_err());
    }

    #[test]
    fn parse_rejects_degenerate_schedules_up_front() {
        // Zero-width detailed window.
        let err = SamplingConfig::parse("50000:0").unwrap_err();
        assert!(err.contains("detailed window D must be positive"), "{err}");
        // U < D: measures more than it skips.
        let err = SamplingConfig::parse("1000:5000").unwrap_err();
        assert!(err.contains("must be at least the detailed window"), "{err}");
        // U == D is the boundary and is allowed.
        assert!(SamplingConfig::parse("5000:5000").is_ok());
        // Direct construction stays unchecked (tests build degenerate
        // schedules deliberately), but validate flags them.
        let c = SamplingConfig { fast: 1, detailed: 10, warm: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn ci95_is_zero_for_tiny_samples_and_positive_for_spread() {
        assert_eq!(ci95(&[]), 0.0);
        assert_eq!(ci95(&[1.0]), 0.0);
        assert_eq!(ci95(&[2.0, 2.0, 2.0]), 0.0);
        assert!(ci95(&[1.0, 2.0, 3.0]) > 0.0);
    }

    #[test]
    fn sampled_run_measures_the_requested_budget() {
        let r = Runner::with_budget(workloads::Scale::Tiny, 2_000, 20_000);
        let mut sys = r.build("RND", &SystemConfig::radix());
        let cfg = SamplingConfig { fast: 10_000, detailed: 2_000, warm: 1_000 };
        run_sampled(&mut sys, 2_000, 20_000, &cfg);
        let s = &sys.stats;
        let meta = s.sampling.as_ref().expect("sampled stats carry meta");
        assert!(s.instructions >= 20_000);
        assert_eq!(meta.measured_instructions, s.instructions);
        assert_eq!(meta.periods, 10);
        assert_eq!(meta.skipped_instructions, 9 * 10_000);
        assert_eq!(meta.warm_instructions, 9 * 1_000);
        assert!(meta.ipc_mean > 0.0);
        assert!(s.cycles() > 0);
        assert!(s.l2_tlb_misses > 0, "RND still thrashes the TLB under sampling");
    }

    #[test]
    fn sampled_stats_are_deterministic() {
        let cfg = SamplingConfig { fast: 8_000, detailed: 1_000, warm: 500 };
        let run = || {
            let r = Runner::with_budget(workloads::Scale::Tiny, 1_000, 8_000);
            let mut sys = r.build("XS", &SystemConfig::victima());
            run_sampled(&mut sys, 1_000, 8_000, &cfg);
            sys.stats.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_window_degenerates_to_full_detail() {
        // A detailed window covering the whole budget takes no
        // fast-forward intervals and must match run_with_warmup exactly.
        let r = Runner::with_budget(workloads::Scale::Tiny, 1_000, 10_000);
        let mut full = r.build("RND", &SystemConfig::radix());
        full.run_with_warmup(1_000, 10_000);
        full.finalize_stats();
        let mut sampled = r.build("RND", &SystemConfig::radix());
        let cfg = SamplingConfig { fast: 1_000_000, detailed: 10_000, warm: 0 };
        run_sampled(&mut sampled, 1_000, 10_000, &cfg);
        let meta = sampled.stats.sampling.take().expect("meta present");
        assert_eq!(meta.periods, 1);
        assert_eq!(meta.skipped_instructions, 0);
        assert_eq!(full.stats, sampled.stats, "one all-covering window must be exact");
    }
}
