//! One simulated core's memory system, driven by a workload stream.
//!
//! The translation flow follows Fig. 2 (and Figs. 14/17 for Victima):
//! L1 D-TLBs (per page size) → unified L2 TLB → mechanism-specific
//! backstop (radix walk, hardware L3 TLB, POM-TLB lookup, Victima's
//! parallel L2-cache probe, or the Fig. 10 ideal backstop) → page-table
//! walk. Virtualised flows live in [`crate::virt`].

use crate::config::{ExecMode, SystemConfig, TranslationMechanism};
use crate::epochs::EpochTracker;
use crate::obs::SimMetrics;
use crate::stats::SimStats;
use mem_sim::{BlockKind, Hierarchy, MemClass, MemLevel, Policy, SharedLlc};
use obs::Tracer;
use page_table::{AddressSpace, FrameAllocator, MappedRegion, NestedMemory};
use std::cell::RefCell;
use std::rc::Rc;
use tlb_sim::{PageTableWalker, PomTlb, SetAssocTlb, TlbEntry};
use victima::{features::FeatureTracker, Victima};
use vm_types::{AccessKind, Asid, Cycles, MemRef, PageSize, PhysAddr, VirtAddr};
use workloads::{Workload, WorkloadStream};

/// Where the translated memory image lives.
pub(crate) enum Memory {
    /// Native: one process address space over (possibly shared) physical
    /// memory.
    Native {
        /// Physical frame allocator — shared between every process of a
        /// multi-core system, private otherwise.
        alloc: Rc<RefCell<FrameAllocator>>,
        /// The process.
        aspace: AddressSpace,
    },
    /// Virtualised: a guest VM with nested (and shadow) page tables
    /// (boxed: the image is much larger than the native variant).
    Virt {
        /// The guest memory image.
        nested: Box<NestedMemory>,
    },
}

/// Everything that belongs to the *process* rather than the core: the
/// memory image, the workload stream, the code region and the ASID — plus
/// per-process progress counters so oversubscribed schedules can account
/// each process individually. The multi-core scheduler context-switches by
/// swapping one of these in and out of a core ([`System`]).
pub struct ProcessCtx {
    pub(crate) memory: Memory,
    pub(crate) stream: WorkloadStream,
    pub(crate) code: MappedRegion,
    pub(crate) asid: Asid,
    /// Instructions this process has retired (across every core it ran on).
    pub retired: u64,
    /// Core cycles this process has consumed (fractional accumulation).
    pub cycles: f64,
}

impl std::fmt::Debug for ProcessCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessCtx")
            .field("workload", &self.stream.name())
            .field("asid", &self.asid)
            .field("retired", &self.retired)
            .finish()
    }
}

impl ProcessCtx {
    /// Builds a native-mode process: allocates its address space and code
    /// region from `alloc`, maps the workload's regions, and binds the
    /// stream. `seed` drives region placement (page-size mixing).
    pub fn new_native(
        asid: Asid,
        mut workload: Box<dyn Workload>,
        alloc: &Rc<RefCell<FrameAllocator>>,
        seed: u64,
    ) -> Self {
        let specs = workload.region_specs();
        let (aspace, code, bases) = {
            let mut a = alloc.borrow_mut();
            let mut aspace = AddressSpace::new(asid, &mut a, seed);
            let code = aspace.map_small_region(256 << 10, &mut a);
            let bases: Vec<VirtAddr> =
                specs.iter().map(|s| aspace.map_region(s.bytes, s.huge_fraction, &mut a).base).collect();
            (aspace, code, bases)
        };
        workload.init(&bases);
        Self {
            memory: Memory::Native { alloc: Rc::clone(alloc), aspace },
            stream: WorkloadStream::new(workload),
            code,
            asid,
            retired: 0,
            cycles: 0.0,
        }
    }

    /// The workload name.
    pub fn workload_name(&self) -> &'static str {
        self.stream.name()
    }

    /// The process's address-space identifier.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Instructions per cycle over this process's whole runtime.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.retired as f64 / self.cycles
        }
    }

    /// Zeroes the progress counters (end of warm-up).
    pub fn reset_counters(&mut self) {
        self.retired = 0;
        self.cycles = 0.0;
    }

    /// Remaps one data page of this process to a fresh physical frame (a
    /// migration), as the OS would before issuing a shootdown. Returns the
    /// new ground truth. Native mode only.
    ///
    /// # Panics
    ///
    /// Panics if `va` is unmapped or the process is virtualised.
    pub fn migrate_page(&mut self, va: VirtAddr) -> PhysAddr {
        let Memory::Native { alloc, aspace } = &mut self.memory else {
            panic!("migrate_page supports native mode only");
        };
        let mut alloc = alloc.borrow_mut();
        let old = aspace.page_table.unmap(va.align_down(PageSize::Size4K)).expect("page must be mapped");
        assert_eq!(old.page_size(), PageSize::Size4K, "migration test uses 4KB pages");
        let frame = alloc.alloc_4k();
        aspace.page_table.map(va.align_down(PageSize::Size4K), frame, PageSize::Size4K, &mut alloc);
        aspace.page_table.translate(va).expect("just mapped").0
    }
}

/// A complete simulated core bound to one resident process.
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) hier: Hierarchy,
    pub(crate) itlb: SetAssocTlb,
    pub(crate) dtlb4k: SetAssocTlb,
    pub(crate) dtlb2m: SetAssocTlb,
    pub(crate) l2_tlb: SetAssocTlb,
    pub(crate) l3_tlb: Option<SetAssocTlb>,
    /// Demand walker (guest-side in virtualised mode). Its PWCs serve the
    /// demand path.
    pub(crate) walker: PageTableWalker,
    /// Walker used for Victima's background (eviction-flow) walks.
    pub(crate) bg_walker: PageTableWalker,
    /// Host page-table walker (virtualised mode).
    pub(crate) host_walker: PageTableWalker,
    /// Nested TLB (gPA → hPA, virtualised mode).
    pub(crate) nested_tlb: SetAssocTlb,
    pub(crate) pom: Option<PomTlb>,
    pub(crate) victima: Option<Victima>,
    /// The resident process (swapped by the multi-core scheduler).
    pub(crate) proc: ProcessCtx,
    pub(crate) epoch: EpochTracker,
    /// Run statistics.
    pub stats: SimStats,
    /// Optional per-page feature tracker (Table 2 profiling runs).
    pub tracker: Option<FeatureTracker>,
    /// Optional tap on the consumed reference stream (trace recording):
    /// sees every [`MemRef`] exactly as [`System::step`] consumes it,
    /// warm-up included, so a recorded trace replays the whole run.
    record_hook: Option<Box<dyn FnMut(MemRef)>>,
    /// Optional hot-path metrics ([`crate::obs`]); `None` (the default)
    /// keeps every instrumentation site down to one discriminant test.
    pub(crate) metrics: Option<Box<SimMetrics>>,
    /// Optional phase-span tracer: `run_with_warmup`, the sampling loop
    /// and checkpoint restore record wall-clock phase timings into it.
    /// Timings never reach [`SimStats`] or any `--check` artifact.
    pub(crate) tracer: Option<Tracer>,
    /// Memory references consumed from the stream over the system's
    /// whole lifetime (detailed *and* fast-forwarded; never reset).
    /// This is the stream position a checkpoint records so a resumed
    /// run can drain the generator back to the same point.
    refs_consumed: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("config", &self.cfg.name)
            .field("workload", &self.proc.stream.name())
            .finish()
    }
}

/// Outcome of resolving one L2 TLB miss.
pub(crate) struct MissResolution {
    pub entry: TlbEntry,
    pub latency: Cycles,
    /// Fig. 22/29 components: (pom, l2-cache, walk, host).
    pub components: [Cycles; 4],
}

impl System {
    /// Builds a system: allocates physical memory, maps the workload's
    /// regions (and the virtualised image if configured), and wires up
    /// every component.
    pub fn new(cfg: SystemConfig, mut workload: Box<dyn Workload>) -> Self {
        let asid = Asid::new(1);

        // Build the memory image and map regions.
        let (proc, pom_base) = match cfg.mode {
            ExecMode::Native => {
                let alloc = Rc::new(RefCell::new(FrameAllocator::new(cfg.phys_mem_bytes, cfg.seed)));
                let proc = ProcessCtx::new_native(asid, workload, &alloc, cfg.seed);
                let pom_base = match &cfg.mechanism {
                    TranslationMechanism::PomTlb(p) | TranslationMechanism::VictimaPom(_, p) => {
                        Some(alloc.borrow_mut().alloc_contiguous(p.storage_bytes()))
                    }
                    _ => None,
                };
                (proc, pom_base)
            }
            ExecMode::VirtualizedNested | ExecMode::VirtualizedShadow => {
                let specs = workload.region_specs();
                let footprint: u64 = specs.iter().map(|s| s.bytes).sum();
                // Guest-physical space: footprint plus table overheads and
                // fragmentation-skip slack.
                let guest_phys = footprint * 2 + (1 << 30);
                // Hosts back VM memory with THP (EPT huge pages):
                // 70% of the 2MB chunks of guest-physical space get a
                // host 2MB page (calibrated; see EXPERIMENTS.md).
                let mut nested = NestedMemory::new(asid, guest_phys, cfg.phys_mem_bytes, 0.7, cfg.seed);
                let code = nested.map_small_region(256 << 10);
                let bases: Vec<VirtAddr> =
                    specs.iter().map(|s| nested.map_region(s.bytes, s.huge_fraction).base).collect();
                let pom_base = match &cfg.mechanism {
                    TranslationMechanism::PomTlb(p) | TranslationMechanism::VictimaPom(_, p) => {
                        Some(nested.host_alloc.alloc_contiguous(p.storage_bytes()))
                    }
                    _ => None,
                };
                workload.init(&bases);
                let proc = ProcessCtx {
                    memory: Memory::Virt { nested: Box::new(nested) },
                    stream: WorkloadStream::new(workload),
                    code,
                    asid,
                    retired: 0,
                    cycles: 0.0,
                };
                (proc, pom_base)
            }
        };
        Self::assemble(cfg, proc, pom_base, None)
    }

    /// Builds a core over an externally owned (shared) LLC, bound to a
    /// pre-built native process — the multi-core construction path. The
    /// POM-TLB region, when configured, is carved out of the shared frame
    /// allocator (one private in-DRAM TLB per core).
    pub fn new_shared(
        cfg: SystemConfig,
        proc: ProcessCtx,
        llc: Rc<RefCell<SharedLlc>>,
        alloc: &Rc<RefCell<FrameAllocator>>,
    ) -> Self {
        assert_eq!(cfg.mode, ExecMode::Native, "multi-core cores are native-mode");
        let pom_base = match &cfg.mechanism {
            TranslationMechanism::PomTlb(p) | TranslationMechanism::VictimaPom(_, p) => {
                Some(alloc.borrow_mut().alloc_contiguous(p.storage_bytes()))
            }
            _ => None,
        };
        Self::assemble(cfg, proc, pom_base, Some(llc))
    }

    /// Wires every hardware component around a process.
    fn assemble(
        cfg: SystemConfig,
        proc: ProcessCtx,
        pom_base: Option<PhysAddr>,
        llc: Option<Rc<RefCell<SharedLlc>>>,
    ) -> Self {
        let l2_policy = match &cfg.mechanism {
            TranslationMechanism::Victima(_)
            | TranslationMechanism::PomTlb(_)
            | TranslationMechanism::VictimaPom(..) => Policy::tlb_aware_srrip(),
            _ => Policy::srrip(),
        };
        let hier = match llc {
            Some(llc) => Hierarchy::with_shared_llc(cfg.hierarchy.clone(), l2_policy, llc),
            None => Hierarchy::with_l2_policy(cfg.hierarchy.clone(), l2_policy),
        };
        let pom = match (&cfg.mechanism, pom_base) {
            (TranslationMechanism::PomTlb(p), Some(base))
            | (TranslationMechanism::VictimaPom(_, p), Some(base)) => Some(PomTlb::new(p.clone(), base)),
            _ => None,
        };
        let victima = match &cfg.mechanism {
            TranslationMechanism::Victima(v)
            | TranslationMechanism::VictimaAgnostic(v)
            | TranslationMechanism::VictimaPom(v, _) => Some(Victima::new(v.clone())),
            _ => None,
        };

        Self {
            itlb: SetAssocTlb::new(cfg.mmu.l1_itlb.clone()),
            dtlb4k: SetAssocTlb::new(cfg.mmu.l1_dtlb_4k.clone()),
            dtlb2m: SetAssocTlb::new(cfg.mmu.l1_dtlb_2m.clone()),
            l2_tlb: SetAssocTlb::new(cfg.mmu.l2_tlb.clone()),
            l3_tlb: cfg.mmu.l3_tlb.clone().map(SetAssocTlb::new),
            walker: PageTableWalker::new(),
            bg_walker: PageTableWalker::new(),
            host_walker: PageTableWalker::new(),
            nested_tlb: SetAssocTlb::new(cfg.mmu.nested_tlb.clone()),
            pom,
            victima,
            proc,
            epoch: EpochTracker::new(),
            stats: SimStats::default(),
            tracker: None,
            record_hook: None,
            metrics: None,
            tracer: None,
            refs_consumed: 0,
            hier,
            cfg,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The workload name.
    pub fn workload_name(&self) -> &'static str {
        self.proc.stream.name()
    }

    /// Enables per-page feature collection (Table 2 profiling).
    pub fn enable_feature_tracking(&mut self) {
        self.tracker = Some(FeatureTracker::new());
    }

    /// Installs a tap on the reference stream the core consumes. The
    /// hook fires once per [`MemRef`], *before* the reference executes
    /// and from the very first instruction (warm-up included) — exactly
    /// the stream a `.vtrace` recorder must capture for replay to be
    /// byte-identical to the live run. Replaces any previous hook.
    pub fn set_record_hook(&mut self, hook: Box<dyn FnMut(MemRef)>) {
        self.record_hook = Some(hook);
    }

    /// Removes and returns the record hook, releasing whatever sink it
    /// captured (recorders reclaim their writer through this).
    pub fn take_record_hook(&mut self) -> Option<Box<dyn FnMut(MemRef)>> {
        self.record_hook.take()
    }

    /// Enables hot-path metrics collection into a fresh registry
    /// ([`crate::obs::SimMetrics`]). Like the record hook and the
    /// feature tracker, enablement is post-construction state: it never
    /// enters the config or the spec fingerprint, and it cannot change
    /// simulation results.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(SimMetrics::install());
    }

    /// The installed metric set, when metrics are enabled.
    pub fn metrics(&self) -> Option<&SimMetrics> {
        self.metrics.as_deref()
    }

    /// Removes and returns the metric set (end-of-run harvest).
    pub fn take_metrics(&mut self) -> Option<Box<SimMetrics>> {
        self.metrics.take()
    }

    /// Enables phase-span tracing into a fresh [`Tracer`].
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(Tracer::new());
    }

    /// Removes and returns the tracer (end-of-run harvest).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Stamps a span start when tracing is on (0 otherwise — the stamp
    /// is only ever consumed by [`System::span_end`], which is a no-op
    /// in that case).
    pub(crate) fn span_start(&self) -> u64 {
        self.tracer.as_ref().map_or(0, Tracer::start)
    }

    /// Closes a phase span opened at `start_us`; no-op when tracing is
    /// off.
    pub(crate) fn span_end(&mut self, name: &'static str, start_us: u64, fields: &[(&'static str, u64)]) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(name, start_us, fields);
        }
    }

    /// Runs for `instructions` instructions (memory + gap instructions).
    ///
    /// The budget is counted locally, not off `stats.instructions`, so
    /// callers that clear statistics mid-run (warm-up resets, sampling
    /// windows) always advance by exactly the requested amount.
    pub fn run(&mut self, instructions: u64) {
        let mut advanced = 0u64;
        while advanced < instructions {
            let r = self.proc.stream.next_ref();
            advanced += r.instructions();
            self.step(r);
        }
    }

    /// Runs `warmup` instructions, discards all statistics, then runs
    /// `measured` instructions. The record hook (when installed) sees
    /// every reference of both phases, from the very first warm-up ref,
    /// exactly once — statistics resets never skip or replay hook fires.
    pub fn run_with_warmup(&mut self, warmup: u64, measured: u64) {
        let t0 = self.span_start();
        self.run(warmup);
        self.span_end("warmup", t0, &[("instr", warmup)]);
        self.reset_stats();
        self.proc.reset_counters();
        let t0 = self.span_start();
        self.run(measured);
        self.span_end("measured", t0, &[("instr", measured)]);
    }

    /// Memory references consumed from the workload stream since
    /// construction (never reset; fast-forwarded references included).
    pub fn refs_consumed(&self) -> u64 {
        self.refs_consumed
    }

    /// Advances the system *functionally* for `instructions`
    /// instructions: the workload stream, the L2 TLB's content and the
    /// page-table ground truth move forward, but no timing is accounted
    /// — no cache or DRAM traffic, no prefetcher training, no Victima /
    /// POM-TLB activity, and no PTE counter bumps. This is the
    /// fast-forward phase of SMARTS-style interval sampling
    /// ([`crate::sampling`]): orders of magnitude faster than
    /// [`System::run`], with the smaller structures (L1 TLBs, caches,
    /// PWCs) repaired by the detailed warm-up that precedes each
    /// measurement window. The record hook still sees every reference,
    /// so recording stays exact under sampling.
    ///
    /// # Panics
    ///
    /// Panics in virtualised mode (sampling is native-only).
    pub fn fast_forward(&mut self, instructions: u64) {
        assert_eq!(self.cfg.mode, ExecMode::Native, "fast_forward supports native mode only");
        let asid = self.proc.asid;
        // Page-level short-circuit: consecutive references to the same
        // 4KB-aligned page skip even the L2 TLB probe.
        let mut last_vpn4k = u64::MAX;
        let mut advanced = 0u64;
        while advanced < instructions {
            let r = self.proc.stream.next_ref();
            if let Some(hook) = self.record_hook.as_mut() {
                hook(r);
            }
            self.refs_consumed += 1;
            advanced += r.instructions();
            let vpn4k = r.vaddr.vpn(PageSize::Size4K);
            if vpn4k == last_vpn4k {
                continue;
            }
            last_vpn4k = vpn4k;
            // Walk the page table first (functionally it is a handful of
            // array reads — cheaper than a TLB probe), then fill
            // unconditionally: `fill` refreshes in place when the
            // translation is already resident, so one set scan replaces
            // the probe-then-fill pair. PTE counters are frozen in
            // functional mode, so a refresh writes back an identical
            // payload and only touches the LRU stamp — exactly what a
            // probe hit would do. Fill/eviction statistics are clobbered,
            // but every measurement window starts with `reset_stats`.
            let Memory::Native { aspace, .. } = &self.proc.memory else {
                unreachable!("native flow");
            };
            let walk = aspace
                .page_table
                .walk(r.vaddr)
                .unwrap_or_else(|| panic!("page fault at {}: workload touched an unmapped page", r.vaddr));
            let entry = soft_walk_entry(r.vaddr, asid, &walk);
            // Raw fill: the eviction-side hooks (Victima background
            // walks, POM spills) are timing/traffic mechanisms and stay
            // off in functional mode.
            self.l2_tlb.fill(entry);
        }
    }

    /// Advances the workload stream for `instructions` instructions
    /// without simulating anything at all — not even the functional L2
    /// TLB warming of [`System::fast_forward`]. The record hook still
    /// sees every reference and `refs_consumed` advances, so recording
    /// and checkpoint stream positions stay exact.
    ///
    /// Sound because workloads never page-fault after construction: the
    /// page-table ground truth cannot change while instructions are
    /// skipped, so the only state a skip loses is TLB recency — which
    /// [`crate::sampling`] repairs with a bounded functional-warming
    /// tail before each measurement window.
    pub fn skip(&mut self, instructions: u64) {
        let mut advanced = 0u64;
        while advanced < instructions {
            let r = self.proc.stream.next_ref();
            if let Some(hook) = self.record_hook.as_mut() {
                hook(r);
            }
            self.refs_consumed += 1;
            advanced += r.instructions();
        }
    }

    /// Runs the *resident process* for up to `instructions` more retired
    /// instructions (the multi-core scheduler's quantum unit: core stats
    /// blend processes, per-process progress lives in the [`ProcessCtx`]).
    pub fn run_quantum(&mut self, instructions: u64) {
        let target = self.proc.retired + instructions;
        while self.proc.retired < target {
            let r = self.proc.stream.next_ref();
            self.step(r);
        }
    }

    /// Consumes `refs` references from the workload stream without
    /// simulating them or firing the record hook (checkpoint resume:
    /// generators are deterministic, so draining the stream back to a
    /// recorded position reproduces exactly the stream the saved run
    /// would have continued with).
    pub(crate) fn drain_stream_refs(&mut self, refs: u64) {
        for _ in 0..refs {
            let _ = self.proc.stream.next_ref();
        }
        self.refs_consumed += refs;
    }

    /// The resident process.
    pub fn process(&self) -> &ProcessCtx {
        &self.proc
    }

    /// Mutable access to the resident process (migrations, counter resets).
    pub fn process_mut(&mut self) -> &mut ProcessCtx {
        &mut self.proc
    }

    /// Swaps the resident process with `other` (a context switch). The
    /// caller applies whatever TLB invalidation policy the hardware model
    /// calls for — see `scheduler::CtxSwitchPolicy`.
    pub fn swap_process(&mut self, other: &mut ProcessCtx) {
        std::mem::swap(&mut self.proc, other);
    }

    /// Clears statistics on every component; cache/TLB contents stay warm.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.hier.reset_stats();
        self.itlb.reset_stats();
        self.dtlb4k.reset_stats();
        self.dtlb2m.reset_stats();
        self.l2_tlb.reset_stats();
        if let Some(l3) = &mut self.l3_tlb {
            l3.reset_stats();
        }
        self.walker.reset_stats();
        self.host_walker.reset_stats();
        self.epoch = EpochTracker::new();
        if let Some(v) = &mut self.victima {
            v.stats = Default::default();
        }
        if let Some(p) = &mut self.pom {
            p.stats = Default::default();
        }
    }

    /// Executes one memory reference through the full model.
    fn step(&mut self, r: MemRef) {
        if let Some(hook) = self.record_hook.as_mut() {
            hook(r);
        }
        self.refs_consumed += 1;
        let instrs = r.instructions();
        self.stats.instructions += instrs;
        self.stats.mem_refs += 1;

        // Instruction side: translate and fetch from the small code region.
        let ifetch_lat = self.ifetch(r.pc);

        // Data side.
        let (pa, t_lat) = self.translate_data(r.vaddr, r.kind);
        let ctx = self.epoch.ctx();
        let res = self.hier.access_pc(pa, r.kind.is_write(), MemClass::Data, r.pc, &ctx);
        if matches!(res.served_by, MemLevel::L3 | MemLevel::Dram) {
            self.epoch.on_l2_cache_miss();
        }
        if self.tracker.is_some() {
            let size = self.page_size_of(r.vaddr);
            let asid = self.proc.asid;
            if let Some(t) = self.tracker.as_mut() {
                t.on_access(asid, r.vaddr, size);
                if res.served_by == MemLevel::L2 {
                    t.on_l2_cache_hit(asid, r.vaddr, size);
                }
            }
        }
        let d_stall = if r.kind.is_write() { 0 } else { res.latency };

        self.stats.translation_cycles += t_lat + ifetch_lat;
        self.stats.data_cycles += d_stall;
        let t = &self.cfg.timing;
        let cycles = instrs as f64 / t.issue_width
            + t.t_expose * (t_lat + ifetch_lat) as f64
            + t.d_expose * d_stall as f64;
        self.stats.add_cycles(cycles);
        self.proc.retired += instrs;
        self.proc.cycles += cycles;

        if self.epoch.on_instructions(instrs) {
            let reach = self.hier.l2().translation_block_count() as u64 * 8 * 4096;
            self.epoch.sample_reach(reach);
            self.stats.reach_mean_bytes = self.epoch.reach.mean();
            self.stats.reach_max_bytes = self.epoch.reach_max;
        }
    }

    /// Instruction fetch through the I-TLB and L1I. Returns the exposed
    /// translation latency (nonzero only on I-TLB misses, which are rare
    /// since the code region is small).
    fn ifetch(&mut self, pc: u64) -> Cycles {
        // Code regions are power-of-two sized; masking avoids a 64-bit
        // division per simulated instruction.
        let bytes = self.proc.code.bytes;
        let offset = if bytes.is_power_of_two() { pc & (bytes - 1) } else { pc % bytes };
        let va = self.proc.code.at(offset);
        let vpn = va.vpn(PageSize::Size4K);
        let (frame, lat) = match self.itlb.probe(vpn, self.proc.asid, PageSize::Size4K) {
            Some(e) => (e.frame, 0),
            None => {
                // Miss: L2 TLB, then walk. Code pages are always 4KB.
                if let Some(m) = &self.metrics {
                    m.inc(m.itlb_miss);
                }
                let mut lat = self.l2_tlb.latency();
                let entry = match self.l2_tlb.probe(vpn, self.proc.asid, PageSize::Size4K) {
                    Some(e) => e,
                    None => {
                        let res = match self.cfg.mode {
                            ExecMode::Native => self.resolve_l2_miss(va),
                            _ => self.resolve_l2_miss_virt(va),
                        };
                        lat += res.latency;
                        self.fill_l2_tlb(res.entry);
                        res.entry
                    }
                };
                self.itlb.fill(entry);
                (entry.frame, lat)
            }
        };
        let pa = PhysAddr::from_frame(frame, PageSize::Size4K, va.page_offset(PageSize::Size4K));
        let ctx = self.epoch.ctx();
        self.hier.access(pa, false, MemClass::IFetch, &ctx);
        lat
    }

    /// Full data-side translation. Returns the physical address and the
    /// translation latency beyond the (pipelined) L1 TLB hit.
    pub(crate) fn translate_data(&mut self, va: VirtAddr, _kind: AccessKind) -> (PhysAddr, Cycles) {
        // L1 D-TLBs, one per page size, probed in parallel (1 cycle,
        // hidden in the pipeline).
        if let Some(e) = self.dtlb4k.probe(va.vpn(PageSize::Size4K), self.proc.asid, PageSize::Size4K) {
            self.stats.l1_tlb_hits += 1;
            if let Some(m) = &self.metrics {
                m.inc(m.l1_tlb_hit);
            }
            return (self.entry_pa(&e, va), 0);
        }
        if let Some(e) = self.dtlb2m.probe(va.vpn(PageSize::Size2M), self.proc.asid, PageSize::Size2M) {
            self.stats.l1_tlb_hits += 1;
            if let Some(m) = &self.metrics {
                m.inc(m.l1_tlb_hit);
            }
            return (self.entry_pa(&e, va), 0);
        }
        self.stats.l1_tlb_misses += 1;
        if let Some(m) = &self.metrics {
            m.inc(m.l1_tlb_miss);
        }

        // Unified L2 TLB, both page sizes probed in parallel.
        let mut latency = self.l2_tlb.latency();
        for size in PageSize::ALL {
            if let Some(e) = self.l2_tlb.probe(va.vpn(size), self.proc.asid, size) {
                self.stats.l2_tlb_hits += 1;
                if let Some(m) = &self.metrics {
                    m.inc(m.l2_tlb_hit);
                }
                self.fill_l1(e);
                self.track_l1_miss(va, size);
                return (self.entry_pa(&e, va), latency);
            }
        }
        self.stats.l2_tlb_misses += 1;
        if let Some(m) = &self.metrics {
            m.inc(m.l2_tlb_miss);
        }
        self.epoch.on_l2_tlb_miss();

        let res = match self.cfg.mode {
            ExecMode::Native => self.resolve_l2_miss(va),
            _ => self.resolve_l2_miss_virt(va),
        };
        latency += res.latency;
        if let Some(m) = &self.metrics {
            m.observe(m.l2_miss_latency, res.latency);
        }
        self.stats.l2_miss_latency_sum += res.latency;
        self.stats.l2_miss_pom_component += res.components[0];
        self.stats.l2_miss_cache_component += res.components[1];
        self.stats.l2_miss_walk_component += res.components[2];
        self.stats.l2_miss_host_component += res.components[3];

        self.fill_l2_tlb(res.entry);
        self.fill_l1(res.entry);
        self.track_l1_miss(va, res.entry.size);
        self.track_l2_miss(va, res.entry.size);
        (self.entry_pa(&res.entry, va), latency)
    }

    /// Translates once (public hook for tests and examples): runs the full
    /// translation path with timing and returns the physical address.
    pub fn translate_once(&mut self, va: VirtAddr) -> PhysAddr {
        self.translate_data(va, AccessKind::Load).0
    }

    /// Ground-truth translation straight from the page tables (no timing,
    /// no state changes). `None` if unmapped.
    pub fn ground_truth(&self, va: VirtAddr) -> Option<PhysAddr> {
        match &self.proc.memory {
            Memory::Native { aspace, .. } => aspace.page_table.translate(va).map(|(pa, _)| pa),
            Memory::Virt { nested } => nested.full_translate(va),
        }
    }

    /// The page size backing `va` (guest-side in virtualised mode), or
    /// `None` if unmapped. Software lookup; no timing or state changes.
    pub fn page_size_at(&self, va: VirtAddr) -> Option<PageSize> {
        match &self.proc.memory {
            Memory::Native { aspace, .. } => aspace.page_table.translate(va).map(|(_, s)| s),
            Memory::Virt { nested } => nested.guest.page_table.translate(va).map(|(_, s)| s),
        }
    }

    #[inline]
    fn entry_pa(&self, e: &TlbEntry, va: VirtAddr) -> PhysAddr {
        match e.size {
            PageSize::Size4K => {
                PhysAddr::from_frame(e.frame, PageSize::Size4K, va.page_offset(PageSize::Size4K))
            }
            PageSize::Size2M => {
                PhysAddr::from_frame(e.frame >> 9, PageSize::Size2M, va.page_offset(PageSize::Size2M))
            }
        }
    }

    /// The page size backing `va` (software lookup).
    pub(crate) fn page_size_of(&self, va: VirtAddr) -> PageSize {
        match &self.proc.memory {
            Memory::Native { aspace, .. } => {
                aspace.page_table.translate(va).map(|(_, s)| s).unwrap_or(PageSize::Size4K)
            }
            Memory::Virt { nested } => {
                nested.guest.page_table.translate(va).map(|(_, s)| s).unwrap_or(PageSize::Size4K)
            }
        }
    }

    fn track_l1_miss(&mut self, va: VirtAddr, size: PageSize) {
        if let Some(t) = self.tracker.as_mut() {
            t.on_l1_tlb_miss(self.proc.asid, va, size);
        }
    }

    fn track_l2_miss(&mut self, va: VirtAddr, size: PageSize) {
        if let Some(t) = self.tracker.as_mut() {
            t.on_l2_tlb_miss(self.proc.asid, va, size);
        }
    }

    fn fill_l1(&mut self, e: TlbEntry) {
        let evicted = match e.size {
            PageSize::Size4K => self.dtlb4k.fill(e),
            PageSize::Size2M => self.dtlb2m.fill(e),
        };
        if let (Some(ev), Some(t)) = (evicted, self.tracker.as_mut()) {
            t.on_l1_tlb_eviction(ev.asid, VirtAddr::new(ev.vpn << ev.size.shift()), ev.size);
        }
    }

    /// Fills the L2 TLB and runs the eviction-side hooks (Victima's
    /// background-walk flow, POM-TLB's spill).
    pub(crate) fn fill_l2_tlb(&mut self, e: TlbEntry) {
        let Some(ev) = self.l2_tlb.fill(e) else {
            return;
        };
        let ev_va = VirtAddr::new(ev.vpn << ev.size.shift());
        if let Some(t) = self.tracker.as_mut() {
            t.on_l2_tlb_eviction(ev.asid, ev_va, ev.size);
        }
        match &self.cfg.mechanism {
            TranslationMechanism::PomTlb(_) => {
                // Spill the evicted entry to the in-memory TLB (off the
                // critical path: traffic only).
                if let Some(pom) = self.pom.as_mut() {
                    let line = pom.insert(ev.vpn, ev.asid, ev.size, ev.frame);
                    let ctx = self.epoch.ctx();
                    self.hier.access(line, true, MemClass::PomTlb, &ctx);
                }
            }
            TranslationMechanism::Victima(_) | TranslationMechanism::VictimaAgnostic(_) => {
                self.victima_eviction_flow(ev, ev_va);
            }
            TranslationMechanism::VictimaPom(..) => {
                if let Some(pom) = self.pom.as_mut() {
                    let line = pom.insert(ev.vpn, ev.asid, ev.size, ev.frame);
                    let ctx = self.epoch.ctx();
                    self.hier.access(line, true, MemClass::PomTlb, &ctx);
                }
                self.victima_eviction_flow(ev, ev_va);
            }
            _ => {}
        }
    }

    /// Victima's L2-TLB-eviction flow: predictor + background walk +
    /// block transformation (Fig. 14, right path). The background walk
    /// generates real cache traffic but no core stall.
    fn victima_eviction_flow(&mut self, ev: TlbEntry, ev_va: VirtAddr) {
        if self.cfg.mode != ExecMode::Native {
            self.victima_eviction_flow_virt(ev, ev_va);
            return;
        }
        let ctx = self.epoch.ctx();
        let v = self.victima.as_mut().expect("victima mechanism has an engine");
        if !v.wants_eviction_insert(
            self.hier.l2(),
            ev_va,
            ev.asid,
            BlockKind::Tlb,
            ev.size,
            ev.ptw_freq,
            ev.ptw_cost,
            &ctx,
        ) {
            return;
        }
        self.stats.victima_background_walks += 1;
        if let Some(m) = &self.metrics {
            m.inc(m.victima_bg_walk);
        }
        let Memory::Native { aspace, .. } = &mut self.proc.memory else {
            unreachable!("native flow");
        };
        let walk = self.bg_walker.walk(&mut aspace.page_table, ev_va, ev.asid, &mut self.hier, &ctx);
        if let Some(w) = walk {
            let v = self.victima.as_mut().expect("checked above");
            if v.insert_after_eviction_walk(self.hier.l2_mut(), ev_va, ev.asid, BlockKind::Tlb, &w, &ctx) {
                self.stats.victima_inserts += 1;
                if let Some(m) = &self.metrics {
                    m.inc(m.victima_insert);
                }
            }
        }
    }

    /// Resolves an L2 TLB miss in native mode.
    pub(crate) fn resolve_l2_miss(&mut self, va: VirtAddr) -> MissResolution {
        debug_assert_eq!(self.cfg.mode, ExecMode::Native);
        let ctx = self.epoch.ctx();
        let mut latency: Cycles = 0;
        let mut components = [0u64; 4];

        // Hardware L3 TLB (Fig. 8 design point).
        if let Some(l3) = self.l3_tlb.as_mut() {
            latency += l3.latency();
            components[2] += l3.latency();
            for size in PageSize::ALL {
                if let Some(e) = l3.probe(va.vpn(size), self.proc.asid, size) {
                    self.stats.l3_tlb_hits += 1;
                    if let Some(m) = &self.metrics {
                        m.inc(m.l3_tlb_hit);
                    }
                    return MissResolution { entry: e, latency, components };
                }
            }
        }

        // Fig. 10 ideal backstop: a fixed-latency oracle.
        if let TranslationMechanism::IdealBackstop(l) = self.cfg.mechanism {
            latency += l;
            components[1] += l;
            let entry = self.software_entry(va);
            return MissResolution { entry, latency, components };
        }

        // Victima: probe the L2 cache for a TLB block in parallel with the
        // walk (Fig. 17). A tag hit still requires the cluster's PTE to
        // actually map this VA (a 2MB-view block spans 16MB that may also
        // contain 4KB-mapped chunks); on a stale view the parallel PTW
        // simply continues, costing nothing extra.
        if let Some(v) = self.victima.as_mut() {
            if let Some(hit) = v.probe(self.hier.l2_mut(), va, self.proc.asid, BlockKind::Tlb, &ctx) {
                // One software walk validates the view *and* composes the
                // entry (the hardware reads the PTE out of the hit block).
                if let Some(entry) = self.software_entry_if_sized(va, hit.size) {
                    let l2c = self.hier.l2().latency();
                    latency += l2c;
                    components[1] += l2c;
                    self.stats.victima_hits += 1;
                    if let Some(m) = &self.metrics {
                        m.inc(m.victima_hit);
                    }
                    return MissResolution { entry, latency, components };
                }
            }
        }

        // POM-TLB lookup (two parallel per-size probes through the data
        // hierarchy).
        if let Some(pom) = self.pom.as_mut() {
            let mut hit: Option<TlbEntry> = None;
            let mut pom_lat: Cycles = 0;
            for size in PageSize::ALL {
                let lk = pom.lookup(va.vpn(size), self.proc.asid, size);
                let r = self.hier.access(lk.line, false, MemClass::PomTlb, &ctx);
                pom_lat = pom_lat.max(r.latency);
                if let Some(frame) = lk.frame {
                    hit = Some(TlbEntry::new(va.vpn(size), self.proc.asid, size, frame));
                    break;
                }
            }
            latency += pom_lat;
            components[0] += pom_lat;
            if let Some(entry) = hit {
                self.stats.pom_hits += 1;
                if let Some(m) = &self.metrics {
                    m.inc(m.pom_hit);
                }
                return MissResolution { entry, latency, components };
            }
            self.stats.pom_misses += 1;
            if let Some(m) = &self.metrics {
                m.inc(m.pom_miss);
            }
        }

        // The page-table walk.
        let Memory::Native { aspace, .. } = &mut self.proc.memory else {
            unreachable!("native flow");
        };
        let walk = self
            .walker
            .walk(&mut aspace.page_table, va, self.proc.asid, &mut self.hier, &ctx)
            .unwrap_or_else(|| panic!("page fault at {va}: workload touched an unmapped page"));
        self.stats.ptws += 1;
        latency += walk.latency;
        components[2] += walk.latency;
        // A walk that touched fewer memory levels than the radix depth
        // was largely served by the page-walk caches.
        let pwc_hit = walk.memory_accesses < 4 && walk.page_size == PageSize::Size4K
            || walk.memory_accesses < 3 && walk.page_size == PageSize::Size2M;
        if let Some(m) = &self.metrics {
            m.inc(m.ptw);
            m.inc(if pwc_hit { m.pwc_hit } else { m.pwc_miss });
            m.observe(m.walk_depth, walk.memory_accesses as u64);
            m.observe(m.walk_latency, walk.latency);
        }
        if let Some(t) = self.tracker.as_mut() {
            t.on_walk(self.proc.asid, va, walk.page_size, walk.latency, walk.dram_touched, pwc_hit);
        }

        let entry = TlbEntry::with_counters(
            va.vpn(walk.page_size),
            self.proc.asid,
            walk.page_size,
            walk.frame,
            walk.leaf_pte.ptw_freq(),
            walk.leaf_pte.ptw_cost(),
        );

        // Post-walk insertions.
        if let Some(l3) = self.l3_tlb.as_mut() {
            l3.fill(entry);
        }
        if let Some(pom) = self.pom.as_mut() {
            let line = pom.insert(entry.vpn, entry.asid, entry.size, entry.frame);
            self.hier.access(line, true, MemClass::PomTlb, &ctx);
        }
        if let Some(v) = self.victima.as_mut() {
            if v.insert_after_walk(self.hier.l2_mut(), va, self.proc.asid, BlockKind::Tlb, &walk, &ctx) {
                self.stats.victima_inserts += 1;
                if let Some(m) = &self.metrics {
                    m.inc(m.victima_insert);
                }
            }
        }
        MissResolution { entry, latency, components }
    }

    /// Builds a TLB entry from the page table without timing (used by the
    /// ideal backstop and by Victima probe hits, where the hardware reads
    /// the PTE straight out of the hit block).
    pub(crate) fn software_entry(&self, va: VirtAddr) -> TlbEntry {
        let Memory::Native { aspace, .. } = &self.proc.memory else {
            unreachable!("native helper");
        };
        let walk = aspace.page_table.walk(va).expect("mapped");
        soft_walk_entry(va, self.proc.asid, &walk)
    }

    /// Composes the TLB entry for `va` when the mapping's page size
    /// matches `size` — the Victima probe-hit view validation. One radix
    /// walk serves both the size check and the entry composition (this
    /// used to be two back-to-back software walks: `page_size_of` followed
    /// by a `software_entry` re-walk).
    pub(crate) fn software_entry_if_sized(&self, va: VirtAddr, size: PageSize) -> Option<TlbEntry> {
        let Memory::Native { aspace, .. } = &self.proc.memory else {
            unreachable!("native helper");
        };
        let walk = aspace.page_table.walk(va)?;
        (walk.page_size == size).then(|| soft_walk_entry(va, self.proc.asid, &walk))
    }

    /// Finalises aggregate statistics from component counters. Call after
    /// the measured run.
    pub fn finalize_stats(&mut self) {
        self.stats.ptw_latency_hist = self.walker.stats.latency_hist.clone();
        self.stats.ptw_latency_mean = self.walker.stats.mean_latency();
        self.stats.ptw_dram_fraction = if self.walker.stats.walks == 0 {
            0.0
        } else {
            self.walker.stats.dram_walks as f64 / self.walker.stats.walks as f64
        };
        self.stats.l2_data_reuse = self.hier.l2().stats.data_reuse;
        self.stats.l2_tlb_block_reuse = self.hier.l2().stats.tlb_reuse;
        // Eviction-time reuse alone under-counts the *hottest* TLB blocks:
        // they stay resident for the whole (short) measured window and are
        // never evicted, so snapshot the resident population too.
        for b in self.hier.l2().iter_valid() {
            if b.kind.is_translation() {
                self.stats.l2_tlb_block_reuse.record(b.reuse as u64);
            }
        }
        if let Some(p) = &self.pom {
            self.stats.pom_hits = p.stats.hits;
            self.stats.pom_misses = p.stats.misses;
        }
        self.snapshot_metrics();
    }

    /// Folds finalize-time readings into the metric registry: cache and
    /// prefetcher counters for the window just measured (component stats
    /// reset per window, so adding per finalize accumulates correctly
    /// across sampling windows) and frame-pool pressure gauges.
    fn snapshot_metrics(&mut self) {
        let Some(m) = &self.metrics else {
            return;
        };
        let l3 = self.hier.l3();
        let levels = [self.hier.l1d(), self.hier.l2(), &*l3];
        for (i, c) in levels.into_iter().enumerate() {
            m.add(m.cache_hit[i], c.stats.hits);
            m.add(m.cache_miss[i], c.stats.misses);
            m.add(m.prefetch_fill[i], c.stats.prefetch_fills);
        }
        let (used, free) = match &self.proc.memory {
            Memory::Native { alloc, .. } => {
                let a = alloc.borrow();
                (a.frames_used(), a.frames_left())
            }
            Memory::Virt { nested } => (nested.host_alloc.frames_used(), nested.host_alloc.frames_left()),
        };
        m.set(m.frames_used, used);
        m.set(m.frames_free, free);
    }

    /// OS-initiated TLB shootdown for one page of the *resident* address
    /// space (Sec. 6.2): invalidates the page in every hardware TLB, the
    /// POM-TLB and Victima's TLB blocks.
    pub fn tlb_shootdown(&mut self, va: VirtAddr) {
        self.tlb_shootdown_asid(va, self.proc.asid);
    }

    /// Shootdown for an explicit address space — the inter-core IPI path:
    /// remote cores invalidate a page of a process that is *not* resident
    /// on them (its entries may still be cached under its ASID).
    pub fn tlb_shootdown_asid(&mut self, va: VirtAddr, asid: Asid) {
        for size in PageSize::ALL {
            let vpn = va.vpn(size);
            self.itlb.invalidate(vpn, asid, size);
            self.dtlb4k.invalidate(vpn, asid, size);
            self.dtlb2m.invalidate(vpn, asid, size);
            self.l2_tlb.invalidate(vpn, asid, size);
            if let Some(l3) = self.l3_tlb.as_mut() {
                l3.invalidate(vpn, asid, size);
            }
            if let Some(p) = self.pom.as_mut() {
                p.invalidate(vpn, asid, size);
            }
        }
        if let Some(v) = self.victima.as_mut() {
            v.shootdown(self.hier.l2_mut(), va, asid);
        }
    }

    /// Total invalidations performed by this core's hardware TLBs so far
    /// (shootdown accounting for the multi-core IPI protocol).
    pub fn invalidation_count(&self) -> u64 {
        let mut n = self.itlb.stats.invalidations
            + self.dtlb4k.stats.invalidations
            + self.dtlb2m.stats.invalidations
            + self.l2_tlb.stats.invalidations;
        if let Some(l3) = &self.l3_tlb {
            n += l3.stats.invalidations;
        }
        n
    }

    /// ASID-selective invalidation (Sec. 6.1(ii)): drops every translation
    /// of one address space from the hardware TLBs and Victima's blocks,
    /// leaving other ASIDs' entries warm. Returns the number of hardware
    /// TLB entries dropped. PWCs are not ASID-partitioned in this model,
    /// so they flush entirely.
    pub fn invalidate_asid(&mut self, asid: Asid) -> u64 {
        let mut n = self.itlb.invalidate_asid(asid);
        n += self.dtlb4k.invalidate_asid(asid);
        n += self.dtlb2m.invalidate_asid(asid);
        n += self.l2_tlb.invalidate_asid(asid);
        if let Some(l3) = self.l3_tlb.as_mut() {
            n += l3.invalidate_asid(asid);
        }
        self.walker.pwc.flush();
        if let Some(v) = self.victima.as_mut() {
            v.flush_asid(self.hier.l2_mut(), asid);
        }
        n
    }

    /// Full context-switch flush (Sec. 6.1): drops every translation the
    /// hardware holds for this address space.
    pub fn context_switch_flush(&mut self) {
        self.itlb.invalidate_all();
        self.dtlb4k.invalidate_all();
        self.dtlb2m.invalidate_all();
        self.l2_tlb.invalidate_all();
        if let Some(l3) = self.l3_tlb.as_mut() {
            l3.invalidate_all();
        }
        self.nested_tlb.invalidate_all();
        self.walker.pwc.flush();
        self.host_walker.pwc.flush();
        if let Some(v) = self.victima.as_mut() {
            v.flush_all(self.hier.l2_mut());
        }
    }

    /// Remaps one data page of the resident process to a fresh physical
    /// frame (a migration), as the OS would before issuing a shootdown.
    /// Returns the new ground truth. Native mode only.
    ///
    /// # Panics
    ///
    /// Panics if `va` is unmapped or the system is virtualised.
    pub fn migrate_page(&mut self, va: VirtAddr) -> PhysAddr {
        self.proc.migrate_page(va)
    }
}

/// Composes a TLB entry from a completed software radix walk.
#[inline]
pub(crate) fn soft_walk_entry(va: VirtAddr, asid: Asid, walk: &page_table::Walk) -> TlbEntry {
    TlbEntry::with_counters(
        va.vpn(walk.page_size),
        asid,
        walk.page_size,
        walk.frame,
        walk.leaf_pte.ptw_freq(),
        walk.leaf_pte.ptw_cost(),
    )
}
