//! Quantum-based process scheduling for the multi-core system.
//!
//! The scheduler interleaves processes over cores at instruction-quantum
//! granularity. Interleaving is what creates *contention*: every quantum
//! the running core streams demand misses, page-table walks and Victima
//! traffic into the shared LLC, displacing the other tenants' lines. Two
//! placement modes are supported:
//!
//! - **Pinned** — one process per core, never migrated (the paper's
//!   multi-programmed setup for Figs. 12–13).
//! - **Round-robin** — M processes over N cores (oversubscription). On a
//!   context switch the core applies a [`CtxSwitchPolicy`].
//!
//! Scheduling is fully deterministic: cores are served in index order and
//! the round-robin cursor advances identically for a given (M, N, quantum,
//! budget) tuple, so multi-core results are byte-stable across hosts and
//! worker counts.

/// What a core does to its TLB state when it switches processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtxSwitchPolicy {
    /// TLB entries are ASID-tagged; nothing is invalidated. A process
    /// returning to a core it ran on before finds its entries warm.
    AsidTagged,
    /// Invalidate only the *outgoing* process's entries
    /// (`invalidate_asid`): models hardware that recycles a single ASID
    /// slot but spares the other tenants' entries.
    AsidSelective,
    /// Full flush (`context_switch_flush`): non-ASID-tagged hardware drops
    /// every translation on each switch.
    FullFlush,
}

/// Process-to-core placement discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// Process `i` is pinned to core `i`; requires one process per core.
    Pinned,
    /// M ≥ N processes rotate over the cores round-robin; each core
    /// applies the configured [`CtxSwitchPolicy`] when its resident
    /// process changes.
    RoundRobin,
}

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Placement discipline.
    pub mode: SchedMode,
    /// Instructions a process runs per scheduling quantum.
    pub quantum: u64,
    /// Context-switch invalidation policy (round-robin mode).
    pub policy: CtxSwitchPolicy,
}

impl SchedConfig {
    /// Pinned placement (the Figs. 12–13 setup). The quantum only sets the
    /// interleaving granularity through the shared LLC.
    pub fn pinned(quantum: u64) -> Self {
        Self { mode: SchedMode::Pinned, quantum, policy: CtxSwitchPolicy::AsidTagged }
    }

    /// Round-robin oversubscription with the given switch policy.
    pub fn round_robin(quantum: u64, policy: CtxSwitchPolicy) -> Self {
        Self { mode: SchedMode::RoundRobin, quantum, policy }
    }
}

impl Default for SchedConfig {
    /// Pinned with a 1000-instruction quantum.
    fn default() -> Self {
        Self::pinned(1000)
    }
}

/// The deterministic quantum scheduler. Pure bookkeeping: the multi-core
/// system asks it which process each core should run next and performs the
/// swap/flush itself.
#[derive(Clone, Debug)]
pub struct Scheduler {
    cfg: SchedConfig,
    procs: usize,
    cursor: usize,
}

impl Scheduler {
    /// Creates a scheduler for `procs` processes over `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `procs < cores`, if either is zero, or if pinned mode is
    /// asked to handle `procs != cores`.
    pub fn new(cfg: SchedConfig, procs: usize, cores: usize) -> Self {
        assert!(cores > 0 && procs > 0, "need at least one core and one process");
        assert!(procs >= cores, "fewer processes than cores: idle cores are not modelled");
        assert!(cfg.quantum > 0, "quantum must be positive");
        if cfg.mode == SchedMode::Pinned {
            assert_eq!(procs, cores, "pinned mode needs exactly one process per core");
        }
        Self { cfg, procs, cursor: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Picks the process core `core` should run for the next quantum, or
    /// `None` if no runnable process is available to it this round.
    ///
    /// `finished[p]` marks processes that reached their instruction target;
    /// `resident[p]` is `Some(c)` while process `p` sits inside core `c`
    /// (cores always hold exactly one process) and `None` while it is
    /// parked. A core may run its own resident or claim any parked
    /// process; residents of *other* cores are skipped.
    pub fn pick(&mut self, core: usize, finished: &[bool], resident: &[Option<usize>]) -> Option<usize> {
        debug_assert_eq!(finished.len(), self.procs);
        debug_assert_eq!(resident.len(), self.procs);
        match self.cfg.mode {
            SchedMode::Pinned => (!finished[core]).then_some(core),
            SchedMode::RoundRobin => {
                for _ in 0..self.procs {
                    let p = self.cursor;
                    self.cursor = (self.cursor + 1) % self.procs;
                    if !finished[p] && (resident[p] == Some(core) || resident[p].is_none()) {
                        return Some(p);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_serves_identity() {
        let mut s = Scheduler::new(SchedConfig::pinned(100), 2, 2);
        let res = [Some(0), Some(1)];
        assert_eq!(s.pick(0, &[false, false], &res), Some(0));
        assert_eq!(s.pick(1, &[false, false], &res), Some(1));
        assert_eq!(s.pick(0, &[true, false], &res), None);
    }

    #[test]
    fn round_robin_rotates_over_all_processes() {
        let mut s = Scheduler::new(SchedConfig::round_robin(100, CtxSwitchPolicy::FullFlush), 4, 2);
        let fin = [false; 4];
        // Procs 0/1 resident on cores 0/1, procs 2/3 parked.
        let res = [Some(0), Some(1), None, None];
        assert_eq!(s.pick(0, &fin, &res), Some(0));
        assert_eq!(s.pick(1, &fin, &res), Some(1));
        // Next round: parked processes get their turn.
        assert_eq!(s.pick(0, &fin, &res), Some(2));
        assert_eq!(s.pick(1, &fin, &res), Some(3));
    }

    #[test]
    fn round_robin_never_hands_out_another_cores_resident() {
        let mut s = Scheduler::new(SchedConfig::round_robin(100, CtxSwitchPolicy::AsidTagged), 3, 2);
        // Proc 1 is the only unfinished one, and it sits inside core 1.
        let res = [Some(0), Some(1), None];
        assert_eq!(s.pick(0, &[true, false, true], &res), None, "proc 1 belongs to core 1");
        assert_eq!(s.pick(1, &[true, false, true], &res), Some(1));
    }

    #[test]
    fn round_robin_skips_finished() {
        let mut s = Scheduler::new(SchedConfig::round_robin(100, CtxSwitchPolicy::AsidTagged), 3, 1);
        let res = [Some(0), None, None];
        assert_eq!(s.pick(0, &[true, false, true], &res), Some(1));
        assert_eq!(s.pick(0, &[true, false, true], &res), Some(1));
        assert_eq!(s.pick(0, &[true, true, true], &res), None);
    }

    #[test]
    #[should_panic(expected = "pinned mode needs exactly one process per core")]
    fn pinned_rejects_oversubscription() {
        Scheduler::new(SchedConfig::pinned(100), 4, 2);
    }

    #[test]
    #[should_panic(expected = "fewer processes than cores")]
    fn undersubscription_rejected() {
        Scheduler::new(SchedConfig::round_robin(100, CtxSwitchPolicy::FullFlush), 1, 2);
    }
}
