//! Observability overhead gate: with hot-path metrics ENABLED, the
//! steady-state simulation loop must still perform zero heap
//! allocations — every counter, gauge and histogram bucket is a
//! preallocated word in the system's single-writer `obs::LocalBuf`,
//! so recording is a plain `Cell` add, never an alloc (and never an
//! atomic RMW; deltas drain to the shared registry at snapshot time).
//! (The disabled path is pinned separately by `no_alloc.rs`: obs off is
//! the default, so that gate already runs with `metrics == None`.)
//!
//! The second gate is the determinism contract: enabling metrics (and
//! tracing) must not change a single simulated statistic — the
//! instrumentation observes events, it never participates in them.
//!
//! Lives alone in its binary so no concurrent test can disturb the
//! global allocation counter.

use sim::{ObsMode, RunSpec, SimEngine, System, SystemConfig};
use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use workloads::{registry, Scale};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SysAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Warm a system up with metrics recording live, then assert the
/// measured window allocates nothing: metric recording must be as
/// silent as the uninstrumented hot path (`no_alloc.rs`).
fn assert_metrics_path_alloc_free(config: SystemConfig, workload: &str) {
    let w = registry::by_name_seeded(workload, Scale::Tiny, config.seed).expect("known workload");
    let mut sys = System::new(config, w);
    sys.enable_metrics();
    sys.run(200_000);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sys.run(400_000);
    let got = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        got, 0,
        "{workload}: metric recording must be allocation-free in steady state \
         (got {got} allocation(s) over 400K instructions)"
    );
    // The window actually exercised the instrumented paths.
    let m = sys.metrics().expect("metrics enabled");
    let snap = m.snapshot();
    let total: u64 = snap
        .iter()
        .filter_map(|(_, v)| match v {
            obs::MetricValue::Counter(n) => Some(*n),
            _ => None,
        })
        .sum();
    assert!(total > 0, "{workload}: instrumented run recorded no events at all");
}

#[test]
fn metric_recording_is_allocation_free_in_steady_state() {
    // RND under Victima: the TLB-hostile worst case drives every
    // instrumented flow — L1/L2 TLB misses, demand walks, PWC probes,
    // Victima inserts, prefetch fills, cache miss counters.
    assert_metrics_path_alloc_free(SystemConfig::victima(), "RND");
    // The radix baseline's pure walk path.
    assert_metrics_path_alloc_free(SystemConfig::radix(), "RND");
}

#[test]
fn observability_cannot_change_results() {
    for config in ["radix", "victima", "pom"] {
        let cfg = SystemConfig::by_name(config).expect("known config");
        let spec = RunSpec::new("RND", cfg, Scale::Tiny, 2_000, 20_000);
        let off = SimEngine::run_one_observed(0, &spec, &mut Default::default(), ObsMode::Off);
        let full = SimEngine::run_one_observed(0, &spec, &mut Default::default(), ObsMode::Full);
        assert_eq!(off.stats, full.stats, "{config}: obs must be invisible to SimStats");
        assert!(off.spans.is_empty() && off.metrics.is_none(), "{config}: Off collects nothing");
        assert!(!full.spans.is_empty(), "{config}: Full collects phase spans");
        assert!(full.metrics.is_some(), "{config}: Full collects metrics");
    }
}
