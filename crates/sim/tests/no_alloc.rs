//! Allocation-freedom gate for the simulation hot path.
//!
//! A counting global allocator wraps the system allocator; after warm-up
//! (which is allowed to grow scratch buffers to their steady-state
//! capacity), running hundreds of thousands of further instructions must
//! perform ZERO heap allocations: no per-access allocation on the
//! L1/L2-hit path and none per L2 demand miss (prefetch candidates land
//! in the reused scratch buffer, walks use fixed-size buffers, TLB fills
//! run the eviction flows in place).
//!
//! The test lives alone in its binary so no concurrent test can disturb
//! the global counter.

use sim::{System, SystemConfig};
use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use workloads::{registry, Scale};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SysAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SysAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Builds a system for `workload`, warms it up, then asserts the measured
/// window performs at most `allowed` allocations. `allowed` is 0 for the
/// memory-system paths; workloads with *real algorithm state* (BFS's
/// frontier vectors) are granted a tiny budget for that state's growth —
/// the simulator's own access/miss path contributes none of it.
fn assert_steady_state_allocs(config: SystemConfig, workload: &str, allowed: u64) {
    let w = registry::by_name_seeded(workload, Scale::Tiny, config.seed).expect("known workload");
    let mut sys = System::new(config, w);
    // Warm-up: caches, TLBs, workload batch buffers and the prefetch
    // scratch all reach steady-state capacity here.
    sys.run(200_000);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sys.run(400_000);
    let got = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(
        got <= allowed,
        "{workload}: expected at most {allowed} steady-state allocation(s), got {got} over 400K instructions"
    );
}

#[test]
fn hot_path_is_allocation_free_in_steady_state() {
    // RND: the TLB-hostile random-access worst case — every access misses
    // deep, so this drives the L2-demand-miss path (stream prefetcher +
    // walks + Victima eviction flows) hundreds of thousands of times.
    // Strictly zero allocations.
    assert_steady_state_alloc_free(SystemConfig::victima(), "RND");
    // The radix baseline's pure walk path: strictly zero.
    assert_steady_state_alloc_free(SystemConfig::radix(), "RND");
    // BFS: streaming traversal — exercises confident stream prefetches
    // (the reused scratch buffer must never regrow). Its *frontier*
    // vectors are real algorithm state and may still see a couple of
    // capacity doublings; the memory-system path itself stays silent.
    assert_steady_state_allocs(SystemConfig::victima(), "BFS", 4);
}

fn assert_steady_state_alloc_free(config: SystemConfig, workload: &str) {
    assert_steady_state_allocs(config, workload, 0);
}
