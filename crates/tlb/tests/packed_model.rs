//! Differential property test: the packed-key [`SetAssocTlb`] against a
//! naive reference model.
//!
//! The reference stores fat entries only and scans them with full field
//! compares, exactly like the pre-packing implementation. Both models are
//! driven with the same SplitMix64-seeded stream of probes, fills and
//! invalidations — 100K operations — and must report identical hits
//! (including frames and counter snapshots), identical displaced entries
//! and identical statistics.

use tlb_sim::{SetAssocTlb, TlbConfig, TlbEntry};
use vm_types::{Asid, PageSize, SplitMix64};

#[derive(Clone, Copy, Default)]
struct RefEntry {
    valid: bool,
    vpn: u64,
    asid: Asid,
    size: PageSize,
    frame: u64,
    freq: u8,
    cost: u8,
    lru: u64,
}

impl RefEntry {
    fn matches(&self, vpn: u64, asid: Asid, size: PageSize) -> bool {
        self.valid && self.vpn == vpn && self.asid == asid && self.size == size
    }
}

/// The pre-packing TLB: one fat array, linear scans, LRU stamps inline.
struct RefTlb {
    ways: usize,
    set_mask: u64,
    entries: Vec<RefEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    fills: u64,
    evictions: u64,
    invalidations: u64,
}

impl RefTlb {
    fn new(entries: usize, ways: usize) -> Self {
        Self {
            ways,
            set_mask: (entries / ways) as u64 - 1,
            entries: vec![RefEntry::default(); entries],
            tick: 0,
            hits: 0,
            misses: 0,
            fills: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    fn range(&self, vpn: u64) -> std::ops::Range<usize> {
        let s = (vpn & self.set_mask) as usize * self.ways;
        s..s + self.ways
    }

    fn probe(&mut self, vpn: u64, asid: Asid, size: PageSize) -> Option<(u64, u8, u8)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.range(vpn);
        for e in &mut self.entries[range] {
            if e.matches(vpn, asid, size) {
                e.lru = tick;
                self.hits += 1;
                return Some((e.frame, e.freq, e.cost));
            }
        }
        self.misses += 1;
        None
    }

    fn fill(&mut self, vpn: u64, asid: Asid, size: PageSize, frame: u64, freq: u8, cost: u8) -> Option<u64> {
        self.fills += 1;
        self.tick += 1;
        let tick = self.tick;
        let range = self.range(vpn);
        let set = &mut self.entries[range];
        let fresh = RefEntry { valid: true, vpn, asid, size, frame, freq, cost, lru: tick };
        if let Some(e) = set.iter_mut().find(|e| e.matches(vpn, asid, size)) {
            *e = fresh;
            return None;
        }
        let victim = match set.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => set.iter().enumerate().min_by_key(|(_, e)| e.lru).map(|(i, _)| i).expect("nonempty"),
        };
        let displaced = set[victim].valid.then_some(set[victim].vpn);
        if displaced.is_some() {
            self.evictions += 1;
        }
        set[victim] = fresh;
        displaced
    }

    fn invalidate(&mut self, vpn: u64, asid: Asid, size: PageSize) -> bool {
        let range = self.range(vpn);
        for e in &mut self.entries[range] {
            if e.matches(vpn, asid, size) {
                e.valid = false;
                self.invalidations += 1;
                return true;
            }
        }
        false
    }

    fn invalidate_asid(&mut self, asid: Asid) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid && e.asid == asid {
                e.valid = false;
                n += 1;
            }
        }
        self.invalidations += n;
        n
    }

    fn invalidate_all(&mut self) -> u64 {
        let mut n = 0;
        for e in &mut self.entries {
            if e.valid {
                e.valid = false;
                n += 1;
            }
        }
        self.invalidations += n;
        n
    }

    fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[test]
fn packed_tlb_matches_reference_model() {
    // The paper's L2 TLB shape: 1536 entries, 12-way.
    let mut dut = SetAssocTlb::new(TlbConfig { name: "DUT", entries: 1536, ways: 12, latency: 1 });
    let mut model = RefTlb::new(1536, 12);
    let mut rng = SplitMix64::new(0xBEEF_2024);

    for op in 0..100_000u64 {
        // VPNs over ~4x the TLB reach; a few ASIDs; both page sizes.
        let vpn = rng.next_below(6000);
        let asid = Asid::new(1 + (rng.next_below(3) as u16));
        let size = if rng.chance(0.25) { PageSize::Size2M } else { PageSize::Size4K };
        match rng.next_below(100) {
            // Probe; fill on miss (the translation path's usage pattern).
            0..=69 => {
                let a = dut.probe(vpn, asid, size);
                let b = model.probe(vpn, asid, size);
                assert_eq!(a.is_some(), b.is_some(), "op {op}: hit/miss diverged");
                if let (Some(e), Some((frame, freq, cost))) = (a, b) {
                    assert_eq!(e.frame, frame, "op {op}: hit frame diverged");
                    assert_eq!((e.ptw_freq, e.ptw_cost), (freq, cost), "op {op}: counters diverged");
                } else {
                    let frame = rng.next_below(1 << 30);
                    let (freq, cost) = (rng.next_below(8) as u8, rng.next_below(16) as u8);
                    let e1 = dut.fill(TlbEntry::with_counters(vpn, asid, size, frame, freq, cost));
                    let e2 = model.fill(vpn, asid, size, frame, freq, cost);
                    assert_eq!(e1.map(|e| e.vpn), e2, "op {op}: displaced entry diverged");
                }
            }
            // Refresh-in-place fills.
            70..=79 => {
                let frame = rng.next_below(1 << 30);
                let e1 = dut.fill(TlbEntry::new(vpn, asid, size, frame));
                let e2 = model.fill(vpn, asid, size, frame, 0, 0);
                assert_eq!(e1.map(|e| e.vpn), e2, "op {op}: displaced entry diverged");
            }
            // Single-entry shootdown.
            80..=92 => {
                assert_eq!(
                    dut.invalidate(vpn, asid, size),
                    model.invalidate(vpn, asid, size),
                    "op {op}: invalidate diverged"
                );
            }
            // Presence check.
            93..=97 => {
                let want = model.entries[model.range(vpn)].iter().any(|e| e.matches(vpn, asid, size));
                assert_eq!(dut.contains(vpn, asid, size), want, "op {op}: contains diverged");
            }
            // ASID flush, rarely a full flush.
            _ => {
                if rng.chance(0.2) {
                    assert_eq!(dut.invalidate_all(), model.invalidate_all(), "op {op}: full flush diverged");
                } else {
                    assert_eq!(
                        dut.invalidate_asid(asid),
                        model.invalidate_asid(asid),
                        "op {op}: asid flush diverged"
                    );
                }
            }
        }
    }

    assert_eq!(dut.stats.hits, model.hits, "hits diverged");
    assert_eq!(dut.stats.misses, model.misses, "misses diverged");
    assert_eq!(dut.stats.fills, model.fills, "fills diverged");
    assert_eq!(dut.stats.evictions, model.evictions, "evictions diverged");
    assert_eq!(dut.stats.invalidations, model.invalidations, "invalidations diverged");
    assert_eq!(dut.valid_entries(), model.valid_entries(), "final populations diverged");
}
