//! MMU configurations from the paper's Table 3 and the TLB-size /
//! latency ladders used in its motivation studies (Figs. 5–8).

use crate::tlb::TlbConfig;
use vm_types::Cycles;

/// The CACTI 7.0 latency ladder the paper reports for realistic L2 TLBs of
/// growing size (Fig. 7): `(entries, cycles)`.
pub const CACTI_L2_TLB_LATENCY: [(usize, Cycles); 6] =
    [(2048, 13), (4096, 16), (8192, 21), (16384, 27), (32768, 34), (65536, 39)];

/// The L2 TLB sizes swept in Figs. 5–7.
pub const L2_TLB_SIZE_SWEEP: [usize; 7] = [1536, 2048, 4096, 8192, 16384, 32768, 65536];

/// The L3 TLB latencies swept in Fig. 8 for a 64K-entry L3 TLB.
pub const L3_TLB_LATENCY_SWEEP: [Cycles; 6] = [15, 20, 25, 30, 35, 39];

/// Full MMU shape: the two-level TLB hierarchy plus the optional hardware
/// L3 TLB and the nested TLB used in virtualised mode.
#[derive(Clone, Debug)]
pub struct MmuConfig {
    /// L1 instruction TLB (128-entry, 8-way, 1 cycle).
    pub l1_itlb: TlbConfig,
    /// L1 data TLB for 4KB pages (64-entry, 4-way, 1 cycle).
    pub l1_dtlb_4k: TlbConfig,
    /// L1 data TLB for 2MB pages (32-entry, 4-way, 1 cycle).
    pub l1_dtlb_2m: TlbConfig,
    /// Unified L2 TLB (1536-entry, 12-way, 12 cycles in the baseline).
    pub l2_tlb: TlbConfig,
    /// Optional hardware L3 TLB (the Sec. 3.1 / Fig. 8 design point).
    pub l3_tlb: Option<TlbConfig>,
    /// Nested TLB for virtualised mode (64-entry, 1 cycle).
    pub nested_tlb: TlbConfig,
}

impl Default for MmuConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

impl MmuConfig {
    /// The paper's baseline MMU (Table 3).
    pub fn baseline() -> Self {
        Self {
            l1_itlb: TlbConfig { name: "L1-ITLB", entries: 128, ways: 8, latency: 1 },
            l1_dtlb_4k: TlbConfig { name: "L1-DTLB-4K", entries: 64, ways: 4, latency: 1 },
            l1_dtlb_2m: TlbConfig { name: "L1-DTLB-2M", entries: 32, ways: 4, latency: 1 },
            l2_tlb: TlbConfig { name: "L2-TLB", entries: 1536, ways: 12, latency: 12 },
            l3_tlb: None,
            nested_tlb: TlbConfig { name: "Nested-TLB", entries: 64, ways: 64, latency: 1 },
        }
    }

    /// Baseline with a resized L2 TLB (16-way beyond the 1.5K baseline, as
    /// in the paper's optimistic/realistic sweeps).
    pub fn with_l2_tlb(entries: usize, latency: Cycles) -> Self {
        let ways = if entries == 1536 { 12 } else { 16 };
        let mut cfg = Self::baseline();
        cfg.l2_tlb = TlbConfig { name: "L2-TLB", entries, ways, latency };
        cfg
    }

    /// Baseline plus a hardware L3 TLB (Fig. 8 design point).
    pub fn with_l3_tlb(entries: usize, latency: Cycles) -> Self {
        let mut cfg = Self::baseline();
        cfg.l3_tlb = Some(TlbConfig { name: "L3-TLB", entries, ways: 16, latency });
        cfg
    }

    /// The CACTI-modelled latency for an L2 TLB of `entries` entries
    /// (12 cycles for the 1.5K baseline, Fig. 7's ladder beyond).
    pub fn cacti_latency(entries: usize) -> Cycles {
        CACTI_L2_TLB_LATENCY.iter().find(|(e, _)| *e == entries).map(|&(_, l)| l).unwrap_or(12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table3() {
        let cfg = MmuConfig::baseline();
        assert_eq!(cfg.l2_tlb.entries, 1536);
        assert_eq!(cfg.l2_tlb.ways, 12);
        assert_eq!(cfg.l2_tlb.latency, 12);
        assert_eq!(cfg.l1_itlb.entries, 128);
        assert_eq!(cfg.nested_tlb.entries, 64);
        assert!(cfg.l3_tlb.is_none());
    }

    #[test]
    fn all_sweep_geometries_are_constructible() {
        for &entries in &L2_TLB_SIZE_SWEEP {
            let cfg = MmuConfig::with_l2_tlb(entries, 12);
            // num_sets() panics on invalid geometry.
            assert!(cfg.l2_tlb.num_sets() > 0);
        }
        for &(entries, lat) in &CACTI_L2_TLB_LATENCY {
            let cfg = MmuConfig::with_l2_tlb(entries, lat);
            assert_eq!(cfg.l2_tlb.latency, lat);
        }
    }

    #[test]
    fn cacti_ladder_lookup() {
        assert_eq!(MmuConfig::cacti_latency(65536), 39);
        assert_eq!(MmuConfig::cacti_latency(1536), 12);
        assert_eq!(MmuConfig::cacti_latency(4096), 16);
    }

    #[test]
    fn l3_config_point() {
        let cfg = MmuConfig::with_l3_tlb(65536, 15);
        let l3 = cfg.l3_tlb.expect("l3 present");
        assert_eq!(l3.entries, 65536);
        assert_eq!(l3.num_sets(), 4096);
    }
}
