//! POM-TLB: the "part-of-memory" software-managed L3 TLB of Ryoo et al.
//! [ISCA'17], the paper's main software-managed-TLB comparison point.
//!
//! POM-TLB is a very large set-associative TLB that *lives in DRAM*: each
//! lookup computes the physical address of the indexed entry group and
//! fetches it through the data-cache hierarchy, so a hit costs a cache/
//! memory access rather than an SRAM probe. The structure itself needs a
//! physically contiguous allocation (tens of MB — Sec. 3.2's second
//! drawback), which the `page_table::FrameAllocator` provides.
//!
//! This module models the logical content (who hits) with an LRU
//! set-associative directory, and exposes the physical address of the line
//! each operation touches so the simulator charges realistic latencies.

use vm_types::{Asid, PageSize, PhysAddr};

/// Geometry of the POM-TLB.
#[derive(Clone, Debug)]
pub struct PomTlbConfig {
    /// Total entries (the paper evaluates 64K).
    pub entries: usize,
    /// Associativity (16 in Table 3).
    pub ways: usize,
    /// Bytes per entry in memory (VPN tag + PPN + metadata).
    pub entry_bytes: u64,
}

impl Default for PomTlbConfig {
    fn default() -> Self {
        Self { entries: 64 * 1024, ways: 16, entry_bytes: 16 }
    }
}

impl PomTlbConfig {
    /// Sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0 && self.entries.is_multiple_of(self.ways));
        let sets = self.entries / self.ways;
        assert!(sets.is_power_of_two());
        sets
    }

    /// Total backing storage in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.entries as u64 * self.entry_bytes
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct PomEntry {
    valid: bool,
    vpn: u64,
    asid: Asid,
    size: PageSize,
    frame: u64,
    lru: u64,
}

/// POM-TLB statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PomStats {
    /// Lookups that found a translation.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries installed.
    pub inserts: u64,
}

/// The in-memory software-managed TLB.
pub struct PomTlb {
    cfg: PomTlbConfig,
    base: PhysAddr,
    set_mask: u64,
    entries: Vec<PomEntry>,
    tick: u64,
    /// Statistics.
    pub stats: PomStats,
}

impl std::fmt::Debug for PomTlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PomTlb")
            .field("entries", &self.cfg.entries)
            .field("ways", &self.cfg.ways)
            .field("base", &self.base)
            .finish()
    }
}

/// Result of a POM-TLB lookup: the translation, if present, plus the
/// physical line address the hardware had to fetch to find out.
#[derive(Clone, Copy, Debug)]
pub struct PomLookup {
    /// The translated frame, if the lookup hit.
    pub frame: Option<u64>,
    /// Physical address of the entry line that was read.
    pub line: PhysAddr,
}

impl PomTlb {
    /// Creates a POM-TLB whose backing store starts at `base` (obtain it
    /// from [`page_table::FrameAllocator::alloc_contiguous`] with
    /// [`PomTlbConfig::storage_bytes`] bytes).
    pub fn new(cfg: PomTlbConfig, base: PhysAddr) -> Self {
        let sets = cfg.num_sets();
        Self {
            set_mask: sets as u64 - 1,
            entries: vec![PomEntry::default(); cfg.entries],
            base,
            cfg,
            tick: 0,
            stats: PomStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PomTlbConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        // Hash the VPN so 4KB and 2MB pages spread over the same sets.
        (vm_types::mix64(vpn) & self.set_mask) as usize
    }

    /// Physical address of the line holding way `way` of `set`.
    #[inline]
    fn line_addr(&self, set: usize, way: usize) -> PhysAddr {
        let offset = (set * self.cfg.ways + way) as u64 * self.cfg.entry_bytes;
        self.base.add(offset).block_align()
    }

    /// Looks up `vpn` (of the given size); returns the hit/miss outcome and
    /// the memory line the lookup read. The caller must charge one
    /// hierarchy access to `line`.
    pub fn lookup(&mut self, vpn: u64, asid: Asid, size: PageSize) -> PomLookup {
        let set = self.set_of(vpn);
        self.tick += 1;
        let tick = self.tick;
        let start = set * self.cfg.ways;
        for w in 0..self.cfg.ways {
            let e = &mut self.entries[start + w];
            if e.valid && e.vpn == vpn && e.asid == asid && e.size == size {
                e.lru = tick;
                self.stats.hits += 1;
                return PomLookup { frame: Some(e.frame), line: self.line_addr(set, w) };
            }
        }
        self.stats.misses += 1;
        PomLookup { frame: None, line: self.line_addr(set, 0) }
    }

    /// Installs a translation (after a PTW or on L2 TLB eviction); returns
    /// the memory line written, which the caller charges as a store.
    pub fn insert(&mut self, vpn: u64, asid: Asid, size: PageSize, frame: u64) -> PhysAddr {
        let set = self.set_of(vpn);
        self.tick += 1;
        let tick = self.tick;
        let start = set * self.cfg.ways;
        let set_slice = &mut self.entries[start..start + self.cfg.ways];
        let way = if let Some(w) =
            set_slice.iter().position(|e| e.valid && e.vpn == vpn && e.asid == asid && e.size == size)
        {
            w
        } else if let Some(w) = set_slice.iter().position(|e| !e.valid) {
            w
        } else {
            set_slice.iter().enumerate().min_by_key(|(_, e)| e.lru).map(|(i, _)| i).unwrap()
        };
        set_slice[way] = PomEntry { valid: true, vpn, asid, size, frame, lru: tick };
        self.stats.inserts += 1;
        self.line_addr(set, way)
    }

    /// Invalidates one translation (shootdown support for the software
    /// TLB); returns whether an entry was dropped.
    pub fn invalidate(&mut self, vpn: u64, asid: Asid, size: PageSize) -> bool {
        let set = self.set_of(vpn);
        let start = set * self.cfg.ways;
        for e in &mut self.entries[start..start + self.cfg.ways] {
            if e.valid && e.vpn == vpn && e.asid == asid && e.size == size {
                e.valid = false;
                return true;
            }
        }
        false
    }

    /// Serialises the directory contents and LRU clock into checkpoint
    /// words (geometry and backing-store base are rebuilt from the
    /// config, statistics are zero at the checkpoint boundary).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.tick);
        for e in &self.entries {
            out.push(e.valid as u64 | (e.size.is_huge() as u64) << 1 | (e.asid.raw() as u64) << 4);
            out.push(e.vpn);
            out.push(e.frame);
            out.push(e.lru);
        }
    }

    /// Restores state captured by [`PomTlb::save_state`] into a POM-TLB
    /// of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if the word count does not match this geometry.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        let expect = 1 + 4 * self.cfg.entries;
        if words.len() != expect {
            return Err(format!(
                "POM-TLB: checkpoint section has {} words, geometry needs {expect}",
                words.len()
            ));
        }
        self.tick = words[0];
        for (e, w) in self.entries.iter_mut().zip(words[1..].chunks_exact(4)) {
            *e = PomEntry {
                valid: w[0] & 1 != 0,
                size: if w[0] & 1 << 1 != 0 { PageSize::Size2M } else { PageSize::Size4K },
                asid: Asid::new((w[0] >> 4) as u16),
                vpn: w[1],
                frame: w[2],
                lru: w[3],
            };
        }
        Ok(())
    }

    /// POM-TLB hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        let t = self.stats.hits + self.stats.misses;
        if t == 0 {
            0.0
        } else {
            self.stats.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pom() -> PomTlb {
        PomTlb::new(PomTlbConfig { entries: 1024, ways: 16, entry_bytes: 16 }, PhysAddr::new(0x40_0000))
    }

    #[test]
    fn storage_math_matches_paper_scale() {
        let cfg = PomTlbConfig::default();
        assert_eq!(cfg.storage_bytes(), 1 << 20, "64K x 16B = 1MB backing store");
        assert_eq!(cfg.num_sets(), 4096);
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut p = pom();
        let a = Asid::new(1);
        let l = p.lookup(0x42, a, PageSize::Size4K);
        assert!(l.frame.is_none());
        p.insert(0x42, a, PageSize::Size4K, 0x99);
        let l = p.lookup(0x42, a, PageSize::Size4K);
        assert_eq!(l.frame, Some(0x99));
        assert_eq!(p.stats.hits, 1);
        assert_eq!(p.stats.misses, 1);
    }

    #[test]
    fn line_addresses_fall_inside_backing_store() {
        let mut p = pom();
        let a = Asid::new(2);
        for vpn in 0..500u64 {
            let line = p.insert(vpn, a, PageSize::Size4K, vpn);
            assert!(line.raw() >= 0x40_0000);
            assert!(line.raw() < 0x40_0000 + p.config().storage_bytes());
            assert_eq!(line.raw() % 64, 0, "lines are block aligned");
        }
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut p = PomTlb::new(PomTlbConfig { entries: 16, ways: 16, entry_bytes: 16 }, PhysAddr::new(0));
        let a = Asid::new(1);
        for vpn in 0..16u64 {
            p.insert(vpn, a, PageSize::Size4K, vpn);
        }
        // Touch vpn 0 so it is MRU, then insert one more.
        p.lookup(0, a, PageSize::Size4K);
        p.insert(100, a, PageSize::Size4K, 100);
        assert!(p.lookup(0, a, PageSize::Size4K).frame.is_some());
        // Exactly one of the untouched entries was displaced.
        let missing = (1..16u64).filter(|&v| p.lookup(v, a, PageSize::Size4K).frame.is_none()).count();
        assert_eq!(missing, 1);
    }

    #[test]
    fn sizes_and_asids_are_distinct_keys() {
        let mut p = pom();
        p.insert(7, Asid::new(1), PageSize::Size4K, 1);
        assert!(p.lookup(7, Asid::new(2), PageSize::Size4K).frame.is_none());
        assert!(p.lookup(7, Asid::new(1), PageSize::Size2M).frame.is_none());
    }

    #[test]
    fn invalidate_drops_entry() {
        let mut p = pom();
        let a = Asid::new(1);
        p.insert(9, a, PageSize::Size4K, 5);
        assert!(p.invalidate(9, a, PageSize::Size4K));
        assert!(p.lookup(9, a, PageSize::Size4K).frame.is_none());
        assert!(!p.invalidate(9, a, PageSize::Size4K));
    }

    #[test]
    fn save_restore_round_trips_directory() {
        let mut p = pom();
        let a = Asid::new(6);
        for vpn in 0..200u64 {
            p.insert(vpn, a, PageSize::Size4K, vpn + 1000);
        }
        p.insert(7, a, PageSize::Size2M, 4096);
        let mut words = Vec::new();
        p.save_state(&mut words);
        let mut q = pom();
        q.restore_state(&words).expect("same geometry");
        for vpn in 0..200u64 {
            assert_eq!(q.lookup(vpn, a, PageSize::Size4K).frame, p.lookup(vpn, a, PageSize::Size4K).frame);
        }
        assert_eq!(q.lookup(7, a, PageSize::Size2M).frame, Some(4096));
        assert!(q.restore_state(&words[..10]).is_err());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut p = pom();
        let a = Asid::new(1);
        p.insert(3, a, PageSize::Size4K, 10);
        p.insert(3, a, PageSize::Size4K, 20);
        assert_eq!(p.lookup(3, a, PageSize::Size4K).frame, Some(20));
    }
}
