//! TLBs, page-walk caches, the hardware page-table walker and the POM-TLB
//! baseline for the Victima (MICRO 2023) reproduction.
//!
//! This crate provides the MMU *components* (Fig. 2 of the paper); the
//! full translation flows — native, virtualised nested paging, shadow
//! paging, POM-TLB and Victima — are composed from these parts by the
//! `sim` crate.
//!
//! # Examples
//!
//! ```
//! use tlb_sim::{SetAssocTlb, TlbConfig, TlbEntry};
//! use vm_types::{Asid, PageSize};
//!
//! let mut tlb = SetAssocTlb::new(TlbConfig::l2_unified(1536, 12));
//! let entry = TlbEntry::new(0x1234, Asid::new(1), PageSize::Size4K, 0x5678);
//! tlb.fill(entry);
//! assert!(tlb.probe(0x1234, Asid::new(1), PageSize::Size4K).is_some());
//! ```

pub mod configs;
pub mod pom;
pub mod pwc;
pub mod tlb;
pub mod walker;

pub use configs::MmuConfig;
pub use pom::{PomTlb, PomTlbConfig};
pub use pwc::PageWalkCaches;
pub use tlb::{SetAssocTlb, TlbConfig, TlbEntry, TlbStats};
pub use walker::{PageTableWalker, WalkOutcome, WalkerStats};
