//! Split page-walk caches (PWCs).
//!
//! The paper's MMU has three split PWCs, one per upper page-table level
//! (PML4 / PDPT / PD), each 32-entry 4-way with a 2-cycle latency
//! (Table 3). A hit at the PWC of level `l` means the walker already knows
//! the level-`l` lookup result and only issues memory accesses for levels
//! `l-1` down to the leaf.

use vm_types::{Asid, Cycles, VirtAddr};

/// Entries per split PWC.
const PWC_ENTRIES: usize = 32;
/// Associativity of each split PWC.
const PWC_WAYS: usize = 4;
/// Probe latency (all three levels probed in parallel).
pub const PWC_LATENCY: Cycles = 2;

#[derive(Clone, Copy, Debug, Default)]
struct PwcEntry {
    valid: bool,
    tag: u64,
    asid: Asid,
    lru: u64,
}

#[derive(Clone, Debug)]
struct SplitPwc {
    entries: [PwcEntry; PWC_ENTRIES],
    tick: u64,
}

impl SplitPwc {
    fn new() -> Self {
        Self { entries: [PwcEntry::default(); PWC_ENTRIES], tick: 0 }
    }

    fn set_range(tag: u64) -> std::ops::Range<usize> {
        let sets = PWC_ENTRIES / PWC_WAYS;
        let set = (tag as usize) & (sets - 1);
        set * PWC_WAYS..set * PWC_WAYS + PWC_WAYS
    }

    fn probe(&mut self, tag: u64, asid: Asid) -> bool {
        self.tick += 1;
        for e in &mut self.entries[Self::set_range(tag)] {
            if e.valid && e.tag == tag && e.asid == asid {
                e.lru = self.tick;
                return true;
            }
        }
        false
    }

    fn fill(&mut self, tag: u64, asid: Asid) {
        self.tick += 1;
        let tick = self.tick;
        let range = Self::set_range(tag);
        let set = &mut self.entries[range];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag && e.asid == asid) {
            e.lru = tick;
            return;
        }
        let victim = match set.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => set.iter().enumerate().min_by_key(|(_, e)| e.lru).map(|(i, _)| i).unwrap(),
        };
        set[victim] = PwcEntry { valid: true, tag, asid, lru: tick };
    }

    fn flush(&mut self) {
        self.entries = [PwcEntry::default(); PWC_ENTRIES];
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.tick);
        for e in &self.entries {
            out.push(e.valid as u64 | (e.asid.raw() as u64) << 1);
            out.push(e.tag);
            out.push(e.lru);
        }
    }

    fn restore_state(&mut self, words: &[u64]) {
        self.tick = words[0];
        for (e, w) in self.entries.iter_mut().zip(words[1..].chunks_exact(3)) {
            *e = PwcEntry { valid: w[0] & 1 != 0, asid: Asid::new((w[0] >> 1) as u16), tag: w[1], lru: w[2] };
        }
    }
}

/// Checkpoint words per split PWC: the LRU clock plus three words per
/// entry.
const SPLIT_STATE_WORDS: usize = 1 + 3 * PWC_ENTRIES;

/// The three split page-walk caches.
///
/// # Examples
///
/// ```
/// use tlb_sim::PageWalkCaches;
/// use vm_types::{Asid, VirtAddr};
///
/// let mut pwc = PageWalkCaches::new();
/// let va = VirtAddr::new(0x7000_1234_5678);
/// assert_eq!(pwc.deepest_hit(va, Asid::new(1), 0), None);
/// pwc.fill_all(va, Asid::new(1), 0);
/// assert_eq!(pwc.deepest_hit(va, Asid::new(1), 0), Some(1));
/// ```
pub struct PageWalkCaches {
    // Index 0 ↔ level 1 (PD), 1 ↔ level 2 (PDPT), 2 ↔ level 3 (PML4).
    levels: [SplitPwc; 3],
    /// Lookups that hit at any level.
    pub hits: u64,
    /// Lookups that missed all levels.
    pub misses: u64,
}

impl std::fmt::Debug for PageWalkCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageWalkCaches").field("hits", &self.hits).field("misses", &self.misses).finish()
    }
}

impl Default for PageWalkCaches {
    fn default() -> Self {
        Self::new()
    }
}

/// The VA prefix a level-`l` PWC entry is tagged with: all VA bits above
/// the part of the index the level itself resolves.
#[inline]
fn prefix(va: VirtAddr, level: u8) -> u64 {
    va.raw() >> (12 + 9 * level as u64)
}

impl PageWalkCaches {
    /// Creates empty PWCs.
    pub fn new() -> Self {
        Self { levels: [SplitPwc::new(), SplitPwc::new(), SplitPwc::new()], hits: 0, misses: 0 }
    }

    /// Probes all three PWCs for `va` and returns the deepest cached level
    /// strictly above `leaf_level` (1 = PD is deepest, 3 = PML4 shallowest),
    /// or `None` on a full miss. A return of `Some(l)` lets the walker skip
    /// memory accesses for levels 3..=l.
    pub fn deepest_hit(&mut self, va: VirtAddr, asid: Asid, leaf_level: u8) -> Option<u8> {
        for level in (leaf_level + 1)..=3 {
            if self.levels[level as usize - 1].probe(prefix(va, level), asid) {
                self.hits += 1;
                return Some(level);
            }
        }
        self.misses += 1;
        None
    }

    /// Fills all PWC levels above `leaf_level` after a completed walk.
    pub fn fill_all(&mut self, va: VirtAddr, asid: Asid, leaf_level: u8) {
        for level in (leaf_level + 1)..=3 {
            self.levels[level as usize - 1].fill(prefix(va, level), asid);
        }
    }

    /// Flushes all PWCs (context switch without ASID reuse).
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
    }

    /// Serialises all three PWC levels plus the lifetime hit/miss
    /// counters (which survive stats resets) into checkpoint words.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.hits);
        out.push(self.misses);
        for l in &self.levels {
            l.save_state(out);
        }
    }

    /// Restores state captured by [`PageWalkCaches::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a message if the word count is wrong.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        let expect = 2 + 3 * SPLIT_STATE_WORDS;
        if words.len() != expect {
            return Err(format!("PWC: checkpoint section has {} words, expected {expect}", words.len()));
        }
        self.hits = words[0];
        self.misses = words[1];
        for (l, w) in self.levels.iter_mut().zip(words[2..].chunks_exact(SPLIT_STATE_WORDS)) {
            l.restore_state(w);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pwc_misses() {
        let mut p = PageWalkCaches::new();
        assert_eq!(p.deepest_hit(VirtAddr::new(0x1234_5000), Asid::new(1), 0), None);
        assert_eq!(p.misses, 1);
    }

    #[test]
    fn fill_then_deepest_hit_is_pd_level() {
        let mut p = PageWalkCaches::new();
        let va = VirtAddr::new(0x7000_1234_5678);
        let a = Asid::new(1);
        p.fill_all(va, a, 0);
        assert_eq!(p.deepest_hit(va, a, 0), Some(1));
    }

    #[test]
    fn nearby_va_hits_shallower_level() {
        let mut p = PageWalkCaches::new();
        let a = Asid::new(1);
        let va = VirtAddr::new(0x7000_0000_0000);
        p.fill_all(va, a, 0);
        // Same PDPT region (same bits ≥30) but different PD region (bits ≥21
        // differ): the PD-level prefix changes, the PDPT one does not.
        let sibling = VirtAddr::new(0x7000_0020_0000);
        assert_eq!(p.deepest_hit(sibling, a, 0), Some(2));
        // A different PML4 region misses everywhere.
        let far = VirtAddr::new(0x0123_4567_8000);
        assert_eq!(p.deepest_hit(far, a, 0), None);
    }

    #[test]
    fn huge_page_walks_ignore_pd_pwc() {
        let mut p = PageWalkCaches::new();
        let a = Asid::new(1);
        let va = VirtAddr::new(0x7000_1234_5678);
        p.fill_all(va, a, 0);
        // For a 2MB leaf (leaf_level = 1), the PD-level PWC entry is the
        // leaf itself, so the deepest usable cache is the PDPT (level 2).
        assert_eq!(p.deepest_hit(va, a, 1), Some(2));
    }

    #[test]
    fn asid_disambiguates() {
        let mut p = PageWalkCaches::new();
        let va = VirtAddr::new(0x7000_1234_5678);
        p.fill_all(va, Asid::new(1), 0);
        assert_eq!(p.deepest_hit(va, Asid::new(2), 0), None);
    }

    #[test]
    fn save_restore_round_trips_all_levels() {
        let mut p = PageWalkCaches::new();
        let a = Asid::new(3);
        for i in 0..20u64 {
            p.fill_all(VirtAddr::new(0x7000_0000_0000 + i * (2 << 20)), a, 0);
        }
        p.deepest_hit(VirtAddr::new(0x7000_0000_0000), a, 0);
        let mut words = Vec::new();
        p.save_state(&mut words);
        let mut q = PageWalkCaches::new();
        q.restore_state(&words).expect("fixed geometry");
        assert_eq!((q.hits, q.misses), (p.hits, p.misses));
        for i in 0..20u64 {
            let va = VirtAddr::new(0x7000_0000_0000 + i * (2 << 20));
            assert_eq!(q.deepest_hit(va, a, 0), p.deepest_hit(va, a, 0), "divergence at region {i}");
        }
        assert!(q.restore_state(&words[1..]).is_err(), "short section must be rejected");
    }

    #[test]
    fn flush_empties_everything() {
        let mut p = PageWalkCaches::new();
        let va = VirtAddr::new(0x7000_1234_5678);
        p.fill_all(va, Asid::new(1), 0);
        p.flush();
        assert_eq!(p.deepest_hit(va, Asid::new(1), 0), None);
    }
}
