//! The hardware page-table walker.
//!
//! On an L2 TLB miss the MMU triggers a walk (Fig. 2): the walker probes
//! the split PWCs, then issues one cache-hierarchy access per remaining
//! page-table level, pointer-chasing serially. The walker also updates the
//! PTE-embedded PTW frequency/cost counters that Victima's predictor reads
//! (Sec. 5.2), and feeds the PTW-latency histogram behind Fig. 4.
//!
//! The same walker is reused for the host page table and the shadow page
//! table in virtualised mode; the 2D nested-walk *flow* is composed in the
//! `sim` crate from two walkers plus the nested TLB.

use crate::pwc::{PageWalkCaches, PWC_LATENCY};
use mem_sim::{Hierarchy, MemClass, ReplacementCtx};
use page_table::{Pte, RadixPageTable};
use vm_types::{Asid, Cycles, Histogram, PageSize, PhysAddr, VirtAddr};

/// Result of one page-table walk.
#[derive(Clone, Copy, Debug)]
pub struct WalkOutcome {
    /// Total walk latency (PWC probe + serial memory accesses).
    pub latency: Cycles,
    /// Whether any access during the walk touched DRAM.
    pub dram_touched: bool,
    /// Output frame (4KB-frame number of the page base).
    pub frame: u64,
    /// Page size of the mapping.
    pub page_size: PageSize,
    /// Leaf PTE value *after* the counter updates of this walk.
    pub leaf_pte: Pte,
    /// Physical address of the leaf PTE (its 64B block holds the cluster
    /// of 8 PTEs that Victima transforms into a TLB block).
    pub leaf_pte_paddr: PhysAddr,
    /// Number of memory accesses the walk issued (0 when all upper levels
    /// hit in the PWC is impossible — the leaf always goes to memory).
    pub memory_accesses: u8,
}

/// Aggregate walker statistics.
#[derive(Clone, Debug)]
pub struct WalkerStats {
    /// Completed walks.
    pub walks: u64,
    /// Walks that touched DRAM at least once.
    pub dram_walks: u64,
    /// Total walk latency.
    pub total_latency: u64,
    /// Total memory accesses issued by walks.
    pub memory_accesses: u64,
    /// Latency distribution with the paper's Fig. 4 buckets
    /// (`[20,190)` in 10-cycle steps; overflow beyond).
    pub latency_hist: Histogram,
}

impl Default for WalkerStats {
    fn default() -> Self {
        Self {
            walks: 0,
            dram_walks: 0,
            total_latency: 0,
            memory_accesses: 0,
            latency_hist: Histogram::new(20, 10, 17),
        }
    }
}

impl WalkerStats {
    /// Mean walk latency (0 when no walks).
    pub fn mean_latency(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.walks as f64
        }
    }
}

/// A hardware page-table walker with its split PWCs.
pub struct PageTableWalker {
    /// The split page-walk caches.
    pub pwc: PageWalkCaches,
    /// Statistics.
    pub stats: WalkerStats,
    /// Whether walks update the PTE counters (the baseline systems do, so
    /// the predictor study of Table 2 can observe them; disable to model
    /// hardware without Victima support).
    pub update_counters: bool,
}

impl std::fmt::Debug for PageTableWalker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageTableWalker").field("stats", &self.stats).finish()
    }
}

impl Default for PageTableWalker {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTableWalker {
    /// Creates a walker with cold PWCs.
    pub fn new() -> Self {
        Self { pwc: PageWalkCaches::new(), stats: WalkerStats::default(), update_counters: true }
    }

    /// Performs one walk of `pt` for `va`, issuing real hierarchy accesses
    /// for the levels not covered by the PWCs. Returns `None` if `va` is
    /// unmapped (a page fault, which the simulated workloads never incur).
    pub fn walk(
        &mut self,
        pt: &mut RadixPageTable,
        va: VirtAddr,
        asid: Asid,
        hier: &mut Hierarchy,
        ctx: &ReplacementCtx,
    ) -> Option<WalkOutcome> {
        let walk = pt.walk(va)?;
        let leaf_level = walk.page_size.leaf_level();
        let mut latency = PWC_LATENCY;
        let deepest = self.pwc.deepest_hit(va, asid, leaf_level);
        let mut dram_touched = false;
        let mut accesses = 0u8;
        for step in walk.steps() {
            // Skip levels whose results the PWC already holds: a hit at
            // PWC level l covers levels 3..=l.
            if let Some(l) = deepest {
                if step.level >= l {
                    continue;
                }
            }
            let r = hier.access(step.pte_paddr, false, MemClass::Ptw, ctx);
            latency += r.latency;
            dram_touched |= r.dram_access;
            accesses += 1;
        }
        self.pwc.fill_all(va, asid, leaf_level);

        let mut leaf_pte = walk.leaf_pte;
        if self.update_counters {
            pt.update_leaf(va, |pte| {
                pte.bump_ptw_freq();
                if dram_touched {
                    pte.bump_ptw_cost();
                }
                leaf_pte = *pte;
            });
        }

        self.stats.walks += 1;
        self.stats.total_latency += latency;
        self.stats.memory_accesses += accesses as u64;
        if dram_touched {
            self.stats.dram_walks += 1;
        }
        self.stats.latency_hist.record(latency);

        Some(WalkOutcome {
            latency,
            dram_touched,
            frame: walk.frame,
            page_size: walk.page_size,
            leaf_pte,
            leaf_pte_paddr: walk.leaf_pte_paddr(),
            memory_accesses: accesses,
        })
    }

    /// Clears statistics (PWC contents stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = WalkerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::HierarchyConfig;
    use page_table::FrameAllocator;

    fn setup() -> (FrameAllocator, RadixPageTable, Hierarchy, PageTableWalker) {
        let mut alloc = FrameAllocator::new(1 << 30, 5);
        let pt = RadixPageTable::new(&mut alloc);
        let hier = Hierarchy::new(HierarchyConfig { prefetchers: false, ..HierarchyConfig::default() });
        (alloc, pt, hier, PageTableWalker::new())
    }

    #[test]
    fn cold_walk_issues_four_accesses() {
        let (mut alloc, mut pt, mut hier, mut w) = setup();
        let va = VirtAddr::new(0x4000_0000);
        let frame = alloc.alloc_4k();
        pt.map(va, frame, PageSize::Size4K, &mut alloc);
        let ctx = ReplacementCtx::default();
        let out = w.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).expect("mapped");
        assert_eq!(out.memory_accesses, 4);
        assert_eq!(out.frame, frame);
        assert!(out.dram_touched);
        assert!(out.latency > 100, "cold walk should reach DRAM, got {}", out.latency);
    }

    #[test]
    fn warm_walk_uses_pwc_and_is_much_faster() {
        let (mut alloc, mut pt, mut hier, mut w) = setup();
        let va = VirtAddr::new(0x4000_0000);
        pt.map(va, alloc.alloc_4k(), PageSize::Size4K, &mut alloc);
        // A neighbouring page in the same PD region (same leaf table).
        let vb = VirtAddr::new(0x4000_1000);
        pt.map(vb, alloc.alloc_4k(), PageSize::Size4K, &mut alloc);
        let ctx = ReplacementCtx::default();
        w.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).unwrap();
        let out = w.walk(&mut pt, vb, Asid::new(1), &mut hier, &ctx).unwrap();
        assert_eq!(out.memory_accesses, 1, "PWC covers all upper levels");
        // The leaf block was just fetched into L2 by the first walk.
        assert_eq!(out.latency, PWC_LATENCY + 16);
    }

    #[test]
    fn walk_updates_pte_counters() {
        let (mut alloc, mut pt, mut hier, mut w) = setup();
        let va = VirtAddr::new(0x5000_0000);
        pt.map(va, alloc.alloc_4k(), PageSize::Size4K, &mut alloc);
        let ctx = ReplacementCtx::default();
        let o1 = w.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).unwrap();
        assert_eq!(o1.leaf_pte.ptw_freq(), 1);
        assert_eq!(o1.leaf_pte.ptw_cost(), 1, "cold walk touched DRAM");
        let o2 = w.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).unwrap();
        assert_eq!(o2.leaf_pte.ptw_freq(), 2);
        assert_eq!(o2.leaf_pte.ptw_cost(), 1, "warm walk stayed in caches");
    }

    #[test]
    fn counter_updates_can_be_disabled() {
        let (mut alloc, mut pt, mut hier, mut w) = setup();
        w.update_counters = false;
        let va = VirtAddr::new(0x6000_0000);
        pt.map(va, alloc.alloc_4k(), PageSize::Size4K, &mut alloc);
        let ctx = ReplacementCtx::default();
        let o = w.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).unwrap();
        assert_eq!(o.leaf_pte.ptw_freq(), 0);
    }

    #[test]
    fn huge_page_walk_is_three_levels() {
        let (mut alloc, mut pt, mut hier, mut w) = setup();
        let va = VirtAddr::new(0x8000_0000);
        pt.map(va, alloc.alloc_2m(), PageSize::Size2M, &mut alloc);
        let ctx = ReplacementCtx::default();
        let out = w.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).unwrap();
        assert_eq!(out.memory_accesses, 3);
        assert_eq!(out.page_size, PageSize::Size2M);
    }

    #[test]
    fn unmapped_walk_returns_none() {
        let (_, mut pt, mut hier, mut w) = setup();
        let ctx = ReplacementCtx::default();
        assert!(w.walk(&mut pt, VirtAddr::new(0x123), Asid::new(1), &mut hier, &ctx).is_none());
    }

    #[test]
    fn stats_accumulate() {
        let (mut alloc, mut pt, mut hier, mut w) = setup();
        let ctx = ReplacementCtx::default();
        for i in 0..10u64 {
            let va = VirtAddr::new(0x9000_0000 + i * 4096);
            pt.map(va, alloc.alloc_4k(), PageSize::Size4K, &mut alloc);
            w.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).unwrap();
        }
        assert_eq!(w.stats.walks, 10);
        assert!(w.stats.mean_latency() > 0.0);
        assert_eq!(w.stats.latency_hist.count(), 10);
        assert!(w.stats.dram_walks >= 1);
    }
}
