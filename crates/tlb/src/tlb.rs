//! Set-associative translation lookaside buffers.
//!
//! One implementation serves every TLB in the paper's MMU: the L1 I-TLB,
//! the split L1 D-TLBs (one per page size), the unified multi-page-size L2
//! TLB, the hardware L3 TLBs of Sec. 3.1, and the 64-entry nested TLB of
//! virtualised mode (where the "virtual page number" key is a
//! guest-physical frame number).
//!
//! # Packed key words
//!
//! Like `mem_sim::Cache`, the probe path scans a packed parallel key
//! array, not the fat [`TlbEntry`] payloads: each way's identity (valid
//! bit, page size, ASID, VPN) packs into one `u64`, so a probe is one
//! equality compare per way over contiguous memory. Payload entries
//! (output frame + PTW counter snapshots) are touched only on hits and
//! fills, and LRU stamps live in their own packed array. Layout, low bit
//! first:
//!
//! ```text
//! [63:16] vpn   (48 bits; VPNs of a 48-bit VA need ≤ 36)
//! [15:4]  asid  (12-bit PCID)
//! [3]     page size (0 = 4KB, 1 = 2MB)
//! [0]     valid
//! ```

use vm_types::{Asid, Cycles, PageSize};

/// One TLB entry.
///
/// Besides the translation itself, entries snapshot the PTE's PTW
/// frequency/cost counters at fill time: Victima's eviction flow consults
/// the predictor with these values when the entry leaves the L2 TLB
/// (Sec. 5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Valid bit.
    pub valid: bool,
    /// Virtual page number (for `size`-sized pages).
    pub vpn: u64,
    /// Address-space identifier.
    pub asid: Asid,
    /// Page size of the mapping.
    pub size: PageSize,
    /// Output frame (4KB-frame number of the page base).
    pub frame: u64,
    /// PTW frequency counter snapshot (3-bit).
    pub ptw_freq: u8,
    /// PTW cost counter snapshot (4-bit).
    pub ptw_cost: u8,
}

impl TlbEntry {
    /// Creates a valid entry with zeroed counters.
    pub fn new(vpn: u64, asid: Asid, size: PageSize, frame: u64) -> Self {
        Self { valid: true, vpn, asid, size, frame, ptw_freq: 0, ptw_cost: 0 }
    }

    /// Creates a valid entry carrying counter snapshots.
    pub fn with_counters(vpn: u64, asid: Asid, size: PageSize, frame: u64, freq: u8, cost: u8) -> Self {
        Self { valid: true, vpn, asid, size, frame, ptw_freq: freq, ptw_cost: cost }
    }

    /// The packed key word of this entry's identity.
    #[inline]
    fn key(&self) -> u64 {
        pack_key(self.vpn, self.asid, self.size)
    }

    /// The packed payload word: `frame | freq<<56 | cost<<60` (40-bit
    /// frames leave bits 56+ free). Everything else about an entry is
    /// recoverable from its key word.
    #[inline]
    fn payload(&self) -> u64 {
        self.frame | (self.ptw_freq as u64) << 56 | (self.ptw_cost as u64) << 60
    }

    /// Reconstructs an entry from its packed key and payload words.
    #[inline]
    fn unpack(key: u64, payload: u64) -> TlbEntry {
        debug_assert!(key_is_valid(key), "unpacking an invalid way");
        TlbEntry {
            valid: true,
            vpn: key >> 16,
            asid: key_asid(key),
            size: if key & (1 << 3) != 0 { PageSize::Size2M } else { PageSize::Size4K },
            frame: payload & ((1 << 56) - 1),
            ptw_freq: (payload >> 56 & 0x7) as u8,
            ptw_cost: (payload >> 60 & 0xf) as u8,
        }
    }
}

/// Packs a (vpn, asid, size) identity into a key word (see module docs).
#[inline]
const fn pack_key(vpn: u64, asid: Asid, size: PageSize) -> u64 {
    debug_assert!(vpn < 1 << 48, "vpn overflows the key word");
    (vpn << 16) | ((asid.raw() as u64) << 4) | ((size.is_huge() as u64) << 3) | 1
}

/// The key word of an empty way.
const INVALID_KEY: u64 = 0;

#[inline]
const fn key_is_valid(key: u64) -> bool {
    key & 1 != 0
}

#[inline]
const fn key_asid(key: u64) -> Asid {
    Asid::new(((key >> 4) & 0xfff) as u16)
}

/// Geometry of a TLB.
#[derive(Clone, Debug)]
pub struct TlbConfig {
    /// Name for diagnostics, e.g. "L2-TLB".
    pub name: &'static str,
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Probe latency in cycles.
    pub latency: Cycles,
}

impl TlbConfig {
    /// The paper's unified L2 TLB shape: `entries` total, 12-cycle latency.
    pub fn l2_unified(entries: usize, ways: usize) -> Self {
        Self { name: "L2-TLB", entries, ways, latency: 12 }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if geometry is inconsistent or the set count is not a power
    /// of two.
    pub fn num_sets(&self) -> usize {
        assert!(
            self.ways > 0 && self.entries.is_multiple_of(self.ways),
            "{}: entries must divide by ways",
            self.name
        );
        let sets = self.entries / self.ways;
        assert!(sets.is_power_of_two(), "{}: set count {} must be a power of two", self.name, sets);
        sets
    }
}

/// Hit/miss statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlbStats {
    /// Probes that hit.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Entries filled.
    pub fills: u64,
    /// Valid entries displaced by fills.
    pub evictions: u64,
    /// Entries invalidated by maintenance operations.
    pub invalidations: u64,
}

impl TlbStats {
    /// Total probes.
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio (0 when unused).
    pub fn miss_ratio(&self) -> f64 {
        let p = self.probes();
        if p == 0 {
            0.0
        } else {
            self.misses as f64 / p as f64
        }
    }
}

/// A set-associative, LRU TLB over packed key words.
pub struct SetAssocTlb {
    cfg: TlbConfig,
    set_mask: u64,
    /// Packed identity keys, one per way (the scanned hot array).
    keys: Vec<u64>,
    /// LRU stamps, one per way, packed separately so the fill-time victim
    /// scan reads one or two cache lines per set instead of walking a
    /// payload array.
    stamps: Vec<u64>,
    /// Packed payload words (`frame | freq<<56 | cost<<60`), one per way.
    /// Together the three word arrays keep even the paper's 1536-entry
    /// L2 TLB in ~36KB of dense state — [`TlbEntry`] values exist only at
    /// the API boundary.
    payloads: Vec<u64>,
    tick: u64,
    /// Statistics.
    pub stats: TlbStats,
}

impl std::fmt::Debug for SetAssocTlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocTlb")
            .field("name", &self.cfg.name)
            .field("entries", &self.cfg.entries)
            .field("ways", &self.cfg.ways)
            .field("latency", &self.cfg.latency)
            .finish()
    }
}

impl SetAssocTlb {
    /// Creates a TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        let sets = cfg.num_sets();
        assert!(cfg.ways <= 256, "{}: victim packing carries the way index in 8 bits", cfg.name);
        Self {
            set_mask: sets as u64 - 1,
            keys: vec![INVALID_KEY; cfg.entries],
            stamps: vec![0; cfg.entries],
            payloads: vec![0; cfg.entries],
            cfg,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Probe latency.
    #[inline]
    pub fn latency(&self) -> Cycles {
        self.cfg.latency
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    #[inline]
    fn set_start(&self, vpn: u64) -> usize {
        (vpn & self.set_mask) as usize * self.cfg.ways
    }

    /// Scans one set's keys for `key`; returns the absolute index.
    #[inline]
    fn find(&self, start: usize, key: u64) -> Option<usize> {
        self.keys[start..start + self.cfg.ways].iter().position(|&k| k == key).map(|w| start + w)
    }

    /// Looks up a translation, updating LRU and statistics.
    pub fn probe(&mut self, vpn: u64, asid: Asid, size: PageSize) -> Option<TlbEntry> {
        self.tick += 1;
        let start = self.set_start(vpn);
        let key = pack_key(vpn, asid, size);
        match self.find(start, key) {
            Some(i) => {
                self.stamps[i] = self.tick;
                self.stats.hits += 1;
                Some(TlbEntry::unpack(key, self.payloads[i]))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Non-destructive lookup (no LRU or statistics updates).
    pub fn contains(&self, vpn: u64, asid: Asid, size: PageSize) -> bool {
        self.find(self.set_start(vpn), pack_key(vpn, asid, size)).is_some()
    }

    /// Inserts an entry; returns the entry displaced, if a valid one was.
    /// Re-filling an already-present translation refreshes it in place.
    pub fn fill(&mut self, mut entry: TlbEntry) -> Option<TlbEntry> {
        self.stats.fills += 1;
        self.tick += 1;
        entry.valid = true;
        let key = entry.key();
        let start = self.set_start(entry.vpn);
        // One scan resolves both outcomes. Each way is packed as
        // `valid<<63 | stamp<<8 | way` and the minimum folded as the scan
        // goes, so if the translation is absent the fold has already
        // picked the victim — an invalid way (lowest index first) always
        // beats a valid one, and ties on stamp resolve to the lowest way:
        // the classic "first free way, else first-LRU" policy as a
        // branchless cmp+cmov fold. A present translation exits early
        // into the refresh path.
        let set_keys = &self.keys[start..start + self.cfg.ways];
        let set_stamps = &self.stamps[start..start + self.cfg.ways];
        let mut best = u64::MAX;
        let mut present = usize::MAX;
        for w in 0..self.cfg.ways {
            let k = set_keys[w];
            if k == key {
                present = w;
                break;
            }
            best = best.min((k & 1) << 63 | set_stamps[w] << 8 | w as u64);
        }
        // Refresh in place if present.
        if present != usize::MAX {
            let i = start + present;
            self.payloads[i] = entry.payload();
            self.stamps[i] = self.tick;
            return None;
        }
        let victim = start + (best & 0xff) as usize;
        let displaced = key_is_valid(self.keys[victim])
            .then(|| TlbEntry::unpack(self.keys[victim], self.payloads[victim]));
        if displaced.is_some() {
            self.stats.evictions += 1;
        }
        self.keys[victim] = key;
        self.payloads[victim] = entry.payload();
        self.stamps[victim] = self.tick;
        displaced
    }

    /// Invalidates one translation; returns whether one was present.
    pub fn invalidate(&mut self, vpn: u64, asid: Asid, size: PageSize) -> bool {
        match self.find(self.set_start(vpn), pack_key(vpn, asid, size)) {
            Some(i) => {
                self.keys[i] = INVALID_KEY;
                self.stamps[i] = 0;
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    /// Invalidates every entry of an address space; returns the count.
    pub fn invalidate_asid(&mut self, asid: Asid) -> u64 {
        let mut n = 0;
        for (k, s) in self.keys.iter_mut().zip(self.stamps.iter_mut()) {
            if key_is_valid(*k) && key_asid(*k) == asid {
                *k = INVALID_KEY;
                *s = 0;
                n += 1;
            }
        }
        self.stats.invalidations += n;
        n
    }

    /// Invalidates everything; returns the count.
    pub fn invalidate_all(&mut self) -> u64 {
        let mut n = 0;
        for (k, s) in self.keys.iter_mut().zip(self.stamps.iter_mut()) {
            if key_is_valid(*k) {
                *k = INVALID_KEY;
                *s = 0;
                n += 1;
            }
        }
        self.stats.invalidations += n;
        n
    }

    /// Number of currently valid entries.
    pub fn valid_entries(&self) -> usize {
        self.keys.iter().filter(|&&k| key_is_valid(k)).count()
    }

    /// Clears statistics (contents stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Serialises the TLB's microarchitectural state (LRU clock, packed
    /// keys, payloads) into checkpoint words. Statistics are not included
    /// — checkpoints are taken at a boundary where they are zero. Per way
    /// the payload packs `frame | freq<<56 | cost<<60` (40-bit frames
    /// leave bits 56+ free), followed by the LRU stamp; everything else
    /// about an entry is recoverable from its key word.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.tick);
        for ((k, p), s) in self.keys.iter().zip(&self.payloads).zip(&self.stamps) {
            out.push(*k);
            out.push(*p);
            out.push(*s);
        }
    }

    /// Restores state captured by [`SetAssocTlb::save_state`] into a TLB
    /// of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if the word count does not match this geometry.
    pub fn restore_state(&mut self, words: &[u64]) -> Result<(), String> {
        let expect = 1 + 3 * self.cfg.entries;
        if words.len() != expect {
            return Err(format!(
                "{}: checkpoint section has {} words, geometry needs {expect}",
                self.cfg.name,
                words.len()
            ));
        }
        self.tick = words[0];
        for (i, way) in words[1..].chunks_exact(3).enumerate() {
            self.keys[i] = way[0];
            self.payloads[i] = way[1];
            self.stamps[i] = way[2];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: usize, ways: usize) -> SetAssocTlb {
        SetAssocTlb::new(TlbConfig { name: "T", entries, ways, latency: 1 })
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut t = tlb(64, 4);
        let a = Asid::new(1);
        assert!(t.probe(10, a, PageSize::Size4K).is_none());
        t.fill(TlbEntry::new(10, a, PageSize::Size4K, 99));
        let e = t.probe(10, a, PageSize::Size4K).expect("hit");
        assert_eq!(e.frame, 99);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn asid_and_size_disambiguate() {
        let mut t = tlb(64, 4);
        t.fill(TlbEntry::new(10, Asid::new(1), PageSize::Size4K, 99));
        assert!(t.probe(10, Asid::new(2), PageSize::Size4K).is_none());
        assert!(t.probe(10, Asid::new(1), PageSize::Size2M).is_none());
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut t = tlb(4, 4); // single set
        let a = Asid::new(1);
        for vpn in 0..4u64 {
            t.fill(TlbEntry::new(vpn, a, PageSize::Size4K, vpn));
        }
        // Note: with one set all vpns collide. Touch vpn 0 to refresh it.
        t.probe(0, a, PageSize::Size4K);
        let displaced = t.fill(TlbEntry::new(100, a, PageSize::Size4K, 7)).expect("full set evicts");
        assert_eq!(displaced.vpn, 1, "vpn 1 is least recently used");
    }

    #[test]
    fn refill_in_place_does_not_evict() {
        let mut t = tlb(4, 4);
        let a = Asid::new(1);
        for vpn in 0..4u64 {
            t.fill(TlbEntry::new(vpn, a, PageSize::Size4K, vpn));
        }
        assert!(t.fill(TlbEntry::new(2, a, PageSize::Size4K, 42)).is_none());
        assert_eq!(t.probe(2, a, PageSize::Size4K).unwrap().frame, 42);
        assert_eq!(t.valid_entries(), 4);
    }

    #[test]
    fn invalidate_single_and_asid_and_all() {
        let mut t = tlb(64, 4);
        t.fill(TlbEntry::new(1, Asid::new(1), PageSize::Size4K, 1));
        t.fill(TlbEntry::new(2, Asid::new(1), PageSize::Size4K, 2));
        t.fill(TlbEntry::new(3, Asid::new(2), PageSize::Size4K, 3));
        assert!(t.invalidate(1, Asid::new(1), PageSize::Size4K));
        assert!(!t.invalidate(1, Asid::new(1), PageSize::Size4K));
        assert_eq!(t.invalidate_asid(Asid::new(1)), 1);
        assert_eq!(t.invalidate_all(), 1);
        assert_eq!(t.valid_entries(), 0);
        assert_eq!(t.stats.invalidations, 3);
    }

    #[test]
    fn counters_survive_fill_and_probe() {
        let mut t = tlb(64, 4);
        t.fill(TlbEntry::with_counters(5, Asid::new(1), PageSize::Size4K, 50, 3, 7));
        let e = t.probe(5, Asid::new(1), PageSize::Size4K).unwrap();
        assert_eq!((e.ptw_freq, e.ptw_cost), (3, 7));
    }

    #[test]
    fn paper_l2_geometry_is_valid() {
        // 1536 entries, 12 ways -> 128 sets.
        let t = SetAssocTlb::new(TlbConfig::l2_unified(1536, 12));
        assert_eq!(t.config().num_sets(), 128);
        assert_eq!(t.latency(), 12);
    }

    #[test]
    fn eviction_happens_only_when_set_full() {
        let mut t = tlb(8, 4); // 2 sets
        let a = Asid::new(1);
        // vpns 0,2,4,6 land in set 0; 1,3 in set 1.
        for vpn in [0u64, 2, 4, 6] {
            assert!(t.fill(TlbEntry::new(vpn, a, PageSize::Size4K, vpn)).is_none());
        }
        assert!(t.fill(TlbEntry::new(8, a, PageSize::Size4K, 8)).is_some());
        assert!(t.fill(TlbEntry::new(1, a, PageSize::Size4K, 1)).is_none());
    }

    #[test]
    fn save_restore_round_trips_contents_and_lru() {
        let mut t = tlb(16, 4);
        let a = Asid::new(5);
        for vpn in 0..10u64 {
            t.fill(TlbEntry::with_counters(vpn, a, PageSize::Size4K, vpn * 7, 3, 9));
        }
        t.fill(TlbEntry::new(99, a, PageSize::Size2M, 512));
        t.probe(4, a, PageSize::Size4K);
        let mut words = Vec::new();
        t.save_state(&mut words);
        let mut u = tlb(16, 4);
        u.restore_state(&words).expect("same geometry");
        assert_eq!(u.valid_entries(), t.valid_entries());
        let e = u.probe(4, a, PageSize::Size4K).expect("restored entry");
        assert_eq!((e.frame, e.ptw_freq, e.ptw_cost), (28, 3, 9));
        assert_eq!(u.probe(99, a, PageSize::Size2M).unwrap().frame, 512);
        // Mirror the verification probes so both LRU clocks stay in sync.
        t.probe(4, a, PageSize::Size4K);
        t.probe(99, a, PageSize::Size2M);
        // After identical post-restore operations the two TLBs stay in
        // lockstep: same victim choices (LRU state survived).
        for vpn in 100..120u64 {
            let dt = t.fill(TlbEntry::new(vpn, a, PageSize::Size4K, vpn));
            let du = u.fill(TlbEntry::new(vpn, a, PageSize::Size4K, vpn));
            assert_eq!(dt, du, "divergent eviction after restore at vpn {vpn}");
        }
    }

    #[test]
    fn restore_rejects_wrong_geometry() {
        let t = tlb(16, 4);
        let mut words = Vec::new();
        t.save_state(&mut words);
        let mut u = tlb(32, 4);
        assert!(u.restore_state(&words).is_err());
    }

    #[test]
    fn keys_stay_consistent_with_payloads() {
        let mut t = tlb(16, 4);
        let mut rng = vm_types::SplitMix64::new(77);
        for _ in 0..500 {
            let vpn = rng.next_below(32);
            let asid = Asid::new(1 + (rng.next_below(2) as u16));
            match rng.next_below(3) {
                0 => {
                    t.fill(TlbEntry::new(vpn, asid, PageSize::Size4K, vpn));
                }
                1 => {
                    t.probe(vpn, asid, PageSize::Size4K);
                }
                _ => {
                    t.invalidate(vpn, asid, PageSize::Size4K);
                }
            }
        }
        for i in 0..t.keys.len() {
            if key_is_valid(t.keys[i]) {
                let e = TlbEntry::unpack(t.keys[i], t.payloads[i]);
                assert!(e.valid);
                assert_eq!(t.keys[i], e.key(), "key {i} diverged from payload");
            }
        }
    }
}
