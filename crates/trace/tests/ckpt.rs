//! Round-trip and error-path tests for the `.vckpt` checkpoint
//! container, mirroring `tests/format.rs` for the trace format. Random
//! section contents come from the workspace's deterministic SplitMix64.

use victima_trace::{Checkpoint, CheckpointMeta, TraceError, TraceScale, CKPT_VERSION};
use vm_types::SplitMix64;

fn sample_meta() -> CheckpointMeta {
    CheckpointMeta {
        engine: "victima-trace/it".into(),
        config: "victima".into(),
        workload: "RND".into(),
        scale: TraceScale::Small,
        seed: 0xfeed_beef,
        warmup: 250_000,
        refs_consumed: 61_803,
    }
}

fn random_checkpoint(seed: u64, sections: usize, words_per: usize) -> Checkpoint {
    let mut rng = SplitMix64::new(seed);
    let mut ck = Checkpoint::new(sample_meta());
    for i in 0..sections {
        let words: Vec<u64> = (0..words_per).map(|_| rng.next_u64()).collect();
        ck.add_section(&format!("section-{i}"), words);
    }
    ck
}

#[test]
fn meta_round_trips_bit_exact() {
    let ck = Checkpoint::new(sample_meta());
    let back = Checkpoint::decode(&ck.encode()).unwrap();
    assert_eq!(back.meta, sample_meta());
    assert_eq!(back.sections().count(), 0);
}

#[test]
fn random_sections_round_trip_across_sizes() {
    for (sections, words) in [(1usize, 0usize), (3, 17), (12, 1_000), (40, 3)] {
        let ck = random_checkpoint(0x5eed ^ (sections as u64) << 16 ^ words as u64, sections, words);
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, ck, "{sections} sections × {words} words");
        // Order is part of the contract: restore applies sections to
        // components positionally-named, and diffing depends on it.
        let names: Vec<&str> = back.sections().map(|(n, _)| n).collect();
        let expect: Vec<String> = (0..sections).map(|i| format!("section-{i}")).collect();
        assert_eq!(names, expect);
    }
}

#[test]
fn extreme_word_values_survive_the_varint_codec() {
    let mut ck = Checkpoint::new(sample_meta());
    let edges: Vec<u64> = (0..=64u32).map(|b| (1u64 << (b % 64)).wrapping_sub((b == 64) as u64)).collect();
    ck.add_section("edges", edges.clone());
    ck.add_section("max", vec![u64::MAX, 0, u64::MAX - 1]);
    let back = Checkpoint::decode(&ck.encode()).unwrap();
    assert_eq!(back.section("edges"), Some(&edges[..]));
    assert_eq!(back.section("max"), Some(&[u64::MAX, 0, u64::MAX - 1][..]));
}

#[test]
fn encoding_is_deterministic() {
    let a = random_checkpoint(42, 5, 100).encode();
    let b = random_checkpoint(42, 5, 100).encode();
    assert_eq!(a, b);
}

#[test]
fn truncation_anywhere_is_detected() {
    let bytes = random_checkpoint(7, 4, 50).encode();
    for cut in 0..bytes.len() {
        match Checkpoint::decode(&bytes[..cut]) {
            Err(TraceError::Format(_)) => {}
            other => panic!("cut at {cut}: expected a format error, got {other:?}"),
        }
    }
}

#[test]
fn trailing_garbage_after_end_marker_is_ignored() {
    // The end marker closes the stream; bytes after it belong to no one
    // and must not corrupt the decode (a container embedded in a larger
    // file still parses).
    let ck = random_checkpoint(9, 2, 8);
    let mut bytes = ck.encode();
    bytes.extend_from_slice(b"tail");
    assert_eq!(Checkpoint::decode(&bytes).unwrap(), ck);
}

#[test]
fn bad_magic_and_future_version_are_rejected() {
    let good = random_checkpoint(1, 1, 4).encode();

    let mut bad = good.clone();
    bad[0] ^= 0xff;
    match Checkpoint::decode(&bad) {
        Err(TraceError::Format(msg)) => assert!(msg.contains("magic"), "{msg}"),
        other => panic!("expected a format error, got {other:?}"),
    }

    let mut future = good;
    // The version varint sits right after the 4-byte magic; v1 encodes
    // as a single byte.
    assert_eq!(future[4] as u64, CKPT_VERSION);
    future[4] = CKPT_VERSION as u8 + 1;
    match Checkpoint::decode(&future) {
        Err(TraceError::Format(msg)) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("expected a format error, got {other:?}"),
    }
}

#[test]
fn file_round_trip_preserves_everything() {
    let dir = std::env::temp_dir().join(format!("vckpt-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.vckpt");
    let ck = random_checkpoint(0xabcd, 6, 200);
    ck.write_path(&path).unwrap();
    assert_eq!(Checkpoint::read_path(&path).unwrap(), ck);
    assert!(matches!(Checkpoint::read_path(dir.join("missing.vckpt")), Err(TraceError::Io(_))));
    std::fs::remove_dir_all(&dir).ok();
}
