//! Round-trip, chunking and error-path tests for the `.vtrace` format.
//! Random streams come from the workspace's deterministic SplitMix64.

use victima_trace::{
    TraceError, TraceHeader, TraceReader, TraceRegion, TraceScale, TraceWriter, FORMAT_VERSION,
};
use vm_types::{AccessKind, MemRef, SplitMix64, VirtAddr};

fn sample_header() -> TraceHeader {
    let mut h = TraceHeader::new("RND", TraceScale::Tiny, 0xfeed_beef, 5_000, 50_000);
    h.regions.push(TraceRegion::new("table", 64 << 20, 0.3));
    h.regions.push(TraceRegion::new("index", 8 << 20, 0.0));
    h.writer = "victima-trace/test".to_owned();
    h
}

fn random_refs(seed: u64, n: usize) -> Vec<MemRef> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let vaddr = VirtAddr::new(rng.next_below(1 << 48));
            let pc = 0x40_0000 + rng.next_below(1 << 20) * 64;
            let gap = rng.next_below(200) as u32;
            if rng.chance(0.3) {
                MemRef::store(vaddr, pc, gap)
            } else {
                MemRef::load(vaddr, pc, gap)
            }
        })
        .collect()
}

fn write_trace(refs: &[MemRef], chunk_records: u64) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), &sample_header()).unwrap().with_chunk_records(chunk_records);
    for &r in refs {
        w.push(r);
    }
    let (bytes, summary) = w.finish_into_inner().unwrap();
    assert_eq!(summary.counts.records, refs.len() as u64);
    assert_eq!(summary.bytes, bytes.len() as u64);
    bytes
}

#[test]
fn header_round_trips_bit_exact() {
    let bytes = write_trace(&[], 16);
    let reader = TraceReader::new(&bytes[..]).unwrap();
    let h = reader.header();
    assert_eq!(*h, sample_header());
    assert_eq!(h.regions[0].huge_fraction(), 0.3);
    assert_eq!(h.footprint_bytes(), (64 << 20) + (8 << 20));
}

#[test]
fn random_stream_round_trips_across_chunk_sizes() {
    let refs = random_refs(0x7ace, 10_000);
    for chunk in [7u64, 1_000, 65_536] {
        let bytes = write_trace(&refs, chunk);
        let got: Vec<MemRef> = TraceReader::new(&bytes[..]).unwrap().records().map(|r| r.unwrap()).collect();
        assert_eq!(got, refs, "chunk size {chunk}");
    }
}

#[test]
fn delta_encoding_is_compact_for_strided_streams() {
    // A strided stream (constant deltas) must encode in a few bytes per
    // record — this is the property the whole format exists for.
    let refs: Vec<MemRef> =
        (0..10_000).map(|i| MemRef::load(VirtAddr::new(0x10_0000 + i * 64), 0x40_0000, 3)).collect();
    let bytes = write_trace(&refs, 65_536);
    assert!(
        bytes.len() < refs.len() * 5,
        "strided trace should take < 5 B/record, got {} B for {} records",
        bytes.len(),
        refs.len()
    );
}

#[test]
fn skip_chunk_is_equivalent_to_reading_it() {
    let refs = random_refs(0x5109, 5_000);
    let bytes = write_trace(&refs, 512);
    // Skip the first three chunks, then read the rest.
    let mut reader = TraceReader::new(&bytes[..]).unwrap();
    let mut skipped = 0u64;
    for _ in 0..3 {
        skipped += reader.skip_chunk().unwrap().expect("trace has > 3 chunks");
    }
    assert_eq!(skipped, 3 * 512);
    let rest: Vec<MemRef> = reader.records().map(|r| r.unwrap()).collect();
    assert_eq!(rest, refs[skipped as usize..]);
}

#[test]
fn empty_trace_yields_no_records() {
    let bytes = write_trace(&[], 64);
    let mut reader = TraceReader::new(&bytes[..]).unwrap();
    let mut out = Vec::new();
    assert_eq!(reader.read_chunk(&mut out).unwrap(), 0);
    assert!(out.is_empty());
    assert_eq!(reader.skip_chunk().unwrap(), None);
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = write_trace(&random_refs(1, 10), 64);
    bytes[0] = b'X';
    match TraceReader::new(&bytes[..]) {
        Err(TraceError::Format(msg)) => assert!(msg.contains("magic"), "{msg}"),
        other => panic!("expected a format error, got {other:?}"),
    }
}

#[test]
fn checkpoint_magic_points_at_the_ckpt_subcommand() {
    let mut bytes = write_trace(&random_refs(1, 10), 64);
    bytes[..4].copy_from_slice(b"VCKP");
    match TraceReader::new(&bytes[..]) {
        Err(TraceError::Format(msg)) => {
            assert!(msg.contains(".vckpt"), "{msg}");
            assert!(msg.contains("ckpt info"), "{msg}");
        }
        other => panic!("expected a format error, got {other:?}"),
    }
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = write_trace(&random_refs(2, 10), 64);
    // The version varint sits right after the 4-byte magic; v1 encodes as
    // a single byte.
    assert_eq!(bytes[4], FORMAT_VERSION as u8);
    bytes[4] = 2;
    match TraceReader::new(&bytes[..]) {
        Err(TraceError::Format(msg)) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("expected a format error, got {other:?}"),
    }
}

#[test]
fn truncation_anywhere_is_detected() {
    let refs = random_refs(3, 400);
    let bytes = write_trace(&refs, 128);
    // Cut the stream at a sample of offsets spanning header, chunk
    // headers and payloads. Every cut must produce an error, either at
    // open or while iterating — never a silent short read.
    for cut in (0..bytes.len()).step_by(17) {
        let truncated = &bytes[..cut];
        match TraceReader::new(truncated) {
            Err(TraceError::Format(_)) => {}
            Err(e) => panic!("cut {cut}: unexpected error class {e}"),
            Ok(reader) => {
                let err = reader.records().find_map(|r| r.err());
                assert!(err.is_some(), "cut at {cut} went undetected");
            }
        }
    }
}

#[test]
fn corrupt_chunk_length_is_rejected() {
    let refs = random_refs(4, 64);
    let bytes = write_trace(&refs, 64);
    let reader = TraceReader::new(&bytes[..]).unwrap();
    // Find where chunks start: re-encode the header to learn its length.
    let header_len = {
        let empty = write_trace(&[], 64);
        empty.len() - 1 // minus the end-of-stream marker byte
    };
    let mut corrupt = bytes.clone();
    // First chunk's record-count varint: claim an absurd record count so
    // the payload-length sanity check trips.
    corrupt[header_len] = 0x7f;
    let got = TraceReader::new(&corrupt[..]).unwrap().records().find_map(|r| r.err());
    assert!(got.is_some(), "a corrupt chunk header must be rejected");
    let _ = reader;
}

#[test]
fn oversized_chunk_claims_are_refused_before_allocating() {
    use victima_trace::MAX_CHUNK_RECORDS;
    // A crafted chunk header claiming an absurd record count must be
    // rejected up front — never turned into a matching giant allocation.
    let mut bytes = write_trace(&[], 64);
    bytes.pop(); // drop the end-of-stream marker
    vm_types::codec::put_uvarint(&mut bytes, MAX_CHUNK_RECORDS + 1);
    vm_types::codec::put_uvarint(&mut bytes, (MAX_CHUNK_RECORDS + 1) * 3);
    let err = TraceReader::new(&bytes[..]).unwrap().records().find_map(|r| r.err());
    match err {
        Some(TraceError::Format(msg)) => assert!(msg.contains("cap"), "{msg}"),
        other => panic!("expected a format error, got {other:?}"),
    }
}

#[test]
fn writer_counts_per_kind() {
    let mut w = TraceWriter::new(Vec::new(), &sample_header()).unwrap();
    w.push(MemRef::load(VirtAddr::new(0x1000), 1, 4));
    w.push(MemRef::store(VirtAddr::new(0x2000), 2, 0));
    w.push(MemRef::store(VirtAddr::new(0x3000), 3, 1));
    w.push(MemRef { vaddr: VirtAddr::new(0x4000), kind: AccessKind::IFetch, pc: 4, gap: 0 });
    let (_, s) = w.finish_into_inner().unwrap();
    assert_eq!((s.counts.loads, s.counts.stores, s.counts.ifetches), (1, 2, 1));
    assert_eq!(s.counts.records, 4);
    assert_eq!(s.counts.instructions, 9); // Σ (gap + 1) = 5 + 1 + 2 + 1
    assert_eq!(s.chunks, 1);
}
