//! Streaming trace reader with an iterator API and zero per-record
//! allocation (records decode out of a reused chunk buffer).

use crate::format::{decode_record, DeltaState, TraceHeader, TraceRegion, TraceScale, FORMAT_VERSION, MAGIC};
use crate::TraceError;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;
use vm_types::MemRef;

/// Hard cap on header string/region lengths, so a corrupt length varint
/// fails fast instead of attempting a multi-gigabyte allocation.
const MAX_HEADER_FIELD: u64 = 1 << 20;

fn bad(msg: impl Into<String>) -> TraceError {
    TraceError::Format(msg.into())
}

/// Reads one LEB128 varint from a byte stream.
fn read_uvarint<R: Read>(src: &mut R) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut byte = [0u8; 1];
    for group in 0..vm_types::codec::MAX_VARINT_BYTES {
        src.read_exact(&mut byte)?;
        let payload = (byte[0] & 0x7f) as u64;
        if group == vm_types::codec::MAX_VARINT_BYTES - 1 && payload > 1 {
            return Err(bad("varint overflows 64 bits"));
        }
        v |= payload << (7 * group);
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(bad("varint overflows 64 bits"))
}

fn read_str<R: Read>(src: &mut R, what: &str) -> Result<String, TraceError> {
    let len = read_uvarint(src)?;
    if len > MAX_HEADER_FIELD {
        return Err(bad(format!("{what} length {len} is implausible")));
    }
    let mut buf = vec![0u8; len as usize];
    src.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad(format!("{what} is not valid UTF-8")))
}

fn read_u64le<R: Read>(src: &mut R) -> Result<u64, TraceError> {
    let mut buf = [0u8; 8];
    src.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_header<R: Read>(src: &mut R) -> Result<TraceHeader, TraceError> {
    let mut magic = [0u8; 4];
    src.read_exact(&mut magic)?;
    if magic != MAGIC {
        // Recognise the sibling container so a mixed-up path gets pointed
        // at the right subcommand instead of a bare bad-magic error.
        if magic == crate::ckpt::CKPT_MAGIC {
            return Err(bad("this is a .vckpt warm-state checkpoint, not a .vtrace trace — \
                 try `experiments ckpt info` instead"));
        }
        return Err(bad(format!("bad magic {magic:02x?} (expected {MAGIC:02x?} — not a .vtrace file?)")));
    }
    let version = read_uvarint(src)?;
    if version != FORMAT_VERSION {
        return Err(bad(format!(
            "unsupported format version {version} (this reader speaks {FORMAT_VERSION})"
        )));
    }
    let workload = read_str(src, "workload name")?;
    let scale_code = read_uvarint(src)?;
    let scale =
        TraceScale::from_code(scale_code).ok_or_else(|| bad(format!("unknown scale code {scale_code}")))?;
    let seed = read_u64le(src)?;
    let warmup = read_uvarint(src)?;
    let measured = read_uvarint(src)?;
    let nregions = read_uvarint(src)?;
    if nregions > MAX_HEADER_FIELD {
        return Err(bad(format!("region count {nregions} is implausible")));
    }
    let mut regions = Vec::with_capacity(nregions as usize);
    for _ in 0..nregions {
        let name = read_str(src, "region name")?;
        let bytes = read_uvarint(src)?;
        let huge_bits = read_u64le(src)?;
        regions.push(TraceRegion { name, bytes, huge_bits });
    }
    let writer = read_str(src, "writer provenance")?;
    Ok(TraceHeader { workload, scale, seed, warmup, measured, regions, writer })
}

/// Streaming `.vtrace` reader.
///
/// The header is parsed eagerly by [`TraceReader::new`]; records are then
/// pulled chunk-wise with [`TraceReader::read_chunk`] (appending into a
/// caller-owned buffer, the replay hot path), skipped wholesale with
/// [`TraceReader::skip_chunk`] (warm-up skip: only the chunk header is
/// decoded), or iterated one by one via [`TraceReader::records`].
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    header: TraceHeader,
    payload: Vec<u8>,
    chunks_read: u64,
    finished: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file and parses its header.
    pub fn open_path(path: &Path) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps a byte source and parses the header.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let header = read_header(&mut src)?;
        Ok(Self { src, header, payload: Vec::new(), chunks_read: 0, finished: false })
    }

    /// The trace's self-describing header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Chunks consumed so far (read or skipped).
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Reads the next chunk header, or `None` at the end-of-stream marker.
    fn next_chunk_len(&mut self) -> Result<Option<(u64, u64)>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        let records = read_uvarint(&mut self.src)?;
        if records == 0 {
            self.finished = true;
            return Ok(None);
        }
        if records > crate::MAX_CHUNK_RECORDS {
            return Err(bad(format!(
                "chunk declares {records} records (cap {}); refusing the implied allocation",
                crate::MAX_CHUNK_RECORDS
            )));
        }
        let len = read_uvarint(&mut self.src)?;
        // Every record is 3 varints of 1–10 bytes each; with the record
        // cap above this bounds the payload buffer at ~128MB.
        if len < records.saturating_mul(3)
            || len > records.saturating_mul(3 * vm_types::codec::MAX_VARINT_BYTES as u64)
        {
            return Err(bad(format!(
                "chunk of {records} records declares implausible payload of {len} bytes"
            )));
        }
        Ok(Some((records, len)))
    }

    /// Decodes the next chunk, appending its records to `out` (which is
    /// *not* cleared). Returns the number of records appended; `Ok(0)`
    /// means the trace ended cleanly.
    pub fn read_chunk(&mut self, out: &mut Vec<MemRef>) -> Result<usize, TraceError> {
        let Some((records, len)) = self.next_chunk_len()? else {
            return Ok(0);
        };
        self.payload.resize(len as usize, 0);
        self.src.read_exact(&mut self.payload)?;
        out.reserve(records as usize);
        let mut pos = 0;
        let mut state = DeltaState::default();
        for _ in 0..records {
            out.push(decode_record(&self.payload, &mut pos, &mut state)?);
        }
        if pos != self.payload.len() {
            return Err(bad(format!(
                "chunk payload has {} trailing bytes after its {records} records",
                self.payload.len() - pos
            )));
        }
        self.chunks_read += 1;
        Ok(records as usize)
    }

    /// Skips the next chunk without decoding its records (cheap warm-up
    /// skip: only the two-varint chunk header is parsed). Returns the
    /// skipped record count, or `None` at the end of the trace.
    pub fn skip_chunk(&mut self) -> Result<Option<u64>, TraceError> {
        let Some((records, len)) = self.next_chunk_len()? else {
            return Ok(None);
        };
        std::io::copy(&mut self.src.by_ref().take(len), &mut std::io::sink()).map_err(TraceError::from)?;
        self.chunks_read += 1;
        Ok(Some(records))
    }

    /// Consumes the reader into a per-record iterator (chunk decoding is
    /// amortised through an internal reused buffer).
    pub fn records(self) -> Records<R> {
        Records { reader: self, buf: Vec::new(), pos: 0, failed: false }
    }
}

/// Iterator over every record of a trace; yields an `Err` once and then
/// terminates if the stream is corrupt.
#[derive(Debug)]
pub struct Records<R: Read> {
    reader: TraceReader<R>,
    buf: Vec<MemRef>,
    pos: usize,
    failed: bool,
}

impl<R: Read> Records<R> {
    /// The underlying trace header.
    pub fn header(&self) -> &TraceHeader {
        self.reader.header()
    }
}

impl<R: Read> Iterator for Records<R> {
    type Item = Result<MemRef, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        while self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            match self.reader.read_chunk(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Some(Ok(r))
    }
}
