//! Streaming trace recorder.

use crate::format::{encode_header, encode_record, DeltaState, TraceHeader};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use vm_types::codec::put_uvarint;
use vm_types::{AccessKind, MemRef};

/// Records per chunk before the writer flushes it (≈64K, so readers can
/// skip warm-up prefixes in coarse, cheap steps).
pub const DEFAULT_CHUNK_RECORDS: u64 = 65_536;

/// Per-kind record tallies accumulated while writing (or scanning) a
/// trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Total records.
    pub records: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Instruction fetches (not produced by the bundled workloads, but
    /// legal in externally recorded traces).
    pub ifetches: u64,
    /// Instructions the records account for (Σ gap + 1).
    pub instructions: u64,
}

impl TraceCounts {
    /// Folds one record into the tallies.
    pub fn observe(&mut self, r: MemRef) {
        self.records += 1;
        self.instructions += r.instructions();
        match r.kind {
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
            AccessKind::IFetch => self.ifetches += 1,
        }
    }
}

/// What a finished recording produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Per-kind record tallies.
    pub counts: TraceCounts,
    /// Chunks written.
    pub chunks: u64,
    /// Total encoded bytes (header + chunks + end marker).
    pub bytes: u64,
}

/// Streaming `.vtrace` writer with zero per-record allocation: records
/// are delta-encoded into a reused chunk buffer and flushed every
/// [`DEFAULT_CHUNK_RECORDS`] records.
///
/// [`TraceWriter::push`] is infallible so it can sit behind the
/// simulator's record hook (a plain `FnMut(MemRef)`); I/O errors are
/// stashed and surfaced by [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    payload: Vec<u8>,
    head: Vec<u8>,
    chunk_records: u64,
    max_chunk_records: u64,
    state: DeltaState,
    counts: TraceCounts,
    chunks: u64,
    bytes: u64,
    deferred: Option<io::Error>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates `path` (and any missing parent directories) and writes the
    /// header.
    pub fn create(path: &Path, header: &TraceHeader) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Self::new(BufWriter::new(File::create(path)?), header)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `sink` and immediately writes the header.
    pub fn new(mut sink: W, header: &TraceHeader) -> io::Result<Self> {
        let mut head = Vec::with_capacity(256);
        encode_header(header, &mut head);
        sink.write_all(&head)?;
        let bytes = head.len() as u64;
        head.clear();
        Ok(Self {
            sink,
            payload: Vec::with_capacity(64 * 1024),
            head,
            chunk_records: 0,
            max_chunk_records: DEFAULT_CHUNK_RECORDS,
            state: DeltaState::default(),
            counts: TraceCounts::default(),
            chunks: 0,
            bytes,
            deferred: None,
        })
    }

    /// Overrides the chunk size (tests exercise multi-chunk traces with
    /// small budgets; production recording keeps the default).
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero or exceeds
    /// [`crate::MAX_CHUNK_RECORDS`] (readers enforce the same cap, so a
    /// larger chunk would produce an unreadable file).
    pub fn with_chunk_records(mut self, records: u64) -> Self {
        assert!(records > 0, "a chunk holds at least one record");
        assert!(
            records <= crate::MAX_CHUNK_RECORDS,
            "chunks are capped at {} records (readers refuse larger allocations)",
            crate::MAX_CHUNK_RECORDS
        );
        self.max_chunk_records = records;
        self
    }

    /// Appends one record. Never fails; I/O errors are deferred to
    /// [`TraceWriter::finish`].
    #[inline]
    pub fn push(&mut self, r: MemRef) {
        if self.deferred.is_some() {
            return;
        }
        encode_record(&mut self.payload, &mut self.state, r);
        self.counts.observe(r);
        self.chunk_records += 1;
        if self.chunk_records >= self.max_chunk_records {
            self.flush_chunk();
        }
    }

    /// Running tallies of everything pushed so far.
    pub fn counts(&self) -> TraceCounts {
        self.counts
    }

    fn flush_chunk(&mut self) {
        if self.chunk_records == 0 {
            return;
        }
        self.head.clear();
        put_uvarint(&mut self.head, self.chunk_records);
        put_uvarint(&mut self.head, self.payload.len() as u64);
        let res = self.sink.write_all(&self.head).and_then(|()| self.sink.write_all(&self.payload));
        if let Err(e) = res {
            self.deferred = Some(e);
            return;
        }
        self.bytes += (self.head.len() + self.payload.len()) as u64;
        self.chunks += 1;
        self.chunk_records = 0;
        self.payload.clear();
        // Deltas reset at chunk boundaries so chunks decode independently.
        self.state = DeltaState::default();
    }

    /// Flushes the final chunk, writes the end-of-stream marker and
    /// returns the summary, surfacing any deferred I/O error.
    pub fn finish(self) -> io::Result<TraceSummary> {
        self.finish_into_inner().map(|(_, s)| s)
    }

    /// [`TraceWriter::finish`], additionally handing back the sink (used
    /// when writing into an in-memory buffer).
    pub fn finish_into_inner(mut self) -> io::Result<(W, TraceSummary)> {
        self.flush_chunk();
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.head.clear();
        put_uvarint(&mut self.head, 0);
        self.sink.write_all(&self.head)?;
        self.bytes += self.head.len() as u64;
        self.sink.flush()?;
        Ok((self.sink, TraceSummary { counts: self.counts, chunks: self.chunks, bytes: self.bytes }))
    }
}
