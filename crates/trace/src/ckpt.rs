//! The `.vckpt` warm-state checkpoint container.
//!
//! A checkpoint snapshots the microarchitectural warm state of a
//! simulation at the post-warm-up boundary — TLB and cache tag arrays,
//! page-walk caches, replacement/prefetcher state, and the page-table
//! access counters — so a later process can rebuild the system, restore
//! the sections, and continue the measured phase with byte-identical
//! statistics. The format deliberately knows nothing about *what* the
//! sections contain: each is a named, length-prefixed list of `u64`
//! words produced by a component's `save_state`. That keeps the
//! container stable while component layouts evolve (a layout change is
//! a word-count change, which restore rejects with a typed error).
//!
//! Layout (all integers LEB128 varints from [`vm_types::codec`] unless
//! noted):
//!
//! ```text
//! magic      4 bytes          b"VCKP"
//! version    uvarint          CKPT_VERSION (currently 1)
//! meta:
//!   engine        string      engine id of the producer
//!   config        string      system-configuration name
//!   workload      string      workload name
//!   scale         uvarint     TraceScale wire code
//!   seed          u64 LE      8 fixed bytes
//!   warmup        uvarint     warm-up instructions already executed
//!   refs_consumed uvarint     memory references drained from the stream
//! sections (repeated):
//!   name        string        non-empty section name
//!   word_count  uvarint
//!   words       word_count × uvarint
//! end marker:   empty string
//! ```
//!
//! Strings are a uvarint byte length followed by UTF-8 bytes. Like the
//! `.vtrace` reader, every decode failure — truncation anywhere, a bad
//! magic, an unsupported version, an oversized field — surfaces as a
//! [`TraceError::Format`].

use std::fs;
use std::path::Path;

use vm_types::codec::{put_uvarint, take_uvarint};

use crate::format::TraceScale;
use crate::TraceError;

/// Magic bytes opening every `.vckpt` file.
pub const CKPT_MAGIC: [u8; 4] = *b"VCKP";

/// Current checkpoint format version.
pub const CKPT_VERSION: u64 = 1;

/// Longest accepted string field or section, guarding against
/// allocating pathological sizes from a corrupt length prefix.
const MAX_FIELD: u64 = 1 << 20;
const MAX_SECTION_WORDS: u64 = 1 << 28;

/// Identity of the run a checkpoint was captured from. Restore refuses
/// a checkpoint whose meta does not match the rebuilt system exactly —
/// warm state from a different configuration or seed would silently
/// corrupt the measured phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Engine id of the producing simulator (e.g. `victima-sim-engine/1`).
    pub engine: String,
    /// System-configuration name (e.g. `victima`).
    pub config: String,
    /// Workload name the run was executing.
    pub workload: String,
    /// Footprint scale of the run.
    pub scale: TraceScale,
    /// Base seed (drives region placement and frame allocation).
    pub seed: u64,
    /// Warm-up instructions executed before the snapshot.
    pub warmup: u64,
    /// Memory references consumed from the workload stream; resume
    /// drains exactly this many before restoring state.
    pub refs_consumed: u64,
}

/// An in-memory checkpoint: identifying metadata plus named sections of
/// raw `u64` state words.
///
/// # Examples
///
/// ```
/// use victima_trace::{Checkpoint, CheckpointMeta, TraceScale};
/// let meta = CheckpointMeta {
///     engine: "demo/1".into(),
///     config: "radix".into(),
///     workload: "rnd".into(),
///     scale: TraceScale::Tiny,
///     seed: 7,
///     warmup: 1000,
///     refs_consumed: 321,
/// };
/// let mut ck = Checkpoint::new(meta);
/// ck.add_section("dtlb", vec![1, 2, 3]);
/// let bytes = ck.encode();
/// let back = Checkpoint::decode(&bytes).unwrap();
/// assert_eq!(back.section("dtlb"), Some(&[1u64, 2, 3][..]));
/// assert_eq!(back.meta.seed, 7);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Identity of the producing run.
    pub meta: CheckpointMeta,
    sections: Vec<(String, Vec<u64>)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint for the given run identity.
    pub fn new(meta: CheckpointMeta) -> Self {
        Self { meta, sections: Vec::new() }
    }

    /// Appends a named section of state words.
    ///
    /// # Panics
    ///
    /// Panics on an empty name (reserved as the end marker) or a
    /// duplicate — both indicate a producer bug, not bad input.
    pub fn add_section(&mut self, name: &str, words: Vec<u64>) {
        assert!(!name.is_empty(), "section name must be non-empty");
        assert!(self.section(name).is_none(), "duplicate section {name:?}");
        self.sections.push((name.to_string(), words));
    }

    /// Looks up a section's words by name.
    pub fn section(&self, name: &str) -> Option<&[u64]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, w)| w.as_slice())
    }

    /// Iterates over `(name, words)` pairs in insertion order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u64])> {
        self.sections.iter().map(|(n, w)| (n.as_str(), w.as_slice()))
    }

    /// Serializes the checkpoint to `.vckpt` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CKPT_MAGIC);
        put_uvarint(&mut out, CKPT_VERSION);
        put_str(&mut out, &self.meta.engine);
        put_str(&mut out, &self.meta.config);
        put_str(&mut out, &self.meta.workload);
        put_uvarint(&mut out, self.meta.scale.code());
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        put_uvarint(&mut out, self.meta.warmup);
        put_uvarint(&mut out, self.meta.refs_consumed);
        for (name, words) in &self.sections {
            put_str(&mut out, name);
            put_uvarint(&mut out, words.len() as u64);
            for &w in words {
                put_uvarint(&mut out, w);
            }
        }
        put_str(&mut out, "");
        out
    }

    /// Parses `.vckpt` bytes back into a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] on truncation, a bad magic, an
    /// unsupported version, or any malformed field.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut pos = 0usize;
        if bytes.len() < CKPT_MAGIC.len() {
            return Err(format_err("truncated checkpoint (no magic)"));
        }
        let magic = &bytes[..CKPT_MAGIC.len()];
        if magic != CKPT_MAGIC {
            // A .vtrace handed to the checkpoint reader deserves a pointer
            // to the right subcommand, not a bare bad-magic error.
            if magic == crate::format::MAGIC {
                return Err(format_err(
                    "this is a .vtrace reference trace, not a .vckpt checkpoint — \
                     try `experiments trace info` instead",
                ));
            }
            return Err(format_err(format!(
                "bad magic {magic:02x?} (expected {CKPT_MAGIC:02x?} — not a .vckpt file?)"
            )));
        }
        pos += CKPT_MAGIC.len();
        let version = take(bytes, &mut pos, "version")?;
        if version != CKPT_VERSION {
            return Err(format_err(format!(
                "unsupported checkpoint version {version} (this build reads {CKPT_VERSION})"
            )));
        }
        let engine = read_str(bytes, &mut pos, "engine id")?;
        let config = read_str(bytes, &mut pos, "config name")?;
        let workload = read_str(bytes, &mut pos, "workload name")?;
        let scale_code = take(bytes, &mut pos, "scale")?;
        let scale = TraceScale::from_code(scale_code)
            .ok_or_else(|| format_err(format!("unknown scale code {scale_code}")))?;
        if bytes.len() - pos < 8 {
            return Err(format_err("truncated checkpoint (seed)"));
        }
        let seed = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let warmup = take(bytes, &mut pos, "warmup")?;
        let refs_consumed = take(bytes, &mut pos, "refs_consumed")?;
        let meta = CheckpointMeta { engine, config, workload, scale, seed, warmup, refs_consumed };
        let mut ck = Checkpoint::new(meta);
        loop {
            let name = read_str(bytes, &mut pos, "section name")?;
            if name.is_empty() {
                break;
            }
            if ck.section(&name).is_some() {
                return Err(format_err(format!("duplicate section {name:?}")));
            }
            let count = take(bytes, &mut pos, "section word count")?;
            if count > MAX_SECTION_WORDS {
                return Err(format_err(format!("section {name:?} implausibly large ({count} words)")));
            }
            let mut words = Vec::with_capacity(count as usize);
            for _ in 0..count {
                words.push(take(bytes, &mut pos, "section word")?);
            }
            ck.sections.push((name, words));
        }
        Ok(ck)
    }

    /// Writes the checkpoint to a file, creating any missing parent
    /// directories (matching `TraceWriter::create`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failure.
    pub fn write_path<P: AsRef<Path>>(&self, path: P) -> Result<(), TraceError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(TraceError::Io)?;
            }
        }
        fs::write(path, self.encode()).map_err(TraceError::Io)
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failure and
    /// [`TraceError::Format`] on malformed contents.
    pub fn read_path<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        let bytes = fs::read(path).map_err(TraceError::Io)?;
        Self::decode(&bytes)
    }
}

fn format_err(msg: impl Into<String>) -> TraceError {
    TraceError::Format(msg.into())
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn take(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64, TraceError> {
    take_uvarint(bytes, pos).ok_or_else(|| format_err(format!("truncated checkpoint ({what})")))
}

fn read_str(bytes: &[u8], pos: &mut usize, what: &str) -> Result<String, TraceError> {
    let len = take(bytes, pos, what)?;
    if len > MAX_FIELD {
        return Err(format_err(format!("{what} implausibly long ({len} bytes)")));
    }
    let len = len as usize;
    if bytes.len() - *pos < len {
        return Err(format_err(format!("truncated checkpoint ({what})")));
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + len])
        .map_err(|_| format_err(format!("{what} is not valid UTF-8")))?
        .to_string();
    *pos += len;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let meta = CheckpointMeta {
            engine: "victima-sim-engine/1".into(),
            config: "victima".into(),
            workload: "gups".into(),
            scale: TraceScale::Small,
            seed: 0xDEAD_BEEF,
            warmup: 100_000,
            refs_consumed: 123_456,
        };
        let mut ck = Checkpoint::new(meta);
        ck.add_section("dtlb4k", vec![0, 1, u64::MAX, 1 << 63]);
        ck.add_section("hier", (0..300).map(|i| i * 977).collect());
        ck.add_section("empty", Vec::new());
        ck
    }

    #[test]
    fn encode_decode_round_trips() {
        let ck = sample();
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.section("empty"), Some(&[][..]));
        assert_eq!(back.section("missing"), None);
        let names: Vec<&str> = back.sections().map(|(n, _)| n).collect();
        assert_eq!(names, ["dtlb4k", "hier", "empty"]);
    }

    #[test]
    fn truncation_anywhere_is_a_format_error() {
        let bytes = sample().encode();
        for cut in (0..bytes.len()).step_by(7) {
            match Checkpoint::decode(&bytes[..cut]) {
                Err(TraceError::Format(_)) => {}
                other => panic!("cut at {cut}: expected Format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn trace_magic_points_at_the_trace_subcommand() {
        let mut bytes = sample().encode();
        bytes[..4].copy_from_slice(&crate::format::MAGIC);
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains(".vtrace"), "{err}");
        assert!(err.to_string().contains("trace info"), "{err}");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[4] = (CKPT_VERSION + 1) as u8;
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported checkpoint version"), "{err}");
    }

    #[test]
    fn unknown_scale_code_is_rejected() {
        let ck = sample();
        let mut bytes = ck.encode();
        // The scale byte follows magic, version, and three short strings.
        let mut probe = Vec::new();
        probe.extend_from_slice(&CKPT_MAGIC);
        put_uvarint(&mut probe, CKPT_VERSION);
        put_str(&mut probe, &ck.meta.engine);
        put_str(&mut probe, &ck.meta.config);
        put_str(&mut probe, &ck.meta.workload);
        let at = probe.len();
        bytes[at] = 0x7f;
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unknown scale code"), "{err}");
    }

    #[test]
    fn oversized_section_length_is_rejected() {
        let meta = sample().meta;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CKPT_MAGIC);
        put_uvarint(&mut bytes, CKPT_VERSION);
        put_str(&mut bytes, &meta.engine);
        put_str(&mut bytes, &meta.config);
        put_str(&mut bytes, &meta.workload);
        put_uvarint(&mut bytes, meta.scale.code());
        bytes.extend_from_slice(&meta.seed.to_le_bytes());
        put_uvarint(&mut bytes, meta.warmup);
        put_uvarint(&mut bytes, meta.refs_consumed);
        put_str(&mut bytes, "huge");
        put_uvarint(&mut bytes, u64::MAX);
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausibly large"), "{err}");
    }

    #[test]
    fn duplicate_section_is_rejected_on_decode() {
        let meta = sample().meta;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CKPT_MAGIC);
        put_uvarint(&mut bytes, CKPT_VERSION);
        put_str(&mut bytes, &meta.engine);
        put_str(&mut bytes, &meta.config);
        put_str(&mut bytes, &meta.workload);
        put_uvarint(&mut bytes, meta.scale.code());
        bytes.extend_from_slice(&meta.seed.to_le_bytes());
        put_uvarint(&mut bytes, meta.warmup);
        put_uvarint(&mut bytes, meta.refs_consumed);
        for _ in 0..2 {
            put_str(&mut bytes, "twice");
            put_uvarint(&mut bytes, 0);
        }
        put_str(&mut bytes, "");
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("duplicate section"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate section")]
    fn duplicate_add_section_panics() {
        let mut ck = sample();
        ck.add_section("dtlb4k", vec![]);
    }

    #[test]
    fn file_round_trip_and_io_error() {
        let dir = std::env::temp_dir().join(format!("vckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.vckpt");
        let ck = sample();
        ck.write_path(&path).unwrap();
        assert_eq!(Checkpoint::read_path(&path).unwrap(), ck);
        let missing = dir.join("nope.vckpt");
        assert!(matches!(Checkpoint::read_path(&missing), Err(TraceError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
