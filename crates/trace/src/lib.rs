//! The `.vtrace` binary memory-reference trace format: a recorder
//! ([`TraceWriter`]) and a replay reader ([`TraceReader`]).
//!
//! The paper's methodology (and the Sniper-based follow-ups it spawned)
//! is trace-driven: figures come from replaying fixed reference streams.
//! This crate turns the reproduction's synthetic generator loop into an
//! open platform — record a workload once, replay it anywhere, or ingest
//! externally produced traces — with replay as the cheapest possible
//! path through the simulator hot loop (no generator work per record).
//!
//! A trace is self-describing: a header carries the format version, the
//! source workload's name, scale, seed, instruction budgets and region
//! layout (everything the simulator needs to rebuild the *identical*
//! address-space mapping), followed by a stream of memory-reference
//! records. Records are delta-encoded with LEB128 varints ([`vm_types::codec`])
//! and grouped into chunks (~64K records each) whose headers carry the
//! record count and payload byte length, so readers can skip warm-up
//! prefixes without decoding them. See DESIGN.md ("Trace capture &
//! replay") for the byte-level layout.
//!
//! The defining invariant, enforced by `tests/trace_replay.rs` at the
//! workspace root: recording a workload and replaying the trace yields
//! simulation statistics byte-identical to the live generator run with
//! the same seed.
//!
//! # Examples
//!
//! ```
//! use victima_trace::{TraceHeader, TraceReader, TraceScale, TraceWriter};
//! use vm_types::{MemRef, VirtAddr};
//!
//! let header = TraceHeader::new("RND", TraceScale::Tiny, 42, 1_000, 10_000);
//! let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
//! writer.push(MemRef::load(VirtAddr::new(0x1000), 0x40_0000, 3));
//! writer.push(MemRef::store(VirtAddr::new(0x1040), 0x40_0040, 0));
//! let (bytes, summary) = writer.finish_into_inner().unwrap();
//! assert_eq!(summary.counts.records, 2);
//!
//! let mut reader = TraceReader::new(&bytes[..]).unwrap();
//! assert_eq!(reader.header().workload, "RND");
//! let refs: Vec<MemRef> = reader.records().map(|r| r.unwrap()).collect();
//! assert_eq!(refs.len(), 2);
//! assert_eq!(refs[1].vaddr, VirtAddr::new(0x1040));
//! ```

#![deny(missing_docs)]

mod ckpt;
mod format;
mod reader;
mod writer;

pub use ckpt::{Checkpoint, CheckpointMeta, CKPT_MAGIC, CKPT_VERSION};
pub use format::{TraceHeader, TraceRegion, TraceScale, FORMAT_VERSION, MAGIC, MAX_CHUNK_RECORDS};
pub use reader::{Records, TraceReader};
pub use writer::{TraceCounts, TraceSummary, TraceWriter, DEFAULT_CHUNK_RECORDS};

use std::fmt;
use std::io;

/// Errors surfaced while reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a valid `.vtrace` stream (bad magic, unsupported
    /// version, truncation, or a corrupt record).
    Format(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::Format(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Format(_) => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        // A short read inside the format layer means the file was cut off,
        // which is a format problem, not an environment problem.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Format("unexpected end of file (truncated trace)".to_owned())
        } else {
            TraceError::Io(e)
        }
    }
}
