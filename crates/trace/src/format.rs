//! On-disk layout of the `.vtrace` format: header schema and the
//! per-record codec shared by the writer and the reader.
//!
//! ```text
//! file   := header chunk* end
//! header := magic "VTRC" | uvarint version | str workload
//!         | uvarint scale | u64le seed | uvarint warmup
//!         | uvarint measured | uvarint nregions
//!         | (str name, uvarint bytes, u64le huge_fraction_bits)*
//!         | str writer
//! chunk  := uvarint nrecords (> 0) | uvarint payload_len | payload
//! end    := uvarint 0
//! str    := uvarint len | len utf8 bytes
//! ```
//!
//! Within a chunk's payload, each record is three varints — the deltas
//! reset at every chunk boundary so chunks decode independently (and can
//! be skipped using `payload_len` alone):
//!
//! ```text
//! record := uvarint (gap << 2 | kind)       kind: 0 load, 1 store, 2 ifetch
//!         | ivarint (vaddr - prev_vaddr)
//!         | ivarint (pc - prev_pc)
//! ```

use crate::TraceError;
use vm_types::codec::{put_uvarint, take_ivarint, take_uvarint};
use vm_types::{AccessKind, MemRef, VirtAddr, VA_BITS};

/// Leading magic bytes of every trace file.
pub const MAGIC: [u8; 4] = *b"VTRC";

/// Current format version. Readers reject anything newer.
pub const FORMAT_VERSION: u64 = 1;

/// Hard cap on records per chunk, enforced by writer and reader alike.
/// Bounding the chunk geometry bounds the reader's payload allocation
/// (≤ 30 bytes/record → ≤ 128MB), so a corrupt or hostile chunk header
/// surfaces as a `TraceError::Format` instead of an abort-on-alloc.
pub const MAX_CHUNK_RECORDS: u64 = 1 << 22;

/// Workload footprint scale recorded in the header.
///
/// Mirrors `workloads::Scale` without depending on that crate (the
/// dependency points the other way: the replay frontend lives in
/// `workloads` and reads traces written here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceScale {
    /// Tiny footprints (tens of MB) — the test/check profile.
    Tiny,
    /// The evaluation scale (hundreds of MB to GBs).
    Full,
    /// Intermediate footprints (hundreds of MB) — the sampling profile.
    Small,
    /// Paper-scale footprints (GBs), reached via sampling/checkpoints.
    Paper,
}

impl TraceScale {
    /// Stable wire code. Small and Paper were added in a later revision,
    /// so their codes follow Full's rather than the footprint order.
    pub fn code(self) -> u64 {
        match self {
            TraceScale::Tiny => 0,
            TraceScale::Full => 1,
            TraceScale::Small => 2,
            TraceScale::Paper => 3,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(TraceScale::Tiny),
            1 => Some(TraceScale::Full),
            2 => Some(TraceScale::Small),
            3 => Some(TraceScale::Paper),
            _ => None,
        }
    }

    /// Display name matching `workloads::Scale`'s `Debug` form.
    pub fn name(self) -> &'static str {
        match self {
            TraceScale::Tiny => "Tiny",
            TraceScale::Full => "Full",
            TraceScale::Small => "Small",
            TraceScale::Paper => "Paper",
        }
    }
}

/// One mapped data region of the recorded workload.
///
/// Region layout is provenance *and* replay contract: the simulator maps
/// these regions (in order, with the recorded seed) before replay, which
/// reproduces the exact address-space layout the recorded virtual
/// addresses were generated under.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRegion {
    /// Human-readable region name ("edges", "hash_table", …).
    pub name: String,
    /// Region size in bytes.
    pub bytes: u64,
    /// IEEE-754 bits of the region's 2MB-page fraction, stored as raw
    /// bits so the round trip is bit-exact.
    pub huge_bits: u64,
}

impl TraceRegion {
    /// Builds a region from a huge-page fraction in `[0, 1]`.
    pub fn new(name: impl Into<String>, bytes: u64, huge_fraction: f64) -> Self {
        Self { name: name.into(), bytes, huge_bits: huge_fraction.to_bits() }
    }

    /// The region's 2MB-page fraction.
    pub fn huge_fraction(&self) -> f64 {
        f64::from_bits(self.huge_bits)
    }
}

/// The self-describing trace header.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceHeader {
    /// Source workload abbreviation ("RND", "BFS", …).
    pub workload: String,
    /// Footprint scale the workload was built at.
    pub scale: TraceScale,
    /// Base seed of the recorded run (drives region placement; replay
    /// must reuse it).
    pub seed: u64,
    /// Warm-up instructions of the recorded run.
    pub warmup: u64,
    /// Measured instructions of the recorded run.
    pub measured: u64,
    /// The workload's mapped regions, in `region_specs` order.
    pub regions: Vec<TraceRegion>,
    /// Free-form writer provenance ("victima-trace/1 config=Radix …").
    pub writer: String,
}

impl TraceHeader {
    /// A header with no regions and an empty writer string (builder
    /// entry point; push regions and set `writer` as needed).
    pub fn new(
        workload: impl Into<String>,
        scale: TraceScale,
        seed: u64,
        warmup: u64,
        measured: u64,
    ) -> Self {
        Self {
            workload: workload.into(),
            scale,
            seed,
            warmup,
            measured,
            regions: Vec::new(),
            writer: String::new(),
        }
    }

    /// Total recorded footprint in bytes (sum of region sizes).
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Serialises a header to bytes (magic included).
pub(crate) fn encode_header(h: &TraceHeader, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    put_uvarint(out, FORMAT_VERSION);
    put_str(out, &h.workload);
    put_uvarint(out, h.scale.code());
    out.extend_from_slice(&h.seed.to_le_bytes());
    put_uvarint(out, h.warmup);
    put_uvarint(out, h.measured);
    put_uvarint(out, h.regions.len() as u64);
    for r in &h.regions {
        put_str(out, &r.name);
        put_uvarint(out, r.bytes);
        out.extend_from_slice(&r.huge_bits.to_le_bytes());
    }
    put_str(out, &h.writer);
}

/// Record kind wire codes.
const KIND_LOAD: u64 = 0;
const KIND_STORE: u64 = 1;
const KIND_IFETCH: u64 = 2;

pub(crate) fn kind_code(kind: AccessKind) -> u64 {
    match kind {
        AccessKind::Load => KIND_LOAD,
        AccessKind::Store => KIND_STORE,
        AccessKind::IFetch => KIND_IFETCH,
    }
}

/// Rolling delta state, reset at every chunk boundary.
#[derive(Debug, Default)]
pub(crate) struct DeltaState {
    pub vaddr: u64,
    pub pc: u64,
}

/// Encodes one record against the rolling state.
pub(crate) fn encode_record(out: &mut Vec<u8>, state: &mut DeltaState, r: MemRef) {
    put_uvarint(out, ((r.gap as u64) << 2) | kind_code(r.kind));
    vm_types::codec::put_ivarint(out, (r.vaddr.raw() as i64).wrapping_sub(state.vaddr as i64));
    vm_types::codec::put_ivarint(out, (r.pc as i64).wrapping_sub(state.pc as i64));
    state.vaddr = r.vaddr.raw();
    state.pc = r.pc;
}

/// Decodes one record from a chunk payload, advancing `pos`.
pub(crate) fn decode_record(
    payload: &[u8],
    pos: &mut usize,
    state: &mut DeltaState,
) -> Result<MemRef, TraceError> {
    let corrupt = |what: &str| TraceError::Format(format!("corrupt record: {what}"));
    let tag = take_uvarint(payload, pos).ok_or_else(|| corrupt("bad tag varint"))?;
    let kind = match tag & 3 {
        KIND_LOAD => AccessKind::Load,
        KIND_STORE => AccessKind::Store,
        KIND_IFETCH => AccessKind::IFetch,
        _ => return Err(corrupt("unknown access kind")),
    };
    let gap = tag >> 2;
    if gap > u32::MAX as u64 {
        return Err(corrupt("gap exceeds 32 bits"));
    }
    let dva = take_ivarint(payload, pos).ok_or_else(|| corrupt("bad vaddr delta"))?;
    let dpc = take_ivarint(payload, pos).ok_or_else(|| corrupt("bad pc delta"))?;
    state.vaddr = state.vaddr.wrapping_add(dva as u64);
    state.pc = state.pc.wrapping_add(dpc as u64);
    if state.vaddr >> VA_BITS != 0 {
        return Err(corrupt("virtual address exceeds 48 bits"));
    }
    Ok(MemRef { vaddr: VirtAddr::new(state.vaddr), kind, pc: state.pc, gap: gap as u32 })
}
