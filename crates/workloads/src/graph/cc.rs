//! Connected components via label propagation (GraphBIG **CC**).
//!
//! Rounds of "adopt the minimum neighbour label": per vertex, load its
//! label, gather neighbour labels, store when improved. Real label state
//! is kept host-side so convergence behaviour (store frequency decaying
//! over rounds) is genuine.

use super::{GraphCore, PropKind};
use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, VirtAddr};

const PROPS: [PropKind; 1] = [PropKind::Word]; // labels

/// The CC workload.
pub struct ConnectedComponents {
    core: GraphCore,
    specs: Vec<RegionSpec>,
    labels: Vec<u32>,
    cursor: u64,
}

impl ConnectedComponents {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (core, specs, _) = GraphCore::new(scale, seed, &PROPS);
        let v = core.graph.num_vertices() as usize;
        Self { core, specs, labels: (0..v as u32).collect(), cursor: 0 }
    }
}

impl Workload for ConnectedComponents {
    fn name(&self) -> &'static str {
        "CC"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        self.core.bind(bases, PROPS.len());
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        for _ in 0..4 {
            let v = self.cursor % self.core.graph.num_vertices();
            self.cursor += 1;
            self.core.emit_offsets(v, 60, out);
            out.push(MemRef::load(self.core.prop_word(0, v), pc(61), 1));
            let mut best = self.labels[v as usize];
            for i in 0..self.core.graph.degree(v) {
                let u = self.core.emit_edge(v, i, 62, out);
                out.push(MemRef::load(self.core.prop_word(0, u), pc(63), 1));
                best = best.min(self.labels[u as usize]);
            }
            if best < self.labels[v as usize] {
                self.labels[v as usize] = best;
                out.push(MemRef::store(self.core.prop_word(0, v), pc(64), 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn stream() -> WorkloadStream {
        let mut w = Box::new(ConnectedComponents::new(Scale::Tiny, 8));
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        WorkloadStream::new(w)
    }

    #[test]
    fn labels_converge_so_stores_decay() {
        let mut w = ConnectedComponents::new(Scale::Tiny, 8);
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        let v = w.core.graph.num_vertices();
        let mut out = Vec::new();
        let mut stores_per_sweep = Vec::new();
        for _ in 0..5 {
            let end = w.cursor + v;
            let mut stores = 0u64;
            while w.cursor < end {
                out.clear();
                w.fill(&mut out);
                stores += out.iter().filter(|r| r.kind.is_write()).count() as u64;
            }
            stores_per_sweep.push(stores);
        }
        let (first, last) = (stores_per_sweep[0], *stores_per_sweep.last().unwrap());
        assert!(last < first * 4 / 5, "label propagation converges: {stores_per_sweep:?}");
    }

    #[test]
    fn infinite_stream() {
        let mut s = stream();
        for _ in 0..10_000 {
            s.next_ref();
        }
    }
}
