//! Triangle counting (GraphBIG **TC**).
//!
//! Merge-based intersection of adjacency lists: for each edge (v, u) with
//! u > v, stream both sorted lists in tandem. Almost entirely sequential
//! edge-array reads from two cursors — the most cache/prefetch-friendly
//! of the graph kernels, giving the suite its locality spread.

use super::{GraphCore, PropKind};
use crate::{RegionSpec, Scale, Workload};
use vm_types::{MemRef, VirtAddr};

const PROPS: [PropKind; 0] = [];
/// Cap on list lengths considered per intersection, keeping per-vertex
/// work bounded on power-law hubs (real TC implementations orient edges
/// for the same reason).
const CAP: u64 = 16;

/// The TC workload.
pub struct TriangleCount {
    core: GraphCore,
    specs: Vec<RegionSpec>,
    cursor: u64,
    /// Triangles found so far (real count over the procedural graph).
    pub triangles: u64,
}

impl TriangleCount {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (core, specs, _) = GraphCore::new(scale, seed, &PROPS);
        Self { core, specs, cursor: 0, triangles: 0 }
    }
}

impl Workload for TriangleCount {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        self.core.bind(bases, PROPS.len());
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        let v = self.cursor % self.core.graph.num_vertices();
        self.cursor += 1;
        self.core.emit_offsets(v, 110, out);
        let dv = self.core.graph.degree(v).min(CAP);
        // Collect v's (capped) neighbour list, emitting its sequential reads.
        let mut nv: Vec<u64> = (0..dv).map(|i| self.core.emit_edge(v, i, 111, out)).collect();
        nv.sort_unstable();
        for i in 0..dv {
            let u = self.core.graph.neighbor(v, i);
            if u <= v {
                continue;
            }
            self.core.emit_offsets(u, 112, out);
            let du = self.core.graph.degree(u).min(CAP);
            // Merge-intersect: sequential reads of u's list against nv.
            let mut nu: Vec<u64> = (0..du).map(|j| self.core.emit_edge(u, j, 113, out)).collect();
            nu.sort_unstable();
            let (mut a, mut b) = (0usize, 0usize);
            while a < nv.len() && b < nu.len() {
                match nv[a].cmp(&nu[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        self.triangles += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn make() -> TriangleCount {
        let mut w = TriangleCount::new(Scale::Tiny, 17);
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        w
    }

    #[test]
    fn only_offsets_and_edges_regions() {
        let w = TriangleCount::new(Scale::Tiny, 17);
        assert_eq!(w.region_specs().len(), 2);
    }

    #[test]
    fn emits_no_stores() {
        let mut s = WorkloadStream::new(Box::new(make()));
        for _ in 0..50_000 {
            assert!(!s.next_ref().kind.is_write());
        }
    }

    #[test]
    fn edge_reads_are_mostly_sequential() {
        let mut s = WorkloadStream::new(Box::new(make()));
        let edges_base = 0x14_0000_0000u64;
        let mut prev = None;
        let (mut seq, mut total) = (0u64, 0u64);
        for _ in 0..100_000 {
            let r = s.next_ref();
            if r.vaddr.raw() >= edges_base {
                if let Some(p) = prev {
                    total += 1;
                    if r.vaddr.raw() == p + 8 {
                        seq += 1;
                    }
                }
                prev = Some(r.vaddr.raw());
            } else {
                prev = None;
            }
        }
        assert!(seq as f64 > total as f64 * 0.5, "TC reads lists sequentially: {seq}/{total}");
    }
}
