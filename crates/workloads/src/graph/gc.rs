//! Greedy graph coloring (GraphBIG **GC**).
//!
//! Sequential sweep assigning each vertex the smallest colour unused by
//! its neighbours: per vertex, a gather of neighbour colours and one
//! store. Similar shape to CC but with a single property array and no
//! convergence (one pass, then restart).

use super::{GraphCore, PropKind};
use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, VirtAddr};

const PROPS: [PropKind; 1] = [PropKind::Word]; // colors

/// The GC workload.
pub struct GraphColoring {
    core: GraphCore,
    specs: Vec<RegionSpec>,
    colors: Vec<u16>,
    cursor: u64,
}

impl GraphColoring {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (core, specs, _) = GraphCore::new(scale, seed, &PROPS);
        let v = core.graph.num_vertices() as usize;
        Self { core, specs, colors: vec![u16::MAX; v], cursor: 0 }
    }
}

impl Workload for GraphColoring {
    fn name(&self) -> &'static str {
        "GC"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        self.core.bind(bases, PROPS.len());
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        for _ in 0..4 {
            let v = self.cursor % self.core.graph.num_vertices();
            if v == 0 {
                self.colors.iter_mut().for_each(|c| *c = u16::MAX);
            }
            self.cursor += 1;
            self.core.emit_offsets(v, 100, out);
            let mut used = 0u64; // bitmask over the first 64 colours
            for i in 0..self.core.graph.degree(v) {
                let u = self.core.emit_edge(v, i, 101, out);
                out.push(MemRef::load(self.core.prop_word(0, u), pc(102), 1));
                let c = self.colors[u as usize];
                if c < 64 {
                    used |= 1 << c;
                }
            }
            self.colors[v as usize] = (!used).trailing_zeros().min(63) as u16;
            out.push(MemRef::store(self.core.prop_word(0, v), pc(103), 2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn make() -> GraphColoring {
        let mut w = GraphColoring::new(Scale::Tiny, 13);
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        w
    }

    #[test]
    fn every_vertex_gets_one_store() {
        let mut w = make();
        let mut out = Vec::new();
        w.fill(&mut out);
        let stores = out.iter().filter(|r| r.kind.is_write()).count();
        assert_eq!(stores, 4, "one colour store per processed vertex");
    }

    #[test]
    fn coloring_is_proper_over_first_64_colors() {
        let mut w = make();
        let mut out = Vec::new();
        // Colour a chunk of the graph.
        for _ in 0..5_000 {
            w.fill(&mut out);
            out.clear();
        }
        // Spot-check: no vertex among the first chunk shares a (small)
        // colour with a coloured neighbour it observed *before* being
        // coloured itself (greedy order = ascending ids).
        let g = &w.core.graph;
        for v in 1..1000u64 {
            for i in 0..g.degree(v) {
                let u = g.neighbor(v, i);
                if u < v {
                    let (cu, cv) = (w.colors[u as usize], w.colors[v as usize]);
                    if cu < 63 && cv < 63 {
                        assert_ne!(cu, cv, "v={v} u={u} share colour {cu}");
                    }
                }
            }
        }
    }

    #[test]
    fn stream_runs() {
        let mut s = WorkloadStream::new(Box::new(make()));
        for _ in 0..50_000 {
            s.next_ref();
        }
    }
}
