//! GraphBIG-style graph kernels over a procedural power-law graph.
//!
//! The graph is *procedural*: degrees come from a 1024-entry power-law
//! degree table (so CSR edge offsets are O(1) prefix sums) and the i-th
//! neighbour of vertex `v` is a hash of `(seed, v, i)`. The generators
//! therefore emit the exact CSR access skeleton — `offsets[v]`,
//! sequential `edges[...]` runs, random property-array gathers — without
//! materialising multi-hundred-MB arrays in host memory. Algorithm state
//! (frontiers, visited bits, labels, distances) is real.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod gc;
pub mod pagerank;
pub mod sssp;
pub mod tc;

use crate::{pc, RegionSpec, Scale};
use vm_types::{mix2, MemRef, SplitMix64, VirtAddr};

const DEGREE_TABLE: usize = 1024;
const VERTICES_TINY: u64 = 128 << 10;
const AVG_DEGREE: u64 = 8;
/// Extra vertex multiplier at Full scale: graph kernels gather over
/// per-vertex property arrays, so the *vertex* count must be large enough
/// that the property arrays' own leaf page tables (8B of PTE per 4KB of
/// array) cannot hide in the 2MB L2 + 2MB L3 (32M vertices → 256MB
/// property arrays → ~0.5MB of leaf PTEs each, x several arrays, plus a
/// 2GB edge array with ~4MB of leaf PTEs).
const FULL_VERTEX_BOOST: u64 = 4;

/// A deterministic, procedurally generated power-law graph.
#[derive(Clone, Debug)]
pub struct ProcGraph {
    v: u64,
    seed: u64,
    degrees: Vec<u32>,
    /// Exclusive prefix sums of `degrees`.
    prefix: Vec<u64>,
    block_sum: u64,
}

impl ProcGraph {
    /// Creates a graph with `v` vertices and roughly `avg_degree`
    /// out-degree following a truncated power law.
    pub fn new(v: u64, avg_degree: u64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x62af);
        let raw: Vec<u64> = (0..DEGREE_TABLE).map(|_| rng.power_law(256)).collect();
        let raw_sum: u64 = raw.iter().sum();
        let target_sum = avg_degree * DEGREE_TABLE as u64;
        let degrees: Vec<u32> =
            raw.iter().map(|&r| ((r * target_sum / raw_sum.max(1)).max(1)) as u32).collect();
        let mut prefix = Vec::with_capacity(DEGREE_TABLE);
        let mut acc = 0u64;
        for &d in &degrees {
            prefix.push(acc);
            acc += d as u64;
        }
        Self { v, seed, degrees, prefix, block_sum: acc }
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> u64 {
        self.v
    }

    /// Exact edge count.
    pub fn num_edges(&self) -> u64 {
        self.edge_offset(self.v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: u64) -> u64 {
        self.degrees[(v % DEGREE_TABLE as u64) as usize] as u64
    }

    /// CSR offset of `v`'s adjacency list (O(1)).
    #[inline]
    pub fn edge_offset(&self, v: u64) -> u64 {
        (v / DEGREE_TABLE as u64) * self.block_sum + self.prefix[(v % DEGREE_TABLE as u64) as usize]
    }

    /// The `i`-th neighbour of `v` (deterministic hash).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `i >= degree(v)`.
    #[inline]
    pub fn neighbor(&self, v: u64, i: u64) -> u64 {
        debug_assert!(i < self.degree(v));
        mix2(self.seed ^ v, i) % self.v
    }
}

/// Shared CSR layout and emission helpers for all graph kernels.
pub struct GraphCore {
    /// The procedural graph.
    pub graph: ProcGraph,
    offsets: VirtAddr,
    edges: VirtAddr,
    props: Vec<VirtAddr>,
}

impl std::fmt::Debug for GraphCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphCore")
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .field("props", &self.props.len())
            .finish()
    }
}

/// Bytes per vertex property object. GraphBIG stores multi-field vertex
/// property objects (value + degree + auxiliary fields), not bare words;
/// 32B per vertex makes a 32M-vertex property array 1GB — large enough
/// that its own leaf page table cannot hide in the cache hierarchy.
pub const PROP_OBJECT_BYTES: u64 = 32;

/// Kind of a per-vertex property region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropKind {
    /// One property object per vertex (ranks, labels, distances, …).
    Word,
    /// 1 bit per vertex (visited / in-worklist bitmaps).
    Bit,
}

impl GraphCore {
    /// Creates an unbound core for `scale` with the given property arrays.
    pub fn new(scale: Scale, seed: u64, prop_kinds: &[PropKind]) -> (Self, Vec<RegionSpec>, Vec<PropKind>) {
        let boost = if scale == Scale::Full { FULL_VERTEX_BOOST } else { 1 };
        let v = VERTICES_TINY * scale.factor() * boost;
        let graph = ProcGraph::new(v, AVG_DEGREE, seed);
        // Hot, densely accessed regions (offset array, per-vertex
        // properties) end up khugepaged-promoted on a real THP host; the
        // giant cold edge array stays mostly 4KB on a fragmented machine.
        let mut specs = vec![
            RegionSpec { name: "offsets", bytes: (v + 1) * 8, huge_fraction: 0.7 },
            RegionSpec { name: "edges", bytes: graph.num_edges() * 8, huge_fraction: 0.3 },
        ];
        for kind in prop_kinds {
            let bytes = match kind {
                PropKind::Word => v * PROP_OBJECT_BYTES,
                PropKind::Bit => v.div_ceil(8),
            };
            specs.push(RegionSpec { name: "property", bytes, huge_fraction: 0.65 });
        }
        (
            Self { graph, offsets: VirtAddr::new(0), edges: VirtAddr::new(0), props: Vec::new() },
            specs,
            prop_kinds.to_vec(),
        )
    }

    /// Binds mapped region bases (offsets, edges, then properties).
    pub fn bind(&mut self, bases: &[VirtAddr], n_props: usize) {
        assert_eq!(bases.len(), 2 + n_props, "graph kernel region mismatch");
        self.offsets = bases[0];
        self.edges = bases[1];
        self.props = bases[2..].to_vec();
    }

    /// Emits the two offset-array loads bracketing `v`'s adjacency list.
    #[inline]
    pub fn emit_offsets(&self, v: u64, site: u32, out: &mut Vec<MemRef>) {
        out.push(MemRef::load(self.offsets.add(v * 8), pc(site), 2));
        out.push(MemRef::load(self.offsets.add(v * 8 + 8), pc(site), 0));
    }

    /// Emits the load of edge slot `i` of vertex `v` and returns the
    /// neighbour id.
    #[inline]
    pub fn emit_edge(&self, v: u64, i: u64, site: u32, out: &mut Vec<MemRef>) -> u64 {
        let off = self.graph.edge_offset(v) + i;
        out.push(MemRef::load(self.edges.add(off * 8), pc(site), 1));
        self.graph.neighbor(v, i)
    }

    /// Address of vertex `u`'s property object in array `p`.
    #[inline]
    pub fn prop_word(&self, p: usize, u: u64) -> VirtAddr {
        self.props[p].add(u * PROP_OBJECT_BYTES)
    }

    /// Address of the byte holding vertex `u`'s bit in bit-property `p`.
    #[inline]
    pub fn prop_bit(&self, p: usize, u: u64) -> VirtAddr {
        self.props[p].add(u / 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> ProcGraph {
        ProcGraph::new(100_000, 16, 7)
    }

    #[test]
    fn degrees_are_power_law_with_target_mean() {
        let g = graph();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((12.0..20.0).contains(&avg), "average degree ≈16, got {avg}");
        let max_deg = (0..1024).map(|v| g.degree(v)).max().unwrap();
        let min_deg = (0..1024).map(|v| g.degree(v)).min().unwrap();
        assert!(max_deg > 8 * min_deg, "heavy tail expected: {min_deg}..{max_deg}");
    }

    #[test]
    fn edge_offsets_are_consistent_with_degrees() {
        let g = graph();
        for v in [0u64, 1, 1023, 1024, 54321, 99_998] {
            assert_eq!(g.edge_offset(v + 1), g.edge_offset(v) + g.degree(v), "vertex {v}");
        }
    }

    #[test]
    fn neighbors_are_deterministic_and_in_range() {
        let g = graph();
        for v in [0u64, 999, 77_777] {
            for i in 0..g.degree(v) {
                let u = g.neighbor(v, i);
                assert!(u < g.num_vertices());
                assert_eq!(u, g.neighbor(v, i), "determinism");
            }
        }
    }

    #[test]
    fn neighbors_scatter_widely() {
        let g = graph();
        let mut pages = std::collections::HashSet::new();
        let mut draws = 0;
        for v in 0..200u64 {
            for i in 0..g.degree(v) {
                pages.insert(g.neighbor(v, i) * 8 / 4096);
                draws += 1;
            }
        }
        // An 8B-per-vertex property array spans ~196 pages at V=100K; a
        // few thousand random draws should cover the vast majority.
        let possible = (g.num_vertices() * 8).div_ceil(4096);
        assert!(draws > 2000);
        assert!(
            pages.len() as u64 > possible * 3 / 4,
            "gathers should cover most of the {possible} property pages, got {}",
            pages.len()
        );
    }

    #[test]
    fn core_emits_offsets_and_edges_in_bounds() {
        let (mut core, specs, _) = GraphCore::new(Scale::Tiny, 7, &[PropKind::Word]);
        let bases =
            vec![VirtAddr::new(0x1_0000_0000), VirtAddr::new(0x2_0000_0000), VirtAddr::new(0x3_0000_0000)];
        core.bind(&bases, 1);
        let mut out = Vec::new();
        core.emit_offsets(5, 0, &mut out);
        let u = core.emit_edge(5, 0, 1, &mut out);
        assert!(u < core.graph.num_vertices());
        assert_eq!(out.len(), 3);
        assert!(out[0].vaddr.raw() - 0x1_0000_0000 < specs[0].bytes);
        assert!(out[2].vaddr.raw() - 0x2_0000_0000 < specs[1].bytes);
    }
}
