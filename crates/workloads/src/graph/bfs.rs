//! Breadth-first search (GraphBIG **BFS**).
//!
//! Frontier-queue BFS with a visited bitmap: offset loads, sequential edge
//! reads, and random visited-bit tests/sets. When a traversal exhausts its
//! component, a new root restarts it (the stream is infinite).

use super::{GraphCore, PropKind};
use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, SplitMix64, VirtAddr};

const PROPS: [PropKind; 1] = [PropKind::Bit]; // visited bitmap

/// The BFS workload.
pub struct Bfs {
    core: GraphCore,
    specs: Vec<RegionSpec>,
    visited: Vec<u64>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    rng: SplitMix64,
}

impl Bfs {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (core, specs, _) = GraphCore::new(scale, seed, &PROPS);
        let words = (core.graph.num_vertices() as usize).div_ceil(64);
        Self {
            core,
            specs,
            visited: vec![0; words],
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            rng: SplitMix64::new(seed ^ 0xbf5),
        }
    }

    fn restart(&mut self) {
        self.visited.iter_mut().for_each(|w| *w = 0);
        let root = self.rng.next_below(self.core.graph.num_vertices());
        self.mark(root);
        self.frontier.clear();
        self.next_frontier.clear();
        self.frontier.push(root as u32);
    }

    #[inline]
    fn is_visited(&self, v: u64) -> bool {
        self.visited[(v / 64) as usize] >> (v % 64) & 1 == 1
    }

    #[inline]
    fn mark(&mut self, v: u64) {
        self.visited[(v / 64) as usize] |= 1 << (v % 64);
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        self.core.bind(bases, PROPS.len());
        self.restart();
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        // Process up to 4 frontier vertices per batch.
        for _ in 0..4 {
            let v = loop {
                match self.frontier.pop() {
                    Some(v) => break v as u64,
                    None => {
                        if self.next_frontier.is_empty() {
                            self.restart();
                        } else {
                            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
                        }
                    }
                }
            };
            self.core.emit_offsets(v, 40, out);
            for i in 0..self.core.graph.degree(v) {
                let u = self.core.emit_edge(v, i, 41, out);
                out.push(MemRef::load(self.core.prop_bit(0, u), pc(42), 1));
                if !self.is_visited(u) {
                    self.mark(u);
                    out.push(MemRef::store(self.core.prop_bit(0, u), pc(43), 0));
                    self.next_frontier.push(u as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn stream() -> (WorkloadStream, Vec<(u64, u64)>) {
        let mut w = Box::new(Bfs::new(Scale::Tiny, 5));
        let specs = w.region_specs();
        let mut bases = Vec::new();
        let mut ranges = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            let b = 0x10_0000_0000 + i as u64 * 0x4_0000_0000;
            bases.push(VirtAddr::new(b));
            ranges.push((b, s.bytes));
        }
        w.init(&bases);
        (WorkloadStream::new(w), ranges)
    }

    #[test]
    fn emits_only_mapped_addresses() {
        let (mut s, ranges) = stream();
        for _ in 0..50_000 {
            let r = s.next_ref();
            assert!(
                ranges.iter().any(|&(b, sz)| r.vaddr.raw() >= b && r.vaddr.raw() < b + sz),
                "stray access {:#x}",
                r.vaddr.raw()
            );
        }
    }

    #[test]
    fn traversal_visits_many_distinct_vertices() {
        let (mut s, ranges) = stream();
        let (bitmap_base, _) = ranges[2];
        let mut bytes = std::collections::HashSet::new();
        for _ in 0..100_000 {
            let r = s.next_ref();
            if r.vaddr.raw() >= bitmap_base {
                bytes.insert(r.vaddr.raw());
            }
        }
        assert!(bytes.len() > 1000, "visited-bit traffic should spread, got {}", bytes.len());
    }

    #[test]
    fn stream_survives_component_exhaustion() {
        let (mut s, _) = stream();
        // Just drain a lot; restarts must keep the stream infinite.
        for _ in 0..200_000 {
            s.next_ref();
        }
    }

    #[test]
    fn stores_are_a_minority() {
        let (mut s, _) = stream();
        let stores = (0..50_000).filter(|_| s.next_ref().kind.is_write()).count();
        assert!(stores > 0);
        assert!(stores < 25_000);
    }
}
