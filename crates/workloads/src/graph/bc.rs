//! Betweenness centrality (GraphBIG **BC**).
//!
//! Brandes-style: a forward BFS accumulating shortest-path counts
//! (`sigma`), then a backward sweep over the traversal order accumulating
//! dependencies (`delta`). Two phases with different directions over the
//! same CSR — the backward phase revisits pages long after the forward
//! phase touched them, stressing translation reach.

use super::{GraphCore, PropKind};
use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, SplitMix64, VirtAddr};

const PROPS: [PropKind; 3] = [PropKind::Word, PropKind::Word, PropKind::Word]; // sigma, depth, delta

/// The BC workload.
pub struct Bc {
    core: GraphCore,
    specs: Vec<RegionSpec>,
    depth: Vec<u16>,
    order: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    backward_pos: usize,
    phase_backward: bool,
    rng: SplitMix64,
}

impl Bc {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (core, specs, _) = GraphCore::new(scale, seed, &PROPS);
        let v = core.graph.num_vertices() as usize;
        Self {
            core,
            specs,
            depth: vec![u16::MAX; v],
            order: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            backward_pos: 0,
            phase_backward: false,
            rng: SplitMix64::new(seed ^ 0xbc),
        }
    }

    fn restart(&mut self) {
        self.depth.iter_mut().for_each(|d| *d = u16::MAX);
        self.order.clear();
        self.frontier.clear();
        self.next.clear();
        self.phase_backward = false;
        let root = self.rng.next_below(self.core.graph.num_vertices());
        self.depth[root as usize] = 0;
        self.frontier.push(root as u32);
        // Bound the forward phase so `order` stays small at Tiny scale.
    }

    fn forward_step(&mut self, out: &mut Vec<MemRef>) {
        let v = loop {
            match self.frontier.pop() {
                Some(v) => break v as u64,
                None => {
                    if self.next.is_empty() || self.order.len() > 200_000 {
                        // Forward phase done: flip to the backward sweep.
                        self.phase_backward = true;
                        self.backward_pos = self.order.len();
                        return;
                    }
                    std::mem::swap(&mut self.frontier, &mut self.next);
                }
            }
        };
        self.order.push(v as u32);
        self.core.emit_offsets(v, 80, out);
        out.push(MemRef::load(self.core.prop_word(0, v), pc(81), 1)); // sigma[v]
        let dv = self.depth[v as usize];
        for i in 0..self.core.graph.degree(v) {
            let u = self.core.emit_edge(v, i, 82, out);
            out.push(MemRef::load(self.core.prop_word(1, u), pc(83), 1)); // depth[u]
            if self.depth[u as usize] == u16::MAX {
                self.depth[u as usize] = dv.saturating_add(1);
                out.push(MemRef::store(self.core.prop_word(1, u), pc(84), 0));
                out.push(MemRef::store(self.core.prop_word(0, u), pc(85), 0)); // sigma[u] +=
                self.next.push(u as u32);
            }
        }
    }

    fn backward_step(&mut self, out: &mut Vec<MemRef>) {
        if self.backward_pos == 0 {
            self.restart();
            return;
        }
        self.backward_pos -= 1;
        let v = self.order[self.backward_pos] as u64;
        self.core.emit_offsets(v, 86, out);
        out.push(MemRef::load(self.core.prop_word(2, v), pc(87), 1)); // delta[v]
        for i in 0..self.core.graph.degree(v) {
            let u = self.core.emit_edge(v, i, 88, out);
            out.push(MemRef::load(self.core.prop_word(2, u), pc(89), 1)); // delta[u]
            out.push(MemRef::load(self.core.prop_word(0, u), pc(90), 1)); // sigma[u]
        }
        out.push(MemRef::store(self.core.prop_word(2, v), pc(91), 2));
    }
}

impl Workload for Bc {
    fn name(&self) -> &'static str {
        "BC"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        self.core.bind(bases, PROPS.len());
        self.restart();
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        for _ in 0..4 {
            if self.phase_backward {
                self.backward_step(out);
            } else {
                self.forward_step(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn stream() -> WorkloadStream {
        let mut w = Box::new(Bc::new(Scale::Tiny, 11));
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        WorkloadStream::new(w)
    }

    #[test]
    fn both_phases_run() {
        let mut w = Bc::new(Scale::Tiny, 11);
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        let mut out = Vec::new();
        let mut saw_backward = false;
        for _ in 0..500_000 {
            w.fill(&mut out);
            out.clear();
            if w.phase_backward {
                saw_backward = true;
                break;
            }
        }
        assert!(saw_backward, "BC must reach its backward phase");
    }

    #[test]
    fn stream_is_infinite() {
        let mut s = stream();
        for _ in 0..300_000 {
            s.next_ref();
        }
    }

    #[test]
    fn has_five_regions() {
        let w = Bc::new(Scale::Tiny, 11);
        assert_eq!(w.region_specs().len(), 5); // offsets, edges, sigma, depth, delta
    }
}
