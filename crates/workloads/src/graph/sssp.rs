//! Single-source shortest paths (GraphBIG **SSSP**, the paper's "SP").
//!
//! Worklist Bellman-Ford with procedural edge weights: like BFS but
//! vertices re-enter the worklist when their distance improves, adding
//! distance-array load/store traffic on top of the traversal.

use super::{GraphCore, PropKind};
use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{mix2, MemRef, SplitMix64, VirtAddr};

const PROPS: [PropKind; 2] = [PropKind::Word, PropKind::Bit]; // dist, in-worklist

/// The SSSP workload.
pub struct Sssp {
    core: GraphCore,
    specs: Vec<RegionSpec>,
    dist: Vec<u32>,
    worklist: Vec<u32>,
    rng: SplitMix64,
    seed: u64,
}

impl Sssp {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (core, specs, _) = GraphCore::new(scale, seed, &PROPS);
        let v = core.graph.num_vertices() as usize;
        Self {
            core,
            specs,
            dist: vec![u32::MAX; v],
            worklist: Vec::new(),
            rng: SplitMix64::new(seed ^ 0x555b),
            seed,
        }
    }

    fn weight(&self, v: u64, i: u64) -> u32 {
        (mix2(self.seed ^ 0x77, v * 331 + i) % 15 + 1) as u32
    }

    fn restart(&mut self) {
        self.dist.iter_mut().for_each(|d| *d = u32::MAX);
        let root = self.rng.next_below(self.core.graph.num_vertices());
        self.dist[root as usize] = 0;
        self.worklist.clear();
        self.worklist.push(root as u32);
    }
}

impl Workload for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        self.core.bind(bases, PROPS.len());
        self.restart();
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        for _ in 0..4 {
            let v = loop {
                match self.worklist.pop() {
                    Some(v) => break v as u64,
                    None => self.restart(),
                }
            };
            out.push(MemRef::load(self.core.prop_bit(1, v), pc(70), 1));
            self.core.emit_offsets(v, 71, out);
            let dv = self.dist[v as usize];
            out.push(MemRef::load(self.core.prop_word(0, v), pc(72), 1));
            for i in 0..self.core.graph.degree(v) {
                let u = self.core.emit_edge(v, i, 73, out);
                out.push(MemRef::load(self.core.prop_word(0, u), pc(74), 2));
                let cand = dv.saturating_add(self.weight(v, i));
                if cand < self.dist[u as usize] {
                    self.dist[u as usize] = cand;
                    out.push(MemRef::store(self.core.prop_word(0, u), pc(75), 0));
                    out.push(MemRef::store(self.core.prop_bit(1, u), pc(76), 0));
                    self.worklist.push(u as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn stream() -> WorkloadStream {
        let mut w = Box::new(Sssp::new(Scale::Tiny, 9));
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        WorkloadStream::new(w)
    }

    #[test]
    fn relaxations_store_distances() {
        let mut s = stream();
        let stores = (0..100_000).filter(|_| s.next_ref().kind.is_write()).count();
        assert!(stores > 1000, "early SSSP relaxes aggressively, got {stores}");
    }

    #[test]
    fn distances_actually_decrease_monotonically() {
        let mut w = Sssp::new(Scale::Tiny, 9);
        let specs = w.region_specs();
        let bases: Vec<VirtAddr> =
            (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x4_0000_0000)).collect();
        w.init(&bases);
        let mut out = Vec::new();
        for _ in 0..5000 {
            w.fill(&mut out);
        }
        let finite = w.dist.iter().filter(|&&d| d != u32::MAX).count();
        assert!(finite > 100, "traversal must settle distances, got {finite}");
    }

    #[test]
    fn stream_is_infinite_across_restarts() {
        let mut s = stream();
        for _ in 0..300_000 {
            s.next_ref();
        }
    }
}
