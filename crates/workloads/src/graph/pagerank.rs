//! PageRank, pull variant (GraphBIG **PR**).
//!
//! Sequential sweep over vertices; per vertex, gather the ranks of all
//! neighbours (random 8B loads over a vertex-sized array) and store the
//! new rank. The regular sweep makes offsets/edges prefetch-friendly
//! while the gathers thrash the TLB.

use super::{GraphCore, PropKind};
use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, VirtAddr};

const PROPS: [PropKind; 2] = [PropKind::Word, PropKind::Word]; // rank, rank_new

/// The PR workload.
pub struct PageRank {
    core: GraphCore,
    specs: Vec<RegionSpec>,
    cursor: u64,
}

impl PageRank {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let (core, specs, _) = GraphCore::new(scale, seed, &PROPS);
        Self { core, specs, cursor: 0 }
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        self.core.bind(bases, PROPS.len());
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        // Process 4 vertices per batch.
        for _ in 0..4 {
            let v = self.cursor % self.core.graph.num_vertices();
            self.cursor += 1;
            self.core.emit_offsets(v, 50, out);
            for i in 0..self.core.graph.degree(v) {
                let u = self.core.emit_edge(v, i, 51, out);
                out.push(MemRef::load(self.core.prop_word(0, u), pc(52), 2));
            }
            out.push(MemRef::store(self.core.prop_word(1, v), pc(53), 3));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn stream() -> (WorkloadStream, Vec<(u64, u64)>) {
        let mut w = Box::new(PageRank::new(Scale::Tiny, 6));
        let specs = w.region_specs();
        let mut bases = Vec::new();
        let mut ranges = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            let b = 0x10_0000_0000 + i as u64 * 0x4_0000_0000;
            bases.push(VirtAddr::new(b));
            ranges.push((b, s.bytes));
        }
        w.init(&bases);
        (WorkloadStream::new(w), ranges)
    }

    #[test]
    fn region_layout_has_two_property_arrays() {
        let w = PageRank::new(Scale::Tiny, 6);
        assert_eq!(w.region_specs().len(), 4);
    }

    #[test]
    fn accesses_in_bounds_and_stores_hit_rank_new() {
        let (mut s, ranges) = stream();
        let (rank_new_base, rank_new_bytes) = ranges[3];
        for _ in 0..50_000 {
            let r = s.next_ref();
            assert!(ranges.iter().any(|&(b, sz)| r.vaddr.raw() >= b && r.vaddr.raw() < b + sz));
            if r.kind.is_write() {
                assert!(
                    r.vaddr.raw() >= rank_new_base && r.vaddr.raw() < rank_new_base + rank_new_bytes,
                    "stores only write the new-rank array"
                );
            }
        }
    }

    #[test]
    fn sweep_is_sequential_in_offsets() {
        let (mut s, ranges) = stream();
        let (off_base, off_bytes) = ranges[0];
        let mut last = 0;
        let mut monotonic = 0;
        let mut total = 0;
        for _ in 0..20_000 {
            let r = s.next_ref();
            if r.vaddr.raw() >= off_base && r.vaddr.raw() < off_base + off_bytes {
                if r.vaddr.raw() >= last {
                    monotonic += 1;
                }
                last = r.vaddr.raw();
                total += 1;
            }
        }
        assert!(monotonic as f64 > total as f64 * 0.95, "offset sweep is ascending");
    }
}
