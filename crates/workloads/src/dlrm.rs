//! DLRM sparse-length-sum (the paper's **DLRM**, Table 4: 10.3GB dataset).
//!
//! The embedding-lookup kernel of deep recommendation models: for each
//! input sample, gather `POOLING` random rows from each of several large
//! embedding tables and sum them. Rows are contiguous (one or two cache
//! blocks) but row *selection* is essentially random — high TLB pressure
//! with short bursts of spatial locality.

use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, SplitMix64, VirtAddr};

const TABLES: u64 = 8;
const ROWS_PER_TABLE_TINY: u64 = 64 << 10; // ×16 at Full = 1M rows
const ROW_BYTES: u64 = 64; // 16 × f32 embedding vector
const POOLING: u64 = 32; // rows gathered per (sample, table)

/// The DLRM workload.
pub struct Dlrm {
    rows_per_table: u64,
    tables: Vec<VirtAddr>,
    indices: VirtAddr,
    cursor: u64,
    rng: SplitMix64,
}

impl Dlrm {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            rows_per_table: ROWS_PER_TABLE_TINY * scale.factor(),
            tables: Vec::new(),
            indices: VirtAddr::new(0),
            cursor: 0,
            rng: SplitMix64::new(seed ^ 0xd12a),
        }
    }

    fn table_bytes(&self) -> u64 {
        self.rows_per_table * ROW_BYTES
    }
}

const INDICES_BYTES: u64 = 8 << 20;

impl Workload for Dlrm {
    fn name(&self) -> &'static str {
        "DLRM"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        let mut specs: Vec<RegionSpec> = (0..TABLES)
            .map(|_| RegionSpec { name: "embedding_table", bytes: self.table_bytes(), huge_fraction: 0.4 })
            .collect();
        specs.push(RegionSpec { name: "indices", bytes: INDICES_BYTES, huge_fraction: 0.0 });
        specs
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        assert_eq!(bases.len(), TABLES as usize + 1, "DLRM expects {} regions", TABLES + 1);
        self.tables = bases[..TABLES as usize].to_vec();
        self.indices = bases[TABLES as usize];
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        // One sample: stream the index list, then gather from each table.
        for t in 0..TABLES {
            for j in 0..POOLING {
                // Sequential read of the sparse index list.
                let idx_off = (self.cursor + t * POOLING + j) * 4 % INDICES_BYTES;
                out.push(MemRef::load(self.indices.add(idx_off), pc(20), 2));
                // Skewed row popularity: 20% of lookups hit a hot head of
                // the table (recommendation traffic is Zipfian).
                let row = if self.rng.chance(0.2) {
                    self.rng.next_below(self.rows_per_table / 64)
                } else {
                    self.rng.next_below(self.rows_per_table)
                };
                let row_base = self.tables[t as usize].add(row * ROW_BYTES);
                out.push(MemRef::load(row_base, pc(21 + t as u32), 3));
            }
        }
        self.cursor += TABLES * POOLING;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn make() -> (WorkloadStream, Vec<(u64, u64)>) {
        let mut w = Box::new(Dlrm::new(Scale::Tiny, 3));
        let specs = w.region_specs();
        let mut bases = Vec::new();
        let mut ranges = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            let b = 0x10_0000_0000 + (i as u64) * 0x1_0000_0000;
            bases.push(VirtAddr::new(b));
            ranges.push((b, s.bytes));
        }
        w.init(&bases);
        (WorkloadStream::new(w), ranges)
    }

    #[test]
    fn region_count_is_tables_plus_indices() {
        let w = Dlrm::new(Scale::Tiny, 3);
        assert_eq!(w.region_specs().len(), 9);
    }

    #[test]
    fn accesses_fall_in_regions() {
        let (mut s, ranges) = make();
        for _ in 0..20_000 {
            let r = s.next_ref();
            let va = r.vaddr.raw();
            assert!(ranges.iter().any(|&(b, sz)| va >= b && va < b + sz), "stray access at {va:#x}");
        }
    }

    #[test]
    fn gathers_alternate_index_then_row() {
        let (mut s, ranges) = make();
        let (idx_base, _) = *ranges.last().unwrap();
        let a = s.next_ref();
        let b = s.next_ref();
        assert!(a.vaddr.raw() >= idx_base, "first access reads the index list");
        assert!(b.vaddr.raw() < idx_base, "second access gathers a row");
    }

    #[test]
    fn row_popularity_is_skewed() {
        let (mut s, ranges) = make();
        let (t0, t0_bytes) = ranges[0];
        let head = t0 + t0_bytes / 64;
        let (mut head_hits, mut total) = (0u64, 0u64);
        for _ in 0..100_000 {
            let r = s.next_ref();
            if r.vaddr.raw() >= t0 && r.vaddr.raw() < t0 + t0_bytes {
                total += 1;
                if r.vaddr.raw() < head {
                    head_hits += 1;
                }
            }
        }
        assert!(total > 100);
        let frac = head_hits as f64 / total as f64;
        assert!(frac > 0.15, "hot head should capture ≳20% of gathers, got {frac:.2}");
    }
}
