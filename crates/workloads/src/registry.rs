//! The paper's Table 4 workload suite, constructed by name.

use crate::graph::{bc::Bc, bfs::Bfs, cc::ConnectedComponents, gc::GraphColoring, pagerank::PageRank, sssp::Sssp, tc::TriangleCount};
use crate::{dlrm::Dlrm, genomics::Genomics, gups::Gups, xsbench::XsBench, Scale, Workload};
use vm_types::DEFAULT_SEED;

/// The 11 workload abbreviations in the paper's figure order.
pub const WORKLOAD_NAMES: [&str; 11] =
    ["BC", "BFS", "CC", "DLRM", "GEN", "GC", "PR", "RND", "SSSP", "TC", "XS"];

/// Constructs one workload by its paper abbreviation.
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    let seed = DEFAULT_SEED;
    Some(match name {
        "BC" => Box::new(Bc::new(scale, seed ^ 0xbc)),
        "BFS" => Box::new(Bfs::new(scale, seed ^ 0xbf5)),
        "CC" => Box::new(ConnectedComponents::new(scale, seed ^ 0xcc)),
        "DLRM" => Box::new(Dlrm::new(scale, seed ^ 0xd1)),
        "GEN" => Box::new(Genomics::new(scale, seed ^ 0x6e)),
        "GC" => Box::new(GraphColoring::new(scale, seed ^ 0x6c)),
        "PR" => Box::new(PageRank::new(scale, seed ^ 0x97)),
        "RND" => Box::new(Gups::new(scale, seed ^ 0x9d)),
        "SSSP" => Box::new(Sssp::new(scale, seed ^ 0x55)),
        "TC" => Box::new(TriangleCount::new(scale, seed ^ 0x7c)),
        "XS" => Box::new(XsBench::new(scale, seed ^ 0x5b)),
        _ => return None,
    })
}

/// Constructs the full suite in figure order.
pub fn all(scale: Scale) -> Vec<Box<dyn Workload>> {
    WORKLOAD_NAMES.iter().map(|n| by_name(n, scale).expect("registry covers its own names")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::VirtAddr;

    #[test]
    fn registry_builds_all_eleven() {
        let suite = all(Scale::Tiny);
        assert_eq!(suite.len(), 11);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, WORKLOAD_NAMES.to_vec());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("NOPE", Scale::Tiny).is_none());
    }

    #[test]
    fn every_workload_streams_after_init() {
        for name in WORKLOAD_NAMES {
            let mut w = by_name(name, Scale::Tiny).unwrap();
            let specs = w.region_specs();
            assert!(!specs.is_empty(), "{name} declares regions");
            assert!(specs.iter().all(|s| s.bytes > 0));
            assert!(specs.iter().all(|s| (0.0..=1.0).contains(&s.huge_fraction)));
            let bases: Vec<VirtAddr> = (0..specs.len())
                .map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x8_0000_0000))
                .collect();
            w.init(&bases);
            let mut stream = crate::WorkloadStream::new(w);
            for _ in 0..10_000 {
                let r = stream.next_ref();
                // Every reference must fall inside a declared region.
                let ok = specs.iter().enumerate().any(|(i, s)| {
                    let b = 0x10_0000_0000 + i as u64 * 0x8_0000_0000;
                    r.vaddr.raw() >= b && r.vaddr.raw() < b + s.bytes
                });
                assert!(ok, "{name}: stray access at {:#x}", r.vaddr.raw());
            }
        }
    }

    #[test]
    fn full_scale_footprints_dwarf_tlb_reach() {
        // The baseline L2 TLB covers at most 1536 × 4KB = 6MB (4KB pages).
        for name in WORKLOAD_NAMES {
            let w = by_name(name, Scale::Full).unwrap();
            let footprint: u64 = w.region_specs().iter().map(|s| s.bytes).sum();
            assert!(
                footprint > (40 * 6) << 20,
                "{name}: footprint {}MB too small vs TLB reach",
                footprint >> 20
            );
        }
    }
}
