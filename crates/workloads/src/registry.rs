//! The paper's Table 4 workload suite, constructed by name.

use crate::graph::{
    bc::Bc, bfs::Bfs, cc::ConnectedComponents, gc::GraphColoring, pagerank::PageRank, sssp::Sssp,
    tc::TriangleCount,
};
use crate::{dlrm::Dlrm, genomics::Genomics, gups::Gups, xsbench::XsBench, Scale, Workload};
use vm_types::DEFAULT_SEED;

/// The 11 workload abbreviations in the paper's figure order.
pub const WORKLOAD_NAMES: [&str; 11] =
    ["BC", "BFS", "CC", "DLRM", "GEN", "GC", "PR", "RND", "SSSP", "TC", "XS"];

/// A `Send + Sync` workload constructor: `(scale, base seed) → workload`.
///
/// Builders are plain function pointers so run specifications can be
/// shipped across threads and each worker constructs its own workload
/// instance locally (the `sim` batch engine depends on this).
pub type WorkloadBuilder = fn(Scale, u64) -> Box<dyn Workload>;

/// Looks up the builder for one paper abbreviation. Each builder XORs a
/// per-workload salt into the base seed so every generator draws from an
/// independent stream even when all specs share one seed.
pub fn builder(name: &str) -> Option<WorkloadBuilder> {
    Some(match name {
        "BC" => |scale, seed| Box::new(Bc::new(scale, seed ^ 0xbc)),
        "BFS" => |scale, seed| Box::new(Bfs::new(scale, seed ^ 0xbf5)),
        "CC" => |scale, seed| Box::new(ConnectedComponents::new(scale, seed ^ 0xcc)),
        "DLRM" => |scale, seed| Box::new(Dlrm::new(scale, seed ^ 0xd1)),
        "GEN" => |scale, seed| Box::new(Genomics::new(scale, seed ^ 0x6e)),
        "GC" => |scale, seed| Box::new(GraphColoring::new(scale, seed ^ 0x6c)),
        "PR" => |scale, seed| Box::new(PageRank::new(scale, seed ^ 0x97)),
        "RND" => |scale, seed| Box::new(Gups::new(scale, seed ^ 0x9d)),
        "SSSP" => |scale, seed| Box::new(Sssp::new(scale, seed ^ 0x55)),
        "TC" => |scale, seed| Box::new(TriangleCount::new(scale, seed ^ 0x7c)),
        "XS" => |scale, seed| Box::new(XsBench::new(scale, seed ^ 0x5b)),
        _ => return None,
    })
}

/// Constructs one workload by its paper abbreviation with an explicit
/// base seed.
///
/// Beyond the 11 generator abbreviations, `trace:<path>` replays a
/// recorded `.vtrace` file ([`crate::replay::TraceWorkload`]), and
/// `trace:<path>?skip=N` replays it with the first `N` chunks skipped
/// (warm-up skip). The name stays a plain `Send` string, so
/// batch-engine workers each open their own reader and the
/// byte-identical-at-any-worker-count contract holds.
///
/// # Panics
///
/// Panics if a `trace:<path>` file is unreadable, malformed, shorter
/// than the requested skip, or was recorded at a different scale/seed
/// than requested (a mismatched mapping would silently corrupt the
/// replay; see [`crate::replay::TraceWorkload::open`]).
pub fn by_name_seeded(name: &str, scale: Scale, seed: u64) -> Option<Box<dyn Workload>> {
    if let Some(spec) = name.strip_prefix(crate::replay::TRACE_PREFIX) {
        let (path, skip) = crate::replay::parse_spec(spec).unwrap_or_else(|e| panic!("{e}"));
        let w = crate::replay::TraceWorkload::open_with_skip(std::path::Path::new(path), scale, seed, skip)
            .unwrap_or_else(|e| panic!("{e}"));
        return Some(Box::new(w));
    }
    builder(name).map(|b| b(scale, seed))
}

/// Constructs one workload by its paper abbreviation (default seed).
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    by_name_seeded(name, scale, DEFAULT_SEED)
}

/// Constructs the full suite in figure order.
pub fn all(scale: Scale) -> Vec<Box<dyn Workload>> {
    WORKLOAD_NAMES.iter().map(|n| by_name(n, scale).expect("registry covers its own names")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::VirtAddr;

    #[test]
    fn registry_builds_all_eleven() {
        let suite = all(Scale::Tiny);
        assert_eq!(suite.len(), 11);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, WORKLOAD_NAMES.to_vec());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("NOPE", Scale::Tiny).is_none());
        assert!(builder("NOPE").is_none());
    }

    #[test]
    fn builders_are_send_and_seed_sensitive() {
        fn assert_send<T: Send + Sync>(_: &T) {}
        let b = builder("RND").unwrap();
        assert_send(&b);
        // A builder constructed on another thread streams identically to
        // one constructed locally with the same seed.
        let local = {
            let mut w = b(Scale::Tiny, 1234);
            let bases: Vec<VirtAddr> =
                (0..w.region_specs().len()).map(|i| VirtAddr::new(0x10_0000_0000 * (i as u64 + 1))).collect();
            w.init(&bases);
            let mut s = crate::WorkloadStream::new(w);
            (0..64).map(|_| s.next_ref().vaddr.raw()).collect::<Vec<_>>()
        };
        let remote = std::thread::spawn(move || {
            let mut w = b(Scale::Tiny, 1234);
            let bases: Vec<VirtAddr> =
                (0..w.region_specs().len()).map(|i| VirtAddr::new(0x10_0000_0000 * (i as u64 + 1))).collect();
            w.init(&bases);
            let mut s = crate::WorkloadStream::new(w);
            (0..64).map(|_| s.next_ref().vaddr.raw()).collect::<Vec<_>>()
        })
        .join()
        .unwrap();
        assert_eq!(local, remote);
        // A different seed must produce a different stream.
        let reseeded = {
            let mut w = by_name_seeded("RND", Scale::Tiny, 9999).unwrap();
            let bases: Vec<VirtAddr> =
                (0..w.region_specs().len()).map(|i| VirtAddr::new(0x10_0000_0000 * (i as u64 + 1))).collect();
            w.init(&bases);
            let mut s = crate::WorkloadStream::new(w);
            (0..64).map(|_| s.next_ref().vaddr.raw()).collect::<Vec<_>>()
        };
        assert_ne!(local, reseeded);
    }

    #[test]
    fn every_workload_streams_after_init() {
        for name in WORKLOAD_NAMES {
            let mut w = by_name(name, Scale::Tiny).unwrap();
            let specs = w.region_specs();
            assert!(!specs.is_empty(), "{name} declares regions");
            assert!(specs.iter().all(|s| s.bytes > 0));
            assert!(specs.iter().all(|s| (0.0..=1.0).contains(&s.huge_fraction)));
            let bases: Vec<VirtAddr> =
                (0..specs.len()).map(|i| VirtAddr::new(0x10_0000_0000 + i as u64 * 0x8_0000_0000)).collect();
            w.init(&bases);
            let mut stream = crate::WorkloadStream::new(w);
            for _ in 0..10_000 {
                let r = stream.next_ref();
                // Every reference must fall inside a declared region.
                let ok = specs.iter().enumerate().any(|(i, s)| {
                    let b = 0x10_0000_0000 + i as u64 * 0x8_0000_0000;
                    r.vaddr.raw() >= b && r.vaddr.raw() < b + s.bytes
                });
                assert!(ok, "{name}: stray access at {:#x}", r.vaddr.raw());
            }
        }
    }

    #[test]
    fn full_scale_footprints_dwarf_tlb_reach() {
        // The baseline L2 TLB covers at most 1536 × 4KB = 6MB (4KB pages).
        for name in WORKLOAD_NAMES {
            let w = by_name(name, Scale::Full).unwrap();
            let footprint: u64 = w.region_specs().iter().map(|s| s.bytes).sum();
            assert!(
                footprint > (40 * 6) << 20,
                "{name}: footprint {}MB too small vs TLB reach",
                footprint >> 20
            );
        }
    }
}
