//! GUPS random access (the paper's **RND**, Table 4: 10GB dataset).
//!
//! The HPCC RandomAccess kernel: read-modify-write updates at uniformly
//! random 8-byte words of a giant table. The canonical worst case for TLB
//! reach — essentially every update touches a new page.

use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, SplitMix64, VirtAddr};

/// Base table size at [`Scale::Tiny`]; ×16 at Full (512MB).
const TABLE_BYTES_TINY: u64 = 48 << 20;

/// The RND workload.
pub struct Gups {
    table_bytes: u64,
    base: VirtAddr,
    rng: SplitMix64,
}

impl Gups {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            table_bytes: TABLE_BYTES_TINY * scale.factor(),
            base: VirtAddr::new(0),
            rng: SplitMix64::new(seed ^ 0x6075),
        }
    }
}

impl Workload for Gups {
    fn name(&self) -> &'static str {
        "RND"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        vec![RegionSpec { name: "table", bytes: self.table_bytes, huge_fraction: 0.3 }]
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        assert_eq!(bases.len(), 1, "GUPS expects one region");
        self.base = bases[0];
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        // One batch = 64 updates. Each update: load the word, xor it,
        // store it back (the store hits the same page as the load).
        for _ in 0..64 {
            let word = self.rng.next_below(self.table_bytes / 8);
            let addr = self.base.add(word * 8);
            out.push(MemRef::load(addr, pc(0), 5));
            out.push(MemRef::store(addr, pc(1), 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn stream() -> WorkloadStream {
        let mut w = Box::new(Gups::new(Scale::Tiny, 1));
        w.init(&[VirtAddr::new(0x10_0000_0000)]);
        WorkloadStream::new(w)
    }

    #[test]
    fn accesses_stay_in_region() {
        let mut s = stream();
        for _ in 0..10_000 {
            let r = s.next_ref();
            let off = r.vaddr.raw() - 0x10_0000_0000;
            assert!(off < TABLE_BYTES_TINY);
        }
    }

    #[test]
    fn loads_and_stores_pair_up() {
        let mut s = stream();
        let a = s.next_ref();
        let b = s.next_ref();
        assert!(!a.kind.is_write());
        assert!(b.kind.is_write());
        assert_eq!(a.vaddr, b.vaddr, "read-modify-write targets one word");
    }

    #[test]
    fn addresses_are_spread_over_many_pages() {
        let mut s = stream();
        let mut pages = std::collections::HashSet::new();
        for _ in 0..4000 {
            pages.insert(s.next_ref().vaddr.raw() >> 12);
        }
        assert!(pages.len() > 1000, "GUPS must thrash pages, got {}", pages.len());
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = stream();
        let mut b = stream();
        for _ in 0..100 {
            assert_eq!(a.next_ref(), b.next_ref());
        }
    }
}
