//! GenomicsBench k-mer counting (the paper's **GEN**, Table 4: 33GB
//! dataset).
//!
//! The counting kernel slides a k-mer window along the input reads
//! (sequential, prefetch-friendly) and bumps a counter in a giant hash
//! table (random, TLB-hostile) — a half-streaming/half-random mix that
//! distinguishes it from pure GUPS.

use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{mix2, MemRef, SplitMix64, VirtAddr};

const READS_BYTES_TINY: u64 = 8 << 20; // ×16 = 128MB of reads
const HASH_BYTES_TINY: u64 = 24 << 20; // ×16 = 384MB hash table
const KMER: u64 = 31;

/// The GEN workload.
pub struct Genomics {
    reads_bytes: u64,
    hash_bytes: u64,
    reads: VirtAddr,
    hash: VirtAddr,
    pos: u64,
    rolling: u64,
    rng: SplitMix64,
}

impl Genomics {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            reads_bytes: READS_BYTES_TINY * scale.factor(),
            hash_bytes: HASH_BYTES_TINY * scale.factor(),
            reads: VirtAddr::new(0),
            hash: VirtAddr::new(0),
            pos: 0,
            rolling: seed,
            rng: SplitMix64::new(seed ^ 0x6e0e),
        }
    }
}

impl Workload for Genomics {
    fn name(&self) -> &'static str {
        "GEN"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        vec![
            RegionSpec { name: "reads", bytes: self.reads_bytes, huge_fraction: 0.8 },
            RegionSpec { name: "hash_table", bytes: self.hash_bytes, huge_fraction: 0.15 },
        ]
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        assert_eq!(bases.len(), 2, "GEN expects two regions");
        self.reads = bases[0];
        self.hash = bases[1];
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        // One batch = 32 k-mers. The window advances 4 bases (1 byte of
        // 2-bit-packed sequence) per k-mer; reads are touched sequentially.
        for _ in 0..32 {
            out.push(MemRef::load(self.reads.add(self.pos % self.reads_bytes), pc(30), 3));
            self.pos += 1;
            // Rolling hash of the window (simulated with a mixer), then a
            // counter bump in the hash table: load + store one bucket.
            self.rolling = mix2(self.rolling, self.pos ^ KMER);
            let bucket = self.rolling % (self.hash_bytes / 16);
            let addr = self.hash.add(bucket * 16);
            out.push(MemRef::load(addr, pc(31), 4));
            out.push(MemRef::store(addr, pc(32), 1));
            // 1-in-16 k-mers collide and probe the next bucket.
            if self.rng.chance(1.0 / 16.0) {
                out.push(MemRef::load(self.hash.add((bucket * 16 + 16) % self.hash_bytes), pc(33), 2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    const READS_BASE: u64 = 0x10_0000_0000;
    const HASH_BASE: u64 = 0x20_0000_0000;

    fn stream() -> WorkloadStream {
        let mut w = Box::new(Genomics::new(Scale::Tiny, 4));
        w.init(&[VirtAddr::new(READS_BASE), VirtAddr::new(HASH_BASE)]);
        WorkloadStream::new(w)
    }

    #[test]
    fn reads_are_sequential_hash_is_random() {
        let mut s = stream();
        let mut read_addrs = Vec::new();
        let mut hash_pages = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let r = s.next_ref();
            if r.vaddr.raw() < HASH_BASE {
                read_addrs.push(r.vaddr.raw());
            } else {
                hash_pages.insert(r.vaddr.raw() >> 12);
            }
        }
        // Sequential reads advance monotonically byte by byte.
        assert!(read_addrs.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(hash_pages.len() > 500, "hash updates must scatter, got {}", hash_pages.len());
    }

    #[test]
    fn stores_follow_loads_on_the_same_bucket() {
        let mut s = stream();
        let mut prev: Option<MemRef> = None;
        let mut pairs = 0;
        for _ in 0..1000 {
            let r = s.next_ref();
            if let Some(p) = prev {
                if r.kind.is_write() {
                    assert_eq!(r.vaddr, p.vaddr, "counter bump is a RMW");
                    pairs += 1;
                }
            }
            prev = Some(r);
        }
        assert!(pairs > 100);
    }

    #[test]
    fn footprint_is_dominated_by_hash_table() {
        let w = Genomics::new(Scale::Full, 4);
        let specs = w.region_specs();
        assert!(specs[1].bytes > specs[0].bytes);
    }
}
