//! Trace-driven workload frontend: replays a recorded `.vtrace` file as
//! a [`Workload`], making replay the fastest path through the simulator
//! hot loop (chunk decode instead of generator work per reference).
//!
//! Replay reproduces the *identical* run: the trace header carries the
//! recorded region layout, scale and seed, so the simulator rebuilds the
//! same address-space mapping and the recorded absolute virtual
//! addresses land on the same pages. The registry exposes this as the
//! `trace:<path>` workload name ([`crate::registry::by_name_seeded`]),
//! which keeps the batch engine's contract intact: the spec string is
//! `Send`, and every worker opens its own reader.

use crate::{RegionSpec, Scale, Workload};
use std::collections::HashSet;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use victima_trace::{TraceHeader, TraceReader, TraceScale};
use vm_types::{MemRef, VirtAddr};

/// Registry prefix selecting trace replay: `trace:<path>`.
pub const TRACE_PREFIX: &str = "trace:";

/// The registry workload name replaying `path` (`trace:<path>`).
pub fn trace_name(path: &Path) -> String {
    format!("{TRACE_PREFIX}{}", path.display())
}

/// Leak-based string interner: [`Workload::name`] and
/// [`RegionSpec::name`] want `&'static str`, but trace-loaded names only
/// exist at runtime. Interning bounds the leak to one copy per distinct
/// name for the process lifetime.
fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = set.lock().expect("intern table poisoned");
    if let Some(&have) = guard.get(s) {
        return have;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

impl From<TraceScale> for Scale {
    fn from(s: TraceScale) -> Self {
        match s {
            TraceScale::Tiny => Scale::Tiny,
            TraceScale::Small => Scale::Small,
            TraceScale::Full => Scale::Full,
            TraceScale::Paper => Scale::Paper,
        }
    }
}

impl From<Scale> for TraceScale {
    fn from(s: Scale) -> Self {
        match s {
            Scale::Tiny => TraceScale::Tiny,
            Scale::Small => TraceScale::Small,
            Scale::Full => TraceScale::Full,
            Scale::Paper => TraceScale::Paper,
        }
    }
}

/// Splits a `trace:` spec body into its path and skip count: the
/// registry syntax `trace:<path>?skip=N` replays `<path>` with its
/// first `N` chunks skipped (a coarse warm-up skip — chunk headers are
/// parsed but payloads are never decoded). A spec without the suffix
/// skips nothing.
pub fn parse_spec(spec: &str) -> Result<(&str, u64), String> {
    let Some((path, arg)) = spec.rsplit_once('?') else {
        return Ok((spec, 0));
    };
    let Some(n) = arg.strip_prefix("skip=") else {
        return Err(format!("trace replay: unknown option {arg:?} (expected skip=N)"));
    };
    let skip = n
        .parse::<u64>()
        .map_err(|_| format!("trace replay: bad skip count {n:?} (expected a chunk count)"))?;
    Ok((path, skip))
}

/// A workload that replays a `.vtrace` file.
///
/// The stream is exactly as long as the recorded run; replaying past the
/// recorded instruction budget panics (an infinite generator cannot be
/// faked from a finite trace without breaking the byte-identical
/// contract).
pub struct TraceWorkload {
    reader: TraceReader<BufReader<File>>,
    path: PathBuf,
    name: &'static str,
    specs: Vec<RegionSpec>,
    delivered: u64,
}

impl std::fmt::Debug for TraceWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWorkload")
            .field("path", &self.path)
            .field("workload", &self.name)
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl TraceWorkload {
    /// Opens a trace for replay at the given scale and seed.
    ///
    /// The requested scale and seed must match the recorded ones: region
    /// placement is a function of both, and a mismatched mapping would
    /// silently send the recorded addresses to unmapped (or wrong)
    /// pages. Errors are rendered as actionable strings — the registry
    /// front door panics with them.
    pub fn open(path: &Path, scale: Scale, seed: u64) -> Result<Self, String> {
        Self::open_with_skip(path, scale, seed, 0)
    }

    /// [`TraceWorkload::open`] with the first `skip_chunks` chunks
    /// skipped (the `trace:<path>?skip=N` registry syntax): the skipped
    /// records never reach the simulator, so replay starts mid-trace.
    /// Skipping past the end of the trace is an error — the remaining
    /// stream would be empty and the first `fill` would panic.
    pub fn open_with_skip(path: &Path, scale: Scale, seed: u64, skip_chunks: u64) -> Result<Self, String> {
        let mut reader = TraceReader::open_path(path)
            .map_err(|e| format!("trace replay: cannot read {}: {e}", path.display()))?;
        let h = reader.header();
        if Scale::from(h.scale) != scale {
            return Err(format!(
                "trace replay: {} was recorded at scale {:?} but the run requests {:?}",
                path.display(),
                Scale::from(h.scale),
                scale
            ));
        }
        if h.seed != seed {
            return Err(format!(
                "trace replay: {} was recorded with seed {:#x} but the run requests {:#x}; \
                 replay must reuse the recorded seed (region placement depends on it)",
                path.display(),
                h.seed,
                seed
            ));
        }
        let name = intern(&h.workload);
        let specs = h
            .regions
            .iter()
            .map(|r| RegionSpec { name: intern(&r.name), bytes: r.bytes, huge_fraction: r.huge_fraction() })
            .collect();
        for i in 0..skip_chunks {
            match reader.skip_chunk() {
                Ok(Some(_)) => {}
                Ok(None) => {
                    return Err(format!(
                        "trace replay: {} has only {i} chunks; cannot skip {skip_chunks}",
                        path.display()
                    ));
                }
                Err(e) => return Err(format!("trace replay: {}: {e}", path.display())),
            }
        }
        Ok(Self { reader, path: path.to_owned(), name, specs, delivered: 0 })
    }

    /// The trace's self-describing header (provenance, budgets, layout).
    pub fn header(&self) -> &TraceHeader {
        self.reader.header()
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        self.specs.clone()
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        // The simulator maps the recorded regions in order; the recorded
        // absolute addresses already point into them, so the bases are
        // only sanity-checked, not consumed.
        assert_eq!(
            bases.len(),
            self.specs.len(),
            "trace replay: {} regions mapped, trace declares {}",
            bases.len(),
            self.specs.len()
        );
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        match self.reader.read_chunk(out) {
            Ok(0) => panic!(
                "trace replay: {} is exhausted after {} records (recorded budget: {} warm-up + {} \
                 measured instructions); the replay budget must not exceed the recorded run",
                self.path.display(),
                self.delivered,
                self.reader.header().warmup,
                self.reader.header().measured,
            ),
            Ok(n) => self.delivered += n as u64,
            Err(e) => panic!("trace replay: {}: {e}", self.path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;
    use victima_trace::{TraceRegion, TraceWriter};

    fn write_test_trace(path: &Path, seed: u64, refs: &[MemRef]) {
        let mut h = TraceHeader::new("RND", TraceScale::Tiny, seed, 100, 1_000);
        h.regions.push(TraceRegion::new("table", 1 << 20, 0.25));
        let mut w = TraceWriter::create(path, &h).unwrap();
        for &r in refs {
            w.push(r);
        }
        w.finish().unwrap();
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vtrace-replay-{}-{name}", std::process::id()))
    }

    #[test]
    fn replays_recorded_refs_verbatim() {
        let path = tmp("verbatim.vtrace");
        let refs: Vec<MemRef> =
            (0..500).map(|i| MemRef::load(VirtAddr::new(0x10_0000 + i * 64), 0x40_0000, 2)).collect();
        write_test_trace(&path, 7, &refs);
        let mut w = TraceWorkload::open(&path, Scale::Tiny, 7).unwrap();
        let specs = w.region_specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "table");
        assert_eq!(specs[0].huge_fraction, 0.25);
        w.init(&[VirtAddr::new(0x10_0000)]);
        assert_eq!(w.name(), "RND");
        let mut stream = WorkloadStream::new(Box::new(w));
        let got: Vec<MemRef> = (0..500).map(|_| stream.next_ref()).collect();
        assert_eq!(got, refs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seed_and_scale_mismatches_are_refused() {
        let path = tmp("mismatch.vtrace");
        write_test_trace(&path, 7, &[MemRef::load(VirtAddr::new(0x1000), 1, 0)]);
        let err = TraceWorkload::open(&path, Scale::Tiny, 8).unwrap_err();
        assert!(err.contains("seed"), "{err}");
        let err = TraceWorkload::open(&path, Scale::Full, 7).unwrap_err();
        assert!(err.contains("scale"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_actionable_error() {
        let err = TraceWorkload::open(Path::new("/nonexistent/nope.vtrace"), Scale::Tiny, 1).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics_instead_of_looping() {
        let path = tmp("exhausted.vtrace");
        write_test_trace(&path, 7, &[MemRef::load(VirtAddr::new(0x1000), 1, 0)]);
        let mut w = TraceWorkload::open(&path, Scale::Tiny, 7).unwrap();
        let mut out = Vec::new();
        w.fill(&mut out); // the single recorded chunk
        w.fill(&mut out); // past the end
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("BFS-like");
        let b = intern("BFS-like");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn parse_spec_handles_skip_suffix() {
        assert_eq!(parse_spec("/a/b.vtrace"), Ok(("/a/b.vtrace", 0)));
        assert_eq!(parse_spec("/a/b.vtrace?skip=3"), Ok(("/a/b.vtrace", 3)));
        assert!(parse_spec("/a/b.vtrace?chunk=3").unwrap_err().contains("unknown option"));
        assert!(parse_spec("/a/b.vtrace?skip=lots").unwrap_err().contains("bad skip count"));
    }

    fn write_chunked_trace(path: &Path, refs: &[MemRef], chunk_records: u64) {
        let mut h = TraceHeader::new("RND", TraceScale::Tiny, 7, 100, 1_000);
        h.regions.push(TraceRegion::new("table", 1 << 20, 0.25));
        let mut w = TraceWriter::create(path, &h).unwrap().with_chunk_records(chunk_records);
        for &r in refs {
            w.push(r);
        }
        w.finish().unwrap();
    }

    #[test]
    fn skip_then_replay_equals_full_replay_minus_prefix() {
        let path = tmp("skip.vtrace");
        let refs: Vec<MemRef> =
            (0..1000).map(|i| MemRef::load(VirtAddr::new(0x10_0000 + i * 64), 0x40_0000, 1)).collect();
        write_chunked_trace(&path, &refs, 100); // 10 chunks of 100 records
        for skip in [1u64, 4, 9] {
            let mut w = TraceWorkload::open_with_skip(&path, Scale::Tiny, 7, skip).unwrap();
            w.init(&[VirtAddr::new(0x10_0000)]);
            let remaining = refs.len() - (skip as usize) * 100;
            let mut stream = WorkloadStream::new(Box::new(w));
            let got: Vec<MemRef> = (0..remaining).map(|_| stream.next_ref()).collect();
            assert_eq!(got, refs[(skip as usize) * 100..], "skip={skip}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn registry_skip_syntax_replays_suffix() {
        let path = tmp("skip-registry.vtrace");
        let refs: Vec<MemRef> =
            (0..300).map(|i| MemRef::load(VirtAddr::new(0x20_0000 + i * 64), 0x40_0000, 1)).collect();
        write_chunked_trace(&path, &refs, 100);
        let spec = format!("{}?skip=2", crate::replay::trace_name(&path));
        let mut w = crate::registry::by_name_seeded(&spec, Scale::Tiny, 7).unwrap();
        w.init(&[VirtAddr::new(0x20_0000)]);
        let mut stream = WorkloadStream::new(w);
        let got: Vec<MemRef> = (0..100).map(|_| stream.next_ref()).collect();
        assert_eq!(got, refs[200..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skipping_past_the_end_is_refused() {
        let path = tmp("skip-too-far.vtrace");
        let refs: Vec<MemRef> =
            (0..200).map(|i| MemRef::load(VirtAddr::new(0x30_0000 + i * 64), 0x40_0000, 1)).collect();
        write_chunked_trace(&path, &refs, 100);
        let err = TraceWorkload::open_with_skip(&path, Scale::Tiny, 7, 5).unwrap_err();
        assert!(err.contains("only 2 chunks"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
