//! XSBench macroscopic cross-section lookup (the paper's **XS**, Table 4:
//! 9GB dataset).
//!
//! The unionized-energy-grid variant: each "particle history" draws a
//! random energy, binary-searches the unionized grid, then gathers
//! per-nuclide cross sections through the giant index grid — a classic
//! pointer-heavy, low-locality HPC pattern.

use crate::{pc, RegionSpec, Scale, Workload};
use vm_types::{MemRef, SplitMix64, VirtAddr};

const EGRID_POINTS_TINY: u64 = 1 << 18; // 256K points × 8B = 2MB
const NUCLIDES: u64 = 64;
const GRIDPOINTS_PER_NUCLIDE: u64 = 8192;
const XS_ENTRY_BYTES: u64 = 48; // 6 doubles per (nuclide, gridpoint)
const LOOKUPS_PER_HISTORY: u64 = 8; // nuclides gathered per lookup

/// The XS workload.
pub struct XsBench {
    egrid_points: u64,
    egrid: VirtAddr,
    index_grid: VirtAddr,
    nuclide_grids: VirtAddr,
    rng: SplitMix64,
}

impl XsBench {
    /// Creates the workload.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            egrid_points: EGRID_POINTS_TINY * scale.factor(),
            egrid: VirtAddr::new(0),
            index_grid: VirtAddr::new(0),
            nuclide_grids: VirtAddr::new(0),
            rng: SplitMix64::new(seed ^ 0x5bc4),
        }
    }

    fn index_grid_bytes(&self) -> u64 {
        // One 4-byte index per (energy point, nuclide).
        self.egrid_points * NUCLIDES * 4
    }
}

impl Workload for XsBench {
    fn name(&self) -> &'static str {
        "XS"
    }

    fn region_specs(&self) -> Vec<RegionSpec> {
        vec![
            RegionSpec { name: "egrid", bytes: self.egrid_points * 8, huge_fraction: 0.9 },
            RegionSpec { name: "index_grid", bytes: self.index_grid_bytes(), huge_fraction: 0.25 },
            RegionSpec {
                name: "nuclide_grids",
                bytes: NUCLIDES * GRIDPOINTS_PER_NUCLIDE * XS_ENTRY_BYTES,
                huge_fraction: 0.9,
            },
        ]
    }

    fn init(&mut self, bases: &[VirtAddr]) {
        assert_eq!(bases.len(), 3, "XSBench expects three regions");
        self.egrid = bases[0];
        self.index_grid = bases[1];
        self.nuclide_grids = bases[2];
    }

    fn fill(&mut self, out: &mut Vec<MemRef>) {
        // One particle history: binary search + NUCLIDES gathers.
        let target = self.rng.next_below(self.egrid_points);
        // Binary search over the unionized grid: log2(points) probes with
        // geometrically shrinking stride — poor spatial locality at the
        // start, converging to `target`.
        let mut lo = 0u64;
        let mut hi = self.egrid_points - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            out.push(MemRef::load(self.egrid.add(mid * 8), pc(10), 3));
            if mid < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Gather: for a subset of nuclides, read the index-grid entry for
        // this energy point, then two bracketing gridpoints of that
        // nuclide's table.
        for k in 0..LOOKUPS_PER_HISTORY {
            let nuclide = self.rng.next_below(NUCLIDES);
            let idx_addr = self.index_grid.add((target * NUCLIDES + nuclide) * 4);
            out.push(MemRef::load(idx_addr, pc(11), 4));
            let gp = vm_types::mix2(target, nuclide ^ k) % (GRIDPOINTS_PER_NUCLIDE - 1);
            let base = (nuclide * GRIDPOINTS_PER_NUCLIDE + gp) * XS_ENTRY_BYTES;
            out.push(MemRef::load(self.nuclide_grids.add(base), pc(12), 2));
            out.push(MemRef::load(self.nuclide_grids.add(base + XS_ENTRY_BYTES), pc(13), 6));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadStream;

    fn stream() -> (WorkloadStream, [u64; 3], [u64; 3]) {
        let mut w = Box::new(XsBench::new(Scale::Tiny, 2));
        let specs = w.region_specs();
        let bases = [0x10_0000_0000u64, 0x20_0000_0000, 0x30_0000_0000];
        let sizes = [specs[0].bytes, specs[1].bytes, specs[2].bytes];
        w.init(&[VirtAddr::new(bases[0]), VirtAddr::new(bases[1]), VirtAddr::new(bases[2])]);
        (WorkloadStream::new(w), bases, sizes)
    }

    #[test]
    fn all_accesses_fall_in_declared_regions() {
        let (mut s, bases, sizes) = stream();
        for _ in 0..20_000 {
            let r = s.next_ref();
            let va = r.vaddr.raw();
            let ok = bases.iter().zip(&sizes).any(|(&b, &sz)| va >= b && va < b + sz);
            assert!(ok, "stray access at {:#x}", va);
        }
    }

    #[test]
    fn index_grid_dominates_footprint() {
        let w = XsBench::new(Scale::Full, 2);
        let specs = w.region_specs();
        assert!(specs[1].bytes > specs[0].bytes);
        assert!(specs[1].bytes > specs[2].bytes);
        // Full-scale index grid is 4GB: 16M points × 64 nuclides × 4B.
        assert_eq!(specs[1].bytes, (EGRID_POINTS_TINY * 64) * NUCLIDES * 4);
    }

    #[test]
    fn histories_touch_many_index_pages() {
        let (mut s, bases, _) = stream();
        let mut pages = std::collections::HashSet::new();
        for _ in 0..30_000 {
            let r = s.next_ref();
            if r.vaddr.raw() >= bases[1] && r.vaddr.raw() < bases[2] {
                pages.insert(r.vaddr.raw() >> 12);
            }
        }
        assert!(pages.len() > 200, "index grid gathers should spread, got {}", pages.len());
    }

    #[test]
    fn binary_search_emits_log_probes() {
        let (mut s, bases, _) = stream();
        // Count egrid probes until the first index-grid access.
        let mut probes = 0;
        loop {
            let r = s.next_ref();
            if r.vaddr.raw() >= bases[1] {
                break;
            }
            probes += 1;
        }
        assert!((10..=20).contains(&probes), "expected ~log2(256K)=18 probes, got {probes}");
    }
}
