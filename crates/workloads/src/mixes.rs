//! Multi-programmed workload mixes for the multi-core evaluation
//! (Figs. 12–13).
//!
//! A mix names one workload per core slot. The 2-core and 4-core mixes
//! are drawn from the 11-workload suite to cover the contention spectrum:
//! translation-hostile pairs (random access, particle transport), graph
//! pairs with large leaf page tables, and cache-friendlier combinations
//! that stress the *shared-LLC* side of Victima's bargain (TLB blocks
//! displace co-runners' data). Slot seeding is delegated to the simulator
//! (`sim::slot_seed`), so a mix may repeat a workload and still stream
//! independent references per slot.

use crate::{registry, Scale, Workload};

/// A named multi-programmed mix: one workload abbreviation per core slot.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Mix name used in figures and on the CLI ("MIX2-A", …).
    pub name: &'static str,
    /// Workload abbreviation per slot, in core order.
    pub slots: &'static [&'static str],
}

impl Mix {
    /// Number of core slots.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Builds the slot workloads with explicit per-slot seeds
    /// (`seeds[i]` drives slot `i`; see `sim::slot_seed`).
    ///
    /// # Panics
    ///
    /// Panics if `seeds.len() != self.width()` or a slot names an unknown
    /// workload (the committed mixes never do).
    pub fn build(&self, scale: Scale, seeds: &[u64]) -> Vec<Box<dyn Workload>> {
        assert_eq!(seeds.len(), self.width(), "one seed per slot");
        self.slots
            .iter()
            .zip(seeds)
            .map(|(&w, &seed)| {
                registry::by_name_seeded(w, scale, seed)
                    .unwrap_or_else(|| panic!("mix {} names unknown workload {w}", self.name))
            })
            .collect()
    }
}

/// The four 2-core mixes (Fig. 12).
pub const MIXES_2: [Mix; 4] = [
    // Two translation-thrashers: contention *inside* the TLB-block space.
    Mix { name: "MIX2-A", slots: &["RND", "XS"] },
    // Graph traversal next to random access.
    Mix { name: "MIX2-B", slots: &["BFS", "RND"] },
    // Irregular hash/table walkers.
    Mix { name: "MIX2-C", slots: &["GEN", "XS"] },
    // Ranking + embedding lookups: heavier on data reuse in the LLC.
    Mix { name: "MIX2-D", slots: &["PR", "DLRM"] },
];

/// The four 4-core mixes (Fig. 13).
pub const MIXES_4: [Mix; 4] = [
    // The headline TLB-hostile quartet.
    Mix { name: "MIX4-A", slots: &["RND", "XS", "BFS", "GEN"] },
    // Homogeneous stress: two RND + two XS instances (distinct seeds).
    Mix { name: "MIX4-B", slots: &["RND", "RND", "XS", "XS"] },
    // All-graph: big leaf page tables, pointer chasing.
    Mix { name: "MIX4-C", slots: &["PR", "CC", "SSSP", "BC"] },
    // Mixed data-reuse profile.
    Mix { name: "MIX4-D", slots: &["DLRM", "GEN", "TC", "GC"] },
];

/// Every committed mix, 2-core mixes first.
pub fn all() -> Vec<&'static Mix> {
    MIXES_2.iter().chain(MIXES_4.iter()).collect()
}

/// Looks a mix up by name ("MIX2-A" … "MIX4-D").
pub fn by_name(name: &str) -> Option<&'static Mix> {
    all().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::VirtAddr;

    #[test]
    fn mixes_have_expected_widths_and_known_workloads() {
        for m in all() {
            let expected = if m.name.starts_with("MIX2") { 2 } else { 4 };
            assert_eq!(m.width(), expected, "{}", m.name);
            for w in m.slots {
                assert!(registry::builder(w).is_some(), "{}: unknown workload {w}", m.name);
            }
        }
        assert_eq!(all().len(), 8);
    }

    #[test]
    fn by_name_round_trips() {
        for m in all() {
            assert_eq!(by_name(m.name).unwrap().name, m.name);
        }
        assert!(by_name("MIX9-Z").is_none());
    }

    #[test]
    fn build_respects_slot_seeds() {
        let mix = by_name("MIX4-B").unwrap(); // RND twice, XS twice
        let built = mix.build(Scale::Tiny, &[11, 22, 33, 44]);
        assert_eq!(built.len(), 4);
        // The two RND instances must stream differently under their slot
        // seeds, even though they are the same generator.
        let streams: Vec<Vec<u64>> = built
            .into_iter()
            .take(2)
            .map(|mut w| {
                let bases: Vec<VirtAddr> = (0..w.region_specs().len())
                    .map(|i| VirtAddr::new(0x10_0000_0000 * (i as u64 + 1)))
                    .collect();
                w.init(&bases);
                let mut s = crate::WorkloadStream::new(w);
                (0..64).map(|_| s.next_ref().vaddr.raw()).collect()
            })
            .collect();
        assert_ne!(streams[0], streams[1], "same workload, different slot seeds");
    }

    #[test]
    #[should_panic(expected = "one seed per slot")]
    fn build_requires_matching_seed_count() {
        by_name("MIX2-A").unwrap().build(Scale::Tiny, &[1]);
    }
}
