//! Procedural data-intensive workload generators.
//!
//! The paper evaluates 11 workloads from five suites (Table 4): seven
//! GraphBIG kernels (BC, BFS, CC, GC, PR, SSSP, TC), GUPS random access
//! (RND), XSBench particle transport (XS), DLRM sparse-length-sum (DLRM)
//! and GenomicsBench k-mer counting (GEN). We reproduce each one's *memory
//! access skeleton*: the data-structure layout (regions with a per-region
//! huge-page fraction, standing in for a real THP profile) and the access
//! pattern the algorithm performs over it. Algorithm state (frontiers,
//! visited bits, hash seeds) is real; the multi-hundred-MB data arrays are
//! virtual-address-only — generators compute which addresses the program
//! *would* touch, which is everything a translation/cache study observes.
//!
//! Footprints are scaled from the paper's 8–33GB to 1.5–6GB (see
//! DESIGN.md): what matters is footprint ≫ TLB reach (6MB) ≫ L2 capacity
//! (2MB), and that the leaf page tables of the TLB-hostile structures
//! exceed the cache hierarchy, which holds at [`Scale::Full`].
//!
//! Beyond the generators, [`replay`] turns a recorded `.vtrace` file
//! into a workload: the registry name `trace:<path>` replays the file
//! with statistics byte-identical to the live run it was captured from.
//!
//! # Examples
//!
//! ```
//! use workloads::{registry, Scale, WorkloadStream};
//! use vm_types::VirtAddr;
//!
//! let mut w = registry::by_name("RND", Scale::Tiny).expect("known workload");
//! // In real use the simulator maps the regions; here, fake base addresses.
//! let bases: Vec<VirtAddr> =
//!     (0..w.region_specs().len()).map(|i| VirtAddr::new(0x1_0000_0000 * (i as u64 + 1))).collect();
//! w.init(&bases);
//! let mut stream = WorkloadStream::new(w);
//! let r = stream.next_ref();
//! assert!(r.vaddr.raw() >= 0x1_0000_0000);
//! ```

pub mod dlrm;
pub mod genomics;
pub mod graph;
pub mod gups;
pub mod mixes;
pub mod registry;
pub mod replay;
pub mod xsbench;

use vm_types::{MemRef, VirtAddr};

/// A data region the simulator must map before running the workload.
#[derive(Clone, Copy, Debug)]
pub struct RegionSpec {
    /// Human-readable region name ("edges", "hash_table", …).
    pub name: &'static str,
    /// Region size in bytes.
    pub bytes: u64,
    /// Fraction of the region backed by 2MB pages (the workload's THP
    /// profile on a moderately fragmented host).
    pub huge_fraction: f64,
}

/// Workload footprint scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny footprints (tens of MB) for unit tests.
    Tiny,
    /// Intermediate footprints (hundreds of MB): large enough that the
    /// working set dwarfs TLB reach, small enough that a sampled run
    /// finishes in CI (the sampling-accuracy and perf-gate profile).
    Small,
    /// The evaluation scale (hundreds of MB; see DESIGN.md).
    Full,
    /// Paper-scale footprints (GBs), approached via interval sampling
    /// and warm-state checkpoints rather than full-detail simulation.
    Paper,
}

impl Scale {
    /// Multiplier applied to the Tiny base sizes.
    ///
    /// Full-scale footprints must dwarf not only the TLB reach but also
    /// the *leaf page table* vs. the cache hierarchy: the paper's 8-33GB
    /// datasets imply 16-66MB of leaf PTEs, far beyond the 2MB L2; our
    /// 1.5-4GB footprints keep that inequality (3-8MB of leaf PTEs).
    /// Paper doubles Full again (3-12GB footprints) — the fragmentation
    /// skips of the frame allocator consume ~2.5 frames per 4KB page, so
    /// larger factors need `phys_mem_bytes` raised in step.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 8,
            Scale::Full => 64,
            Scale::Paper => 128,
        }
    }

    /// Default `(warm-up, measured)` instruction budgets for a
    /// full-detail run at this scale. Tiny matches the pinned baseline
    /// profile; larger scales grow the budget so the measured window
    /// actually covers the bigger footprint. Sampled runs
    /// (`sim::sampling`) spread the same measured budget over detailed
    /// windows instead of running it contiguously.
    pub fn default_budget(self) -> (u64, u64) {
        match self {
            Scale::Tiny => (5_000, 50_000),
            Scale::Small => (100_000, 1_000_000),
            Scale::Full => (200_000, 2_000_000),
            Scale::Paper => (500_000, 10_000_000),
        }
    }

    /// Parses the CLI spelling (`tiny`, `small`, `full`, `paper`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// A memory-access-stream generator.
///
/// Lifecycle: the simulator reads [`Workload::region_specs`], maps each
/// region, calls [`Workload::init`] with the base addresses (in spec
/// order), and then drains references batch-wise via [`Workload::fill`].
/// Streams are infinite: generators restart their outer loop as needed.
pub trait Workload: Send {
    /// The paper's workload abbreviation (e.g. "BFS", "RND").
    fn name(&self) -> &'static str;

    /// The data regions to map, in the order `init` expects them.
    fn region_specs(&self) -> Vec<RegionSpec>;

    /// Binds the mapped region base addresses.
    ///
    /// # Panics
    ///
    /// Implementations panic if `bases.len()` mismatches the spec count.
    fn init(&mut self, bases: &[VirtAddr]);

    /// Appends at least one reference to `out`.
    fn fill(&mut self, out: &mut Vec<MemRef>);
}

/// Pull-based adapter over a [`Workload`]'s batch interface.
pub struct WorkloadStream {
    inner: Box<dyn Workload>,
    buf: Vec<MemRef>,
    pos: usize,
}

impl std::fmt::Debug for WorkloadStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadStream")
            .field("workload", &self.inner.name())
            .field("buffered", &(self.buf.len() - self.pos))
            .finish()
    }
}

impl WorkloadStream {
    /// Wraps an initialised workload.
    pub fn new(inner: Box<dyn Workload>) -> Self {
        Self { inner, buf: Vec::with_capacity(1024), pos: 0 }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Next memory reference (infinite stream).
    #[inline]
    pub fn next_ref(&mut self) -> MemRef {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            while self.buf.is_empty() {
                self.inner.fill(&mut self.buf);
            }
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        r
    }
}

/// Builds a synthetic per-site program counter. Sites are spaced a cache
/// block apart so the IP-stride prefetcher sees distinct streams.
#[inline]
pub(crate) const fn pc(site: u32) -> u64 {
    0x40_0000 + (site as u64) * 64
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        base: VirtAddr,
        n: u64,
    }

    impl Workload for Fake {
        fn name(&self) -> &'static str {
            "FAKE"
        }
        fn region_specs(&self) -> Vec<RegionSpec> {
            vec![RegionSpec { name: "a", bytes: 4096, huge_fraction: 0.0 }]
        }
        fn init(&mut self, bases: &[VirtAddr]) {
            assert_eq!(bases.len(), 1);
            self.base = bases[0];
        }
        fn fill(&mut self, out: &mut Vec<MemRef>) {
            for _ in 0..3 {
                out.push(MemRef::load(self.base.add(self.n % 4096), pc(0), 1));
                self.n += 8;
            }
        }
    }

    #[test]
    fn stream_refills_transparently() {
        let mut w = Box::new(Fake { base: VirtAddr::new(0), n: 0 });
        w.init(&[VirtAddr::new(0x1000)]);
        let mut s = WorkloadStream::new(w);
        let refs: Vec<MemRef> = (0..10).map(|_| s.next_ref()).collect();
        assert_eq!(refs.len(), 10);
        assert!(refs.iter().all(|r| r.vaddr.raw() >= 0x1000));
        // Addresses advance deterministically.
        assert_eq!(refs[1].vaddr.raw() - refs[0].vaddr.raw(), 8);
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Tiny.factor(), 1);
        assert!(Scale::Small.factor() > Scale::Tiny.factor());
        assert!(Scale::Full.factor() > Scale::Small.factor());
        assert!(Scale::Paper.factor() > Scale::Full.factor());
    }

    #[test]
    fn scale_parse_round_trips() {
        for (name, scale) in
            [("tiny", Scale::Tiny), ("small", Scale::Small), ("full", Scale::Full), ("paper", Scale::Paper)]
        {
            assert_eq!(Scale::parse(name), Some(scale));
        }
        assert_eq!(Scale::parse("medium"), None);
    }

    #[test]
    fn budgets_grow_with_scale() {
        let scales = [Scale::Tiny, Scale::Small, Scale::Full, Scale::Paper];
        for pair in scales.windows(2) {
            let (w0, m0) = pair[0].default_budget();
            let (w1, m1) = pair[1].default_budget();
            assert!(w1 >= w0 && m1 > m0, "{:?} budget must exceed {:?}", pair[1], pair[0]);
        }
    }
}
