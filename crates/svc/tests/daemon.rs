//! End-to-end daemon tests over real localhost TCP, using the in-process
//! worker backend (the process backend is exercised against the real
//! `experiments` binary in `victima-bench`'s service tests).

use std::path::{Path, PathBuf};
use svc::{DaemonConfig, DaemonHandle, StreamLine, SweepRequest, WorkerBackend};
use workloads::Scale;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("victima-svc-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(dir: &Path) -> DaemonHandle {
    // from_env picks up the legacy CRASH_ENV knob (crash test below) the
    // same way the real `serve` entry point does.
    let faults = svc::FaultPlan::from_env().expect("fault env parses");
    svc::start(DaemonConfig { workers: 2, faults, ..DaemonConfig::new(dir, WorkerBackend::InProcess) })
        .expect("daemon starts")
}

fn tiny_request(workloads: &[&str]) -> SweepRequest {
    SweepRequest {
        configs: vec!["radix".into(), "victima".into()],
        workloads: workloads.iter().map(|&w| w.to_owned()).collect(),
        scale: Scale::Tiny,
        warmup: 200,
        instructions: 2_000,
        seed: vm_types::DEFAULT_SEED,
        sampling: None,
    }
}

fn submit_lines(dir: &Path, req: &SweepRequest) -> (svc::SweepSummary, Vec<String>) {
    let mut lines = Vec::new();
    let stream = svc::connect(dir).expect("daemon reachable");
    let summary = svc::submit(stream, req, |raw, _| lines.push(raw.to_owned())).expect("sweep completes");
    (summary, lines)
}

#[test]
fn cold_then_warm_submit_is_byte_identical_with_zero_simulation() {
    let dir = tmp_dir("warm");
    let handle = start_daemon(&dir);
    let req = tiny_request(&["RND", "XS"]);

    let (cold, cold_lines) = submit_lines(&dir, &req);
    assert_eq!((cold.specs, cold.results, cold.cached, cold.errors), (4, 4, 0, 0));
    assert_eq!(cold_lines.len(), 4);
    // Streamed strictly in sweep order: configs-major, workloads minor.
    let labels: Vec<(String, String)> = cold_lines
        .iter()
        .map(|l| match svc::parse_stream_line(l).unwrap() {
            StreamLine::Result { report, .. } => {
                (report.provenance.configs[0].clone(), report.provenance.workloads[0].clone())
            }
            other => panic!("expected results, got {other:?}"),
        })
        .collect();
    let want = [("Radix", "RND"), ("Radix", "XS"), ("Victima", "RND"), ("Victima", "XS")]
        .map(|(c, w)| (c.to_owned(), w.to_owned()));
    assert_eq!(labels, want);

    let before = svc::status(&dir).expect("status answers");
    assert_eq!(before.specs_simulated, 4);
    assert_eq!(before.cache_entries, 4);

    // Warm resubmission: zero simulation, byte-identical stream.
    let (warm, warm_lines) = submit_lines(&dir, &req);
    assert_eq!((warm.results, warm.cached, warm.errors), (4, 4, 0));
    assert_eq!(warm_lines, cold_lines, "warm stream must replay the cold bytes exactly");
    let after = svc::status(&dir).expect("status answers");
    assert_eq!(after.specs_simulated, 4, "warm resubmit must not simulate");
    assert_eq!(after.specs_cached, 4);
    assert_eq!(after.jobs_completed, 2);

    // And the daemon-free local runner produces the very same bytes.
    let mut local_lines = Vec::new();
    svc::run_local(&req, |l| local_lines.push(l.to_owned())).expect("local run completes");
    assert_eq!(local_lines, cold_lines, "run_local must emit the daemon's bytes");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_invalid_requests_fault_without_side_effects() {
    let dir = tmp_dir("fault");
    let handle = start_daemon(&dir);

    let mut bad = tiny_request(&["RND"]);
    bad.configs = vec!["warp-drive".into()];
    let stream = svc::connect(&dir).expect("daemon reachable");
    let err = svc::submit(stream, &bad, |_, _| {}).expect_err("unknown config must fault");
    assert!(err.contains("unknown config"), "{err}");

    let status = svc::status(&dir).expect("status answers");
    assert_eq!(status.jobs_accepted, 0, "a faulted request must not be journaled");
    assert_eq!(status.cache_entries, 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashing_spec_yields_a_typed_error_and_spares_the_sweep() {
    let dir = tmp_dir("crash");
    // Crash knob: BC is only used by this test, so the env var cannot
    // perturb the other tests' sweeps even though they share a process.
    std::env::set_var(svc::CRASH_ENV, "BC");
    let handle = start_daemon(&dir);
    let req = tiny_request(&["RND", "BC"]);

    let (summary, lines) = submit_lines(&dir, &req);
    std::env::remove_var(svc::CRASH_ENV);
    assert_eq!((summary.specs, summary.results, summary.errors), (4, 2, 2));
    for line in &lines {
        match svc::parse_stream_line(line).unwrap() {
            StreamLine::Result { report, .. } => assert_eq!(report.provenance.workloads, ["RND"]),
            StreamLine::Error { workload, error, .. } => {
                assert_eq!(workload, "BC");
                assert!(error.contains("crash") || error.contains("panicked"), "{error}");
            }
            other => panic!("unexpected line {other:?}"),
        }
    }
    let status = svc::status(&dir).expect("status answers");
    assert_eq!(status.specs_failed, 2);
    assert_eq!(status.cache_entries, 2, "failed specs must not be cached");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_daemon_resumes_a_journaled_sweep() {
    let dir = tmp_dir("resume");
    let req = tiny_request(&["RND"]);
    // Simulate a daemon killed after accepting but before finishing: the
    // journal holds the request with no done marker (this is exactly the
    // on-disk state a SIGKILL mid-sweep leaves behind).
    let journal = svc::Journal::open(dir.join("journal")).unwrap();
    journal.record(&svc::Journal::job_id(1), &req.to_line()).unwrap();

    let handle = start_daemon(&dir);
    // The resume runs in the background; poll status until it completes.
    let mut done = false;
    for _ in 0..500 {
        let status = svc::status(&dir).expect("status answers");
        if status.jobs_completed >= 1 {
            done = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(done, "journaled job was not resumed within 5s");
    assert!(journal.pending().unwrap().is_empty(), "resumed job must be marked done");

    // The resumed results are in the cache: resubmitting simulates nothing.
    let (warm, _) = submit_lines(&dir, &req);
    assert_eq!((warm.results, warm.cached, warm.errors), (2, 2, 0));
    let status = svc::status(&dir).expect("status answers");
    assert_eq!(status.specs_simulated, 2, "only the resumed pass simulated");
    // A fresh submit gets a job id beyond the journaled one.
    assert_eq!(warm.job, "job-000002");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
