//! Chaos suite: drives the fault matrix end-to-end through a live daemon
//! (in-process backend; the process backend runs the same matrix against
//! the real `experiments` binary in `victima-bench`'s chaos tests).
//!
//! The invariants under every injected fault:
//!
//! 1. the sweep **terminates** — with results, typed `error`/`timeout`
//!    entries, or successful retries, never a hang or a crash; and
//! 2. a warm resubmit after recovery is **byte-identical** to a clean
//!    cold run — corruption is quarantined and re-simulated, never
//!    served.

use std::path::{Path, PathBuf};
use svc::{ClientOptions, DaemonConfig, DaemonHandle, FaultPlan, StreamLine, SweepRequest, WorkerBackend};
use workloads::Scale;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("victima-svc-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(dir: &Path, faults: &str) -> DaemonHandle {
    svc::start(DaemonConfig {
        workers: 2,
        faults: FaultPlan::parse(faults).expect("fault plan parses"),
        ..DaemonConfig::new(dir, WorkerBackend::InProcess)
    })
    .expect("daemon starts")
}

fn tiny_request(workloads: &[&str]) -> SweepRequest {
    SweepRequest {
        configs: vec!["radix".into(), "victima".into()],
        workloads: workloads.iter().map(|&w| w.to_owned()).collect(),
        scale: Scale::Tiny,
        warmup: 200,
        instructions: 2_000,
        seed: vm_types::DEFAULT_SEED,
        sampling: None,
    }
}

fn submit_lines(dir: &Path, req: &SweepRequest) -> (svc::SweepSummary, Vec<String>) {
    let mut lines = Vec::new();
    let stream = svc::connect(dir).expect("daemon reachable");
    let summary = svc::submit(stream, req, |raw, _| lines.push(raw.to_owned())).expect("sweep completes");
    (summary, lines)
}

/// The clean-room reference: the same request through a fault-free daemon.
fn clean_run(req: &SweepRequest) -> Vec<String> {
    let dir = tmp_dir("clean-ref");
    let handle = start_daemon(&dir, "");
    let (summary, lines) = submit_lines(&dir, req);
    assert_eq!(summary.errors, 0, "the reference run must be clean");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    lines
}

#[test]
fn certain_aborts_exhaust_retries_into_typed_errors_and_spare_the_sweep() {
    let dir = tmp_dir("abort");
    let handle = start_daemon(&dir, "abort=BC");
    let req = tiny_request(&["RND", "BC"]);

    let (summary, lines) = submit_lines(&dir, &req);
    assert_eq!((summary.specs, summary.results, summary.errors), (4, 2, 2));
    for line in &lines {
        match svc::parse_stream_line(line).unwrap() {
            StreamLine::Result { report, .. } => assert_eq!(report.provenance.workloads, ["RND"]),
            StreamLine::Error { workload, error, .. } => {
                assert_eq!(workload, "BC");
                assert!(error.contains("3 attempt(s)"), "retries must be spent first: {error}");
            }
            other => panic!("unexpected line {other:?}"),
        }
    }
    let status = svc::status(&dir).expect("status answers");
    assert_eq!(status.specs_failed, 2);
    assert_eq!(status.specs_retried, 4, "2 failing specs × 2 retries each");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flaky_aborts_succeed_on_retry_and_match_the_clean_run() {
    let req = tiny_request(&["RND", "XS"]);
    let clean = clean_run(&req);

    // p = 0.5 over 4 specs × 3 attempts: some attempt fails and some spec
    // recovers for almost every seed; scan for a seed that shows both.
    let dir = tmp_dir("flaky");
    let mut seen_retry_success = false;
    for seed in 1u64..32 {
        let plan = format!("seed=0x{seed:x},abort=*@0.5");
        let _ = std::fs::remove_dir_all(&dir);
        let handle = start_daemon(&dir, &plan);
        let (summary, lines) = submit_lines(&dir, &req);
        let status = svc::status(&dir).expect("status answers");
        handle.shutdown();
        // Terminates either way; successful lines are always clean bytes.
        for line in &lines {
            if matches!(svc::parse_stream_line(line).unwrap(), StreamLine::Result { .. }) {
                assert!(clean.contains(line), "result lines must match the clean run: {line}");
            }
        }
        if summary.errors == 0 && status.specs_retried > 0 {
            assert_eq!(lines, clean, "a fully recovered sweep is byte-identical to a clean run");
            seen_retry_success = true;
            break;
        }
    }
    assert!(seen_retry_success, "no seed in 1..32 recovered via retry — retry path untested");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_hangs_become_typed_timeouts() {
    let dir = tmp_dir("hang");
    let handle = start_daemon(&dir, "hang=BC");
    let req = tiny_request(&["RND", "BC"]);

    let (summary, lines) = submit_lines(&dir, &req);
    assert_eq!((summary.results, summary.errors), (2, 2));
    let mut timeouts = 0;
    for line in &lines {
        if let StreamLine::Timeout { workload, error, .. } = svc::parse_stream_line(line).unwrap() {
            assert_eq!(workload, "BC");
            assert!(error.contains("hang") || error.contains("deadline"), "{error}");
            timeouts += 1;
        }
    }
    assert_eq!(timeouts, 2, "hung specs must surface as typed timeout lines");
    let status = svc::status(&dir).expect("status answers");
    assert_eq!(status.specs_timed_out, 2);

    // The hang clears with the plan: a resubmit to a clean daemon heals.
    handle.shutdown();
    let handle = start_daemon(&dir, "");
    let (healed, healed_lines) = submit_lines(&dir, &req);
    assert_eq!(healed.errors, 0);
    assert_eq!(healed_lines.len(), 4);
    assert_eq!(healed.cached, 2, "the specs that finished under chaos replay from cache");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_specs_finish_within_deadline_and_match_the_clean_run() {
    let req = tiny_request(&["RND"]);
    let clean = clean_run(&req);

    let dir = tmp_dir("slow");
    let handle = start_daemon(&dir, "slow=*:50");
    let (summary, lines) = submit_lines(&dir, &req);
    assert_eq!(summary.errors, 0, "slow is not dead: specs must still succeed");
    assert_eq!(lines, clean, "a slow run produces the clean run's bytes");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_quarantined_and_resimulated_never_served() {
    let req = tiny_request(&["RND", "XS"]);
    let clean = clean_run(&req);

    for fault in ["cache-torn", "cache-corrupt", "cache-empty"] {
        let dir = tmp_dir(fault);
        let handle = start_daemon(&dir, fault);

        // Cold: results stream clean (the fault poisons only the store).
        let (cold, cold_lines) = submit_lines(&dir, &req);
        assert_eq!(cold.errors, 0, "{fault}: cold sweep must succeed");
        assert_eq!(cold_lines, clean, "{fault}: cold stream must be clean bytes");

        // Warm: every lookup hits a poisoned entry, which must be
        // quarantined and re-simulated — and the stream byte-identical.
        let (warm, warm_lines) = submit_lines(&dir, &req);
        assert_eq!(warm.errors, 0, "{fault}: warm sweep must succeed");
        assert_eq!(warm.cached, 0, "{fault}: poisoned entries must not count as hits");
        assert_eq!(warm_lines, clean, "{fault}: corruption must never reach the stream");

        let status = svc::status(&dir).expect("status answers");
        assert_eq!(status.cache_quarantined, 4, "{fault}: all four poisoned entries quarantined");
        assert_eq!(status.specs_simulated, 8, "{fault}: warm pass re-simulated everything");
        let quarantine = dir.join("cache").join("quarantine");
        assert!(quarantine.is_dir(), "{fault}: quarantined bytes must be kept for forensics");

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn bounded_cache_evicts_oldest_and_stays_correct() {
    let dir = tmp_dir("gc");
    // ~2.4 entries worth of budget (entries are ~840 bytes): every store evicts predecessors.
    let handle = svc::start(DaemonConfig {
        workers: 1,
        cache_max_bytes: Some(2 * 1024),
        ..DaemonConfig::new(&dir, WorkerBackend::InProcess)
    })
    .expect("daemon starts");
    let req = tiny_request(&["RND", "XS"]);

    let (cold, cold_lines) = submit_lines(&dir, &req);
    assert_eq!(cold.errors, 0);
    let status = svc::status(&dir).expect("status answers");
    assert!(status.cache_evicted > 0, "a 2 KiB bound must evict");
    assert!(status.cache_bytes <= 2 * 1024, "GC must keep the cache under its bound");

    // Warm resubmit: partly cached at best, but byte-identical regardless.
    let (warm, warm_lines) = submit_lines(&dir, &req);
    assert_eq!(warm.errors, 0);
    assert_eq!(warm_lines, cold_lines, "eviction must never change the stream");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_journal_records_warn_and_never_poison_a_restart() {
    let dir = tmp_dir("journal");
    let req = tiny_request(&["RND"]);

    // A daemon under journal-truncate faults tears every record it writes.
    let handle = start_daemon(&dir, "journal-truncate");
    let (summary, _) = submit_lines(&dir, &req);
    assert_eq!(summary.errors, 0, "the sweep itself is unaffected");
    let record = dir.join("journal").join(format!("{}.json", summary.job));
    let torn = std::fs::read_to_string(&record).expect("journal record exists");
    assert!(!torn.trim_end().ends_with('}'), "record must actually be torn: {torn:?}");
    handle.shutdown();

    // Simulate dying before completion: drop the done marker so the torn
    // record becomes a resume candidate, then restart.
    std::fs::remove_file(dir.join("journal").join(format!("{}.done", summary.job))).unwrap();
    let handle = start_daemon(&dir, "");
    let mut skipped = false;
    for _ in 0..500 {
        let status = svc::status(&dir).expect("restarted daemon answers");
        if status.journal_skipped == 1 {
            skipped = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(skipped, "the torn record must be skipped with a typed warning, not crash the daemon");

    // The daemon is fully live and numbering continues past the torn job.
    let (next, _) = submit_lines(&dir, &req);
    assert_eq!(next.errors, 0);
    assert_eq!(next.job, "job-000002", "job numbering must continue after a skipped record");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_connections_resume_into_a_byte_identical_stream() {
    let req = tiny_request(&["RND", "XS"]);
    let clean = clean_run(&req);

    let dir = tmp_dir("dropconn");
    let handle = start_daemon(&dir, "drop-conn=2");

    // A plain submit sees the severed socket as a hard error…
    let stream = svc::connect(&dir).expect("daemon reachable");
    let err = svc::submit(stream, &req, |_, _| {}).expect_err("dropped stream must error");
    assert!(
        err.contains("closed the stream") || err.contains("read failed"),
        "severed stream must be a typed error: {err}"
    );

    // …while the resuming client reconnects through the remaining budget
    // and reassembles the exact clean byte stream.
    let mut lines = Vec::new();
    let summary = svc::client::submit_resumed(&dir, ClientOptions::default(), 4, &req, |raw, _| {
        lines.push(raw.to_owned())
    })
    .expect("resumed submit completes");
    assert_eq!(summary.errors, 0);
    assert!(summary.connections >= 2, "the drop budget must have forced a reconnect");
    assert_eq!(lines, clean, "resumed stream must equal the clean single-connection run");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
