//! The sweep service: a resident simulation daemon with a job queue,
//! process-sharded workers, and a content-addressed result cache.
//!
//! Sweeps — the paper's (config × workload) result matrices — are pure
//! functions of their specs (`sim`'s determinism guarantee), which makes
//! their results cacheable by construction. This crate turns that
//! property into infrastructure:
//!
//! - [`daemon`] — a resident daemon on a localhost TCP socket accepting
//!   newline-delimited JSON requests ([`proto`]), sharding specs across
//!   worker *processes* ([`worker`]) and streaming per-spec results back
//!   incrementally, in sweep order;
//! - [`cache`] — results keyed by [`sim::RunSpec::fingerprint`] (which
//!   folds in `sim::ENGINE_ID`), served byte-identical on resubmission
//!   with zero simulation;
//! - [`journal`] — accepted jobs persisted before they run, so a killed
//!   daemon resumes unfinished sweeps on restart;
//! - [`client`] — connect/submit/status helpers plus the daemon-free
//!   [`client::run_local`] one-shot path that emits identical bytes.
//!
//! Crash isolation is structural: a spec that panics kills one worker
//! process, its dispatcher reports a typed `error` entry and respawns,
//! and the rest of the sweep completes. A spec that *hangs* is bounded
//! by a per-spec wall-clock deadline (kill → typed `timeout` entry), a
//! failed or timed-out spec is re-dispatched with exponential backoff up
//! to a retry budget, and cache entries carry a length + FNV-1a checksum
//! trailer so torn or corrupt files are quarantined and re-simulated,
//! never served. All of those failure paths are exercised by [`fault`] —
//! a seeded, deterministic fault-injection plan the daemon runs against
//! itself. The crate is std-only, like the whole workspace. The CLI
//! surface lives in `victima-bench` (`experiments serve` / `submit` /
//! `status`); see DESIGN.md, "Sweep service" and "Failure model & fault
//! injection".

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod fault;
pub mod journal;
pub mod log;
pub mod proto;
pub mod worker;

pub use cache::ResultCache;
pub use client::{connect, metrics, run_local, shutdown, status, submit, ClientOptions, SweepSummary};
pub use daemon::{run, start, DaemonConfig, DaemonHandle, ADDR_FILE, PID_FILE};
pub use fault::{fnv1a64, CacheFault, FaultPlan, WorkerFault, FAULTS_ENV};
pub use journal::Journal;
pub use log::{Level, Logger, LOG_FILE};
pub use proto::{
    parse_request, parse_stream_line, MetricsInfo, Request, SpecDesc, StatusInfo, StreamLine, SweepRequest,
    PROTO_ID,
};
pub use worker::{run_spec, worker_main, WorkerBackend, CRASH_ENV, WORKER_ARG};
