//! Content-addressed result cache with integrity framing and a size
//! bound.
//!
//! One file per spec, named by the spec's [`sim::RunSpec::fingerprint`]
//! (which folds in `sim::ENGINE_ID`, so bumping the engine version
//! orphans stale entries instead of serving them). The payload is the
//! exact `result` stream line the daemon emitted, stored byte-for-byte —
//! a warm hit replays those bytes, which is what makes a resubmission's
//! stream byte-identical to the cold run without re-rendering anything.
//!
//! Entries are **framed**: the payload line is followed by a trailer
//! carrying its byte length and FNV-1a 64 checksum,
//!
//! ```text
//! entry   := payload '\n' trailer '\n'
//! trailer := '#victima-cache/1 len=' DECIMAL ' fnv=' 16*HEXDIG
//! ```
//!
//! so a torn write (disk full, kill mid-store), an on-disk bit flip, an
//! empty file, or a pre-framing legacy entry is *detected* at lookup
//! instead of being streamed to a client as a "result". Invalid entries
//! are quarantined to `cache/quarantine/` (for the post-mortem) and
//! reported as misses, which re-simulates the spec — the cache can serve
//! wrong-shaped bytes to nobody. On top of the frame, a served payload
//! must still parse as a `result` stream line whose fingerprint matches
//! its file name; anything else is quarantined the same way.
//!
//! Writes go through a unique temporary file and an atomic rename, so a
//! daemon killed mid-store leaves either the complete entry or nothing.
//! An optional size bound (`--cache-max-bytes`) garbage-collects
//! oldest-mtime entries after each store; entries are immutable once
//! written, so mtime order is exactly write order.

use crate::fault::{fnv1a64, CacheFault};
use crate::proto::{parse_stream_line, StreamLine};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers' temporary files (two workers may
/// finish specs at the same instant).
static TMP_SERIAL: AtomicU64 = AtomicU64::new(0);

/// Frame identity prefixing every entry trailer. Bump when the framing
/// grammar changes; old entries then quarantine as legacy instead of
/// being misread.
pub const CACHE_FRAME_ID: &str = "victima-cache/1";

/// Subdirectory (inside the cache) where invalid entries are moved.
pub const QUARANTINE_DIR: &str = "quarantine";

/// An on-disk cache of `result` stream lines keyed by spec fingerprint.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// Size bound for GC; `None` = unbounded.
    max_bytes: Option<u64>,
    quarantined: AtomicU64,
    evicted: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) an unbounded cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_bounded(dir, None)
    }

    /// Opens a cache with an optional size bound: after every store, the
    /// oldest-mtime entries are evicted until the total payload size is
    /// back under `max_bytes`.
    pub fn open_bounded(dir: impl Into<PathBuf>, max_bytes: Option<u64>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, max_bytes, quarantined: AtomicU64::new(0), evicted: AtomicU64::new(0) })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where a fingerprint's entry lives.
    pub fn entry_path(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}.jsonl"))
    }

    /// Entries quarantined since this cache handle was opened.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Entries evicted by the size bound since this handle was opened.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Renders the integrity trailer for a payload.
    fn trailer(payload: &str) -> String {
        format!("#{CACHE_FRAME_ID} len={} fnv={:016x}", payload.len(), fnv1a64(payload.as_bytes()))
    }

    /// Validates a raw entry file's content, returning the payload line.
    fn validate(fingerprint: &str, raw: &str) -> Result<String, String> {
        let body = raw.strip_suffix('\n').unwrap_or(raw);
        let Some((payload, trailer)) = body.rsplit_once('\n') else {
            return Err(if body.is_empty() { "empty entry".into() } else { "missing trailer".into() });
        };
        if Self::trailer(payload) != trailer {
            return Err(format!("trailer mismatch (want {:?}, got {trailer:?})", Self::trailer(payload)));
        }
        // Frame intact — now the payload must actually be a result line
        // for this fingerprint, or it must never reach a client.
        match parse_stream_line(payload) {
            Ok(StreamLine::Result { fingerprint: fp, .. }) if fp == fingerprint => Ok(payload.to_owned()),
            Ok(StreamLine::Result { fingerprint: fp, .. }) => {
                Err(format!("fingerprint mismatch (entry claims {fp})"))
            }
            Ok(other) => Err(format!("payload is not a result line ({other:?})")),
            Err(e) => Err(format!("payload does not parse: {e}")),
        }
    }

    /// Looks a fingerprint up, returning the stored payload line
    /// verbatim. An entry that fails validation — torn, corrupt, empty,
    /// legacy-unframed, or simply not a result line — is moved to the
    /// quarantine directory and reported as a miss, so the caller
    /// re-simulates instead of streaming garbage.
    pub fn lookup(&self, fingerprint: &str) -> Option<String> {
        let path = self.entry_path(fingerprint);
        let raw = fs::read_to_string(&path).ok()?;
        match Self::validate(fingerprint, &raw) {
            Ok(payload) => Some(payload),
            Err(why) => {
                self.quarantine(&path, fingerprint, &why);
                None
            }
        }
    }

    /// Moves an invalid entry aside (best effort — a failed rename falls
    /// back to removal so the bad bytes can never be served again).
    fn quarantine(&self, path: &Path, fingerprint: &str, why: &str) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let _ = fs::create_dir_all(&qdir);
        let dest = qdir.join(format!("{fingerprint}.jsonl"));
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        eprintln!("svc: quarantined cache entry {fingerprint} ({why}); will re-simulate");
    }

    /// Stores a result line under its fingerprint (framed; atomic via
    /// temp file + rename; concurrent stores of the same fingerprint are
    /// benign because both writers carry identical bytes by determinism).
    pub fn store(&self, fingerprint: &str, line: &str) -> io::Result<()> {
        self.store_injected(fingerprint, line, None)
    }

    /// [`ResultCache::store`] with an injected fault: `Torn` keeps only
    /// the first half of the framed bytes, `Corrupt` flips a payload byte
    /// under the clean trailer, `Empty` writes nothing. Used by the fault
    /// plan to manufacture exactly the on-disk states `lookup` must
    /// refuse to serve.
    pub fn store_injected(&self, fingerprint: &str, line: &str, fault: Option<CacheFault>) -> io::Result<()> {
        let framed = format!("{line}\n{}\n", Self::trailer(line));
        let bytes = match fault {
            None => framed.into_bytes(),
            Some(CacheFault::Torn) => {
                let mut b = framed.into_bytes();
                b.truncate(b.len() / 2);
                b
            }
            Some(CacheFault::Corrupt) => {
                let mut b = framed.into_bytes();
                let mid = line.len() / 2;
                b[mid] ^= 0x20;
                b
            }
            Some(CacheFault::Empty) => Vec::new(),
        };
        let serial = TMP_SERIAL.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(".{fingerprint}.tmp.{}.{serial}", std::process::id()));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.entry_path(fingerprint))?;
        self.maybe_gc();
        Ok(())
    }

    /// Number of entries currently on disk (quarantined entries excluded
    /// — they live in a subdirectory).
    pub fn entries(&self) -> io::Result<u64> {
        Ok(self.scan()?.len() as u64)
    }

    /// Total bytes of live entries on disk.
    pub fn bytes(&self) -> io::Result<u64> {
        Ok(self.scan()?.iter().map(|e| e.len).sum())
    }

    /// Lists live entries with size and mtime.
    fn scan(&self) -> io::Result<Vec<EntryMeta>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".jsonl") || name.starts_with('.') {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().ok();
            entries.push(EntryMeta { path: entry.path(), len: meta.len(), mtime });
        }
        Ok(entries)
    }

    /// Evicts oldest-mtime entries until the cache is back under its
    /// size bound. Entries are write-once, so mtime order is write order;
    /// ties (coarse filesystem clocks) break by name for determinism.
    fn maybe_gc(&self) {
        let Some(max) = self.max_bytes else { return };
        let Ok(mut entries) = self.scan() else { return };
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total <= max {
            return;
        }
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        for e in &entries {
            if total <= max {
                break;
            }
            if fs::remove_file(&e.path).is_ok() {
                total = total.saturating_sub(e.len);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

struct EntryMeta {
    path: PathBuf,
    len: u64,
    mtime: Option<std::time::SystemTime>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{result_line, result_report, SpecDesc};
    use workloads::Scale;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("victima-svc-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A genuine result line (lookup validates payload shape, so the
    /// fixtures must be real).
    fn sample_entry() -> (String, String) {
        let desc = SpecDesc {
            config: "radix".into(),
            workload: "RND".into(),
            scale: Scale::Tiny,
            warmup: 100,
            instructions: 1_000,
            seed: vm_types::DEFAULT_SEED,
            sampling: None,
        };
        let spec = desc.to_run_spec().unwrap();
        let fp = spec.fingerprint();
        let line = result_line(&fp, &result_report(&desc, &spec, &sim::SimStats::default()));
        (fp, line)
    }

    #[test]
    fn stores_and_replays_lines_verbatim() {
        let cache = ResultCache::open(tmp_dir("roundtrip")).unwrap();
        let (fp, line) = sample_entry();
        assert_eq!(cache.lookup(&fp), None);
        assert_eq!(cache.entries().unwrap(), 0);
        cache.store(&fp, &line).unwrap();
        assert_eq!(cache.lookup(&fp).as_deref(), Some(line.as_str()));
        assert_eq!(cache.entries().unwrap(), 1);
        // Overwrites are idempotent.
        cache.store(&fp, &line).unwrap();
        assert_eq!(cache.entries().unwrap(), 1);
        assert_eq!(cache.quarantined(), 0);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn no_temp_files_survive_a_store() {
        let cache = ResultCache::open(tmp_dir("tmpfiles")).unwrap();
        let (fp, line) = sample_entry();
        cache.store(&fp, &line).unwrap();
        let leftovers: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn invalid_entries_are_quarantined_not_served() {
        let cache = ResultCache::open(tmp_dir("quarantine")).unwrap();
        let (fp, line) = sample_entry();
        for (i, fault) in [CacheFault::Torn, CacheFault::Corrupt, CacheFault::Empty].into_iter().enumerate() {
            cache.store_injected(&fp, &line, Some(fault)).unwrap();
            assert_eq!(cache.lookup(&fp), None, "{fault:?} entry must not be served");
            assert_eq!(cache.quarantined(), i as u64 + 1);
            assert!(!cache.entry_path(&fp).exists(), "{fault:?} entry must be moved aside");
        }
        // Legacy pre-framing entry: bare payload, no trailer.
        fs::write(cache.entry_path(&fp), format!("{line}\n")).unwrap();
        assert_eq!(cache.lookup(&fp), None, "unframed legacy entries must re-simulate");
        // A frame-valid entry whose payload is not a result line.
        let alien = r#"{"svc":"victima-svc/1","type":"ok"}"#;
        fs::write(cache.entry_path(&fp), format!("{alien}\n{}\n", ResultCache::trailer(alien))).unwrap();
        assert_eq!(cache.lookup(&fp), None, "non-result payloads must never be served");
        // After all that abuse a clean store still round-trips.
        cache.store(&fp, &line).unwrap();
        assert_eq!(cache.lookup(&fp).as_deref(), Some(line.as_str()));
        // Quarantined copies are preserved for the post-mortem.
        assert!(cache.dir().join(QUARANTINE_DIR).join(format!("{fp}.jsonl")).exists());
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_quarantined() {
        let cache = ResultCache::open(tmp_dir("fpmismatch")).unwrap();
        let (fp, line) = sample_entry();
        // A valid entry filed under the wrong fingerprint (e.g. a buggy
        // writer): framed and parseable, but it answers a different spec.
        cache.store("0000000000000bad", &line).unwrap();
        assert_eq!(cache.lookup("0000000000000bad"), None);
        assert_eq!(cache.quarantined(), 1);
        let _ = fp;
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn size_bound_evicts_oldest_first() {
        let (fp, line) = sample_entry();
        let entry_bytes = (line.len() + ResultCache::trailer(&line).len() + 2) as u64;
        // Room for two entries, not three.
        let cache = ResultCache::open_bounded(tmp_dir("gc"), Some(entry_bytes * 2)).unwrap();
        let names = ["aaaaaaaaaaaaaaa1", "aaaaaaaaaaaaaaa2", "aaaaaaaaaaaaaaa3"];
        for (i, name) in names.iter().enumerate() {
            cache.store(name, &line).unwrap();
            // Coarse-mtime filesystems need distinct stamps for a
            // deterministic eviction order.
            if i + 1 < names.len() {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
        assert_eq!(cache.entries().unwrap(), 2);
        assert_eq!(cache.evicted(), 1);
        assert!(!cache.entry_path(names[0]).exists(), "oldest entry must go first");
        assert!(cache.entry_path(names[2]).exists());
        assert!(cache.bytes().unwrap() <= entry_bytes * 2);
        let _ = fp;
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
