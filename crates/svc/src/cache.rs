//! Content-addressed result cache.
//!
//! One file per spec, named by the spec's [`sim::RunSpec::fingerprint`]
//! (which folds in `sim::ENGINE_ID`, so bumping the engine version
//! orphans stale entries instead of serving them). The payload is the
//! exact `result` stream line the daemon emitted, stored byte-for-byte —
//! a warm hit replays those bytes, which is what makes a resubmission's
//! stream byte-identical to the cold run without re-rendering anything.
//!
//! Writes go through a unique temporary file and an atomic rename, so a
//! daemon killed mid-store leaves either the complete entry or nothing —
//! never a torn line for the resumed daemon to serve.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers' temporary files (two workers may
/// finish specs at the same instant).
static TMP_SERIAL: AtomicU64 = AtomicU64::new(0);

/// An on-disk cache of `result` stream lines keyed by spec fingerprint.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where a fingerprint's entry lives.
    pub fn entry_path(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}.jsonl"))
    }

    /// Looks a fingerprint up, returning the stored line verbatim.
    pub fn lookup(&self, fingerprint: &str) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        Some(text.trim_end_matches('\n').to_owned())
    }

    /// Stores a result line under its fingerprint (atomic via temp file +
    /// rename; concurrent stores of the same fingerprint are benign
    /// because both writers carry identical bytes by determinism).
    pub fn store(&self, fingerprint: &str, line: &str) -> io::Result<()> {
        let serial = TMP_SERIAL.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(".{fingerprint}.tmp.{}.{serial}", std::process::id()));
        fs::write(&tmp, format!("{line}\n"))?;
        fs::rename(&tmp, self.entry_path(fingerprint))
    }

    /// Number of entries currently on disk.
    pub fn entries(&self) -> io::Result<u64> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if name.to_string_lossy().ends_with(".jsonl") {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("victima-svc-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stores_and_replays_lines_verbatim() {
        let cache = ResultCache::open(tmp_dir("roundtrip")).unwrap();
        assert_eq!(cache.lookup("aa"), None);
        assert_eq!(cache.entries().unwrap(), 0);
        let line = r#"{"svc":"victima-svc/1","type":"result","fingerprint":"aa","report":{}}"#;
        cache.store("aa", line).unwrap();
        assert_eq!(cache.lookup("aa").as_deref(), Some(line));
        assert_eq!(cache.entries().unwrap(), 1);
        // Overwrites are idempotent.
        cache.store("aa", line).unwrap();
        assert_eq!(cache.entries().unwrap(), 1);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn no_temp_files_survive_a_store() {
        let cache = ResultCache::open(tmp_dir("tmpfiles")).unwrap();
        cache.store("bb", "{}").unwrap();
        let leftovers: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
