//! The resident sweep daemon: accept loop, job queue, dispatcher pool,
//! and crash recovery.
//!
//! One daemon owns a service directory (`cache/`, `journal/`,
//! `daemon.addr`, `daemon.pid`) and a localhost TCP listener. Each client
//! connection carries one request line; `submit` connections then stream
//! the sweep back incrementally. Specs fan out over a pool of dispatcher
//! threads — each owning one worker (see [`crate::worker`]) — while an
//! in-order release buffer on the handler side keeps the stream in sweep
//! order no matter which worker finishes first.
//!
//! Crash story, all directions:
//!
//! - **Worker dies** (panic/abort/SIGKILL): its dispatcher re-dispatches
//!   the spec with exponential backoff up to the retry budget, then
//!   reports a typed `error` entry; either way it respawns and the sweep
//!   completes.
//! - **Worker hangs** (deadlock, livelock, injected hang): the
//!   per-spec deadline kills it, the same retry ladder applies, and the
//!   exhausted case is a typed `timeout` entry — a hung worker can stall
//!   one spec for at most `(retries + 1) × deadline` plus backoff, never
//!   the shard.
//! - **Daemon dies**: every accepted job is journaled before its first
//!   spec runs, and every finished spec is already in the cache. The
//!   restarted daemon resumes each unfinished journal entry in the
//!   background, paying only for the specs that never finished; a
//!   journal record that no longer reads or parses is skipped with a
//!   warning (and counted in `status`), never allowed to poison the
//!   restart.
//!
//! The daemon can also turn these failures on *itself*: a
//! [`FaultPlan`] (from `serve --faults` / `VICTIMA_SVC_FAULTS`) injects
//! worker hangs/aborts/slowdowns, torn/corrupt/empty cache stores,
//! truncated journal records, and dropped client connections at
//! deterministic, seeded decision points — the chaos suite drives every
//! recovery path above through the real binary.

use crate::cache::ResultCache;
use crate::fault::FaultPlan;
use crate::journal::Journal;
use crate::log::Logger;
use crate::proto::{
    accepted_line, done_line, error_line, fault_line, ok_line, parse_request, timeout_line, MetricsInfo,
    Request, SpecDesc, StatusInfo, SweepRequest,
};
use crate::worker::{ExecError, Executor, WorkerBackend};
use obs::{MetricId, Registry};
use report::json::JsonValue;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// File (inside the service directory) holding the daemon's bound
/// address, written on startup — how clients find a daemon whose port
/// was ephemeral.
pub const ADDR_FILE: &str = "daemon.addr";

/// File holding the daemon's process id (the kill target for the
/// crash-recovery tests and for operators).
pub const PID_FILE: &str = "daemon.pid";

/// Default per-spec wall-clock deadline. Generous — a Paper-scale spec
/// takes minutes, and a false timeout wastes a whole re-simulation —
/// but finite, so a hung worker can never stall its shard forever.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(600);

/// Default re-dispatch budget after a worker death or timeout.
pub const DEFAULT_RETRIES: u32 = 2;

/// First backoff pause before a re-dispatch; doubles per attempt.
const BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Backoff ceiling (keeps `--retries 10` from sleeping for minutes).
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Startup parameters for a daemon.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Service directory: cache, journal, addr/pid files.
    pub dir: PathBuf,
    /// How specs execute (worker processes vs. in-process).
    pub backend: WorkerBackend,
    /// Dispatcher threads (= concurrent workers), clamped to ≥ 1.
    pub workers: usize,
    /// TCP port to bind on 127.0.0.1; `0` picks an ephemeral port (the
    /// bound address is always written to [`ADDR_FILE`]).
    pub port: u16,
    /// Per-spec wall-clock deadline; a worker that misses it is killed
    /// and the spec re-dispatched (then reported as a typed `timeout`).
    pub deadline: Duration,
    /// How many times a failed/timed-out spec is re-dispatched before
    /// its typed entry is streamed.
    pub retries: u32,
    /// Result-cache size bound; oldest entries are evicted past it.
    pub cache_max_bytes: Option<u64>,
    /// Faults this daemon injects into itself (chaos testing).
    pub faults: FaultPlan,
}

impl DaemonConfig {
    /// A config with production defaults: 1 worker, ephemeral port,
    /// [`DEFAULT_DEADLINE`], [`DEFAULT_RETRIES`], unbounded cache, no
    /// faults. Override fields with struct-update syntax.
    pub fn new(dir: impl Into<PathBuf>, backend: WorkerBackend) -> Self {
        Self {
            dir: dir.into(),
            backend,
            workers: 1,
            port: 0,
            deadline: DEFAULT_DEADLINE,
            retries: DEFAULT_RETRIES,
            cache_max_bytes: None,
            faults: FaultPlan::none(),
        }
    }
}

/// One queued spec plus its reply route.
struct Task {
    desc: SpecDesc,
    fingerprint: String,
    index: usize,
    reply: mpsc::Sender<(usize, Outcome)>,
}

/// What a dispatcher hands back for a spec.
enum Outcome {
    /// The rendered `result` line (already stored in the cache).
    Line(String),
    /// The worker died (retries exhausted); the typed error message.
    Failed(String),
    /// The worker missed its deadline (retries exhausted).
    TimedOut(String),
}

/// The daemon's own observability registry (`svc.`-rooted, mirroring the
/// simulator's `sim.` namespace — DESIGN.md "Observability"): the spec
/// latency distribution, cache effectiveness, respawn pressure, and
/// per-worker utilization. Served verbatim by the `metrics` op; never
/// consulted by anything that produces result bytes.
struct SvcMetrics {
    reg: Registry,
    /// Histogram: wall-clock latency of successful spec executions, ms.
    latency_ms: MetricId,
    /// Worker processes discarded (death or deadline) and respawned.
    respawns: MetricId,
    /// Specs answered straight from the result cache.
    cache_hit: MetricId,
    /// Specs dispatched to a worker (cache misses).
    cache_miss: MetricId,
    /// Per-worker milliseconds spent inside spec execution.
    worker_busy_ms: Vec<MetricId>,
    /// Per-worker specs run to a final outcome.
    worker_specs: Vec<MetricId>,
}

impl SvcMetrics {
    fn install(workers: usize) -> Self {
        let mut reg = Registry::new();
        let latency_ms = reg.histogram("svc.spec.latency_ms");
        let respawns = reg.counter("svc.worker.respawns");
        let cache_hit = reg.counter("svc.cache.hit");
        let cache_miss = reg.counter("svc.cache.miss");
        let mut worker_busy_ms = Vec::with_capacity(workers);
        let mut worker_specs = Vec::with_capacity(workers);
        for i in 0..workers {
            worker_busy_ms.push(reg.counter(&format!("svc.worker.{i}.busy_ms")));
            worker_specs.push(reg.counter(&format!("svc.worker.{i}.specs")));
        }
        Self { reg, latency_ms, respawns, cache_hit, cache_miss, worker_busy_ms, worker_specs }
    }
}

#[derive(Default)]
struct Counters {
    jobs_accepted: AtomicU64,
    jobs_completed: AtomicU64,
    specs_completed: AtomicU64,
    specs_simulated: AtomicU64,
    specs_cached: AtomicU64,
    specs_failed: AtomicU64,
    specs_timed_out: AtomicU64,
    specs_retried: AtomicU64,
    journal_skipped: AtomicU64,
    conn_drops: AtomicU64,
}

struct State {
    dir: PathBuf,
    addr: SocketAddr,
    backend: WorkerBackend,
    workers: usize,
    deadline: Duration,
    retries: u32,
    faults: FaultPlan,
    cache: ResultCache,
    journal: Journal,
    next_job: AtomicU64,
    queue: Mutex<VecDeque<Task>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    log: Logger,
    metrics: SvcMetrics,
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag, drains the queue (dropping queued tasks'
    /// senders so blocked handlers observe the disconnect), wakes the
    /// dispatchers, and pokes the accept loop with a dummy connection.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.lock().expect("task queue poisoned").clear();
        self.queue_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
    }

    /// Consumes one unit of the fault plan's dropped-connection budget.
    fn take_conn_drop(&self) -> bool {
        let budget = self.faults.drop_conn_budget();
        if budget == 0 {
            return false;
        }
        // Racy increments past the budget are harmless: fetch_add hands
        // out distinct tickets, and only tickets < budget drop.
        self.counters.conn_drops.fetch_add(1, Ordering::SeqCst) < budget
    }

    fn status(&self) -> StatusInfo {
        let jobs_accepted = self.counters.jobs_accepted.load(Ordering::Relaxed);
        let jobs_completed = self.counters.jobs_completed.load(Ordering::Relaxed);
        StatusInfo {
            engine: sim::ENGINE_ID.to_owned(),
            workers: self.workers as u64,
            jobs_accepted,
            jobs_completed,
            specs_completed: self.counters.specs_completed.load(Ordering::Relaxed),
            specs_simulated: self.counters.specs_simulated.load(Ordering::Relaxed),
            specs_cached: self.counters.specs_cached.load(Ordering::Relaxed),
            specs_failed: self.counters.specs_failed.load(Ordering::Relaxed),
            specs_timed_out: self.counters.specs_timed_out.load(Ordering::Relaxed),
            specs_retried: self.counters.specs_retried.load(Ordering::Relaxed),
            cache_entries: self.cache.entries().unwrap_or(0),
            cache_bytes: self.cache.bytes().unwrap_or(0),
            cache_quarantined: self.cache.quarantined(),
            cache_evicted: self.cache.evicted(),
            journal_skipped: self.counters.journal_skipped.load(Ordering::Relaxed),
            uptime_ms: self.log.uptime_ms(),
            jobs_pending: jobs_accepted.saturating_sub(jobs_completed),
        }
    }

    /// Snapshots the observability registry for the `metrics` op.
    fn metrics_info(&self) -> MetricsInfo {
        let m = &self.metrics;
        let latency = m.reg.histogram_snapshot(m.latency_ms);
        MetricsInfo {
            uptime_ms: self.log.uptime_ms(),
            queue_depth: self.queue.lock().expect("task queue poisoned").len() as u64,
            workers: self.workers as u64,
            worker_busy_ms: m.worker_busy_ms.iter().map(|&id| m.reg.value(id)).collect(),
            worker_specs: m.worker_specs.iter().map(|&id| m.reg.value(id)).collect(),
            latency_count: latency.count,
            latency_sum_ms: latency.sum,
            latency_buckets: latency.buckets.to_vec(),
            cache_hits: m.reg.value(m.cache_hit),
            cache_misses: m.reg.value(m.cache_miss),
            retries: self.counters.specs_retried.load(Ordering::Relaxed),
            timeouts: self.counters.specs_timed_out.load(Ordering::Relaxed),
            failures: self.counters.specs_failed.load(Ordering::Relaxed),
            quarantined: self.cache.quarantined(),
            worker_respawns: m.reg.value(m.respawns),
        }
    }
}

/// A started daemon: its address plus the threads to join at shutdown.
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon shuts down (a client sent the `shutdown`
    /// op), then joins every service thread.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Requests shutdown over the wire and joins — the clean stop used by
    /// tests and benches.
    pub fn shutdown(self) {
        if let Ok(mut stream) = TcpStream::connect(self.addr) {
            let _ = writeln!(stream, "{{\"op\":\"shutdown\"}}");
            let mut reply = String::new();
            let _ = BufReader::new(&stream).read_line(&mut reply);
        }
        self.join();
    }
}

/// Starts a daemon in the background, returning once the listener is
/// bound and [`ADDR_FILE`] is written.
pub fn start(cfg: DaemonConfig) -> io::Result<DaemonHandle> {
    std::fs::create_dir_all(&cfg.dir)?;
    let cache = ResultCache::open_bounded(cfg.dir.join("cache"), cfg.cache_max_bytes)?;
    let journal = Journal::open(cfg.dir.join("journal"))?;
    let next_job = journal.next_job_number()?;
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let addr = listener.local_addr()?;
    std::fs::write(cfg.dir.join(ADDR_FILE), format!("{addr}\n"))?;
    std::fs::write(cfg.dir.join(PID_FILE), format!("{}\n", std::process::id()))?;
    let workers = cfg.workers.max(1);
    let log = Logger::new(&cfg.dir);
    if !cfg.faults.is_empty() {
        log.warn(
            "fault_injection",
            "FAULT INJECTION ACTIVE",
            &[("plan", JsonValue::Str(cfg.faults.to_string()))],
        );
    }
    log.info(
        "listening",
        "daemon up",
        &[
            ("addr", JsonValue::Str(addr.to_string())),
            ("workers", JsonValue::Int(workers as i64)),
            ("backend", JsonValue::Str(format!("{:?}", cfg.backend))),
        ],
    );
    let state = Arc::new(State {
        dir: cfg.dir,
        addr,
        backend: cfg.backend,
        workers,
        deadline: cfg.deadline,
        retries: cfg.retries,
        faults: cfg.faults,
        cache,
        journal,
        next_job: AtomicU64::new(next_job),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        counters: Counters::default(),
        log,
        metrics: SvcMetrics::install(workers),
    });
    let mut threads = Vec::with_capacity(workers + 2);
    for slot in 0..workers {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || dispatcher(&st, slot)));
    }
    let pending = state.journal.pending()?;
    if !pending.is_empty() {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || resume_pending(&st, pending)));
    }
    let st = Arc::clone(&state);
    threads.push(std::thread::spawn(move || accept_loop(&st, listener)));
    Ok(DaemonHandle { addr, threads })
}

/// Runs a daemon in the foreground until a client shuts it down — the
/// `experiments serve` entry point.
pub fn run(cfg: DaemonConfig) -> io::Result<()> {
    // The structured `listening` event (with the address) is emitted by
    // `start`; everything after this is driven by client requests.
    let handle = start(cfg)?;
    handle.join();
    Ok(())
}

fn accept_loop(state: &Arc<State>, listener: TcpListener) {
    for conn in listener.incoming() {
        if state.shutting_down() {
            break;
        }
        let Ok(stream) = conn else { continue };
        let st = Arc::clone(state);
        std::thread::spawn(move || handle_conn(&st, stream));
    }
    // Best-effort tidy-up so stale files never point at a dead daemon.
    let _ = std::fs::remove_file(state.dir.join(ADDR_FILE));
    let _ = std::fs::remove_file(state.dir.join(PID_FILE));
}

/// Exponential backoff pause before re-dispatching `attempt` (1-based).
fn backoff(attempt: u32) -> Duration {
    BACKOFF_BASE.saturating_mul(1u32 << attempt.min(10).saturating_sub(1)).min(BACKOFF_CAP)
}

/// Runs one task to its final outcome: attempt, and on worker death or
/// deadline miss, back off and re-dispatch up to the retry budget. The
/// fault plan is consulted per attempt (the attempt number perturbs
/// probabilistic draws, so a `@p` fault can clear on retry).
fn run_task(state: &Arc<State>, exec: &mut Executor, task: &Task) -> Outcome {
    let key = crate::fault::fnv1a64(task.fingerprint.as_bytes());
    let attempts = state.retries + 1;
    let mut last = ExecError::Failed("spec never attempted".to_owned());
    for attempt in 0..attempts {
        if attempt > 0 {
            state.counters.specs_retried.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff(attempt));
            if state.shutting_down() {
                break;
            }
        }
        let inject = state.faults.worker_fault(&task.desc.workload, key, attempt);
        let t0 = Instant::now();
        match exec.run(&task.desc, inject.as_ref(), state.deadline) {
            Ok(line) => {
                let m = &state.metrics;
                m.reg.observe(m.latency_ms, t0.elapsed().as_millis() as u64);
                state.counters.specs_simulated.fetch_add(1, Ordering::Relaxed);
                let fault = state.faults.cache_fault(key, u64::from(attempt));
                if let Err(e) = state.cache.store_injected(&task.fingerprint, &line, fault) {
                    state.log.error(
                        "cache_store_failed",
                        &format!("cache store failed: {e}"),
                        &[("fingerprint", JsonValue::Str(task.fingerprint.clone()))],
                    );
                }
                return Outcome::Line(line);
            }
            Err(e) => {
                // The executor discarded its worker (death or deadline
                // kill) and will spawn a fresh one on the next attempt —
                // the structured respawn event names the spec and attempt
                // so a respawn storm is attributable from the log alone.
                state.metrics.reg.inc(state.metrics.respawns);
                state.log.warn(
                    "worker_respawn",
                    e.message(),
                    &[
                        ("fingerprint", JsonValue::Str(task.fingerprint.clone())),
                        ("spec", JsonValue::Str(task.desc.label())),
                        ("attempt", JsonValue::Int(i64::from(attempt) + 1)),
                        ("attempts", JsonValue::Int(i64::from(attempts))),
                    ],
                );
                last = e;
            }
        }
    }
    match last {
        ExecError::TimedOut(m) => {
            state.counters.specs_timed_out.fetch_add(1, Ordering::Relaxed);
            Outcome::TimedOut(format!("{m} (after {attempts} attempt(s))"))
        }
        ExecError::Failed(m) => {
            state.counters.specs_failed.fetch_add(1, Ordering::Relaxed);
            Outcome::Failed(format!("{m} (after {attempts} attempt(s))"))
        }
    }
}

fn dispatcher(state: &Arc<State>, slot: usize) {
    let mut exec = Executor::new(state.backend.clone());
    loop {
        let task = {
            let mut queue = state.queue.lock().expect("task queue poisoned");
            loop {
                if state.shutting_down() {
                    return;
                }
                match queue.pop_front() {
                    Some(task) => break task,
                    None => queue = state.queue_cv.wait(queue).expect("task queue poisoned"),
                }
            }
        };
        let t0 = Instant::now();
        let outcome = run_task(state, &mut exec, &task);
        let m = &state.metrics;
        m.reg.add(m.worker_busy_ms[slot], t0.elapsed().as_millis() as u64);
        m.reg.inc(m.worker_specs[slot]);
        // A send error just means the job's handler gave up (shutdown);
        // the result is in the cache either way.
        let _ = task.reply.send((task.index, outcome));
    }
}

fn resume_pending(state: &Arc<State>, pending: Vec<(String, String)>) {
    for (job, line) in pending {
        if state.shutting_down() {
            return;
        }
        let req = match SweepRequest::from_line(&line) {
            Ok(req) => req,
            Err(e) => {
                state.log.warn(
                    "journal_skipped",
                    &format!("journal entry does not parse ({e}); skipping it"),
                    &[("job", JsonValue::Str(job.clone()))],
                );
                state.counters.journal_skipped.fetch_add(1, Ordering::Relaxed);
                let _ = state.journal.complete(&job);
                continue;
            }
        };
        let specs = match req.specs() {
            Ok(specs) => specs,
            Err(e) => {
                state.log.warn(
                    "journal_skipped",
                    &format!("journal entry no longer expands ({e}); skipping it"),
                    &[("job", JsonValue::Str(job.clone()))],
                );
                state.counters.journal_skipped.fetch_add(1, Ordering::Relaxed);
                let _ = state.journal.complete(&job);
                continue;
            }
        };
        state.log.info(
            "journal_resume",
            "resuming journaled job",
            &[("job", JsonValue::Str(job.clone())), ("specs", JsonValue::Int(specs.len() as i64))],
        );
        state.counters.jobs_accepted.fetch_add(1, Ordering::Relaxed);
        let (_, _, errors) = run_job(state, specs, &mut None);
        if state.shutting_down() && errors > 0 {
            // Interrupted again before finishing: leave the journal entry
            // pending for the next restart.
            continue;
        }
        let _ = state.journal.complete(&job);
        state.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
}

fn handle_conn(state: &Arc<State>, mut stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).unwrap_or(0) == 0 {
        return;
    }
    let mut sink = Some(&mut stream);
    match parse_request(line.trim()) {
        Err(e) => send(&mut sink, &fault_line(&e)),
        Ok(Request::Status) => send(&mut sink, &state.status().to_line()),
        Ok(Request::Metrics) => send(&mut sink, &state.metrics_info().to_line()),
        Ok(Request::Shutdown) => {
            send(&mut sink, &ok_line());
            state.begin_shutdown();
        }
        Ok(Request::Submit(req)) => handle_submit(state, &req, sink),
    }
}

fn handle_submit(state: &Arc<State>, req: &SweepRequest, mut sink: Option<&mut TcpStream>) {
    let specs = match req.specs() {
        Ok(specs) => specs,
        Err(e) => {
            send(&mut sink, &fault_line(&e));
            return;
        }
    };
    let job = Journal::job_id(state.next_job.fetch_add(1, Ordering::SeqCst));
    let torn = state.faults.journal_truncate(crate::fault::fnv1a64(job.as_bytes()));
    if let Err(e) = state.journal.record_injected(&job, &req.to_line(), torn) {
        send(&mut sink, &fault_line(&format!("journal write failed: {e}")));
        return;
    }
    state.counters.jobs_accepted.fetch_add(1, Ordering::Relaxed);
    send(&mut sink, &accepted_line(&job, specs.len() as u64));
    // The job runs to completion even if the client disconnects
    // mid-stream — results land in the cache regardless.
    let (results, cached, errors) = run_job(state, specs, &mut sink);
    // Complete durably *before* the done line: a client that has seen
    // `done` must observe the journal marker and the bumped counter.
    if !state.shutting_down() {
        let _ = state.journal.complete(&job);
        state.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
    send(&mut sink, &done_line(&job, results, cached, errors));
}

/// Runs one expanded sweep: cache hits answer immediately, misses fan out
/// to the dispatchers, and entries are released to `sink` strictly in
/// sweep order. Returns `(results, cached, errors)` — `errors` counts
/// both `error` and `timeout` entries.
fn run_job(state: &Arc<State>, specs: Vec<SpecDesc>, sink: &mut Option<&mut TcpStream>) -> (u64, u64, u64) {
    let total = specs.len();
    let fingerprints: Vec<String> = specs
        .iter()
        .map(|d| d.to_run_spec().expect("specs were validated by SweepRequest::specs").fingerprint())
        .collect();
    let mut slots: Vec<Option<String>> = vec![None; total];
    let mut cached = 0u64;
    for (slot, fp) in slots.iter_mut().zip(&fingerprints) {
        if let Some(line) = state.cache.lookup(fp) {
            *slot = Some(line);
            cached += 1;
        }
    }
    state.counters.specs_cached.fetch_add(cached, Ordering::Relaxed);
    state.metrics.reg.add(state.metrics.cache_hit, cached);
    state.metrics.reg.add(state.metrics.cache_miss, total as u64 - cached);
    let (tx, rx) = mpsc::channel();
    {
        let mut queue = state.queue.lock().expect("task queue poisoned");
        if !state.shutting_down() {
            for (index, desc) in specs.iter().enumerate() {
                if slots[index].is_none() {
                    queue.push_back(Task {
                        desc: desc.clone(),
                        fingerprint: fingerprints[index].clone(),
                        index,
                        reply: tx.clone(),
                    });
                }
            }
        }
    }
    state.queue_cv.notify_all();
    drop(tx);
    let mut errors = 0u64;
    let mut next = 0usize;
    while next < total {
        if let Some(line) = slots[next].take() {
            send(sink, &line);
            state.counters.specs_completed.fetch_add(1, Ordering::Relaxed);
            next += 1;
            // Injected client-facing failure: sever the stream mid-sweep
            // (the job keeps running; the client must reconnect-resume).
            if sink.is_some() && state.take_conn_drop() {
                state.log.warn(
                    "conn_drop_injected",
                    "injected connection drop mid-stream",
                    &[("spec", JsonValue::Int(next as i64)), ("total", JsonValue::Int(total as i64))],
                );
                if let Some(stream) = sink {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                *sink = None;
            }
            continue;
        }
        match rx.recv() {
            Ok((index, Outcome::Line(line))) => slots[index] = Some(line),
            Ok((index, Outcome::Failed(msg))) => {
                errors += 1;
                slots[index] = Some(error_line(&fingerprints[index], &specs[index], &msg));
            }
            Ok((index, Outcome::TimedOut(msg))) => {
                errors += 1;
                slots[index] = Some(timeout_line(&fingerprints[index], &specs[index], &msg));
            }
            Err(_) => {
                // Every sender is gone with slots still empty: the daemon
                // is shutting down under us. Fail the remainder loudly.
                for index in next..total {
                    if slots[index].is_none() {
                        errors += 1;
                        slots[index] = Some(error_line(
                            &fingerprints[index],
                            &specs[index],
                            "daemon shut down before this spec ran",
                        ));
                    }
                }
            }
        }
    }
    (total as u64 - errors, cached, errors)
}

/// Writes one protocol line to the sink, closing it on the first client
/// error (the job keeps running for the cache's benefit).
fn send(sink: &mut Option<&mut TcpStream>, line: &str) {
    if let Some(stream) = sink {
        if writeln!(stream, "{line}").and_then(|()| stream.flush()).is_err() {
            *sink = None;
        }
    }
}
