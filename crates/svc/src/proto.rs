//! The sweep-service wire protocol: newline-delimited JSON.
//!
//! Every message — request or response — is one compact JSON document on
//! one `\n`-terminated line, built with the `report` crate's hand-rolled
//! writer so the workspace stays dependency-free. A client connects,
//! writes one request line, and reads response lines until the stream
//! ends:
//!
//! ```text
//! request  := submit | status | shutdown
//! submit   := {"op":"submit","configs":[..],"workloads":[..],"scale":S,
//!              "warmup":N,"instructions":N,"seed":"0x..","sampling":"U:D:W"|null}
//! status   := {"op":"status"}
//! shutdown := {"op":"shutdown"}
//! ```
//!
//! A submit elicits `accepted`, then one `result`, `error` or `timeout`
//! line per spec **in sweep order** (configs-major, workloads minor —
//! regardless of which worker finishes first), then `done`:
//!
//! ```text
//! accepted := {"svc":ID,"type":"accepted","job":J,"specs":N}
//! result   := {"svc":ID,"type":"result","fingerprint":F,"report":{..}}
//! error    := {"svc":ID,"type":"error","fingerprint":F,"config":C,
//!              "workload":W,"error":MSG}
//! timeout  := {"svc":ID,"type":"timeout","fingerprint":F,"config":C,
//!              "workload":W,"error":MSG}
//! done     := {"svc":ID,"type":"done","job":J,"results":N,"cached":N,"errors":N}
//! ```
//!
//! `timeout` is an `error` whose cause is a missed per-spec deadline (a
//! *hung*, killed-and-respawned worker, as opposed to a dead one) —
//! typed separately so clients and dashboards can tell overload from
//! breakage. Both count as `errors` in the `done` tally.
//!
//! The `report` member of a `result` line is a complete
//! [`ExperimentReport`] in the `victima-report/1` artifact schema — the
//! same document `experiments --format json` writes, so downstream
//! tooling needs exactly one parser. `result` lines are also the cache
//! payload: the daemon stores them byte-for-byte under the spec
//! fingerprint, which is what makes a warm resubmission byte-identical
//! to the cold run that populated it.

use report::json::{parse_json, report_to_value, value_to_report, write_json_compact, JsonValue};
use report::{Column, ExperimentReport, Metric, Provenance, Unit, Value};
use sim::{RunSpec, SamplingConfig, SimStats, SystemConfig, ENGINE_ID};
use workloads::{registry, Scale};

/// Protocol identity stamped on every response line. Bump when the line
/// grammar changes incompatibly.
pub const PROTO_ID: &str = "victima-svc/1";

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn str_arr(items: &[String]) -> JsonValue {
    JsonValue::Arr(items.iter().map(|s| JsonValue::Str(s.clone())).collect())
}

fn req<'v>(doc: &'v JsonValue, key: &str) -> Result<&'v JsonValue, String> {
    doc.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn req_str(doc: &JsonValue, key: &str) -> Result<String, String> {
    req(doc, key)?.as_str().map(str::to_owned).ok_or_else(|| format!("{key:?} must be a string"))
}

fn req_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    req(doc, key)?.as_u64().ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

/// Reads an integer member that newer daemons emit and older ones do not
/// (additive `victima-svc/1` extensions); absent means zero.
fn opt_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    match doc.get(key) {
        None => Ok(0),
        Some(v) => v.as_u64().ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn req_u64_arr(doc: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    req(doc, key)?
        .as_arr()
        .ok_or_else(|| format!("{key:?} must be an array"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| format!("{key:?} entries must be non-negative integers")))
        .collect()
}

fn u64_arr(items: &[u64]) -> JsonValue {
    JsonValue::Arr(items.iter().map(|&v| JsonValue::Int(v as i64)).collect())
}

fn req_str_arr(doc: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    req(doc, key)?
        .as_arr()
        .ok_or_else(|| format!("{key:?} must be an array"))?
        .iter()
        .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| format!("{key:?} entries must be strings")))
        .collect()
}

fn seed_of(doc: &JsonValue, key: &str) -> Result<u64, String> {
    let s = req_str(doc, key)?;
    let hex = s.strip_prefix("0x").ok_or_else(|| format!("{key:?} must be 0x-hex, got {s:?}"))?;
    u64::from_str_radix(hex, 16).map_err(|e| format!("{key:?}: {e}"))
}

/// The lowercase CLI spelling of a scale ([`Scale::parse`]'s domain).
pub fn scale_key(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
        Scale::Paper => "paper",
    }
}

// ----------------------------------------------------------------- requests

/// A sweep job: the cross product of `configs × workloads`, all at one
/// (scale, budget, seed, sampling) profile. This is the body of a
/// `submit` request and the unit the journal persists.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRequest {
    /// System-config registry keys (`sim::config::CONFIG_KEYS`).
    pub configs: Vec<String>,
    /// Workload abbreviations (`workloads::registry::WORKLOAD_NAMES`).
    pub workloads: Vec<String>,
    /// Footprint scale for every spec.
    pub scale: Scale,
    /// Warm-up instructions per spec.
    pub warmup: u64,
    /// Measured instructions per spec.
    pub instructions: u64,
    /// Base deterministic seed.
    pub seed: u64,
    /// Optional SMARTS interval-sampling schedule.
    pub sampling: Option<SamplingConfig>,
}

impl SweepRequest {
    /// Serialises the request as its one-line wire form.
    pub fn to_line(&self) -> String {
        let sampling = match &self.sampling {
            Some(s) => JsonValue::Str(s.spec()),
            None => JsonValue::Null,
        };
        write_json_compact(&obj(vec![
            ("op", JsonValue::Str("submit".into())),
            ("configs", str_arr(&self.configs)),
            ("workloads", str_arr(&self.workloads)),
            ("scale", JsonValue::Str(scale_key(self.scale).into())),
            ("warmup", JsonValue::Int(self.warmup as i64)),
            ("instructions", JsonValue::Int(self.instructions as i64)),
            ("seed", JsonValue::Str(format!("0x{:x}", self.seed))),
            ("sampling", sampling),
        ]))
    }

    /// Parses the body of a `submit` request.
    pub fn from_value(doc: &JsonValue) -> Result<Self, String> {
        let scale_tag = req_str(doc, "scale")?;
        let scale = Scale::parse(&scale_tag)
            .ok_or_else(|| format!("unknown scale {scale_tag:?} (tiny|small|full|paper)"))?;
        let sampling = match req(doc, "sampling")? {
            JsonValue::Null => None,
            JsonValue::Str(spec) => Some(SamplingConfig::parse(spec)?),
            _ => return Err("\"sampling\" must be a \"U:D:W\" string or null".into()),
        };
        Ok(Self {
            configs: req_str_arr(doc, "configs")?,
            workloads: req_str_arr(doc, "workloads")?,
            scale,
            warmup: req_u64(doc, "warmup")?,
            instructions: req_u64(doc, "instructions")?,
            seed: seed_of(doc, "seed")?,
            sampling,
        })
    }

    /// Parses a full request line (must be a `submit`).
    pub fn from_line(line: &str) -> Result<Self, String> {
        match parse_request(line)? {
            Request::Submit(req) => Ok(req),
            other => Err(format!("expected a submit request, got {other:?}")),
        }
    }

    /// Validates the request and expands it into per-spec descriptors in
    /// sweep order (configs-major, workloads minor — the order response
    /// lines are streamed in).
    pub fn specs(&self) -> Result<Vec<SpecDesc>, String> {
        if self.configs.is_empty() {
            return Err("a sweep needs at least one config".into());
        }
        if self.workloads.is_empty() {
            return Err("a sweep needs at least one workload".into());
        }
        for c in &self.configs {
            if SystemConfig::by_name(c).is_none() {
                return Err(format!("unknown config {c:?} (known: {})", sim::config::CONFIG_KEYS.join(", ")));
            }
        }
        for w in &self.workloads {
            if !registry::WORKLOAD_NAMES.contains(&w.as_str()) {
                return Err(format!(
                    "unknown workload {w:?} (known: {})",
                    registry::WORKLOAD_NAMES.join(", ")
                ));
            }
        }
        if let Some(s) = &self.sampling {
            s.validate()?;
        }
        let mut specs = Vec::with_capacity(self.configs.len() * self.workloads.len());
        for config in &self.configs {
            for workload in &self.workloads {
                specs.push(SpecDesc {
                    config: config.clone(),
                    workload: workload.clone(),
                    scale: self.scale,
                    warmup: self.warmup,
                    instructions: self.instructions,
                    seed: self.seed,
                    sampling: self.sampling,
                });
            }
        }
        Ok(specs)
    }
}

/// One spec of a sweep, in the name-keyed form that crosses the daemon →
/// worker process boundary (a full [`RunSpec`] carries a resolved
/// [`SystemConfig`]; the descriptor re-resolves it from the registry key
/// on the worker, keeping the wire format small and stable).
#[derive(Clone, Debug, PartialEq)]
pub struct SpecDesc {
    /// System-config registry key ("radix", "victima", …).
    pub config: String,
    /// Workload abbreviation.
    pub workload: String,
    /// Footprint scale.
    pub scale: Scale,
    /// Warm-up instructions.
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
    /// Base deterministic seed.
    pub seed: u64,
    /// Optional sampling schedule.
    pub sampling: Option<SamplingConfig>,
}

impl SpecDesc {
    /// A short "config/workload" label for logs and error entries.
    pub fn label(&self) -> String {
        format!("{}/{}", self.config, self.workload)
    }

    /// Resolves the descriptor into a runnable [`RunSpec`].
    pub fn to_run_spec(&self) -> Result<RunSpec, String> {
        let cfg =
            SystemConfig::by_name(&self.config).ok_or_else(|| format!("unknown config {:?}", self.config))?;
        let mut spec = RunSpec::new(self.workload.clone(), cfg, self.scale, self.warmup, self.instructions)
            .with_seed(self.seed);
        if let Some(s) = self.sampling {
            spec = spec.with_sampling(s);
        }
        Ok(spec)
    }

    /// Serialises the descriptor as its one-line wire form (the daemon →
    /// worker stdin protocol).
    pub fn to_line(&self) -> String {
        let sampling = match &self.sampling {
            Some(s) => JsonValue::Str(s.spec()),
            None => JsonValue::Null,
        };
        write_json_compact(&obj(vec![
            ("config", JsonValue::Str(self.config.clone())),
            ("workload", JsonValue::Str(self.workload.clone())),
            ("scale", JsonValue::Str(scale_key(self.scale).into())),
            ("warmup", JsonValue::Int(self.warmup as i64)),
            ("instructions", JsonValue::Int(self.instructions as i64)),
            ("seed", JsonValue::Str(format!("0x{:x}", self.seed))),
            ("sampling", sampling),
        ]))
    }

    /// Parses a descriptor line.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let doc = parse_json(line).map_err(|e| e.to_string())?;
        let scale_tag = req_str(&doc, "scale")?;
        let scale = Scale::parse(&scale_tag).ok_or_else(|| format!("unknown scale {scale_tag:?}"))?;
        let sampling = match req(&doc, "sampling")? {
            JsonValue::Null => None,
            JsonValue::Str(spec) => Some(SamplingConfig::parse(spec)?),
            _ => return Err("\"sampling\" must be a \"U:D:W\" string or null".into()),
        };
        Ok(Self {
            config: req_str(&doc, "config")?,
            workload: req_str(&doc, "workload")?,
            scale,
            warmup: req_u64(&doc, "warmup")?,
            instructions: req_u64(&doc, "instructions")?,
            seed: seed_of(&doc, "seed")?,
            sampling,
        })
    }
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a sweep, streaming results back.
    Submit(SweepRequest),
    /// Report daemon counters.
    Status,
    /// Report the daemon's observability registry: queue depth, spec
    /// latency histogram, per-worker utilization, cache hit ratio.
    Metrics,
    /// Stop accepting work and exit.
    Shutdown,
}

/// Parses one client request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse_json(line).map_err(|e| e.to_string())?;
    match req_str(&doc, "op")?.as_str() {
        "submit" => Ok(Request::Submit(SweepRequest::from_value(&doc)?)),
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?} (submit|status|metrics|shutdown)")),
    }
}

// ---------------------------------------------------------------- responses

/// Builds the per-spec result report: one `sweep_result` document in the
/// `victima-report/1` schema, carrying the headline counters as rows and
/// the paper's two summary metrics. Pure function of `(spec, stats)`, so
/// the rendered line is byte-stable — the property the result cache and
/// the warm-resubmit guarantee rest on.
pub fn result_report(desc: &SpecDesc, spec: &RunSpec, stats: &SimStats) -> ExperimentReport {
    let mut r = ExperimentReport::new("sweep_result", format!("Sweep result: {}", spec.label()))
        .with_label_name("stat")
        .with_columns([Column::new("value", Unit::Raw)])
        .with_provenance(Provenance {
            scale: format!("{:?}", desc.scale),
            warmup: desc.warmup,
            instructions: desc.instructions,
            seed: desc.seed,
            engine: ENGINE_ID.to_owned(),
            configs: vec![spec.config.name.clone()],
            workloads: vec![desc.workload.clone()],
        });
    r.push_row("instructions", [Value::from(stats.instructions)]);
    r.push_row("mem_refs", [Value::from(stats.mem_refs)]);
    r.push_row("cycles", [Value::from(stats.cycles())]);
    r.push_row("l1_tlb_misses", [Value::from(stats.l1_tlb_misses)]);
    r.push_row("l2_tlb_misses", [Value::from(stats.l2_tlb_misses)]);
    r.push_row("ptws", [Value::from(stats.ptws)]);
    r.push_metric(Metric::new("ipc", stats.ipc(), Unit::Ipc));
    r.push_metric(Metric::new("l2_tlb_mpki", stats.l2_tlb_mpki(), Unit::Mpki));
    if let Some(s) = &stats.sampling {
        r.push_metric(Metric::new("sampling_periods", s.periods as f64, Unit::Count));
        r.note(format!("sampled estimate: IPC 95% CI ±{:.4} over {} windows", s.ipc_ci95, s.periods));
    }
    r
}

/// Renders a `result` stream line (also the cache payload).
pub fn result_line(fingerprint: &str, report: &ExperimentReport) -> String {
    write_json_compact(&obj(vec![
        ("svc", JsonValue::Str(PROTO_ID.into())),
        ("type", JsonValue::Str("result".into())),
        ("fingerprint", JsonValue::Str(fingerprint.into())),
        ("report", report_to_value(report)),
    ]))
}

/// Renders a typed `error` stream line for a spec that failed.
pub fn error_line(fingerprint: &str, desc: &SpecDesc, error: &str) -> String {
    write_json_compact(&obj(vec![
        ("svc", JsonValue::Str(PROTO_ID.into())),
        ("type", JsonValue::Str("error".into())),
        ("fingerprint", JsonValue::Str(fingerprint.into())),
        ("config", JsonValue::Str(desc.config.clone())),
        ("workload", JsonValue::Str(desc.workload.clone())),
        ("error", JsonValue::Str(error.into())),
    ]))
}

/// Renders a typed `timeout` stream line for a spec whose worker missed
/// the per-spec deadline (killed and respawned; retries exhausted).
pub fn timeout_line(fingerprint: &str, desc: &SpecDesc, error: &str) -> String {
    write_json_compact(&obj(vec![
        ("svc", JsonValue::Str(PROTO_ID.into())),
        ("type", JsonValue::Str("timeout".into())),
        ("fingerprint", JsonValue::Str(fingerprint.into())),
        ("config", JsonValue::Str(desc.config.clone())),
        ("workload", JsonValue::Str(desc.workload.clone())),
        ("error", JsonValue::Str(error.into())),
    ]))
}

/// Renders the `accepted` line that opens a submit response.
pub fn accepted_line(job: &str, specs: u64) -> String {
    write_json_compact(&obj(vec![
        ("svc", JsonValue::Str(PROTO_ID.into())),
        ("type", JsonValue::Str("accepted".into())),
        ("job", JsonValue::Str(job.into())),
        ("specs", JsonValue::Int(specs as i64)),
    ]))
}

/// Renders the `done` line that closes a submit response.
pub fn done_line(job: &str, results: u64, cached: u64, errors: u64) -> String {
    write_json_compact(&obj(vec![
        ("svc", JsonValue::Str(PROTO_ID.into())),
        ("type", JsonValue::Str("done".into())),
        ("job", JsonValue::Str(job.into())),
        ("results", JsonValue::Int(results as i64)),
        ("cached", JsonValue::Int(cached as i64)),
        ("errors", JsonValue::Int(errors as i64)),
    ]))
}

/// Renders a request-level `fault` line (malformed request, unknown
/// config — nothing was accepted).
pub fn fault_line(error: &str) -> String {
    write_json_compact(&obj(vec![
        ("svc", JsonValue::Str(PROTO_ID.into())),
        ("type", JsonValue::Str("fault".into())),
        ("error", JsonValue::Str(error.into())),
    ]))
}

/// Renders the bare acknowledgement line (`shutdown` response).
pub fn ok_line() -> String {
    write_json_compact(&obj(vec![
        ("svc", JsonValue::Str(PROTO_ID.into())),
        ("type", JsonValue::Str("ok".into())),
    ]))
}

/// Daemon counters reported by the `status` op.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// Engine identity (`sim::ENGINE_ID`) — cache keys embed it.
    pub engine: String,
    /// Worker slots serving the queue.
    pub workers: u64,
    /// Jobs accepted since start (resumed journal jobs included).
    pub jobs_accepted: u64,
    /// Jobs run to completion.
    pub jobs_completed: u64,
    /// Spec entries streamed (results and errors).
    pub specs_completed: u64,
    /// Specs actually simulated by a worker.
    pub specs_simulated: u64,
    /// Specs answered straight from the cache.
    pub specs_cached: u64,
    /// Specs that failed (worker death, panic) after exhausting retries.
    pub specs_failed: u64,
    /// Specs that missed their deadline after exhausting retries.
    pub specs_timed_out: u64,
    /// Spec attempts re-dispatched after a failure or timeout.
    pub specs_retried: u64,
    /// Result lines currently in the on-disk cache.
    pub cache_entries: u64,
    /// Total bytes of live cache entries.
    pub cache_bytes: u64,
    /// Invalid cache entries quarantined since daemon start.
    pub cache_quarantined: u64,
    /// Cache entries evicted by the size bound since daemon start.
    pub cache_evicted: u64,
    /// Journal records skipped as unreadable/unparseable on restart.
    pub journal_skipped: u64,
    /// Milliseconds since the daemon started (additive `victima-svc/1`
    /// extension; absent from pre-extension daemons parses as 0).
    pub uptime_ms: u64,
    /// Jobs accepted but not yet completed (queue + in flight; additive
    /// extension, same compatibility rule).
    pub jobs_pending: u64,
}

impl StatusInfo {
    /// Renders the `status` response line.
    pub fn to_line(&self) -> String {
        write_json_compact(&obj(vec![
            ("svc", JsonValue::Str(PROTO_ID.into())),
            ("type", JsonValue::Str("status".into())),
            ("engine", JsonValue::Str(self.engine.clone())),
            ("workers", JsonValue::Int(self.workers as i64)),
            ("jobs_accepted", JsonValue::Int(self.jobs_accepted as i64)),
            ("jobs_completed", JsonValue::Int(self.jobs_completed as i64)),
            ("specs_completed", JsonValue::Int(self.specs_completed as i64)),
            ("specs_simulated", JsonValue::Int(self.specs_simulated as i64)),
            ("specs_cached", JsonValue::Int(self.specs_cached as i64)),
            ("specs_failed", JsonValue::Int(self.specs_failed as i64)),
            ("specs_timed_out", JsonValue::Int(self.specs_timed_out as i64)),
            ("specs_retried", JsonValue::Int(self.specs_retried as i64)),
            ("cache_entries", JsonValue::Int(self.cache_entries as i64)),
            ("cache_bytes", JsonValue::Int(self.cache_bytes as i64)),
            ("cache_quarantined", JsonValue::Int(self.cache_quarantined as i64)),
            ("cache_evicted", JsonValue::Int(self.cache_evicted as i64)),
            ("journal_skipped", JsonValue::Int(self.journal_skipped as i64)),
            ("uptime_ms", JsonValue::Int(self.uptime_ms as i64)),
            ("jobs_pending", JsonValue::Int(self.jobs_pending as i64)),
        ]))
    }

    fn from_value(doc: &JsonValue) -> Result<Self, String> {
        Ok(Self {
            engine: req_str(doc, "engine")?,
            workers: req_u64(doc, "workers")?,
            jobs_accepted: req_u64(doc, "jobs_accepted")?,
            jobs_completed: req_u64(doc, "jobs_completed")?,
            specs_completed: req_u64(doc, "specs_completed")?,
            specs_simulated: req_u64(doc, "specs_simulated")?,
            specs_cached: req_u64(doc, "specs_cached")?,
            specs_failed: req_u64(doc, "specs_failed")?,
            specs_timed_out: req_u64(doc, "specs_timed_out")?,
            specs_retried: req_u64(doc, "specs_retried")?,
            cache_entries: req_u64(doc, "cache_entries")?,
            cache_bytes: req_u64(doc, "cache_bytes")?,
            cache_quarantined: req_u64(doc, "cache_quarantined")?,
            cache_evicted: req_u64(doc, "cache_evicted")?,
            journal_skipped: req_u64(doc, "journal_skipped")?,
            uptime_ms: opt_u64(doc, "uptime_ms")?,
            jobs_pending: opt_u64(doc, "jobs_pending")?,
        })
    }
}

/// The daemon's observability registry, reported by the `metrics` op:
/// everything `status` cannot answer — live queue depth, the spec
/// latency distribution, per-worker utilization, and cache
/// effectiveness. All values are diagnostics over the daemon's own
/// monotonic clock; nothing here touches result bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsInfo {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Specs sitting in the dispatch queue right now.
    pub queue_depth: u64,
    /// Worker slots (= lengths of the per-worker vectors).
    pub workers: u64,
    /// Per-worker milliseconds spent executing specs.
    pub worker_busy_ms: Vec<u64>,
    /// Per-worker specs run to a final outcome.
    pub worker_specs: Vec<u64>,
    /// Successful spec executions observed by the latency histogram.
    pub latency_count: u64,
    /// Sum of observed spec latencies, in milliseconds.
    pub latency_sum_ms: u64,
    /// Power-of-two latency buckets (ms): bucket `i` counts latencies
    /// whose floor is `2^(i-1)` ms (bucket 0 is `< 1 ms`, the last
    /// bucket is open-ended). Same geometry as `obs::HistSnapshot`.
    pub latency_buckets: Vec<u64>,
    /// Specs answered straight from the result cache.
    pub cache_hits: u64,
    /// Specs that missed the cache and were dispatched to a worker.
    pub cache_misses: u64,
    /// Spec attempts re-dispatched after a failure or timeout.
    pub retries: u64,
    /// Specs that exhausted retries on the deadline path.
    pub timeouts: u64,
    /// Specs that exhausted retries on the worker-death path.
    pub failures: u64,
    /// Cache entries quarantined as corrupt since start.
    pub quarantined: u64,
    /// Worker processes discarded and respawned (death or deadline).
    pub worker_respawns: u64,
}

impl MetricsInfo {
    /// Cache hit ratio in `[0, 1]` (0 when nothing was looked up).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean spec latency in milliseconds (0 with no observations).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latency_count == 0 {
            0.0
        } else {
            self.latency_sum_ms as f64 / self.latency_count as f64
        }
    }

    /// Mean worker utilization in `[0, 1]`: busy time over wall time,
    /// averaged across the pool (0 before the clock has ticked).
    pub fn worker_utilization(&self) -> f64 {
        if self.uptime_ms == 0 || self.worker_busy_ms.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.worker_busy_ms.iter().sum();
        busy as f64 / (self.uptime_ms as f64 * self.worker_busy_ms.len() as f64)
    }

    /// Renders the `metrics` response line.
    pub fn to_line(&self) -> String {
        write_json_compact(&obj(vec![
            ("svc", JsonValue::Str(PROTO_ID.into())),
            ("type", JsonValue::Str("metrics".into())),
            ("uptime_ms", JsonValue::Int(self.uptime_ms as i64)),
            ("queue_depth", JsonValue::Int(self.queue_depth as i64)),
            ("workers", JsonValue::Int(self.workers as i64)),
            ("worker_busy_ms", u64_arr(&self.worker_busy_ms)),
            ("worker_specs", u64_arr(&self.worker_specs)),
            ("latency_count", JsonValue::Int(self.latency_count as i64)),
            ("latency_sum_ms", JsonValue::Int(self.latency_sum_ms as i64)),
            ("latency_buckets", u64_arr(&self.latency_buckets)),
            ("cache_hits", JsonValue::Int(self.cache_hits as i64)),
            ("cache_misses", JsonValue::Int(self.cache_misses as i64)),
            ("cache_hit_ratio", JsonValue::Num(self.cache_hit_ratio())),
            ("retries", JsonValue::Int(self.retries as i64)),
            ("timeouts", JsonValue::Int(self.timeouts as i64)),
            ("failures", JsonValue::Int(self.failures as i64)),
            ("quarantined", JsonValue::Int(self.quarantined as i64)),
            ("worker_respawns", JsonValue::Int(self.worker_respawns as i64)),
        ]))
    }

    fn from_value(doc: &JsonValue) -> Result<Self, String> {
        // `cache_hit_ratio` is derived on render and recomputed on read.
        Ok(Self {
            uptime_ms: req_u64(doc, "uptime_ms")?,
            queue_depth: req_u64(doc, "queue_depth")?,
            workers: req_u64(doc, "workers")?,
            worker_busy_ms: req_u64_arr(doc, "worker_busy_ms")?,
            worker_specs: req_u64_arr(doc, "worker_specs")?,
            latency_count: req_u64(doc, "latency_count")?,
            latency_sum_ms: req_u64(doc, "latency_sum_ms")?,
            latency_buckets: req_u64_arr(doc, "latency_buckets")?,
            cache_hits: req_u64(doc, "cache_hits")?,
            cache_misses: req_u64(doc, "cache_misses")?,
            retries: req_u64(doc, "retries")?,
            timeouts: req_u64(doc, "timeouts")?,
            failures: req_u64(doc, "failures")?,
            quarantined: req_u64(doc, "quarantined")?,
            worker_respawns: req_u64(doc, "worker_respawns")?,
        })
    }
}

/// A parsed response stream line.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamLine {
    /// The sweep was accepted; `specs` entries will follow.
    Accepted {
        /// Journal job id.
        job: String,
        /// Number of spec entries the stream will carry.
        specs: u64,
    },
    /// One spec's result report.
    Result {
        /// Content address of the spec (cache key).
        fingerprint: String,
        /// The full per-spec report document (boxed: a report dwarfs
        /// every other variant).
        report: Box<ExperimentReport>,
    },
    /// One spec failed; the rest of the sweep is unaffected.
    Error {
        /// Content address of the spec.
        fingerprint: String,
        /// Config registry key.
        config: String,
        /// Workload abbreviation.
        workload: String,
        /// What went wrong.
        error: String,
    },
    /// One spec's worker missed the per-spec deadline (killed and
    /// respawned); the rest of the sweep is unaffected.
    Timeout {
        /// Content address of the spec.
        fingerprint: String,
        /// Config registry key.
        config: String,
        /// Workload abbreviation.
        workload: String,
        /// Deadline details (budget, attempts).
        error: String,
    },
    /// The sweep finished.
    Done {
        /// Journal job id.
        job: String,
        /// Result entries streamed (cached + simulated).
        results: u64,
        /// How many of those came from the cache.
        cached: u64,
        /// Error entries streamed.
        errors: u64,
    },
    /// Status counters.
    Status(StatusInfo),
    /// Observability registry dump.
    Metrics(MetricsInfo),
    /// The request itself was rejected.
    Fault {
        /// Why the request was rejected.
        error: String,
    },
    /// Bare acknowledgement.
    Ok,
}

/// Parses one response stream line.
pub fn parse_stream_line(line: &str) -> Result<StreamLine, String> {
    let doc = parse_json(line).map_err(|e| e.to_string())?;
    let proto = req_str(&doc, "svc")?;
    if proto != PROTO_ID {
        return Err(format!("unsupported protocol {proto:?} (this client speaks {PROTO_ID:?})"));
    }
    match req_str(&doc, "type")?.as_str() {
        "accepted" => Ok(StreamLine::Accepted { job: req_str(&doc, "job")?, specs: req_u64(&doc, "specs")? }),
        "result" => Ok(StreamLine::Result {
            fingerprint: req_str(&doc, "fingerprint")?,
            report: Box::new(value_to_report(req(&doc, "report")?)?),
        }),
        "error" => Ok(StreamLine::Error {
            fingerprint: req_str(&doc, "fingerprint")?,
            config: req_str(&doc, "config")?,
            workload: req_str(&doc, "workload")?,
            error: req_str(&doc, "error")?,
        }),
        "timeout" => Ok(StreamLine::Timeout {
            fingerprint: req_str(&doc, "fingerprint")?,
            config: req_str(&doc, "config")?,
            workload: req_str(&doc, "workload")?,
            error: req_str(&doc, "error")?,
        }),
        "done" => Ok(StreamLine::Done {
            job: req_str(&doc, "job")?,
            results: req_u64(&doc, "results")?,
            cached: req_u64(&doc, "cached")?,
            errors: req_u64(&doc, "errors")?,
        }),
        "status" => Ok(StreamLine::Status(StatusInfo::from_value(&doc)?)),
        "metrics" => Ok(StreamLine::Metrics(MetricsInfo::from_value(&doc)?)),
        "fault" => Ok(StreamLine::Fault { error: req_str(&doc, "error")? }),
        "ok" => Ok(StreamLine::Ok),
        other => Err(format!("unknown stream line type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> SweepRequest {
        SweepRequest {
            configs: vec!["radix".into(), "victima".into()],
            workloads: vec!["RND".into(), "XS".into()],
            scale: Scale::Tiny,
            warmup: 1_000,
            instructions: 10_000,
            seed: 0xfeed_beef,
            sampling: None,
        }
    }

    #[test]
    fn request_round_trips_through_its_line_form() {
        let req = sample_request();
        assert_eq!(SweepRequest::from_line(&req.to_line()).unwrap(), req);
        let sampled = SweepRequest {
            sampling: Some(SamplingConfig { fast: 20_000, detailed: 2_000, warm: 1_000 }),
            ..sample_request()
        };
        assert_eq!(SweepRequest::from_line(&sampled.to_line()).unwrap(), sampled);
    }

    #[test]
    fn specs_expand_in_sweep_order() {
        let specs = sample_request().specs().unwrap();
        let labels: Vec<String> = specs.iter().map(SpecDesc::label).collect();
        assert_eq!(labels, ["radix/RND", "radix/XS", "victima/RND", "victima/XS"]);
    }

    #[test]
    fn specs_reject_unknown_names_up_front() {
        let mut req = sample_request();
        req.configs = vec!["warp-drive".into()];
        assert!(req.specs().unwrap_err().contains("unknown config"));
        let mut req = sample_request();
        req.workloads = vec!["NOPE".into()];
        assert!(req.specs().unwrap_err().contains("unknown workload"));
        let mut req = sample_request();
        req.workloads.clear();
        assert!(req.specs().unwrap_err().contains("at least one workload"));
    }

    #[test]
    fn spec_desc_round_trips_and_resolves() {
        let desc = sample_request().specs().unwrap().remove(2);
        assert_eq!(SpecDesc::from_line(&desc.to_line()).unwrap(), desc);
        let spec = desc.to_run_spec().unwrap();
        assert_eq!(spec.config.name, "Victima");
        assert_eq!(spec.seed, 0xfeed_beef);
    }

    #[test]
    fn result_line_carries_a_full_report_document() {
        let desc = sample_request().specs().unwrap().remove(0);
        let spec = desc.to_run_spec().unwrap();
        let stats = SimStats::default();
        let line = result_line(&spec.fingerprint(), &result_report(&desc, &spec, &stats));
        assert!(!line.contains('\n'));
        match parse_stream_line(&line).unwrap() {
            StreamLine::Result { fingerprint, report } => {
                assert_eq!(fingerprint, spec.fingerprint());
                assert_eq!(report.id, "sweep_result");
                assert_eq!(report.provenance.engine, ENGINE_ID);
                assert_eq!(report.provenance.workloads, ["RND"]);
                assert!(report.metric("ipc").is_some());
            }
            other => panic!("expected a result line, got {other:?}"),
        }
    }

    #[test]
    fn control_lines_round_trip() {
        let desc = sample_request().specs().unwrap().remove(0);
        let status =
            StatusInfo { engine: ENGINE_ID.into(), workers: 2, specs_cached: 7, ..Default::default() };
        let cases = [
            (accepted_line("job-000001", 4), StreamLine::Accepted { job: "job-000001".into(), specs: 4 }),
            (
                done_line("job-000001", 3, 2, 1),
                StreamLine::Done { job: "job-000001".into(), results: 3, cached: 2, errors: 1 },
            ),
            (
                error_line("ab", &desc, "worker died"),
                StreamLine::Error {
                    fingerprint: "ab".into(),
                    config: "radix".into(),
                    workload: "RND".into(),
                    error: "worker died".into(),
                },
            ),
            (
                timeout_line("ab", &desc, "missed the 500ms deadline"),
                StreamLine::Timeout {
                    fingerprint: "ab".into(),
                    config: "radix".into(),
                    workload: "RND".into(),
                    error: "missed the 500ms deadline".into(),
                },
            ),
            (fault_line("bad request"), StreamLine::Fault { error: "bad request".into() }),
            (status.to_line(), StreamLine::Status(status)),
            (ok_line(), StreamLine::Ok),
        ];
        for (line, want) in cases {
            assert_eq!(parse_stream_line(&line).unwrap(), want, "{line}");
        }
    }

    #[test]
    fn metrics_line_round_trips_and_derives_ratios() {
        let info = MetricsInfo {
            uptime_ms: 10_000,
            queue_depth: 3,
            workers: 2,
            worker_busy_ms: vec![4_000, 6_000],
            worker_specs: vec![7, 9],
            latency_count: 16,
            latency_sum_ms: 800,
            latency_buckets: vec![0; 16],
            cache_hits: 30,
            cache_misses: 10,
            retries: 2,
            timeouts: 1,
            failures: 1,
            quarantined: 0,
            worker_respawns: 2,
        };
        assert_eq!(info.cache_hit_ratio(), 0.75);
        assert_eq!(info.mean_latency_ms(), 50.0);
        assert_eq!(info.worker_utilization(), 0.5);
        let line = info.to_line();
        assert!(!line.contains('\n'));
        match parse_stream_line(&line).unwrap() {
            StreamLine::Metrics(parsed) => assert_eq!(parsed, info),
            other => panic!("expected a metrics line, got {other:?}"),
        }
        // Zero denominators never divide.
        let empty = MetricsInfo::default();
        assert_eq!(empty.cache_hit_ratio(), 0.0);
        assert_eq!(empty.mean_latency_ms(), 0.0);
        assert_eq!(empty.worker_utilization(), 0.0);
    }

    #[test]
    fn status_line_tolerates_missing_additive_fields() {
        // A pre-extension daemon's status line (no uptime_ms /
        // jobs_pending) must still parse — the proto id did not bump.
        let status =
            StatusInfo { engine: ENGINE_ID.into(), uptime_ms: 123, jobs_pending: 1, ..Default::default() };
        let line = status.to_line();
        let stripped = line.replace(",\"uptime_ms\":123", "").replace(",\"jobs_pending\":1", "");
        match parse_stream_line(&stripped).unwrap() {
            StreamLine::Status(parsed) => {
                assert_eq!(parsed.uptime_ms, 0);
                assert_eq!(parsed.jobs_pending, 0);
                assert_eq!(parsed.engine, ENGINE_ID);
            }
            other => panic!("expected a status line, got {other:?}"),
        }
    }

    #[test]
    fn foreign_protocol_ids_are_rejected() {
        let line = ok_line().replace(PROTO_ID, "victima-svc/999");
        assert!(parse_stream_line(&line).unwrap_err().contains("unsupported protocol"));
        assert!(parse_request("{\"op\":\"fly\"}").unwrap_err().contains("unknown op"));
    }
}
