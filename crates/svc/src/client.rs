//! Client-side helpers: find a daemon through its service directory,
//! submit sweeps, and run the identical sweep in-process (`--local`).
//!
//! Every socket the client opens carries timeouts ([`ClientOptions`]):
//! a dead or wedged daemon surfaces as a typed "daemon unresponsive"
//! error naming the address file instead of a forever-blocked terminal.
//! [`submit_resumed`] layers reconnect-and-resume on top — if the stream
//! drops mid-sweep it polls `status` until the daemon is back, resubmits
//! the identical request, and skips the per-spec lines it already
//! delivered; because finished specs replay byte-identically from the
//! cache, the concatenation equals a clean single-connection run.

use crate::daemon::ADDR_FILE;
use crate::proto::{parse_stream_line, MetricsInfo, StatusInfo, StreamLine, SweepRequest};
use crate::worker::run_spec;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// Socket timeouts for client operations.
#[derive(Clone, Copy, Debug)]
pub struct ClientOptions {
    /// TCP connect timeout (the daemon should accept instantly; a long
    /// wait means it is gone or wedged).
    pub connect_timeout: Duration,
    /// Per-read timeout on the reply stream. Submit streams idle while a
    /// spec simulates, so this must cover the slowest single spec — it
    /// defaults to the daemon's own per-spec deadline.
    pub read_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self { connect_timeout: Duration::from_secs(5), read_timeout: crate::daemon::DEFAULT_DEADLINE }
    }
}

impl ClientOptions {
    /// Options for quick control calls (`status`/`shutdown`) whose
    /// replies are immediate: short read timeout.
    pub fn control() -> Self {
        Self { read_timeout: Duration::from_secs(10), ..Self::default() }
    }
}

fn read_addr(dir: &Path) -> io::Result<(SocketAddr, std::path::PathBuf)> {
    let addr_path = dir.join(ADDR_FILE);
    let addr = std::fs::read_to_string(&addr_path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("no daemon address at {} (is `experiments serve` running?): {e}", addr_path.display()),
        )
    })?;
    let addr = addr.trim().parse::<SocketAddr>().map_err(|e| {
        io::Error::new(
            ErrorKind::InvalidData,
            format!("malformed daemon address in {}: {e}", addr_path.display()),
        )
    })?;
    Ok((addr, addr_path))
}

/// Connects to the daemon owning a service directory by reading its
/// [`ADDR_FILE`], with default [`ClientOptions`] timeouts.
pub fn connect(dir: &Path) -> io::Result<TcpStream> {
    connect_with(dir, ClientOptions::default())
}

/// [`connect`] with explicit timeouts. A connect that times out (or is
/// refused — stale addr file, daemon killed) reports the daemon as
/// unresponsive and names the address file to check.
pub fn connect_with(dir: &Path, opts: ClientOptions) -> io::Result<TcpStream> {
    let (addr, addr_path) = read_addr(dir)?;
    let stream = TcpStream::connect_timeout(&addr, opts.connect_timeout).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "daemon unresponsive: connect to {addr} failed within {:?} ({e}); \
                 if it is dead, remove {} and restart `experiments serve`",
                opts.connect_timeout,
                addr_path.display()
            ),
        )
    })?;
    stream.set_read_timeout(Some(opts.read_timeout))?;
    Ok(stream)
}

fn read_error(e: &io::Error, what: &str) -> String {
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        format!("daemon unresponsive: no {what} within the read timeout ({e})")
    } else {
        format!("{what} read failed: {e}")
    }
}

/// What a finished sweep streamed back.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Journal job id the daemon assigned.
    pub job: String,
    /// Specs the sweep expanded to.
    pub specs: u64,
    /// Result entries (cached + simulated).
    pub results: u64,
    /// How many results came from the cache.
    pub cached: u64,
    /// Typed `error` + `timeout` entries.
    pub errors: u64,
    /// Submit connections this sweep burned through (1 = no drops).
    pub connections: u64,
}

/// Submits a sweep and streams the response. `on_line` sees every
/// per-spec line (the raw bytes plus its parsed form) as it arrives —
/// control lines (`accepted`/`done`) are folded into the returned
/// summary instead. A dropped or stalled stream is an error here; use
/// [`submit_resumed`] for the reconnecting variant.
pub fn submit(
    stream: TcpStream,
    req: &SweepRequest,
    mut on_line: impl FnMut(&str, &StreamLine),
) -> Result<SweepSummary, String> {
    let mut summary = SweepSummary::default();
    submit_once(stream, req, &mut 0, &mut summary, &mut on_line)?;
    summary.connections = 1;
    Ok(summary)
}

/// One submit attempt, skipping the first `seen` per-spec lines (already
/// delivered by an earlier connection). On success the summary is
/// complete; on error `seen` reflects every line delivered so far.
fn submit_once(
    mut stream: TcpStream,
    req: &SweepRequest,
    seen: &mut u64,
    summary: &mut SweepSummary,
    on_line: &mut impl FnMut(&str, &StreamLine),
) -> Result<(), String> {
    writeln!(stream, "{}", req.to_line()).map_err(|e| format!("submit write failed: {e}"))?;
    stream.flush().map_err(|e| format!("submit write failed: {e}"))?;
    let reader = BufReader::new(stream);
    let mut spec_lines = 0u64;
    for line in reader.lines() {
        let line = line.map_err(|e| read_error(&e, "submit stream"))?;
        match parse_stream_line(&line)? {
            StreamLine::Accepted { job, specs } => {
                summary.job = job;
                summary.specs = specs;
            }
            StreamLine::Done { results, cached, errors, .. } => {
                summary.results = results;
                summary.cached = cached;
                summary.errors = errors;
                return Ok(());
            }
            StreamLine::Fault { error } => return Err(error),
            parsed @ (StreamLine::Result { .. } | StreamLine::Error { .. } | StreamLine::Timeout { .. }) => {
                spec_lines += 1;
                if spec_lines > *seen {
                    *seen = spec_lines;
                    on_line(&line, &parsed);
                }
            }
            other => return Err(format!("unexpected line in submit stream: {other:?}")),
        }
    }
    Err("daemon closed the stream before sending done".into())
}

/// Submits a sweep, reconnecting and resuming if the connection drops
/// mid-stream. Each reconnect waits for the daemon to answer `status`
/// (it may be mid-restart), resubmits the identical request, and
/// suppresses the per-spec lines already delivered — every finished spec
/// replays byte-identically from the cache, so `on_line` sees exactly
/// the clean single-connection sequence. Gives up after `attempts` total
/// connections with the last error.
pub fn submit_resumed(
    dir: &Path,
    opts: ClientOptions,
    attempts: u32,
    req: &SweepRequest,
    mut on_line: impl FnMut(&str, &StreamLine),
) -> Result<SweepSummary, String> {
    let attempts = attempts.max(1);
    let mut summary = SweepSummary::default();
    let mut seen = 0u64;
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            eprintln!("svc: submit stream lost ({last}); reconnecting (attempt {}/{attempts})", attempt + 1);
            if let Err(e) = await_daemon(dir, opts, Duration::from_secs(30)) {
                return Err(format!("{last}; reconnect failed: {e}"));
            }
        }
        let stream = match connect_with(dir, opts) {
            Ok(s) => s,
            // A daemon that was never reachable is not worth retrying —
            // fail fast with the typed "unresponsive" error (reconnects
            // are for daemons that answered and then went away).
            Err(e) if attempt == 0 => return Err(e.to_string()),
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        match submit_once(stream, req, &mut seen, &mut summary, &mut on_line) {
            Ok(()) => {
                summary.connections = u64::from(attempt) + 1;
                return Ok(summary);
            }
            Err(e) => last = e,
        }
    }
    Err(format!("submit failed after {attempts} connection(s): {last}"))
}

/// Polls `status` until the daemon answers or `patience` runs out — the
/// "is it back yet?" half of reconnect-and-resume.
fn await_daemon(dir: &Path, opts: ClientOptions, patience: Duration) -> Result<StatusInfo, String> {
    let deadline = Instant::now() + patience;
    loop {
        let last = match status_with(dir, ClientOptions { read_timeout: Duration::from_secs(5), ..opts }) {
            Ok(info) => return Ok(info),
            Err(e) => e,
        };
        if Instant::now() >= deadline {
            return Err(format!("daemon did not come back within {patience:?}: {last}"));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Asks a daemon for its status counters.
pub fn status(dir: &Path) -> Result<StatusInfo, String> {
    status_with(dir, ClientOptions::control())
}

/// [`status`] with explicit timeouts.
pub fn status_with(dir: &Path, opts: ClientOptions) -> Result<StatusInfo, String> {
    let mut stream = connect_with(dir, opts).map_err(|e| e.to_string())?;
    writeln!(stream, "{{\"op\":\"status\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| read_error(&e, "status reply"))?;
    match parse_stream_line(line.trim())? {
        StreamLine::Status(info) => Ok(info),
        other => Err(format!("expected a status line, got {other:?}")),
    }
}

/// Asks a daemon for its observability registry (queue depth, latency
/// histogram, per-worker utilization, cache hit ratio).
pub fn metrics(dir: &Path) -> Result<MetricsInfo, String> {
    metrics_with(dir, ClientOptions::control())
}

/// [`metrics`] with explicit timeouts.
pub fn metrics_with(dir: &Path, opts: ClientOptions) -> Result<MetricsInfo, String> {
    let mut stream = connect_with(dir, opts).map_err(|e| e.to_string())?;
    writeln!(stream, "{{\"op\":\"metrics\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| read_error(&e, "metrics reply"))?;
    match parse_stream_line(line.trim())? {
        StreamLine::Metrics(info) => Ok(info),
        other => Err(format!("expected a metrics line, got {other:?}")),
    }
}

/// Asks a daemon to shut down.
pub fn shutdown(dir: &Path) -> Result<(), String> {
    let mut stream = connect_with(dir, ClientOptions::control()).map_err(|e| e.to_string())?;
    writeln!(stream, "{{\"op\":\"shutdown\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| read_error(&e, "shutdown reply"))?;
    match parse_stream_line(line.trim())? {
        StreamLine::Ok => Ok(()),
        other => Err(format!("expected an ok line, got {other:?}")),
    }
}

/// Runs a sweep in-process with no daemon, emitting the same per-spec
/// lines a daemon would stream (same single-spec execution path, so the
/// bytes match — the CI smoke job diffs exactly this against the
/// daemon's output). Specs run sequentially in sweep order.
pub fn run_local(req: &SweepRequest, mut on_line: impl FnMut(&str)) -> Result<SweepSummary, String> {
    let specs = req.specs()?;
    let mut summary =
        SweepSummary { job: "local".into(), specs: specs.len() as u64, ..SweepSummary::default() };
    for desc in &specs {
        let line = run_spec(desc)?;
        on_line(&line);
        summary.results += 1;
    }
    Ok(summary)
}
