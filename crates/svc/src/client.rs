//! Client-side helpers: find a daemon through its service directory,
//! submit sweeps, and run the identical sweep in-process (`--local`).

use crate::daemon::ADDR_FILE;
use crate::proto::{parse_stream_line, StatusInfo, StreamLine, SweepRequest};
use crate::worker::run_spec;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// Connects to the daemon owning a service directory by reading its
/// [`ADDR_FILE`].
pub fn connect(dir: &Path) -> io::Result<TcpStream> {
    let addr_path = dir.join(ADDR_FILE);
    let addr = std::fs::read_to_string(&addr_path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("no daemon address at {} (is `experiments serve` running?): {e}", addr_path.display()),
        )
    })?;
    TcpStream::connect(addr.trim())
}

/// What a finished sweep streamed back.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Journal job id the daemon assigned.
    pub job: String,
    /// Specs the sweep expanded to.
    pub specs: u64,
    /// Result entries (cached + simulated).
    pub results: u64,
    /// How many results came from the cache.
    pub cached: u64,
    /// Typed error entries.
    pub errors: u64,
}

/// Submits a sweep and streams the response. `on_line` sees every
/// per-spec line (the raw bytes plus its parsed form) as it arrives —
/// control lines (`accepted`/`done`) are folded into the returned
/// summary instead.
pub fn submit(
    mut stream: TcpStream,
    req: &SweepRequest,
    mut on_line: impl FnMut(&str, &StreamLine),
) -> Result<SweepSummary, String> {
    writeln!(stream, "{}", req.to_line()).map_err(|e| format!("submit write failed: {e}"))?;
    stream.flush().map_err(|e| format!("submit write failed: {e}"))?;
    let reader = BufReader::new(stream);
    let mut summary = SweepSummary::default();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("stream read failed: {e}"))?;
        match parse_stream_line(&line)? {
            StreamLine::Accepted { job, specs } => {
                summary.job = job;
                summary.specs = specs;
            }
            StreamLine::Done { results, cached, errors, .. } => {
                summary.results = results;
                summary.cached = cached;
                summary.errors = errors;
                return Ok(summary);
            }
            StreamLine::Fault { error } => return Err(error),
            parsed @ (StreamLine::Result { .. } | StreamLine::Error { .. }) => on_line(&line, &parsed),
            other => return Err(format!("unexpected line in submit stream: {other:?}")),
        }
    }
    Err("daemon closed the stream before sending done".into())
}

/// Asks a daemon for its status counters.
pub fn status(dir: &Path) -> Result<StatusInfo, String> {
    let mut stream = connect(dir).map_err(|e| e.to_string())?;
    writeln!(stream, "{{\"op\":\"status\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| e.to_string())?;
    match parse_stream_line(line.trim())? {
        StreamLine::Status(info) => Ok(info),
        other => Err(format!("expected a status line, got {other:?}")),
    }
}

/// Asks a daemon to shut down.
pub fn shutdown(dir: &Path) -> Result<(), String> {
    let mut stream = connect(dir).map_err(|e| e.to_string())?;
    writeln!(stream, "{{\"op\":\"shutdown\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| e.to_string())?;
    match parse_stream_line(line.trim())? {
        StreamLine::Ok => Ok(()),
        other => Err(format!("expected an ok line, got {other:?}")),
    }
}

/// Runs a sweep in-process with no daemon, emitting the same per-spec
/// lines a daemon would stream (same single-spec execution path, so the
/// bytes match — the CI smoke job diffs exactly this against the
/// daemon's output). Specs run sequentially in sweep order.
pub fn run_local(req: &SweepRequest, mut on_line: impl FnMut(&str)) -> Result<SweepSummary, String> {
    let specs = req.specs()?;
    let mut summary =
        SweepSummary { job: "local".into(), specs: specs.len() as u64, ..SweepSummary::default() };
    for desc in &specs {
        let line = run_spec(desc)?;
        on_line(&line);
        summary.results += 1;
    }
    Ok(summary)
}
