//! Deterministic fault injection for the sweep service.
//!
//! A [`FaultPlan`] names the failures a daemon should inject into its own
//! machinery — hung or aborting workers, slow specs, torn/corrupt/empty
//! cache entries, truncated journal records, dropped client connections —
//! so the chaos suite can drive every recovery path through the *real*
//! binary instead of waiting for production to produce each failure by
//! accident. Plans are parsed from `serve --faults` (or the
//! `VICTIMA_SVC_FAULTS` environment variable) and are **seeded**: every
//! probabilistic decision is a stateless hash of
//! `(seed, site, spec key, attempt)` via the same SplitMix64 mixer the
//! workload generators use, so a given plan injects the identical fault
//! sequence on every run regardless of thread scheduling or wall-clock.
//! Folding the attempt number into the draw is what makes retry testing
//! possible: a fault with probability `p < 1` can hit attempt 0 and miss
//! attempt 1, exercising the dispatcher's re-dispatch path end to end.
//!
//! Grammar (comma-separated directives; probabilities default to 1):
//!
//! ```text
//! plan      := directive (',' directive)*
//! directive := 'seed=0x' HEX
//!            | 'hang='  workload prob?     worker never replies (killed at deadline)
//!            | 'abort=' workload prob?     worker calls abort() mid-spec
//!            | 'slow='  workload ':' MS prob?   worker sleeps MS ms before simulating
//!            | 'cache-torn' prob?          store writes a torn (half) entry
//!            | 'cache-corrupt' prob?       store flips a payload byte under a stale checksum
//!            | 'cache-empty' prob?         store writes a zero-byte entry
//!            | 'journal-truncate' prob?    journal record is cut mid-line
//!            | 'drop-conn=' COUNT          drop the first COUNT submit streams mid-sweep
//! workload  := NAME | '*'
//! prob      := '@' FLOAT                   in (0, 1]; omitted = always
//! ```
//!
//! All decisions are made **daemon-side** (worker faults travel to the
//! worker process as an `"inject"` key on the spec line), so the plan has
//! one owner and one seed; worker processes stay env-free.

use vm_types::{mix2, DEFAULT_SEED};

/// Environment variable carrying a fault plan, read by `serve` when no
/// `--faults` flag is given (same grammar).
pub const FAULTS_ENV: &str = "VICTIMA_SVC_FAULTS";

/// 64-bit FNV-1a over a byte string: the spec-fingerprint hash, reused
/// here for fault-decision keys and the cache entry checksum trailer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fault to inject into one worker attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker never answers this spec (the dispatcher's deadline must
    /// kill it).
    Hang,
    /// The worker calls `abort()` instead of simulating.
    Abort,
    /// The worker sleeps this many milliseconds before simulating.
    Slow(u64),
}

impl WorkerFault {
    /// The wire spelling carried to the worker process as the spec line's
    /// `"inject"` member.
    pub fn wire(&self) -> String {
        match self {
            WorkerFault::Hang => "hang".to_owned(),
            WorkerFault::Abort => "abort".to_owned(),
            WorkerFault::Slow(ms) => format!("slow:{ms}"),
        }
    }

    /// Parses the wire spelling back (the worker-process side).
    pub fn from_wire(s: &str) -> Result<Self, String> {
        if let Some(ms) = s.strip_prefix("slow:") {
            return ms.parse().map(WorkerFault::Slow).map_err(|e| format!("bad slow fault {s:?}: {e}"));
        }
        match s {
            "hang" => Ok(WorkerFault::Hang),
            "abort" => Ok(WorkerFault::Abort),
            other => Err(format!("unknown injected fault {other:?}")),
        }
    }
}

/// A fault to inject into one cache store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheFault {
    /// Write only the first half of the framed entry (a disk-full /
    /// kill-mid-write torn entry; no valid trailer survives).
    Torn,
    /// Flip one payload byte but keep the trailer computed over the clean
    /// payload — an on-disk bit flip the checksum must catch.
    Corrupt,
    /// Write a zero-byte entry (the classic disk-full artifact).
    Empty,
}

/// Sites a probabilistic decision can be drawn at; each gets its own salt
/// so `hang=*@0.5,abort=*@0.5` draw independently.
#[derive(Clone, Copy)]
enum Salt {
    Hang = 0x68_61_6e_67,
    Abort = 0x61_62_6f_72,
    Slow = 0x73_6c_6f_77,
    CacheTorn = 0x63_74_6f_72,
    CacheCorrupt = 0x63_63_6f_72,
    CacheEmpty = 0x63_65_6d_70,
    Journal = 0x6a_74_72_75,
}

#[derive(Clone, Debug, PartialEq)]
enum Directive {
    Hang { workload: String, prob: f64 },
    Abort { workload: String, prob: f64 },
    Slow { workload: String, ms: u64, prob: f64 },
    CacheTorn { prob: f64 },
    CacheCorrupt { prob: f64 },
    CacheEmpty { prob: f64 },
    JournalTruncate { prob: f64 },
    DropConn { count: u64 },
}

/// A parsed, seeded fault-injection plan. The empty plan (no directives)
/// injects nothing and is the default everywhere.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    directives: Vec<Directive>,
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Parses a plan from the `--faults` grammar (see the module docs).
    /// An empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self { seed: DEFAULT_SEED, directives: Vec::new() };
        for raw in spec.split(',') {
            let d = raw.trim();
            if d.is_empty() {
                continue;
            }
            if let Some(hex) = d.strip_prefix("seed=0x") {
                plan.seed = u64::from_str_radix(hex, 16).map_err(|e| format!("bad fault seed {d:?}: {e}"))?;
                continue;
            }
            let (body, prob) = split_prob(d)?;
            plan.directives.push(parse_directive(&body, prob)?);
        }
        Ok(plan)
    }

    /// Builds the plan a daemon should run under from the environment:
    /// [`FAULTS_ENV`] (full grammar) plus the legacy
    /// [`crate::worker::CRASH_ENV`] knob, which maps to `abort=<workload>`
    /// — the ad-hoc crash switch this plan subsumes.
    pub fn from_env() -> Result<Self, String> {
        let mut plan = match std::env::var(FAULTS_ENV) {
            Ok(spec) => Self::parse(&spec)?,
            Err(_) => Self::none(),
        };
        if let Ok(workload) = std::env::var(crate::worker::CRASH_ENV) {
            plan.directives.push(Directive::Abort { workload, prob: 1.0 });
        }
        Ok(plan)
    }

    /// The fault (if any) to inject into `attempt` of the spec whose
    /// workload is `workload` and whose fingerprint hashes to `key`.
    /// First matching directive wins, in plan order.
    pub fn worker_fault(&self, workload: &str, key: u64, attempt: u32) -> Option<WorkerFault> {
        for d in &self.directives {
            match d {
                Directive::Hang { workload: w, prob }
                    if matches(w, workload) && self.decide(Salt::Hang, key, attempt, *prob) =>
                {
                    return Some(WorkerFault::Hang);
                }
                Directive::Abort { workload: w, prob }
                    if matches(w, workload) && self.decide(Salt::Abort, key, attempt, *prob) =>
                {
                    return Some(WorkerFault::Abort);
                }
                Directive::Slow { workload: w, ms, prob }
                    if matches(w, workload) && self.decide(Salt::Slow, key, attempt, *prob) =>
                {
                    return Some(WorkerFault::Slow(*ms));
                }
                _ => {}
            }
        }
        None
    }

    /// The fault (if any) to inject into the `serial`-th cache store of
    /// the entry whose fingerprint hashes to `key`.
    pub fn cache_fault(&self, key: u64, serial: u64) -> Option<CacheFault> {
        let serial = u32::try_from(serial & 0xffff_ffff).expect("masked to 32 bits");
        for d in &self.directives {
            match d {
                Directive::CacheTorn { prob } if self.decide(Salt::CacheTorn, key, serial, *prob) => {
                    return Some(CacheFault::Torn);
                }
                Directive::CacheCorrupt { prob } if self.decide(Salt::CacheCorrupt, key, serial, *prob) => {
                    return Some(CacheFault::Corrupt);
                }
                Directive::CacheEmpty { prob } if self.decide(Salt::CacheEmpty, key, serial, *prob) => {
                    return Some(CacheFault::Empty);
                }
                _ => {}
            }
        }
        None
    }

    /// Whether the journal record for the job whose id hashes to `key`
    /// should be cut mid-line.
    pub fn journal_truncate(&self, key: u64) -> bool {
        self.directives.iter().any(|d| match d {
            Directive::JournalTruncate { prob } => self.decide(Salt::Journal, key, 0, *prob),
            _ => false,
        })
    }

    /// How many submit streams to drop mid-sweep before behaving (the
    /// daemon counts drops against this budget).
    pub fn drop_conn_budget(&self) -> u64 {
        self.directives
            .iter()
            .map(|d| match d {
                Directive::DropConn { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// One deterministic Bernoulli draw: a stateless hash of
    /// `(seed, site, key, attempt)` compared against `prob`. Independent
    /// of call order, thread scheduling, and wall-clock.
    fn decide(&self, salt: Salt, key: u64, attempt: u32, prob: f64) -> bool {
        if prob >= 1.0 {
            return true;
        }
        let h = mix2(self.seed ^ (salt as u64), key ^ (u64::from(attempt) << 48));
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < prob
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "(none)");
        }
        write!(f, "seed=0x{:x}", self.seed)?;
        for d in &self.directives {
            let part = match d {
                Directive::Hang { workload, prob } => format!("hang={workload}{}", prob_suffix(*prob)),
                Directive::Abort { workload, prob } => format!("abort={workload}{}", prob_suffix(*prob)),
                Directive::Slow { workload, ms, prob } => {
                    format!("slow={workload}:{ms}{}", prob_suffix(*prob))
                }
                Directive::CacheTorn { prob } => format!("cache-torn{}", prob_suffix(*prob)),
                Directive::CacheCorrupt { prob } => format!("cache-corrupt{}", prob_suffix(*prob)),
                Directive::CacheEmpty { prob } => format!("cache-empty{}", prob_suffix(*prob)),
                Directive::JournalTruncate { prob } => format!("journal-truncate{}", prob_suffix(*prob)),
                Directive::DropConn { count } => format!("drop-conn={count}"),
            };
            write!(f, ",{part}")?;
        }
        Ok(())
    }
}

fn prob_suffix(prob: f64) -> String {
    if prob >= 1.0 {
        String::new()
    } else {
        format!("@{prob}")
    }
}

fn matches(pattern: &str, workload: &str) -> bool {
    pattern == "*" || pattern == workload
}

/// Splits a trailing `@PROB` off a directive, validating the range.
fn split_prob(d: &str) -> Result<(String, f64), String> {
    match d.rsplit_once('@') {
        Some((body, p)) => {
            let prob: f64 = p.parse().map_err(|e| format!("bad probability in {d:?}: {e}"))?;
            if !(prob > 0.0 && prob <= 1.0) {
                return Err(format!("probability in {d:?} must be in (0, 1]"));
            }
            Ok((body.to_owned(), prob))
        }
        None => Ok((d.to_owned(), 1.0)),
    }
}

fn parse_directive(body: &str, prob: f64) -> Result<Directive, String> {
    if let Some(w) = body.strip_prefix("hang=") {
        return named(w, "hang").map(|workload| Directive::Hang { workload, prob });
    }
    if let Some(w) = body.strip_prefix("abort=") {
        return named(w, "abort").map(|workload| Directive::Abort { workload, prob });
    }
    if let Some(rest) = body.strip_prefix("slow=") {
        let (w, ms) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("slow={rest:?} needs a millisecond suffix (slow=WORKLOAD:MS)"))?;
        let ms = ms.parse().map_err(|e| format!("bad slow milliseconds in {body:?}: {e}"))?;
        return named(w, "slow").map(|workload| Directive::Slow { workload, ms, prob });
    }
    if let Some(n) = body.strip_prefix("drop-conn=") {
        if prob < 1.0 {
            return Err("drop-conn takes a count, not a probability".into());
        }
        let count = n.parse().map_err(|e| format!("bad drop-conn count in {body:?}: {e}"))?;
        return Ok(Directive::DropConn { count });
    }
    match body {
        "cache-torn" => Ok(Directive::CacheTorn { prob }),
        "cache-corrupt" => Ok(Directive::CacheCorrupt { prob }),
        "cache-empty" => Ok(Directive::CacheEmpty { prob }),
        "journal-truncate" => Ok(Directive::JournalTruncate { prob }),
        other => Err(format!(
            "unknown fault directive {other:?} (hang=W, abort=W, slow=W:MS, cache-torn, \
             cache-corrupt, cache-empty, journal-truncate, drop-conn=N, seed=0xHEX)"
        )),
    }
}

fn named(w: &str, what: &str) -> Result<String, String> {
    if w.is_empty() {
        return Err(format!("{what}= needs a workload name or *"));
    }
    Ok(w.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.worker_fault("RND", 1, 0), None);
        assert_eq!(plan.cache_fault(1, 0), None);
        assert!(!plan.journal_truncate(1));
        assert_eq!(plan.drop_conn_budget(), 0);
    }

    #[test]
    fn directives_parse_and_round_trip_through_display() {
        let plan =
            FaultPlan::parse("seed=0x7,hang=BC,abort=*@0.25,slow=RND:50,cache-torn,drop-conn=2").unwrap();
        let echoed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(echoed, plan);
        assert_eq!(plan.drop_conn_budget(), 2);
    }

    #[test]
    fn bad_directives_are_rejected_with_context() {
        for bad in ["warp", "hang=", "slow=RND", "abort=BC@1.5", "abort=BC@0", "drop-conn=x", "seed=0xzz"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn certain_faults_hit_every_attempt() {
        let plan = FaultPlan::parse("hang=BC").unwrap();
        for attempt in 0..4 {
            assert_eq!(plan.worker_fault("BC", 99, attempt), Some(WorkerFault::Hang));
            assert_eq!(plan.worker_fault("RND", 99, attempt), None);
        }
        let starred = FaultPlan::parse("abort=*").unwrap();
        assert_eq!(starred.worker_fault("RND", 7, 0), Some(WorkerFault::Abort));
    }

    #[test]
    fn probabilistic_faults_are_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::parse("seed=0x1234,abort=*@0.5").unwrap();
        let again = FaultPlan::parse("seed=0x1234,abort=*@0.5").unwrap();
        let mut hits = 0;
        let mut flips = 0;
        for key in 0..256u64 {
            let a = plan.worker_fault("RND", key, 0);
            assert_eq!(a, again.worker_fault("RND", key, 0), "same plan, same draw");
            if a.is_some() {
                hits += 1;
            }
            if a != plan.worker_fault("RND", key, 1) {
                flips += 1;
            }
        }
        assert!((64..192).contains(&hits), "p=0.5 should hit roughly half: {hits}");
        assert!(flips > 32, "attempt number must perturb the draw: {flips}");
    }

    #[test]
    fn worker_fault_wire_round_trips() {
        for f in [WorkerFault::Hang, WorkerFault::Abort, WorkerFault::Slow(125)] {
            assert_eq!(WorkerFault::from_wire(&f.wire()).unwrap(), f);
        }
        assert!(WorkerFault::from_wire("melt").is_err());
    }

    #[test]
    fn crash_env_maps_to_an_abort_directive() {
        std::env::set_var(crate::worker::CRASH_ENV, "BC");
        let plan = FaultPlan::from_env().unwrap();
        std::env::remove_var(crate::worker::CRASH_ENV);
        assert_eq!(plan.worker_fault("BC", 3, 0), Some(WorkerFault::Abort));
        assert_eq!(plan.worker_fault("RND", 3, 0), None);
    }
}
