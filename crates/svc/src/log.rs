//! Structured daemon logging: levelled, newline-delimited JSON events.
//!
//! Every operational message the daemon emits — startup, journal
//! resumes, worker respawns, cache trouble, injected faults — is one
//! compact JSON object on one line, written to stderr and (best-effort)
//! teed to `daemon.log` inside the service directory. The shape is
//! stable and machine-parseable, so the CI smoke job can validate the
//! whole log with a one-line `jq` pass and dashboards can filter by
//! `event` without regex archaeology:
//!
//! ```text
//! {"svc":"victima-svc/1","type":"log","level":"info","ts_ms":T,
//!  "uptime_ms":U,"event":"listening","msg":"...","addr":"127.0.0.1:..."}
//! ```
//!
//! `ts_ms` is a wall-clock Unix stamp for humans correlating across
//! machines; `uptime_ms` is the daemon's own monotonic clock
//! ([`vm_types::MonotonicClock`]) for ordering and latency arithmetic.
//! Neither ever feeds a `--check` artifact or a spec fingerprint — log
//! lines are operational exhaust, strictly outside the determinism
//! boundary (DESIGN.md, "Observability").

use report::json::{write_json_compact, JsonValue};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use vm_types::{unix_millis, MonotonicClock};

/// Name of the JSONL log file inside the service directory.
pub const LOG_FILE: &str = "daemon.log";

/// Severity of a log event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Routine operational narration (startup, job accepted, resume).
    Info,
    /// Something recovered from: a respawned worker, a skipped journal
    /// record, an injected fault firing.
    Warn,
    /// An operation failed and stayed failed (cache store error).
    Error,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// The daemon's structured logger: stderr always, `daemon.log` when the
/// service directory is writable. Cheap to share behind the daemon's
/// `Arc<State>`; each emit is one formatted line and two writes.
#[derive(Debug)]
pub struct Logger {
    clock: MonotonicClock,
    file: Option<Mutex<File>>,
}

impl Logger {
    /// A logger teeing to `dir/daemon.log` (appending across restarts —
    /// the log is an operational history, not per-run state). Falls back
    /// to stderr-only if the file cannot be opened.
    pub fn new(dir: &Path) -> Self {
        let file = OpenOptions::new().create(true).append(true).open(dir.join(LOG_FILE)).ok();
        Self { clock: MonotonicClock::new(), file: file.map(Mutex::new) }
    }

    /// A stderr-only logger (tests, `run_local`).
    pub fn stderr_only() -> Self {
        Self { clock: MonotonicClock::new(), file: None }
    }

    /// Milliseconds since this logger (≈ the daemon) started.
    pub fn uptime_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Emits one event at [`Level::Info`].
    pub fn info(&self, event: &str, msg: &str, fields: &[(&str, JsonValue)]) {
        self.emit(Level::Info, event, msg, fields);
    }

    /// Emits one event at [`Level::Warn`].
    pub fn warn(&self, event: &str, msg: &str, fields: &[(&str, JsonValue)]) {
        self.emit(Level::Warn, event, msg, fields);
    }

    /// Emits one event at [`Level::Error`].
    pub fn error(&self, event: &str, msg: &str, fields: &[(&str, JsonValue)]) {
        self.emit(Level::Error, event, msg, fields);
    }

    /// Formats and writes one event line.
    pub fn emit(&self, level: Level, event: &str, msg: &str, fields: &[(&str, JsonValue)]) {
        let line = self.render(level, event, msg, fields);
        eprintln!("{line}");
        if let Some(file) = &self.file {
            if let Ok(mut f) = file.lock() {
                let _ = writeln!(f, "{line}");
            }
        }
    }

    /// Renders the line without writing it (tests).
    pub fn render(&self, level: Level, event: &str, msg: &str, fields: &[(&str, JsonValue)]) -> String {
        let mut members = vec![
            ("svc".to_owned(), JsonValue::Str(crate::proto::PROTO_ID.into())),
            ("type".to_owned(), JsonValue::Str("log".into())),
            ("level".to_owned(), JsonValue::Str(level.tag().into())),
            ("ts_ms".to_owned(), JsonValue::Int(unix_millis() as i64)),
            ("uptime_ms".to_owned(), JsonValue::Int(self.clock.now_ms() as i64)),
            ("event".to_owned(), JsonValue::Str(event.into())),
            ("msg".to_owned(), JsonValue::Str(msg.into())),
        ];
        for (k, v) in fields {
            members.push(((*k).to_owned(), v.clone()));
        }
        write_json_compact(&JsonValue::Obj(members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::json::parse_json;

    #[test]
    fn rendered_lines_are_one_line_json_with_the_fixed_envelope() {
        let log = Logger::stderr_only();
        let line = log.render(
            Level::Warn,
            "worker_respawn",
            "worker died",
            &[("fingerprint", JsonValue::Str("ab12".into())), ("attempt", JsonValue::Int(2))],
        );
        assert!(!line.contains('\n'));
        let doc = parse_json(&line).unwrap();
        assert_eq!(doc.get("svc").and_then(JsonValue::as_str), Some(crate::proto::PROTO_ID));
        assert_eq!(doc.get("type").and_then(JsonValue::as_str), Some("log"));
        assert_eq!(doc.get("level").and_then(JsonValue::as_str), Some("warn"));
        assert_eq!(doc.get("event").and_then(JsonValue::as_str), Some("worker_respawn"));
        assert_eq!(doc.get("fingerprint").and_then(JsonValue::as_str), Some("ab12"));
        assert_eq!(doc.get("attempt").and_then(JsonValue::as_u64), Some(2));
        assert!(doc.get("ts_ms").and_then(JsonValue::as_u64).is_some());
        assert!(doc.get("uptime_ms").and_then(JsonValue::as_u64).is_some());
    }

    #[test]
    fn file_tee_appends_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("victima-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = Logger::new(&dir);
        log.info("listening", "daemon up", &[("addr", JsonValue::Str("127.0.0.1:9".into()))]);
        log.error("cache_store_failed", "disk full", &[]);
        let text = std::fs::read_to_string(dir.join(LOG_FILE)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc = parse_json(line).unwrap();
            assert_eq!(doc.get("type").and_then(JsonValue::as_str), Some("log"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
