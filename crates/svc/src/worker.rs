//! Spec execution: the worker-process protocol and the daemon-side
//! executor.
//!
//! The daemon never simulates in its own process. Each dispatcher thread
//! owns one **worker process** — the `experiments` binary re-exec'd with
//! the hidden [`WORKER_ARG`] subcommand — and feeds it one [`SpecDesc`]
//! line on stdin per spec, reading one `result` line back on stdout. A
//! spec that panics or aborts takes down only its worker: the dispatcher
//! observes the EOF, reports a typed error entry for that spec, respawns
//! a fresh worker, and the rest of the sweep completes untouched. Replies
//! are read through a pump thread, so the dispatcher can give up on a
//! *hung* (not just dead) worker at its per-spec deadline and kill it.
//!
//! Fault injection rides the same stdin line: when the daemon's
//! [`crate::FaultPlan`] selects a fault for an attempt, the spec line
//! carries an extra `"inject"` member (`hang` / `abort` / `slow:MS`) the
//! worker honours before simulating. All decisions stay daemon-side;
//! worker processes are env-free.
//!
//! Tests and benches that want the protocol without process overhead use
//! [`WorkerBackend::InProcess`], which runs specs on the dispatcher
//! thread behind `catch_unwind` — same typed-error surface, no fork. Two
//! injected faults degrade gracefully there: `abort` becomes a catchable
//! typed error and `hang` becomes an immediate typed timeout (a thread,
//! unlike a process, cannot be killed), so the in-process chaos tests see
//! the same line grammar the process backend produces.

use crate::fault::WorkerFault;
use crate::proto::{result_line, result_report, SpecDesc};
use report::json::parse_json;
use sim::SimEngine;
use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// The hidden CLI subcommand that enters [`worker_main`].
pub const WORKER_ARG: &str = "service-worker";

/// Legacy crash-injection knob, subsumed by [`crate::FaultPlan`]: a
/// daemon started with this set treats it as an `abort=<workload>` fault
/// directive (see [`crate::FaultPlan::from_env`]).
pub const CRASH_ENV: &str = "VICTIMA_SVC_CRASH_WORKLOAD";

/// Runs one descriptor to completion, returning its `result` line. The
/// single execution path shared by the worker process, the in-process
/// backend, and `submit --local` — which is why all three produce
/// byte-identical lines for the same spec.
pub fn run_spec(desc: &SpecDesc) -> Result<String, String> {
    let spec = desc.to_run_spec()?;
    let fingerprint = spec.fingerprint();
    let result = SimEngine::run_one(0, &spec);
    Ok(result_line(&fingerprint, &result_report(desc, &spec, &result.stats)))
}

/// Honours an injected fault on the worker side. `hang` parks the thread
/// forever (the daemon's deadline kills the process); `abort` dies the
/// way a real heap corruption would; `slow` just delays.
fn apply_inject(fault: &WorkerFault) {
    match fault {
        WorkerFault::Hang => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        WorkerFault::Abort => std::process::abort(),
        WorkerFault::Slow(ms) => std::thread::sleep(Duration::from_millis(*ms)),
    }
}

/// The worker-process main loop: one [`SpecDesc`] line in, one `result`
/// line out, until stdin closes. Returns the process exit code.
///
/// Failure handling is deliberately blunt: a malformed descriptor or an
/// I/O error exits non-zero, and a simulation panic unwinds out of the
/// process entirely — the daemon treats any missing reply as this
/// worker's death and isolates the damage to the one spec in flight.
pub fn worker_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { return 1 };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // The daemon may ask this attempt to misbehave (fault injection).
        if let Some(inject) =
            parse_json(line).ok().and_then(|doc| doc.get("inject")?.as_str().map(WorkerFault::from_wire))
        {
            match inject {
                Ok(fault) => apply_inject(&fault),
                Err(e) => {
                    eprintln!("service-worker: {e}");
                    return 1;
                }
            }
        }
        let desc = match SpecDesc::from_line(line) {
            Ok(desc) => desc,
            Err(e) => {
                eprintln!("service-worker: bad spec line: {e}");
                return 1;
            }
        };
        let reply = match run_spec(&desc) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("service-worker: {e}");
                return 1;
            }
        };
        if writeln!(out, "{reply}").and_then(|()| out.flush()).is_err() {
            return 1;
        }
    }
    0
}

/// How the daemon executes specs.
#[derive(Clone, Debug)]
pub enum WorkerBackend {
    /// Spawn worker processes from the given `experiments` binary — the
    /// production backend; panicking specs die in their own process and
    /// hung specs are killed at the dispatcher's deadline.
    Process(PathBuf),
    /// Run specs on the dispatcher thread behind `catch_unwind` — the
    /// test/bench backend; no isolation from aborts (injected aborts
    /// degrade to typed errors, injected hangs to immediate typed
    /// timeouts), but the same typed outcome surface.
    InProcess,
}

/// How one execution attempt failed — the split the dispatcher needs to
/// stream a typed `timeout` vs `error` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ExecError {
    /// The worker missed the per-spec deadline and was killed.
    TimedOut(String),
    /// The worker died (or the spec panicked in-process).
    Failed(String),
}

impl ExecError {
    pub(crate) fn message(&self) -> &str {
        match self {
            ExecError::TimedOut(m) | ExecError::Failed(m) => m,
        }
    }
}

/// One live worker process with its pipes; replies arrive through a pump
/// thread so reads can time out.
#[derive(Debug)]
struct ProcessWorker {
    child: Child,
    stdin: ChildStdin,
    replies: mpsc::Receiver<io::Result<String>>,
}

impl ProcessWorker {
    fn spawn(exe: &PathBuf) -> io::Result<Self> {
        let mut child =
            Command::new(exe).arg(WORKER_ARG).stdin(Stdio::piped()).stdout(Stdio::piped()).spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let (tx, replies) = mpsc::channel();
        // The pump exits when the worker's stdout closes (death or clean
        // EOF after we drop stdin) or when the receiver is gone.
        std::thread::spawn(move || {
            for line in stdout.lines() {
                let dead = line.is_err();
                if tx.send(line).is_err() || dead {
                    return;
                }
            }
        });
        Ok(Self { child, stdin, replies })
    }

    /// Sends one spec line and waits up to `deadline` for the reply.
    fn run(&mut self, spec_line: &str, deadline: Duration) -> Result<String, ExecError> {
        if let Err(e) = writeln!(self.stdin, "{spec_line}").and_then(|()| self.stdin.flush()) {
            return Err(ExecError::Failed(format!("worker stdin closed: {e}")));
        }
        match self.replies.recv_timeout(deadline) {
            Ok(Ok(line)) => Ok(line),
            Ok(Err(e)) => Err(ExecError::Failed(format!("worker stdout read failed: {e}"))),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(ExecError::Failed("worker closed its stdout".to_owned()))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ExecError::TimedOut(format!(
                "worker missed the {}ms per-spec deadline",
                deadline.as_millis()
            ))),
        }
    }

    /// Reaps the (dead, dying, or hung) worker, reporting its exit status.
    fn reap(mut self) -> String {
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(status) => format!("{status}"),
            Err(_) => "unknown status".to_owned(),
        }
    }
}

impl Drop for ProcessWorker {
    /// Never leak a live worker: kill and reap so daemon shutdown leaves
    /// no orphans or zombies behind.
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A dispatcher thread's executor: lazily (re)spawns its worker process,
/// or runs in-process per the backend.
#[derive(Debug)]
pub(crate) struct Executor {
    backend: WorkerBackend,
    worker: Option<ProcessWorker>,
}

impl Executor {
    pub(crate) fn new(backend: WorkerBackend) -> Self {
        Self { backend, worker: None }
    }

    /// Executes one attempt of a spec, returning its `result` stream
    /// line, or a typed description of the failure. `inject` is the fault
    /// the daemon's plan selected for this attempt (if any); `deadline`
    /// bounds the wait for a reply on the process backend.
    pub(crate) fn run(
        &mut self,
        desc: &SpecDesc,
        inject: Option<&WorkerFault>,
        deadline: Duration,
    ) -> Result<String, ExecError> {
        match &self.backend {
            WorkerBackend::InProcess => {
                match inject {
                    // A thread cannot be killed, so the two lethal faults
                    // short-circuit to their typed outcomes.
                    Some(WorkerFault::Hang) => {
                        return Err(ExecError::TimedOut(format!(
                            "worker missed the {}ms per-spec deadline (injected hang)",
                            deadline.as_millis()
                        )));
                    }
                    Some(WorkerFault::Abort) => {
                        return Err(ExecError::Failed(format!(
                            "worker crashed simulating {} (injected abort)",
                            desc.label()
                        )));
                    }
                    Some(WorkerFault::Slow(ms)) => std::thread::sleep(Duration::from_millis(*ms)),
                    None => {}
                }
                catch_unwind(AssertUnwindSafe(|| run_spec(desc)))
                    .unwrap_or_else(|p| {
                        Err(format!("worker panicked simulating {}: {}", desc.label(), panic_text(&p)))
                    })
                    .map_err(ExecError::Failed)
            }
            WorkerBackend::Process(exe) => {
                if self.worker.is_none() {
                    self.worker = Some(
                        ProcessWorker::spawn(exe)
                            .map_err(|e| ExecError::Failed(format!("failed to spawn worker: {e}")))?,
                    );
                }
                let worker = self.worker.as_mut().expect("worker just spawned");
                let line = match inject {
                    Some(fault) => inject_line(&desc.to_line(), fault),
                    None => desc.to_line(),
                };
                match worker.run(&line, deadline) {
                    Ok(line) => Ok(line),
                    Err(ExecError::TimedOut(e)) => {
                        // Hung, not dead: kill it so the next spec gets a
                        // fresh process instead of a stale reply.
                        let status = self.worker.take().expect("worker present on timeout path").reap();
                        Err(ExecError::TimedOut(format!(
                            "{e} simulating {}; killed worker ({status})",
                            desc.label()
                        )))
                    }
                    Err(ExecError::Failed(e)) => {
                        let status = self.worker.take().expect("worker present on error path").reap();
                        Err(ExecError::Failed(format!(
                            "worker process exited unexpectedly ({status}) while simulating {}: {e}",
                            desc.label()
                        )))
                    }
                }
            }
        }
    }
}

/// Splices an `"inject"` member into a spec's wire line (the line is a
/// compact one-line JSON object, so this is a pure suffix rewrite).
fn inject_line(spec_line: &str, fault: &WorkerFault) -> String {
    let body = spec_line.strip_suffix('}').expect("spec lines are JSON objects");
    format!("{body},\"inject\":\"{}\"}}", fault.wire())
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Scale;

    const DEADLINE: Duration = Duration::from_secs(60);

    fn tiny_desc(workload: &str) -> SpecDesc {
        SpecDesc {
            config: "radix".into(),
            workload: workload.into(),
            scale: Scale::Tiny,
            warmup: 200,
            instructions: 2_000,
            seed: vm_types::DEFAULT_SEED,
            sampling: None,
        }
    }

    #[test]
    fn in_process_executor_runs_a_spec() {
        let mut exec = Executor::new(WorkerBackend::InProcess);
        let line = exec.run(&tiny_desc("RND"), None, DEADLINE).unwrap();
        match crate::proto::parse_stream_line(&line).unwrap() {
            crate::proto::StreamLine::Result { report, .. } => {
                assert_eq!(report.provenance.workloads, ["RND"]);
            }
            other => panic!("expected a result, got {other:?}"),
        }
    }

    #[test]
    fn in_process_executor_turns_panics_into_typed_errors() {
        // A bogus workload name passes `to_run_spec` but panics in the
        // registry at simulation time — the generic panic path.
        let mut exec = Executor::new(WorkerBackend::InProcess);
        let err = exec.run(&tiny_desc("NOPE"), None, DEADLINE).unwrap_err();
        assert!(matches!(err, ExecError::Failed(_)), "{err:?}");
        assert!(err.message().contains("panicked"), "{err:?}");
        // The executor survives and runs the next spec normally.
        assert!(exec.run(&tiny_desc("RND"), None, DEADLINE).is_ok());
    }

    #[test]
    fn in_process_injected_faults_yield_typed_outcomes() {
        let mut exec = Executor::new(WorkerBackend::InProcess);
        let timeout = exec.run(&tiny_desc("RND"), Some(&WorkerFault::Hang), DEADLINE).unwrap_err();
        assert!(matches!(timeout, ExecError::TimedOut(_)), "{timeout:?}");
        let died = exec.run(&tiny_desc("RND"), Some(&WorkerFault::Abort), DEADLINE).unwrap_err();
        assert!(matches!(died, ExecError::Failed(_)), "{died:?}");
        // Slow is only a delay: the spec still completes with the same
        // bytes an uninjected run produces.
        let slow = exec.run(&tiny_desc("RND"), Some(&WorkerFault::Slow(10)), DEADLINE).unwrap();
        let clean = exec.run(&tiny_desc("RND"), None, DEADLINE).unwrap();
        assert_eq!(slow, clean);
    }

    #[test]
    fn identical_specs_yield_byte_identical_lines() {
        let mut exec = Executor::new(WorkerBackend::InProcess);
        let a = exec.run(&tiny_desc("XS"), None, DEADLINE).unwrap();
        let b = exec.run(&tiny_desc("XS"), None, DEADLINE).unwrap();
        assert_eq!(a, b);
        // And the shared single-spec path agrees with the executor.
        assert_eq!(run_spec(&tiny_desc("XS")).unwrap(), a);
    }

    #[test]
    fn inject_splices_into_the_wire_line() {
        let line = tiny_desc("RND").to_line();
        let injected = inject_line(&line, &WorkerFault::Slow(25));
        let doc = parse_json(&injected).unwrap();
        assert_eq!(doc.get("inject").and_then(|v| v.as_str()), Some("slow:25"));
        // The descriptor part still parses identically.
        assert_eq!(SpecDesc::from_line(&injected).unwrap(), tiny_desc("RND"));
    }
}
