//! Spec execution: the worker-process protocol and the daemon-side
//! executor.
//!
//! The daemon never simulates in its own process. Each dispatcher thread
//! owns one **worker process** — the `experiments` binary re-exec'd with
//! the hidden [`WORKER_ARG`] subcommand — and feeds it one [`SpecDesc`]
//! line on stdin per spec, reading one `result` line back on stdout. A
//! spec that panics or aborts takes down only its worker: the dispatcher
//! observes the EOF, reports a typed error entry for that spec, respawns
//! a fresh worker, and the rest of the sweep completes untouched.
//!
//! Tests and benches that want the protocol without process overhead use
//! [`WorkerBackend::InProcess`], which runs specs on the dispatcher
//! thread behind `catch_unwind` — same typed-error surface, no fork.

use crate::proto::{result_line, result_report, SpecDesc};
use sim::SimEngine;
use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// The hidden CLI subcommand that enters [`worker_main`].
pub const WORKER_ARG: &str = "service-worker";

/// Crash-injection knob for the isolation tests: a worker asked to run
/// the named workload calls `abort()` (process backend) or panics
/// (in-process backend) instead of simulating.
pub const CRASH_ENV: &str = "VICTIMA_SVC_CRASH_WORKLOAD";

fn crash_requested(workload: &str) -> bool {
    std::env::var(CRASH_ENV).is_ok_and(|w| w == workload)
}

/// Runs one descriptor to completion, returning its `result` line. The
/// single execution path shared by the worker process, the in-process
/// backend, and `submit --local` — which is why all three produce
/// byte-identical lines for the same spec.
pub fn run_spec(desc: &SpecDesc) -> Result<String, String> {
    let spec = desc.to_run_spec()?;
    let fingerprint = spec.fingerprint();
    let result = SimEngine::run_one(0, &spec);
    Ok(result_line(&fingerprint, &result_report(desc, &spec, &result.stats)))
}

/// The worker-process main loop: one [`SpecDesc`] line in, one `result`
/// line out, until stdin closes. Returns the process exit code.
///
/// Failure handling is deliberately blunt: a malformed descriptor or an
/// I/O error exits non-zero, and a simulation panic unwinds out of the
/// process entirely — the daemon treats any missing reply as this
/// worker's death and isolates the damage to the one spec in flight.
pub fn worker_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { return 1 };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let desc = match SpecDesc::from_line(line) {
            Ok(desc) => desc,
            Err(e) => {
                eprintln!("service-worker: bad spec line: {e}");
                return 1;
            }
        };
        if crash_requested(&desc.workload) {
            std::process::abort();
        }
        let reply = match run_spec(&desc) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("service-worker: {e}");
                return 1;
            }
        };
        if writeln!(out, "{reply}").and_then(|()| out.flush()).is_err() {
            return 1;
        }
    }
    0
}

/// How the daemon executes specs.
#[derive(Clone, Debug)]
pub enum WorkerBackend {
    /// Spawn worker processes from the given `experiments` binary — the
    /// production backend; panicking specs die in their own process.
    Process(PathBuf),
    /// Run specs on the dispatcher thread behind `catch_unwind` — the
    /// test/bench backend; no isolation from aborts, but the same typed
    /// error surface for panics.
    InProcess,
}

/// One live worker process with its pipes.
#[derive(Debug)]
struct ProcessWorker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ProcessWorker {
    fn spawn(exe: &PathBuf) -> io::Result<Self> {
        let mut child =
            Command::new(exe).arg(WORKER_ARG).stdin(Stdio::piped()).stdout(Stdio::piped()).spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(Self { child, stdin, stdout })
    }

    /// Sends one spec line, reads one reply line. An empty read means the
    /// worker died before answering.
    fn run(&mut self, spec_line: &str) -> io::Result<String> {
        writeln!(self.stdin, "{spec_line}")?;
        self.stdin.flush()?;
        let mut reply = String::new();
        if self.stdout.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "worker closed its stdout"));
        }
        Ok(reply.trim_end_matches('\n').to_owned())
    }

    /// Reaps the (dead or dying) worker, reporting its exit status.
    fn reap(mut self) -> String {
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(status) => format!("{status}"),
            Err(_) => "unknown status".to_owned(),
        }
    }
}

/// A dispatcher thread's executor: lazily (re)spawns its worker process,
/// or runs in-process per the backend.
#[derive(Debug)]
pub(crate) struct Executor {
    backend: WorkerBackend,
    worker: Option<ProcessWorker>,
}

impl Executor {
    pub(crate) fn new(backend: WorkerBackend) -> Self {
        Self { backend, worker: None }
    }

    /// Executes one spec, returning its `result` stream line, or an error
    /// message describing the worker's death for the typed error entry.
    pub(crate) fn run(&mut self, desc: &SpecDesc) -> Result<String, String> {
        match &self.backend {
            WorkerBackend::InProcess => {
                if crash_requested(&desc.workload) {
                    // Mirror the process backend's crash knob with a
                    // catchable panic so isolation tests can run without
                    // spawning binaries.
                    return Err(format!("worker panicked simulating {} (injected crash)", desc.label()));
                }
                catch_unwind(AssertUnwindSafe(|| run_spec(desc))).unwrap_or_else(|p| {
                    Err(format!("worker panicked simulating {}: {}", desc.label(), panic_text(&p)))
                })
            }
            WorkerBackend::Process(exe) => {
                if self.worker.is_none() {
                    self.worker =
                        Some(ProcessWorker::spawn(exe).map_err(|e| format!("failed to spawn worker: {e}"))?);
                }
                let worker = self.worker.as_mut().expect("worker just spawned");
                match worker.run(&desc.to_line()) {
                    Ok(line) => Ok(line),
                    Err(e) => {
                        // The worker died mid-spec. Reap it and report;
                        // the next spec gets a fresh process.
                        let status = self.worker.take().expect("worker present on error path").reap();
                        Err(format!(
                            "worker process exited unexpectedly ({status}) while simulating {}: {e}",
                            desc.label()
                        ))
                    }
                }
            }
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Scale;

    fn tiny_desc(workload: &str) -> SpecDesc {
        SpecDesc {
            config: "radix".into(),
            workload: workload.into(),
            scale: Scale::Tiny,
            warmup: 200,
            instructions: 2_000,
            seed: vm_types::DEFAULT_SEED,
            sampling: None,
        }
    }

    #[test]
    fn in_process_executor_runs_a_spec() {
        let mut exec = Executor::new(WorkerBackend::InProcess);
        let line = exec.run(&tiny_desc("RND")).unwrap();
        match crate::proto::parse_stream_line(&line).unwrap() {
            crate::proto::StreamLine::Result { report, .. } => {
                assert_eq!(report.provenance.workloads, ["RND"]);
            }
            other => panic!("expected a result, got {other:?}"),
        }
    }

    #[test]
    fn in_process_executor_turns_panics_into_typed_errors() {
        // An unresolvable config panics inside run_one's machinery only
        // after validation; craft the panic via a bogus workload name,
        // which `to_run_spec` passes through but the registry rejects at
        // simulation time.
        let mut exec = Executor::new(WorkerBackend::InProcess);
        let err = exec.run(&tiny_desc("NOPE")).unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        // The executor survives and runs the next spec normally.
        assert!(exec.run(&tiny_desc("RND")).is_ok());
    }

    #[test]
    fn identical_specs_yield_byte_identical_lines() {
        let mut exec = Executor::new(WorkerBackend::InProcess);
        let a = exec.run(&tiny_desc("XS")).unwrap();
        let b = exec.run(&tiny_desc("XS")).unwrap();
        assert_eq!(a, b);
        // And the shared single-spec path agrees with the executor.
        assert_eq!(run_spec(&tiny_desc("XS")).unwrap(), a);
    }
}
