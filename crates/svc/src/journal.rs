//! The accepted-jobs journal: crash recovery for the daemon.
//!
//! Every accepted sweep is persisted as `<job>.json` (the submit request
//! line, verbatim) *before* its first spec runs; a `<job>.done` marker is
//! dropped next to it when the sweep completes. A daemon that was killed
//! mid-sweep therefore restarts with a precise work list: every `.json`
//! without a `.done` sibling. Re-running a partially finished job is
//! cheap by construction — its completed specs answer from the result
//! cache and only the genuinely unfinished remainder simulates.
//!
//! The journal is hardened against its own corruption: an entry file
//! that cannot be *read* is skipped with a warning instead of failing
//! the whole restart scan (entries that read but fail to *parse* are
//! skipped by the daemon's resume loop, same policy), and job numbering
//! counts `.done` markers too, so a stray marker whose `.json` vanished
//! still pins its id as used.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk journal of accepted sweep jobs.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) a journal directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Formats the canonical id for the `n`-th job.
    pub fn job_id(n: u64) -> String {
        format!("job-{n:06}")
    }

    /// Persists an accepted job (atomic temp + rename, same discipline as
    /// the cache: a killed daemon never leaves a torn request to resume).
    pub fn record(&self, job: &str, request_line: &str) -> io::Result<()> {
        self.record_injected(job, request_line, false)
    }

    /// [`Journal::record`] with an injected fault: when `truncate` is
    /// set, only the first half of the request line reaches disk —
    /// exactly the torn record a disk-full daemon leaves behind, which
    /// the restart scan must skip rather than choke on.
    pub fn record_injected(&self, job: &str, request_line: &str, truncate: bool) -> io::Result<()> {
        let full = format!("{request_line}\n");
        let bytes = if truncate { &full.as_bytes()[..full.len() / 2] } else { full.as_bytes() };
        let tmp = self.dir.join(format!(".{job}.tmp"));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, self.dir.join(format!("{job}.json")))
    }

    /// Marks a job as run to completion.
    pub fn complete(&self, job: &str) -> io::Result<()> {
        fs::write(self.dir.join(format!("{job}.done")), "")
    }

    /// Jobs recorded but never completed, as `(job id, request line)`
    /// pairs in id order — the restart work list. An entry whose file
    /// cannot be read is skipped with a warning: one bad record must
    /// never poison the whole restart.
    pub fn pending(&self) -> io::Result<Vec<(String, String)>> {
        let mut jobs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            let Some(job) = name.strip_suffix(".json") else { continue };
            if job.starts_with('.') || self.dir.join(format!("{job}.done")).exists() {
                continue;
            }
            match fs::read_to_string(self.dir.join(&name)) {
                Ok(line) => jobs.push((job.to_owned(), line.trim_end_matches('\n').to_owned())),
                Err(e) => eprintln!("svc: journal entry {job} is unreadable ({e}); skipping it"),
            }
        }
        jobs.sort();
        Ok(jobs)
    }

    /// The next unused job number (one past the highest recorded), so a
    /// restarted daemon never reuses a journaled id. Both `.json` records
    /// and `.done` markers count: a stray marker without its record still
    /// proves its id was issued.
    pub fn next_job_number(&self) -> io::Result<u64> {
        let mut next = 1;
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            let job = name.strip_suffix(".json").or_else(|| name.strip_suffix(".done"));
            if let Some(n) = job.and_then(|j| j.strip_prefix("job-")) {
                if let Ok(n) = n.parse::<u64>() {
                    next = next.max(n + 1);
                }
            }
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("victima-svc-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn pending_tracks_the_done_marker() {
        let j = Journal::open(tmp_dir("pending")).unwrap();
        assert_eq!(j.next_job_number().unwrap(), 1);
        j.record(&Journal::job_id(1), "{\"op\":\"submit\"}").unwrap();
        j.record(&Journal::job_id(2), "{\"op\":\"submit\",\"x\":2}").unwrap();
        assert_eq!(j.next_job_number().unwrap(), 3);
        let pending = j.pending().unwrap();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0], ("job-000001".into(), "{\"op\":\"submit\"}".into()));
        j.complete(&Journal::job_id(1)).unwrap();
        let pending = j.pending().unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, "job-000002");
        j.complete(&Journal::job_id(2)).unwrap();
        assert!(j.pending().unwrap().is_empty());
        // Completion never recycles ids.
        assert_eq!(j.next_job_number().unwrap(), 3);
        fs::remove_dir_all(j.dir()).unwrap();
    }

    #[test]
    fn stray_done_markers_pin_their_job_number() {
        let j = Journal::open(tmp_dir("stray")).unwrap();
        // A `.done` whose `.json` was lost (partial cleanup, disk repair):
        // the id must stay burned and the marker must not list as pending.
        j.complete(&Journal::job_id(41)).unwrap();
        assert_eq!(j.next_job_number().unwrap(), 42);
        assert!(j.pending().unwrap().is_empty());
        fs::remove_dir_all(j.dir()).unwrap();
    }

    #[test]
    fn truncated_records_reach_pending_for_the_resume_loop_to_skip() {
        let j = Journal::open(tmp_dir("torn")).unwrap();
        let line = "{\"op\":\"submit\",\"configs\":[\"radix\"]}";
        j.record_injected(&Journal::job_id(5), line, true).unwrap();
        let pending = j.pending().unwrap();
        // The torn record still lists (the daemon's resume loop owns the
        // parse-and-skip policy) but carries only the surviving prefix.
        assert_eq!(pending.len(), 1);
        assert!(line.starts_with(&pending[0].1), "torn record must be a prefix: {:?}", pending[0].1);
        assert!(pending[0].1.len() < line.len());
        // And its number is still burned.
        assert_eq!(j.next_job_number().unwrap(), 6);
        fs::remove_dir_all(j.dir()).unwrap();
    }
}
