//! The accepted-jobs journal: crash recovery for the daemon.
//!
//! Every accepted sweep is persisted as `<job>.json` (the submit request
//! line, verbatim) *before* its first spec runs; a `<job>.done` marker is
//! dropped next to it when the sweep completes. A daemon that was killed
//! mid-sweep therefore restarts with a precise work list: every `.json`
//! without a `.done` sibling. Re-running a partially finished job is
//! cheap by construction — its completed specs answer from the result
//! cache and only the genuinely unfinished remainder simulates.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk journal of accepted sweep jobs.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) a journal directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Formats the canonical id for the `n`-th job.
    pub fn job_id(n: u64) -> String {
        format!("job-{n:06}")
    }

    /// Persists an accepted job (atomic temp + rename, same discipline as
    /// the cache: a killed daemon never leaves a torn request to resume).
    pub fn record(&self, job: &str, request_line: &str) -> io::Result<()> {
        let tmp = self.dir.join(format!(".{job}.tmp"));
        fs::write(&tmp, format!("{request_line}\n"))?;
        fs::rename(&tmp, self.dir.join(format!("{job}.json")))
    }

    /// Marks a job as run to completion.
    pub fn complete(&self, job: &str) -> io::Result<()> {
        fs::write(self.dir.join(format!("{job}.done")), "")
    }

    /// Jobs recorded but never completed, as `(job id, request line)`
    /// pairs in id order — the restart work list.
    pub fn pending(&self) -> io::Result<Vec<(String, String)>> {
        let mut jobs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            let Some(job) = name.strip_suffix(".json") else { continue };
            if job.starts_with('.') || self.dir.join(format!("{job}.done")).exists() {
                continue;
            }
            let line = fs::read_to_string(self.dir.join(&name))?;
            jobs.push((job.to_owned(), line.trim_end_matches('\n').to_owned()));
        }
        jobs.sort();
        Ok(jobs)
    }

    /// The next unused job number (one past the highest recorded), so a
    /// restarted daemon never reuses a journaled id.
    pub fn next_job_number(&self) -> io::Result<u64> {
        let mut next = 1;
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(n) = name.strip_suffix(".json").and_then(|j| j.strip_prefix("job-")) {
                if let Ok(n) = n.parse::<u64>() {
                    next = next.max(n + 1);
                }
            }
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("victima-svc-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn pending_tracks_the_done_marker() {
        let j = Journal::open(tmp_dir("pending")).unwrap();
        assert_eq!(j.next_job_number().unwrap(), 1);
        j.record(&Journal::job_id(1), "{\"op\":\"submit\"}").unwrap();
        j.record(&Journal::job_id(2), "{\"op\":\"submit\",\"x\":2}").unwrap();
        assert_eq!(j.next_job_number().unwrap(), 3);
        let pending = j.pending().unwrap();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0], ("job-000001".into(), "{\"op\":\"submit\"}".into()));
        j.complete(&Journal::job_id(1)).unwrap();
        let pending = j.pending().unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, "job-000002");
        j.complete(&Journal::job_id(2)).unwrap();
        assert!(j.pending().unwrap().is_empty());
        // Completion never recycles ids.
        assert_eq!(j.next_job_number().unwrap(), 3);
        fs::remove_dir_all(j.dir()).unwrap();
    }
}
