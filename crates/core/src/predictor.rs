//! The PTW cost predictor (PTW-CP, Sec. 5.2, Figs. 15–16).
//!
//! PTW-CP decides whether a page is likely to be among the most
//! costly-to-translate pages using only two counters embedded in the PTE:
//! the 3-bit PTW frequency and the 4-bit PTW cost (DRAM-touching walks).
//! The production design is four comparators implementing the bounding box
//! of Fig. 16 — the paper draws it from (1,1) to (12,7); since the text
//! assigns 3 bits to frequency and 4 to cost, we place the 4-bit cost
//! counter on the long axis, i.e. **costly ⇔ freq in \[1,7\] and cost in
//! \[1,12\]** — and all four thresholds are exposed as registers.
//!
//! When the L2 *cache* MPKI is high, caching data is unprofitable anyway,
//! so the MMU bypasses the predictor and always inserts (Fig. 15 ④).

use mem_sim::ReplacementCtx;

/// Comparator thresholds (four registers, Sec. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Thresholds {
    /// Minimum PTW frequency (inclusive).
    pub freq_min: u8,
    /// Maximum PTW frequency (inclusive).
    pub freq_max: u8,
    /// Minimum PTW cost (inclusive).
    pub cost_min: u8,
    /// Maximum PTW cost (inclusive).
    pub cost_max: u8,
}

impl Default for Thresholds {
    /// Fig. 16's bounding box.
    fn default() -> Self {
        Self { freq_min: 1, freq_max: 7, cost_min: 1, cost_max: 12 }
    }
}

/// Predictor statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PredictorStats {
    /// Predictions made (predictor consulted).
    pub consults: u64,
    /// Positive (costly-to-translate) predictions.
    pub positives: u64,
    /// Times the predictor was bypassed due to high L2 cache MPKI.
    pub bypasses: u64,
}

/// The comparator-based PTW cost predictor.
///
/// # Examples
///
/// ```
/// use victima::predictor::PtwCostPredictor;
/// let mut p = PtwCostPredictor::default();
/// assert!(p.predict(1, 1));
/// assert!(!p.predict(1, 0)); // no DRAM-touching walk yet
/// ```
#[derive(Clone, Debug, Default)]
pub struct PtwCostPredictor {
    /// The comparator registers.
    pub thresholds: Thresholds,
    /// Statistics.
    pub stats: PredictorStats,
}

impl PtwCostPredictor {
    /// Creates a predictor with custom thresholds.
    pub fn with_thresholds(thresholds: Thresholds) -> Self {
        Self { thresholds, stats: PredictorStats::default() }
    }

    /// Pure comparator decision for a (frequency, cost) pair.
    pub fn classify(thresholds: &Thresholds, freq: u8, cost: u8) -> bool {
        freq >= thresholds.freq_min
            && freq <= thresholds.freq_max
            && cost >= thresholds.cost_min
            && cost <= thresholds.cost_max
    }

    /// Single-cycle prediction: is a page with these counters likely to be
    /// costly-to-translate in the future?
    pub fn predict(&mut self, freq: u8, cost: u8) -> bool {
        self.stats.consults += 1;
        let costly = Self::classify(&self.thresholds, freq, cost);
        if costly {
            self.stats.positives += 1;
        }
        costly
    }

    /// The full insertion decision, including the bypass: when the L2
    /// cache MPKI is high the predictor is not consulted and the TLB entry
    /// is inserted unconditionally (Fig. 15 ④, Table 3).
    pub fn should_insert(&mut self, freq: u8, cost: u8, ctx: &ReplacementCtx) -> bool {
        if ctx.cache_pressure_high() {
            self.stats.bypasses += 1;
            return true;
        }
        self.predict(freq, cost)
    }

    /// Fraction of consults that predicted "costly".
    pub fn positive_rate(&self) -> f64 {
        if self.stats.consults == 0 {
            0.0
        } else {
            self.stats.positives as f64 / self.stats.consults as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_edges_are_inclusive() {
        let t = Thresholds::default();
        assert!(PtwCostPredictor::classify(&t, 1, 1));
        assert!(PtwCostPredictor::classify(&t, 7, 12));
        assert!(!PtwCostPredictor::classify(&t, 0, 5));
        assert!(!PtwCostPredictor::classify(&t, 5, 0));
        assert!(!PtwCostPredictor::classify(&t, 5, 13));
    }

    #[test]
    fn saturated_counters_stay_inside_the_box() {
        // 3-bit freq saturates at 7, 4-bit cost at 15: a hot page with
        // saturated frequency and moderate cost must remain predicted.
        let t = Thresholds::default();
        assert!(PtwCostPredictor::classify(&t, 7, 7));
    }

    #[test]
    fn bypass_skips_consultation() {
        let mut p = PtwCostPredictor::default();
        let pressured = ReplacementCtx { l2_tlb_mpki: 0.0, l2_cache_mpki: 50.0 };
        assert!(p.should_insert(0, 0, &pressured), "bypass always inserts");
        assert_eq!(p.stats.bypasses, 1);
        assert_eq!(p.stats.consults, 0);
        let calm = ReplacementCtx::default();
        assert!(!p.should_insert(0, 0, &calm));
        assert_eq!(p.stats.consults, 1);
    }

    #[test]
    fn positive_rate_tracks_predictions() {
        let mut p = PtwCostPredictor::default();
        p.predict(1, 1);
        p.predict(0, 0);
        assert!((p.positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn custom_thresholds_respected() {
        let mut p = PtwCostPredictor::with_thresholds(Thresholds {
            freq_min: 3,
            freq_max: 7,
            cost_min: 0,
            cost_max: 15,
        });
        assert!(!p.predict(2, 8));
        assert!(p.predict(3, 0));
    }
}
