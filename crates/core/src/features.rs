//! Per-page feature collection for the PTW-CP design study (Table 1 /
//! Table 2 of the paper).
//!
//! During a profiling run, the simulator calls the `on_*` hooks; each page
//! accumulates the paper's 10 features (saturating at their hardware bit
//! widths) plus the ground-truth signal — total cycles spent walking the
//! page table for that page. Pages are labelled *costly-to-translate* if
//! they fall in the top 30% by total PTW cycles among walked pages
//! (Sec. 5.2: PTW-CP "estimates whether the page is among the top 30% most
//! costly-to-translate pages").

use std::collections::HashMap;
use vm_types::{Asid, PageSize, VirtAddr};

/// Names, bit widths and descriptions of the 10 features (Table 1).
pub const FEATURES: [(&str, u32); 10] = [
    ("page_size", 1),
    ("ptw_frequency", 3),
    ("ptw_cost", 4),
    ("pwc_hits", 5),
    ("l1_tlb_misses", 5),
    ("l2_tlb_misses", 5),
    ("l2_cache_hits", 5),
    ("l1_tlb_evictions", 5),
    ("l2_tlb_evictions", 6),
    ("accesses", 6),
];

/// Accumulated per-page features.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageFeatures {
    /// 1 for 2MB pages.
    pub page_size: u8,
    /// # of PTWs for the page (3-bit).
    pub ptw_frequency: u8,
    /// # of DRAM accesses during all PTWs (4-bit).
    pub ptw_cost: u8,
    /// # of PTWs that hit a PWC (5-bit).
    pub pwc_hits: u8,
    /// # of L1 TLB misses (5-bit).
    pub l1_tlb_misses: u8,
    /// # of L2 TLB misses (5-bit).
    pub l2_tlb_misses: u8,
    /// # of L2 cache hits by data accesses to the page (5-bit).
    pub l2_cache_hits: u8,
    /// # of L1 TLB evictions (5-bit).
    pub l1_tlb_evictions: u8,
    /// # of L2 TLB evictions (6-bit).
    pub l2_tlb_evictions: u8,
    /// # of accesses to the page (6-bit).
    pub accesses: u8,
    /// Ground truth: total cycles spent in PTWs for this page.
    pub total_ptw_cycles: u64,
}

#[inline]
fn sat_add(v: &mut u8, bits: u32) {
    let max = ((1u16 << bits) - 1) as u8;
    if *v < max {
        *v += 1;
    }
}

impl PageFeatures {
    /// The feature vector normalised to \[0,1\] per bit width, in Table 1
    /// order.
    pub fn vector(&self) -> [f32; 10] {
        let raw = [
            self.page_size,
            self.ptw_frequency,
            self.ptw_cost,
            self.pwc_hits,
            self.l1_tlb_misses,
            self.l2_tlb_misses,
            self.l2_cache_hits,
            self.l1_tlb_evictions,
            self.l2_tlb_evictions,
            self.accesses,
        ];
        let mut out = [0f32; 10];
        for (i, (v, (_, bits))) in raw.iter().zip(FEATURES.iter()).enumerate() {
            out[i] = *v as f32 / ((1u32 << bits) - 1) as f32;
        }
        out
    }
}

/// One labelled sample of the study dataset.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Normalised features (Table 1 order).
    pub features: [f32; 10],
    /// Raw counter values for the comparator model.
    pub ptw_frequency: u8,
    /// Raw cost counter.
    pub ptw_cost: u8,
    /// Ground truth: in the top 30% by total PTW cycles.
    pub costly: bool,
}

/// Key identifying a page.
type PageKey = (u16, u64, bool); // (asid, vpn, is_huge)

/// Collects per-page features during a profiling run.
#[derive(Clone, Debug, Default)]
pub struct FeatureTracker {
    pages: HashMap<PageKey, PageFeatures>,
}

impl FeatureTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(asid: Asid, va: VirtAddr, size: PageSize) -> PageKey {
        (asid.raw(), va.vpn(size), size.is_huge())
    }

    fn page(&mut self, asid: Asid, va: VirtAddr, size: PageSize) -> &mut PageFeatures {
        let entry = self.pages.entry(Self::key(asid, va, size)).or_default();
        entry.page_size = size.is_huge() as u8;
        entry
    }

    /// Hook: any access to the page.
    pub fn on_access(&mut self, asid: Asid, va: VirtAddr, size: PageSize) {
        sat_add(&mut self.page(asid, va, size).accesses, 6);
    }

    /// Hook: L1 TLB miss for the page.
    pub fn on_l1_tlb_miss(&mut self, asid: Asid, va: VirtAddr, size: PageSize) {
        sat_add(&mut self.page(asid, va, size).l1_tlb_misses, 5);
    }

    /// Hook: L2 TLB miss for the page.
    pub fn on_l2_tlb_miss(&mut self, asid: Asid, va: VirtAddr, size: PageSize) {
        sat_add(&mut self.page(asid, va, size).l2_tlb_misses, 5);
    }

    /// Hook: L1 TLB eviction of the page's entry.
    pub fn on_l1_tlb_eviction(&mut self, asid: Asid, va: VirtAddr, size: PageSize) {
        sat_add(&mut self.page(asid, va, size).l1_tlb_evictions, 5);
    }

    /// Hook: L2 TLB eviction of the page's entry.
    pub fn on_l2_tlb_eviction(&mut self, asid: Asid, va: VirtAddr, size: PageSize) {
        sat_add(&mut self.page(asid, va, size).l2_tlb_evictions, 6);
    }

    /// Hook: a data access to this page hit the L2 cache.
    pub fn on_l2_cache_hit(&mut self, asid: Asid, va: VirtAddr, size: PageSize) {
        sat_add(&mut self.page(asid, va, size).l2_cache_hits, 5);
    }

    /// Hook: a PTW for this page completed.
    pub fn on_walk(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        size: PageSize,
        latency: u64,
        dram_touched: bool,
        pwc_hit: bool,
    ) {
        let p = self.page(asid, va, size);
        sat_add(&mut p.ptw_frequency, 3);
        if dram_touched {
            sat_add(&mut p.ptw_cost, 4);
        }
        if pwc_hit {
            sat_add(&mut p.pwc_hits, 5);
        }
        p.total_ptw_cycles += latency;
    }

    /// Pages tracked so far.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages were tracked.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Merges another tracker (e.g. from a different workload) into this
    /// one. Keys never collide across workloads because ASIDs differ.
    pub fn merge(&mut self, other: &FeatureTracker) {
        for (k, v) in &other.pages {
            let e = self.pages.entry(*k).or_default();
            // Pages are per-ASID; a collision would mean double counting,
            // so keep the larger snapshot (conservative).
            if v.total_ptw_cycles > e.total_ptw_cycles {
                *e = *v;
            }
        }
    }

    /// Builds the labelled dataset: walked pages only, labelled costly if
    /// in the top `costly_fraction` (default 0.3) by total PTW cycles.
    pub fn dataset(&self, costly_fraction: f64) -> Vec<Sample> {
        let mut walked: Vec<(&PageKey, &PageFeatures)> =
            self.pages.iter().filter(|(_, p)| p.ptw_frequency > 0).collect();
        if walked.is_empty() {
            return Vec::new();
        }
        // Total order: cost descending, then the page key — the map
        // iterates in arbitrary (hash-seeded) order, and a cost-only
        // sort would leave ties in that order, making the dataset (and
        // everything trained on it) run-to-run nondeterministic.
        walked.sort_by_key(|&(k, p)| (std::cmp::Reverse(p.total_ptw_cycles), *k));
        let walked: Vec<&PageFeatures> = walked.into_iter().map(|(_, p)| p).collect();
        let cut = ((walked.len() as f64 * costly_fraction).ceil() as usize).clamp(1, walked.len());
        let threshold = walked[cut - 1].total_ptw_cycles;
        walked
            .iter()
            .map(|p| Sample {
                features: p.vector(),
                ptw_frequency: p.ptw_frequency,
                ptw_cost: p.ptw_cost,
                costly: p.total_ptw_cycles >= threshold && threshold > 0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asid = Asid::KERNEL;

    #[test]
    fn features_saturate_at_bit_widths() {
        let mut t = FeatureTracker::new();
        let va = VirtAddr::new(0x1000);
        for _ in 0..200 {
            t.on_access(A, va, PageSize::Size4K);
            t.on_l2_tlb_miss(A, va, PageSize::Size4K);
            t.on_walk(A, va, PageSize::Size4K, 100, true, false);
        }
        let sample = &t.dataset(0.3)[0];
        assert_eq!(sample.ptw_frequency, 7);
        assert_eq!(sample.ptw_cost, 15);
        // Normalised vector is capped at 1.0.
        assert!(sample.features.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn only_walked_pages_enter_the_dataset() {
        let mut t = FeatureTracker::new();
        t.on_access(A, VirtAddr::new(0x1000), PageSize::Size4K);
        t.on_walk(A, VirtAddr::new(0x2000), PageSize::Size4K, 150, true, false);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dataset(0.3).len(), 1);
    }

    #[test]
    fn top_30_percent_labelling() {
        let mut t = FeatureTracker::new();
        // 10 pages with strictly increasing walk cost.
        for i in 0..10u64 {
            let va = VirtAddr::new(0x10_0000 + i * 4096);
            for _ in 0..=i {
                t.on_walk(A, va, PageSize::Size4K, 100, false, true);
            }
        }
        let ds = t.dataset(0.3);
        let costly = ds.iter().filter(|s| s.costly).count();
        assert_eq!(costly, 3, "top 30% of 10 pages = 3");
    }

    #[test]
    fn page_sizes_tracked_separately() {
        let mut t = FeatureTracker::new();
        let va = VirtAddr::new(0x40_0000);
        t.on_walk(A, va, PageSize::Size4K, 10, false, false);
        t.on_walk(A, va, PageSize::Size2M, 10, false, false);
        assert_eq!(t.len(), 2);
        let ds = t.dataset(1.0);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.iter().filter(|s| s.features[0] > 0.5).count(), 1);
    }

    #[test]
    fn merge_keeps_larger_snapshot() {
        let mut a = FeatureTracker::new();
        let mut b = FeatureTracker::new();
        let va = VirtAddr::new(0x9000);
        a.on_walk(A, va, PageSize::Size4K, 100, false, false);
        b.on_walk(A, va, PageSize::Size4K, 500, false, false);
        b.on_walk(A, va, PageSize::Size4K, 500, false, false);
        a.merge(&b);
        let ds = a.dataset(1.0);
        assert_eq!(ds[0].ptw_frequency, 2);
    }

    #[test]
    fn dataset_handles_empty_tracker() {
        assert!(FeatureTracker::new().dataset(0.3).is_empty());
    }
}
