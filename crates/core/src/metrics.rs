//! Binary-classification metrics for the PTW-CP design study (Table 2).
//!
//! We use the standard definitions (the paper's prose description of
//! "recall" is idiosyncratic, but its numbers are consistent with the
//! standard recall = TP / (TP + FN)).

/// A 2×2 confusion matrix for the "costly-to-translate" classifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Costly pages predicted costly.
    pub tp: u64,
    /// Non-costly pages predicted costly (cache pollution).
    pub fp: u64,
    /// Non-costly pages predicted non-costly.
    pub tn: u64,
    /// Costly pages predicted non-costly (performance left on the table).
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Fraction of positive predictions that were correct.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Fraction of actual positives that were found.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc={:.2}% prec={:.2}% rec={:.2}% f1={:.2}%",
            self.accuracy() * 100.0,
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f1() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(tp: u64, fp: u64, tn: u64, fn_: u64) -> ConfusionMatrix {
        ConfusionMatrix { tp, fp, tn, fn_ }
    }

    #[test]
    fn perfect_classifier() {
        let m = matrix(10, 0, 10, 0);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn known_values() {
        // tp=8, fp=2, tn=85, fn=5.
        let m = matrix(8, 2, 85, 5);
        assert!((m.accuracy() - 0.93).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 13.0).abs() < 1e-12);
        let p = 0.8;
        let r = 8.0 / 13.0;
        assert!((m.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn record_routes_to_cells() {
        let mut m = ConfusionMatrix::new();
        m.record(true, true);
        m.record(true, false);
        m.record(false, false);
        m.record(false, true);
        assert_eq!(m, matrix(1, 1, 1, 1));
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn degenerate_cases_return_zero_not_nan() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
        let never_positive = matrix(0, 0, 5, 5);
        assert_eq!(never_positive.precision(), 0.0);
        assert_eq!(never_positive.f1(), 0.0);
    }
}
