//! The TLB-aware SRRIP replacement policy (Listing 1 of the paper).
//!
//! Three deviations from baseline SRRIP, all gated on high translation
//! pressure (L2 TLB MPKI > 5):
//!
//! 1. **Insertion**: TLB blocks are inserted with a re-reference interval
//!    of 0 (near-immediate reuse predicted) instead of the long interval.
//! 2. **Victim selection**: if the chosen victim is a TLB block, one more
//!    attempt is made to find a non-TLB victim.
//! 3. **Promotion**: a hit on a TLB block lowers its RRPV by 3 instead of
//!    1, keeping hot translation clusters resident.

use mem_sim::{CacheBlock, ReplacementCtx, ReplacementPolicy, Srrip, RRIP_MAX};

/// Insertion RRPV for ordinary blocks (long re-reference interval).
const RRIP_INSERT: u8 = 2;

/// Victima's TLB-aware SRRIP.
///
/// Plugs into `mem_sim::Cache` exactly like the baseline policies:
///
/// ```
/// use mem_sim::{Cache, CacheConfig};
/// use victima::TlbAwareSrrip;
///
/// let cache = Cache::new(
///     CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
///     Box::new(TlbAwareSrrip::new()),
/// );
/// assert_eq!(cache.policy_name(), "TLB-aware-SRRIP");
/// ```
#[derive(Debug, Default)]
pub struct TlbAwareSrrip;

impl TlbAwareSrrip {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl ReplacementPolicy for TlbAwareSrrip {
    fn on_fill(&mut self, set: &mut [CacheBlock], way: usize, ctx: &ReplacementCtx) {
        let block = &mut set[way];
        if block.kind.is_translation() && ctx.tlb_pressure_high() {
            block.rrip = 0;
        } else {
            block.rrip = RRIP_INSERT;
        }
    }

    fn on_hit(&mut self, set: &mut [CacheBlock], way: usize, ctx: &ReplacementCtx) {
        let block = &mut set[way];
        if block.kind.is_translation() && ctx.tlb_pressure_high() {
            block.rrip = block.rrip.saturating_sub(3);
        } else {
            block.rrip = block.rrip.saturating_sub(1);
        }
    }

    fn choose_victim(&mut self, set: &mut [CacheBlock], ctx: &ReplacementCtx) -> usize {
        let way = Srrip::scan_victim(set);
        if set[way].valid && set[way].kind.is_translation() && ctx.tlb_pressure_high() {
            // One more attempt (Listing 1 line 23): prefer any non-TLB
            // block that has also aged to RRIP_MAX. If none exists, the
            // TLB block is evicted (and dropped, not written back).
            if let Some(alt) =
                set.iter().position(|b| b.valid && !b.kind.is_translation() && b.rrip >= RRIP_MAX)
            {
                return alt;
            }
        }
        way
    }

    fn name(&self) -> &'static str {
        "TLB-aware-SRRIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::BlockKind;
    use vm_types::{Asid, PageSize};

    const PRESSURE: ReplacementCtx = ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 0.0 };
    const CALM: ReplacementCtx = ReplacementCtx { l2_tlb_mpki: 0.0, l2_cache_mpki: 0.0 };

    fn block(kind: BlockKind, tag: u64) -> CacheBlock {
        let mut b = CacheBlock::INVALID;
        b.refill(tag, kind, Asid::new(1), PageSize::Size4K, false, false);
        b
    }

    #[test]
    fn tlb_fill_under_pressure_gets_rrpv_zero() {
        let mut p = TlbAwareSrrip::new();
        let mut set = vec![block(BlockKind::Tlb, 1), block(BlockKind::Data, 2)];
        p.on_fill(&mut set, 0, &PRESSURE);
        p.on_fill(&mut set, 1, &PRESSURE);
        assert_eq!(set[0].rrip, 0);
        assert_eq!(set[1].rrip, RRIP_INSERT);
    }

    #[test]
    fn tlb_fill_without_pressure_is_ordinary() {
        let mut p = TlbAwareSrrip::new();
        let mut set = vec![block(BlockKind::Tlb, 1)];
        p.on_fill(&mut set, 0, &CALM);
        assert_eq!(set[0].rrip, RRIP_INSERT);
    }

    #[test]
    fn tlb_hit_promotes_by_three() {
        let mut p = TlbAwareSrrip::new();
        let mut set = vec![block(BlockKind::Tlb, 1), block(BlockKind::Data, 2)];
        set[0].rrip = 3;
        set[1].rrip = 3;
        p.on_hit(&mut set, 0, &PRESSURE);
        p.on_hit(&mut set, 1, &PRESSURE);
        assert_eq!(set[0].rrip, 0, "TLB promotion is -3");
        assert_eq!(set[1].rrip, 2, "data promotion is -1");
    }

    #[test]
    fn victim_diverts_away_from_tlb_blocks_under_pressure() {
        let mut p = TlbAwareSrrip::new();
        let mut set = vec![block(BlockKind::Tlb, 1), block(BlockKind::Data, 2)];
        set[0].rrip = RRIP_MAX;
        set[1].rrip = RRIP_MAX;
        // Scan would find way 0 (the TLB block) first; the second attempt
        // must divert to the data block.
        assert_eq!(p.choose_victim(&mut set, &PRESSURE), 1);
        // Without pressure the TLB block is fair game.
        set[0].rrip = RRIP_MAX;
        set[1].rrip = RRIP_MAX;
        assert_eq!(p.choose_victim(&mut set, &CALM), 0);
    }

    #[test]
    fn tlb_block_still_evictable_when_no_alternative() {
        let mut p = TlbAwareSrrip::new();
        let mut set = vec![block(BlockKind::Tlb, 1), block(BlockKind::Tlb, 2)];
        set[0].rrip = RRIP_MAX;
        set[1].rrip = 1;
        assert_eq!(p.choose_victim(&mut set, &PRESSURE), 0, "all-TLB set must still yield a victim");
    }

    #[test]
    fn nested_tlb_blocks_get_the_same_treatment() {
        let mut p = TlbAwareSrrip::new();
        let mut set = vec![block(BlockKind::NestedTlb, 1)];
        p.on_fill(&mut set, 0, &PRESSURE);
        assert_eq!(set[0].rrip, 0);
    }

    #[test]
    fn invalid_ways_win_immediately() {
        let mut p = TlbAwareSrrip::new();
        let mut set = vec![block(BlockKind::Data, 1), CacheBlock::INVALID];
        assert_eq!(p.choose_victim(&mut set, &PRESSURE), 1);
    }
}
