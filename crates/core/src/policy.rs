//! The TLB-aware SRRIP replacement policy (Listing 1 of the paper).
//!
//! Three deviations from baseline SRRIP, all gated on high translation
//! pressure (L2 TLB MPKI > 5):
//!
//! 1. **Insertion**: TLB blocks are inserted with a re-reference interval
//!    of 0 (near-immediate reuse predicted) instead of the long interval.
//! 2. **Victim selection**: if the chosen victim is a TLB block, one more
//!    attempt is made to find a non-TLB victim.
//! 3. **Promotion**: a hit on a TLB block lowers its RRPV by 3 instead of
//!    1, keeping hot translation clusters resident.
//!
//! The implementation lives in `mem_sim` as the
//! [`Policy::TlbAwareSrrip`](mem_sim::Policy) variant — replacement is
//! dispatched statically on the cache's hot path, so the policy is an
//! enum variant rather than a trait object; this module re-exports it and
//! keeps the paper-facing behavioural tests. Build a TLB-aware L2 like
//! any other cache:
//!
//! ```
//! use mem_sim::{Cache, CacheConfig, Policy};
//!
//! let cache = Cache::new(
//!     CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
//!     Policy::tlb_aware_srrip(),
//! );
//! assert_eq!(cache.policy_name(), "TLB-aware-SRRIP");
//! ```

pub use mem_sim::{Policy, ReplacementCtx, RRIP_INSERT, RRIP_MAX};

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::{BlockKind, Cache, CacheConfig};
    use vm_types::{Asid, PageSize, PhysAddr};

    const PRESSURE: ReplacementCtx = ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 0.0 };
    const CALM: ReplacementCtx = ReplacementCtx { l2_tlb_mpki: 0.0, l2_cache_mpki: 0.0 };

    /// A 2-way single-purpose cache: one set exercises Listing 1 end to
    /// end through the real packed-array scan paths.
    fn two_way() -> Cache {
        Cache::new(
            CacheConfig { name: "T", size_bytes: 128, ways: 2, block_bytes: 64, latency: 16 },
            Policy::tlb_aware_srrip(),
        )
    }

    #[test]
    fn tlb_blocks_survive_data_pressure_under_high_mpki() {
        // A TLB block inserted under pressure (RRPV 0) outlives several
        // conflicting data fills: victim selection keeps diverting to the
        // aged data ways until the TLB block itself reaches RRIP_MAX with
        // no non-TLB alternative (Listing 1 grants exactly one retry).
        let mut c = two_way();
        c.fill_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &PRESSURE);
        for i in 0..4u64 {
            c.fill_data(PhysAddr::new(i * 128), false, false, &PRESSURE);
        }
        assert!(
            c.contains_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K),
            "the TLB block must still be resident after 4 conflicting data fills"
        );
        assert_eq!(c.translation_block_count(), 1);
    }

    #[test]
    fn tlb_blocks_are_ordinary_without_pressure() {
        // Without translation pressure the same stream evicts the TLB
        // block at the very first capacity conflict (it is the first way
        // the SRRIP scan reaches at RRIP_MAX).
        let mut c = two_way();
        c.fill_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &CALM);
        for i in 0..2u64 {
            c.fill_data(PhysAddr::new(i * 128), false, false, &CALM);
        }
        assert_eq!(c.translation_block_count(), 0, "calm-mode TLB blocks get no protection");
    }

    #[test]
    fn all_tlb_set_still_yields_victims() {
        // Even under pressure a set full of TLB blocks must accept fills.
        let mut c = two_way();
        for tag in 0..4u64 {
            c.fill_translation(0, tag, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &PRESSURE);
        }
        assert_eq!(c.translation_block_count(), 2, "2-way set holds exactly two TLB blocks");
        assert_eq!(c.stats.tlb_block_evictions, 2);
    }

    #[test]
    fn hot_tlb_blocks_out_promote_hot_data() {
        // Promotion asymmetry: after one hit each, the TLB block sits at
        // RRPV 0 while the data block is still aging toward RRIP_MAX, so
        // the next conflict evicts the data line (no-pressure scan order
        // would have preferred the TLB way).
        let mut c = two_way();
        c.fill_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &PRESSURE);
        c.fill_data(PhysAddr::new(0), false, false, &PRESSURE);
        assert!(c.probe_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &PRESSURE));
        assert!(c.access_data(PhysAddr::new(0), false, &PRESSURE));
        c.fill_data(PhysAddr::new(128), false, false, &PRESSURE);
        assert!(c.contains_translation(0, 0x1, BlockKind::Tlb, Asid::new(1), PageSize::Size4K));
        assert!(!c.contains_data(PhysAddr::new(0)), "the data line lost the eviction race");
    }

    #[test]
    fn nested_tlb_blocks_get_the_same_treatment() {
        let mut c = two_way();
        c.fill_translation(0, 0x1, BlockKind::NestedTlb, Asid::new(1), PageSize::Size4K, &PRESSURE);
        for i in 0..4u64 {
            c.fill_data(PhysAddr::new(i * 128), false, false, &PRESSURE);
        }
        assert_eq!(c.translation_block_count(), 1, "nested blocks enjoy Listing 1 too");
    }
}
