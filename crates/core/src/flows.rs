//! Victima's runtime engine: the translation-path probe, the two insertion
//! flows and the TLB maintenance operations.
//!
//! - **Probe (Fig. 17)**: on an L2 TLB miss the L2 cache is probed twice in
//!   parallel — once under a 4KB-page tag, once under a 2MB-page tag —
//!   alongside the page-table walk; a hit aborts the walk.
//! - **Insertion on L2 TLB miss (Fig. 14)**: if PTW-CP predicts the page
//!   costly-to-translate, the data block holding the just-fetched leaf PTE
//!   cluster is *transformed* into a TLB block (re-tagged under the
//!   virtual page-group number; the PA-indexed data copy is invalidated).
//! - **Insertion on L2 TLB eviction**: if PTW-CP is positive and the block
//!   is absent, a background walk fetches the PTE cluster and transforms
//!   it (the `sim` crate performs the actual walk; see
//!   [`Victima::wants_eviction_insert`]).
//! - **Maintenance (Sec. 6)**: full flush, per-ASID flush, and single-VA
//!   shootdown over the TLB blocks residing in the L2.
//!
//! Nested TLB blocks (virtualised mode, Figs. 18–19) use the same engine
//! with [`BlockKind::NestedTlb`].

use crate::predictor::PtwCostPredictor;
use crate::tlb_block::tlb_block_index;
use mem_sim::{BlockKind, Cache, ReplacementCtx};
use tlb_sim::WalkOutcome;
use vm_types::{Asid, PageSize, VirtAddr};

/// Static configuration of the engine.
#[derive(Clone, Debug)]
pub struct VictimaConfig {
    /// Insert TLB blocks on L2 TLB misses (Fig. 14 top flow).
    pub insert_on_miss: bool,
    /// Insert TLB blocks on L2 TLB evictions (background walks).
    pub insert_on_eviction: bool,
    /// Comparator thresholds for the PTW cost predictor.
    pub thresholds: crate::predictor::Thresholds,
}

impl Default for VictimaConfig {
    fn default() -> Self {
        Self {
            insert_on_miss: true,
            insert_on_eviction: true,
            thresholds: crate::predictor::Thresholds::default(),
        }
    }
}

/// Runtime statistics of the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct VictimaStats {
    /// Translation-path probes (pairs of parallel lookups count once).
    pub probes: u64,
    /// Probes that hit a TLB block (translation served from L2 cache).
    pub probe_hits: u64,
    /// ... of which under a 2MB tag.
    pub probe_hits_2m: u64,
    /// Blocks inserted via the L2-TLB-miss flow.
    pub inserts_on_miss: u64,
    /// Blocks inserted via the eviction flow.
    pub inserts_on_eviction: u64,
    /// Background walks requested by the eviction flow.
    pub background_walks: u64,
    /// Transformations that found and re-tagged the data copy in place.
    pub transforms_in_place: u64,
    /// Insertions suppressed because the block was already present.
    pub already_present: u64,
    /// Insertions suppressed by a negative PTW-CP prediction.
    pub predictor_rejections: u64,
    /// TLB blocks invalidated by maintenance operations.
    pub invalidated_blocks: u64,
}

/// The Victima engine. One instance per core; it owns the PTW cost
/// predictor and operates on the L2 cache passed into each call.
#[derive(Clone, Debug, Default)]
pub struct Victima {
    /// Configuration.
    pub cfg: VictimaConfig,
    /// The PTW cost predictor.
    pub predictor: PtwCostPredictor,
    /// Statistics.
    pub stats: VictimaStats,
}

/// Outcome of a successful translation-path probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeHit {
    /// Page size of the TLB block that hit.
    pub size: PageSize,
}

impl Victima {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: VictimaConfig) -> Self {
        Self {
            predictor: PtwCostPredictor::with_thresholds(cfg.thresholds),
            cfg,
            stats: VictimaStats::default(),
        }
    }

    /// The Fig. 17 probe: two parallel typed lookups (4KB and 2MB page
    /// tags). Returns the hit, if any; the caller serves the translation
    /// from the block (one L2 access latency) and aborts the PTW.
    pub fn probe(
        &mut self,
        l2: &mut Cache,
        va: VirtAddr,
        asid: Asid,
        kind: BlockKind,
        ctx: &ReplacementCtx,
    ) -> Option<ProbeHit> {
        debug_assert!(kind.is_translation());
        self.stats.probes += 1;
        let sets = l2.num_sets();
        for size in PageSize::ALL {
            let (set, tag) = tlb_block_index(va, size, sets);
            if l2.probe_translation(set, tag, kind, asid, size, ctx) {
                self.stats.probe_hits += 1;
                if size == PageSize::Size2M {
                    self.stats.probe_hits_2m += 1;
                }
                return Some(ProbeHit { size });
            }
        }
        None
    }

    /// Non-destructive presence check (step ② in Figs. 14/18).
    pub fn block_present(
        &self,
        l2: &Cache,
        va: VirtAddr,
        asid: Asid,
        kind: BlockKind,
        size: PageSize,
    ) -> bool {
        let (set, tag) = tlb_block_index(va, size, l2.num_sets());
        l2.contains_translation(set, tag, kind, asid, size)
    }

    /// The L2-TLB-miss insertion flow (Fig. 14): consult PTW-CP with the
    /// counters the walk just fetched; on a positive prediction, transform
    /// the leaf PTE cluster's cache block into a TLB block. Returns whether
    /// a block was inserted.
    pub fn insert_after_walk(
        &mut self,
        l2: &mut Cache,
        va: VirtAddr,
        asid: Asid,
        kind: BlockKind,
        walk: &WalkOutcome,
        ctx: &ReplacementCtx,
    ) -> bool {
        if !self.cfg.insert_on_miss {
            return false;
        }
        let inserted = self.transform(l2, va, asid, kind, walk, ctx);
        if inserted {
            self.stats.inserts_on_miss += 1;
        }
        inserted
    }

    /// First half of the eviction flow: should the MMU issue a background
    /// walk for this evicted L2 TLB entry? (PTW-CP positive and block not
    /// already present.) `freq`/`cost` are the counter snapshots the entry
    /// carried.
    #[allow(clippy::too_many_arguments)]
    pub fn wants_eviction_insert(
        &mut self,
        l2: &Cache,
        va: VirtAddr,
        asid: Asid,
        kind: BlockKind,
        size: PageSize,
        freq: u8,
        cost: u8,
        ctx: &ReplacementCtx,
    ) -> bool {
        if !self.cfg.insert_on_eviction {
            return false;
        }
        if !self.predictor.should_insert(freq, cost, ctx) {
            self.stats.predictor_rejections += 1;
            return false;
        }
        if self.block_present(l2, va, asid, kind, size) {
            self.stats.already_present += 1;
            return false;
        }
        self.stats.background_walks += 1;
        true
    }

    /// Second half of the eviction flow: the caller performed the
    /// background walk (off the critical path); transform its leaf block.
    pub fn insert_after_eviction_walk(
        &mut self,
        l2: &mut Cache,
        va: VirtAddr,
        asid: Asid,
        kind: BlockKind,
        walk: &WalkOutcome,
        ctx: &ReplacementCtx,
    ) -> bool {
        // The predictor already approved this insertion in
        // `wants_eviction_insert`; transform unconditionally.
        let (set, tag) = tlb_block_index(va, walk.page_size, l2.num_sets());
        if l2.contains_translation(set, tag, kind, asid, walk.page_size) {
            self.stats.already_present += 1;
            return false;
        }
        if l2.invalidate_data(walk.leaf_pte_paddr) {
            self.stats.transforms_in_place += 1;
        }
        l2.fill_translation(set, tag, kind, asid, walk.page_size, ctx);
        self.stats.inserts_on_eviction += 1;
        true
    }

    /// Shared transform: PTW-CP gate + re-tag of the leaf PTE cluster.
    fn transform(
        &mut self,
        l2: &mut Cache,
        va: VirtAddr,
        asid: Asid,
        kind: BlockKind,
        walk: &WalkOutcome,
        ctx: &ReplacementCtx,
    ) -> bool {
        let (freq, cost) = (walk.leaf_pte.ptw_freq(), walk.leaf_pte.ptw_cost());
        if !self.predictor.should_insert(freq, cost, ctx) {
            self.stats.predictor_rejections += 1;
            return false;
        }
        let (set, tag) = tlb_block_index(va, walk.page_size, l2.num_sets());
        if l2.contains_translation(set, tag, kind, asid, walk.page_size) {
            self.stats.already_present += 1;
            return false;
        }
        // Transform: drop the PA-indexed data copy of the cluster (it was
        // just fetched into the L2 by the walk) and insert the VA-indexed
        // TLB block.
        if l2.invalidate_data(walk.leaf_pte_paddr) {
            self.stats.transforms_in_place += 1;
        }
        l2.fill_translation(set, tag, kind, asid, walk.page_size, ctx);
        true
    }

    /// Sec. 6.1(i): invalidate all TLB blocks (full TLB flush).
    pub fn flush_all(&mut self, l2: &mut Cache) -> usize {
        let n = l2.invalidate_translation_blocks(|_| true);
        self.stats.invalidated_blocks += n as u64;
        n
    }

    /// Sec. 6.1(ii): invalidate all TLB blocks of one address space.
    pub fn flush_asid(&mut self, l2: &mut Cache, asid: Asid) -> usize {
        let n = l2.invalidate_translation_blocks(|b| b.asid == asid);
        self.stats.invalidated_blocks += n as u64;
        n
    }

    /// Sec. 6.2(i): single-entry shootdown. Invalidating one TLB entry
    /// drops the whole 8-entry block (both page-size views are checked).
    pub fn shootdown(&mut self, l2: &mut Cache, va: VirtAddr, asid: Asid) -> bool {
        let sets = l2.num_sets();
        let mut any = false;
        for kind in [BlockKind::Tlb, BlockKind::NestedTlb] {
            for size in PageSize::ALL {
                let (set, tag) = tlb_block_index(va, size, sets);
                if l2.invalidate_translation_at(set, tag, kind, asid, size) {
                    self.stats.invalidated_blocks += 1;
                    any = true;
                }
            }
        }
        any
    }

    /// Sec. 6.2(ii): range shootdown — one command per page in the range.
    pub fn shootdown_range(&mut self, l2: &mut Cache, base: VirtAddr, bytes: u64, asid: Asid) -> usize {
        let mut dropped = 0;
        let mut off = 0;
        while off < bytes {
            if self.shootdown(l2, base.add(off), asid) {
                dropped += 1;
            }
            off += PageSize::Size4K.bytes();
        }
        dropped
    }

    /// Translation reach provided by the TLB blocks currently in the L2
    /// cache, in bytes, assuming 4KB pages as in Fig. 23.
    pub fn reach_bytes(&self, l2: &Cache) -> u64 {
        l2.translation_block_count() as u64 * crate::tlb_block::block_coverage_bytes(PageSize::Size4K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::{CacheConfig, Hierarchy, HierarchyConfig};
    use page_table::{FrameAllocator, RadixPageTable};
    use tlb_sim::PageTableWalker;

    fn l2() -> Cache {
        Cache::new(
            CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
            mem_sim::Policy::tlb_aware_srrip(),
        )
    }

    /// Builds a real walk outcome against a real page table + hierarchy.
    fn walk_for(
        va: VirtAddr,
        size: PageSize,
    ) -> (WalkOutcome, Cache, RadixPageTable, Hierarchy, FrameAllocator) {
        let mut alloc = FrameAllocator::new(1 << 30, 3);
        let mut pt = RadixPageTable::new(&mut alloc);
        let frame = alloc.alloc(size);
        pt.map(va, frame, size, &mut alloc);
        let mut hier = Hierarchy::new(HierarchyConfig { prefetchers: false, ..HierarchyConfig::default() });
        let mut walker = PageTableWalker::new();
        let ctx = ReplacementCtx::default();
        let walk = walker.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx).unwrap();
        (walk, l2(), pt, hier, alloc)
    }

    const PRESSURE: ReplacementCtx = ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 0.0 };

    #[test]
    fn miss_flow_inserts_when_predictor_positive() {
        let va = VirtAddr::new(0x4000_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        let mut v = Victima::default();
        // Cold page: freq=1, cost=1 after the first walk → inside the box.
        assert!(v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE));
        assert_eq!(l2.translation_block_count(), 1);
        // Probe now hits under the 4KB tag.
        let hit = v.probe(&mut l2, va, Asid::new(1), BlockKind::Tlb, &PRESSURE).unwrap();
        assert_eq!(hit.size, PageSize::Size4K);
    }

    #[test]
    fn predictor_negative_suppresses_insert() {
        let va = VirtAddr::new(0x4100_0000);
        let (mut walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        // Forge a leaf PTE with zero counters (outside the bounding box).
        walk.leaf_pte = page_table::Pte::leaf(walk.frame, walk.page_size);
        let mut v = Victima::default();
        assert!(!v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE));
        assert_eq!(v.stats.predictor_rejections, 1);
        assert_eq!(l2.translation_block_count(), 0);
    }

    #[test]
    fn high_cache_mpki_bypasses_predictor() {
        let va = VirtAddr::new(0x4200_0000);
        let (mut walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        walk.leaf_pte = page_table::Pte::leaf(walk.frame, walk.page_size);
        let thrash = ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 40.0 };
        let mut v = Victima::default();
        assert!(v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &thrash));
    }

    #[test]
    fn transform_invalidates_data_copy() {
        let va = VirtAddr::new(0x4300_0000);
        let (walk, mut l2, _pt, mut hier, _a) = walk_for(va, PageSize::Size4K);
        // Load the leaf cluster into our test L2 as a data block first.
        let ctx = ReplacementCtx::default();
        l2.fill_data(walk.leaf_pte_paddr, false, false, &ctx);
        assert!(l2.contains_data(walk.leaf_pte_paddr));
        let mut v = Victima::default();
        assert!(v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE));
        assert!(!l2.contains_data(walk.leaf_pte_paddr), "data copy must be gone");
        assert_eq!(v.stats.transforms_in_place, 1);
        let _ = &mut hier;
    }

    #[test]
    fn duplicate_insert_is_suppressed() {
        let va = VirtAddr::new(0x4400_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        let mut v = Victima::default();
        assert!(v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE));
        assert!(!v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE));
        assert_eq!(v.stats.already_present, 1);
        assert_eq!(l2.translation_block_count(), 1);
    }

    #[test]
    fn eviction_flow_two_phase() {
        let va = VirtAddr::new(0x4500_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        let mut v = Victima::default();
        let a = Asid::new(1);
        // Positive counters → wants a background walk.
        assert!(v.wants_eviction_insert(&l2, va, a, BlockKind::Tlb, PageSize::Size4K, 2, 3, &PRESSURE));
        assert_eq!(v.stats.background_walks, 1);
        assert!(v.insert_after_eviction_walk(&mut l2, va, a, BlockKind::Tlb, &walk, &PRESSURE));
        // Now present → second eviction of the same page does nothing.
        assert!(!v.wants_eviction_insert(&l2, va, a, BlockKind::Tlb, PageSize::Size4K, 2, 3, &PRESSURE));
        // Zero counters → predictor rejects.
        assert!(!v.wants_eviction_insert(
            &l2,
            VirtAddr::new(0x9990_0000),
            a,
            BlockKind::Tlb,
            PageSize::Size4K,
            0,
            0,
            &PRESSURE
        ));
    }

    #[test]
    fn probe_distinguishes_block_kinds() {
        let va = VirtAddr::new(0x4600_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        let mut v = Victima::default();
        v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::NestedTlb, &walk, &PRESSURE);
        assert!(v.probe(&mut l2, va, Asid::new(1), BlockKind::Tlb, &PRESSURE).is_none());
        assert!(v.probe(&mut l2, va, Asid::new(1), BlockKind::NestedTlb, &PRESSURE).is_some());
    }

    #[test]
    fn probe_finds_2m_blocks() {
        let va = VirtAddr::new(0x8000_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size2M);
        let mut v = Victima::default();
        assert!(v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE));
        // Any address within the 16MB the block covers hits.
        let hit =
            v.probe(&mut l2, VirtAddr::new(0x8000_0000 + (5 << 20)), Asid::new(1), BlockKind::Tlb, &PRESSURE);
        assert_eq!(hit.unwrap().size, PageSize::Size2M);
        assert_eq!(v.stats.probe_hits_2m, 1);
    }

    #[test]
    fn maintenance_operations_drop_blocks() {
        let va = VirtAddr::new(0x4700_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        let mut v = Victima::default();
        let a1 = Asid::new(1);
        v.insert_after_walk(&mut l2, va, a1, BlockKind::Tlb, &walk, &PRESSURE);
        // Shootdown of any page in the 8-page cluster drops the block.
        assert!(v.shootdown(&mut l2, va.add(3 * 4096), a1));
        assert_eq!(l2.translation_block_count(), 0);
        // Re-insert then flush by ASID.
        v.insert_after_eviction_walk(&mut l2, va, a1, BlockKind::Tlb, &walk, &PRESSURE);
        assert_eq!(v.flush_asid(&mut l2, Asid::new(9)), 0);
        assert_eq!(v.flush_asid(&mut l2, a1), 1);
        // Re-insert then full flush.
        v.insert_after_eviction_walk(&mut l2, va, a1, BlockKind::Tlb, &walk, &PRESSURE);
        assert_eq!(v.flush_all(&mut l2), 1);
    }

    #[test]
    fn reach_counts_blocks_times_32kb() {
        let va = VirtAddr::new(0x4800_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        let mut v = Victima::default();
        assert_eq!(v.reach_bytes(&l2), 0);
        v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE);
        assert_eq!(v.reach_bytes(&l2), 32 << 10);
    }

    #[test]
    fn range_shootdown_covers_all_pages() {
        let va = VirtAddr::new(0x4900_0000);
        let (walk, mut l2, _pt, _hier, _a) = walk_for(va, PageSize::Size4K);
        let mut v = Victima::default();
        v.insert_after_walk(&mut l2, va, Asid::new(1), BlockKind::Tlb, &walk, &PRESSURE);
        let dropped = v.shootdown_range(&mut l2, va, 32 << 10, Asid::new(1));
        assert_eq!(dropped, 1, "first page's command drops the block; rest are no-ops");
        assert_eq!(l2.translation_block_count(), 0);
    }
}
