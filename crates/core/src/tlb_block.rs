//! Set/tag arithmetic for TLB blocks (Fig. 13 of the paper).
//!
//! A 64B cache block holds 8 PTEs covering 8 *contiguous* virtual pages, so
//! a TLB block is identified by the page-group number `VPN >> 3`. Unlike a
//! data block (indexed by physical block number), a TLB block is indexed by
//! the low bits of the group number and tagged by the rest — which leaves
//! spare tag bits that Victima uses for the ASID and page-size metadata
//! (footnote 4 gives the feasibility condition).

use vm_types::{PageSize, VirtAddr, PA_BITS, VA_BITS};

/// PTEs per 64B TLB block.
pub const ENTRIES_PER_BLOCK: u64 = 8;

/// Memory covered by one TLB block: 8 pages of the given size.
///
/// # Examples
///
/// ```
/// use victima::tlb_block::block_coverage_bytes;
/// use vm_types::PageSize;
/// assert_eq!(block_coverage_bytes(PageSize::Size4K), 32 << 10);
/// assert_eq!(block_coverage_bytes(PageSize::Size2M), 16 << 20);
/// ```
pub const fn block_coverage_bytes(size: PageSize) -> u64 {
    ENTRIES_PER_BLOCK * size.bytes()
}

/// The (set, tag) an address maps to as a TLB block, for an L2 cache of
/// `num_sets` sets.
///
/// # Panics
///
/// Panics (debug builds) if `num_sets` is not a power of two.
#[inline]
pub fn tlb_block_index(va: VirtAddr, size: PageSize, num_sets: usize) -> (usize, u64) {
    debug_assert!(num_sets.is_power_of_two());
    group_index(va.vpn(size) >> 3, num_sets)
}

/// The (set, tag) for a page-group number (`VPN >> 3`) directly.
#[inline]
pub fn group_index(group: u64, num_sets: usize) -> (usize, u64) {
    let set = (group & (num_sets as u64 - 1)) as usize;
    let tag = group >> num_sets.trailing_zeros();
    (set, tag)
}

/// Which of the block's 8 PTE slots serves `va` (the 3 least significant
/// VPN bits, footnote 3).
#[inline]
pub const fn entry_slot(va: VirtAddr, size: PageSize) -> usize {
    (va.vpn(size) & 0x7) as usize
}

/// Tag bits a TLB block needs: `VA_BITS - page_shift - 3 - log2(sets)`
/// (Sec. 5.1 computes 23 for a 1MB 16-way cache with 4KB pages).
pub const fn tlb_tag_bits(num_sets: usize, size: PageSize) -> u32 {
    VA_BITS - size.shift() as u32 - 3 - num_sets.trailing_zeros()
}

/// Tag bits a conventional data block needs:
/// `PA_BITS - log2(sets) - log2(64)`.
pub const fn data_tag_bits(num_sets: usize) -> u32 {
    PA_BITS - num_sets.trailing_zeros() - 6
}

/// Spare tag bits available to store the ASID/VMID and page-size metadata
/// when a TLB block reuses the data block's physical tag store.
pub const fn spare_tag_bits(num_sets: usize, size: PageSize) -> u32 {
    data_tag_bits(num_sets).saturating_sub(tlb_tag_bits(num_sets, size))
}

/// Footnote 4's aliasing-feasibility condition: unique tagging without
/// enlarging the hardware tag entries requires `PA_BITS > VA_BITS - 9`.
pub const fn can_tag_uniquely(va_bits: u32, pa_bits: u32) -> bool {
    pa_bits > va_bits - 9
}

#[cfg(test)]
mod tests {
    use super::*;

    const L2_SETS: usize = 2048; // 2MB, 16-way, 64B blocks

    #[test]
    fn contiguous_pages_share_a_block() {
        let base = VirtAddr::new(0x4000_0000);
        let (s0, t0) = tlb_block_index(base, PageSize::Size4K, L2_SETS);
        for i in 0..8u64 {
            let (s, t) = tlb_block_index(base.add(i * 4096), PageSize::Size4K, L2_SETS);
            assert_eq!((s, t), (s0, t0), "page {i} left the block");
            assert_eq!(entry_slot(base.add(i * 4096), PageSize::Size4K), i as usize);
        }
        // The 9th page starts a new block.
        let (s, t) = tlb_block_index(base.add(8 * 4096), PageSize::Size4K, L2_SETS);
        assert_ne!((s, t), (s0, t0));
    }

    #[test]
    fn adjacent_groups_map_to_adjacent_sets() {
        let a = tlb_block_index(VirtAddr::new(0), PageSize::Size4K, L2_SETS);
        let b = tlb_block_index(VirtAddr::new(8 * 4096), PageSize::Size4K, L2_SETS);
        assert_eq!(b.0, a.0 + 1);
        assert_eq!(b.1, a.1);
    }

    #[test]
    fn set_tag_round_trip_is_injective() {
        // Distinct groups must produce distinct (set, tag) pairs.
        let mut seen = std::collections::HashSet::new();
        for group in 0..10_000u64 {
            let key = group_index(group, L2_SETS);
            assert!(seen.insert(key), "collision for group {group}");
        }
    }

    #[test]
    fn paper_tag_width_example() {
        // Sec. 5.1: 1MB 16-way cache → 1024 sets; 4KB pages → 23 tag bits;
        // data tag = 52 - 10 - 6 = 36 bits.
        assert_eq!(tlb_tag_bits(1024, PageSize::Size4K), 23);
        assert_eq!(data_tag_bits(1024), 36);
        assert_eq!(spare_tag_bits(1024, PageSize::Size4K), 13);
    }

    #[test]
    fn our_l2_has_spare_bits_for_asid() {
        // 2MB 16-way L2 → 2048 sets: spare bits must cover ≥11-bit ASID +
        // page-size bit for 4KB blocks (the paper's Sec. 5.1 layout).
        assert!(spare_tag_bits(L2_SETS, PageSize::Size4K) >= 12);
        assert!(spare_tag_bits(L2_SETS, PageSize::Size2M) >= 12);
    }

    #[test]
    fn aliasing_condition_matches_footnote4() {
        assert!(can_tag_uniquely(48, 52));
        assert!(can_tag_uniquely(57, 52)); // 52 > 48
        assert!(!can_tag_uniquely(61, 52));
    }

    #[test]
    fn huge_page_blocks_cover_16mb() {
        let base = VirtAddr::new(0x1_0000_0000);
        let (s0, t0) = tlb_block_index(base, PageSize::Size2M, L2_SETS);
        let inside = base.add(15 << 20); // still within 8 x 2MB
        let (s, t) = tlb_block_index(inside, PageSize::Size2M, L2_SETS);
        assert_eq!((s, t), (s0, t0));
        let outside = base.add(16 << 20);
        assert_ne!(tlb_block_index(outside, PageSize::Size2M, L2_SETS), (s0, t0));
    }

    #[test]
    fn size_disambiguates_identical_va() {
        let va = VirtAddr::new(0x4000_0000);
        let a = tlb_block_index(va, PageSize::Size4K, L2_SETS);
        let b = tlb_block_index(va, PageSize::Size2M, L2_SETS);
        assert_ne!(a, b, "4KB and 2MB views of one VA are different blocks");
    }
}
