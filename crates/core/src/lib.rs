//! Victima (MICRO 2023): drastically increasing address translation reach
//! by leveraging underutilized cache resources.
//!
//! Victima repurposes L2 *data cache* blocks to store clusters of 8 TLB
//! entries, giving the processor a high-capacity, low-latency backstop
//! behind the last-level TLB without any new SRAM structures, OS changes
//! or contiguous physical allocations. This crate implements the paper's
//! contribution:
//!
//! - [`tlb_block`] — the virtually indexed set/tag math that lets the same
//!   L2 cache store PA-indexed data blocks and VA-indexed TLB blocks
//!   (Fig. 13), including the aliasing-feasibility rule of footnote 4;
//! - [`predictor`] — the PTW cost predictor (PTW-CP), a four-comparator
//!   circuit over the PTE-embedded PTW frequency/cost counters, with the
//!   L2-cache-MPKI bypass (Fig. 15/16);
//! - [`policy`] — the TLB-aware SRRIP replacement policy (Listing 1);
//! - [`flows`] — the insertion flows on L2 TLB misses and evictions, the
//!   parallel probe of the translation path (Figs. 14/17–19), and the
//!   Sec. 6 TLB maintenance operations;
//! - [`features`] / [`nn`] / [`metrics`] — the predictor design study of
//!   Table 2: per-page feature collection, from-scratch MLP training
//!   (NN-10 / NN-5 / NN-2) and the comparator's classification metrics.
//!
//! # Examples
//!
//! ```
//! use victima::predictor::PtwCostPredictor;
//!
//! let mut p = PtwCostPredictor::default();
//! // A page with repeated, DRAM-touching walks is costly-to-translate.
//! assert!(p.predict(3, 2));
//! // A page never walked is not.
//! assert!(!p.predict(0, 0));
//! ```

pub mod features;
pub mod flows;
pub mod metrics;
pub mod nn;
pub mod policy;
pub mod predictor;
pub mod tlb_block;

pub use flows::{Victima, VictimaConfig, VictimaStats};
pub use metrics::ConfusionMatrix;
pub use predictor::PtwCostPredictor;
