//! From-scratch multi-layer perceptrons for the PTW-CP design study
//! (Table 2 of the paper).
//!
//! The paper trains three MLPs to predict costly-to-translate pages before
//! distilling them into the 4-comparator production design:
//!
//! | model | features | layers | hidden |
//! |-------|----------|--------|--------|
//! | NN-10 | all 10   | 4      | 16     |
//! | NN-5  | 5        | 4      | 64     |
//! | NN-2  | 2        | 6      | 4      |
//!
//! We implement the networks directly (ReLU hidden layers, sigmoid output,
//! weighted binary cross-entropy, plain SGD with momentum) — no external
//! dependency at all: initialisation and shuffling draw from the
//! workspace's deterministic [`SplitMix64`] generator.

use crate::features::Sample;
use crate::metrics::ConfusionMatrix;
use crate::predictor::{PtwCostPredictor, Thresholds};
use vm_types::SplitMix64;

/// Deterministic training RNG: uniform floats and Fisher–Yates shuffles
/// over SplitMix64.
#[derive(Clone, Debug)]
struct TrainRng(SplitMix64);

impl TrainRng {
    fn new(seed: u64) -> Self {
        Self(SplitMix64::new(seed))
    }

    /// Uniform f32 in `[lo, hi)`.
    fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.0.next_f64() as f32
    }

    /// Uniform draw in `[0, bound)` (only test datasets need integers).
    #[cfg(test)]
    fn below(&mut self, bound: u64) -> u64 {
        self.0.next_below(bound)
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.0.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Which Table 1 features a model consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureSet {
    /// All 10 features (NN-10).
    All10,
    /// PTW cost, PTW frequency, PWC hits, L2 TLB evictions, accesses
    /// (NN-5).
    Top5,
    /// PTW frequency and PTW cost only (NN-2 and the comparator).
    Two,
}

impl FeatureSet {
    /// Indices into [`Sample::features`] (Table 1 order).
    pub fn indices(self) -> &'static [usize] {
        match self {
            FeatureSet::All10 => &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
            FeatureSet::Top5 => &[2, 1, 3, 8, 9],
            FeatureSet::Two => &[1, 2],
        }
    }

    /// Input dimensionality.
    pub fn len(self) -> usize {
        self.indices().len()
    }

    /// Always false; included for API completeness.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Extracts this set's feature vector from a sample.
    pub fn extract(self, s: &Sample) -> Vec<f32> {
        self.indices().iter().map(|&i| s.features[i]).collect()
    }

    /// The layer sizes Table 2 prescribes for this feature set.
    pub fn layer_sizes(self) -> Vec<usize> {
        match self {
            FeatureSet::All10 => vec![10, 16, 16, 1],
            FeatureSet::Top5 => vec![5, 64, 64, 1],
            FeatureSet::Two => vec![2, 4, 4, 4, 4, 1],
        }
    }
}

#[derive(Clone, Debug)]
struct Layer {
    w: Vec<f32>, // out_dim × in_dim, row-major
    b: Vec<f32>,
    vw: Vec<f32>, // momentum buffers
    vb: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut TrainRng) -> Self {
        // He initialisation for the ReLU layers.
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim).map(|_| rng.uniform(-scale, scale)).collect();
        Self {
            w,
            b: vec![0.0; out_dim],
            vw: vec![0.0; in_dim * out_dim],
            vb: vec![0.0; out_dim],
            in_dim,
            out_dim,
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let z: f32 = row.iter().zip(x).map(|(w, x)| w * x).sum::<f32>() + self.b[o];
            out.push(z);
        }
    }
}

/// A small fully connected network.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Layer>,
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Passes over the training set.
    pub epochs: usize,
    /// RNG seed (initialisation + shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { lr: 0.01, momentum: 0.8, epochs: 60, seed: 0x7ab1e2 }
    }
}

/// Leaky-ReLU slope for negative inputs; keeps the deep, narrow NN-2 from
/// dying during per-sample SGD.
const LEAK: f32 = 0.01;

impl Mlp {
    /// Creates a network with the given layer sizes (first = input dim,
    /// last must be 1).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or the output is not 1.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert_eq!(*sizes.last().unwrap(), 1, "binary classifier has one output");
        let mut rng = TrainRng::new(seed);
        let layers = sizes.windows(2).map(|w| Layer::new(w[0], w[1], &mut rng)).collect();
        Self { layers }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Model size in bytes at f32 precision (Table 2's "Size (B)" row).
    pub fn size_bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Probability that the sample is costly-to-translate.
    pub fn predict(&self, x: &[f32]) -> f32 {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if i + 1 < n {
                for v in next.iter_mut() {
                    if *v < 0.0 {
                        *v *= LEAK; // leaky ReLU
                    }
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        sigmoid(cur[0])
    }

    /// Hard classification at threshold 0.5.
    pub fn classify(&self, x: &[f32]) -> bool {
        self.predict(x) >= 0.5
    }

    /// Trains with weighted BCE via per-sample SGD with momentum. The
    /// positive-class weight is set to the negative/positive ratio so the
    /// 30%-positive dataset does not collapse to "always negative".
    pub fn train(&mut self, data: &[(Vec<f32>, bool)], cfg: &TrainConfig) {
        if data.is_empty() {
            return;
        }
        let pos = data.iter().filter(|(_, y)| *y).count().max(1);
        let neg = (data.len() - pos).max(1);
        let pos_weight = neg as f32 / pos as f32;
        let mut rng = TrainRng::new(cfg.seed ^ 0x7e57);
        let mut order: Vec<usize> = (0..data.len()).collect();

        // Forward activations per layer (post-activation), reused buffers.
        let n_layers = self.layers.len();
        let mut acts: Vec<Vec<f32>> = vec![Vec::new(); n_layers + 1];
        let mut zs: Vec<Vec<f32>> = vec![Vec::new(); n_layers];

        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let (x, y) = &data[i];
                // Forward.
                acts[0] = x.clone();
                for (l, layer) in self.layers.iter().enumerate() {
                    let (head, tail) = acts.split_at_mut(l + 1);
                    layer.forward(&head[l], &mut zs[l]);
                    tail[0] = zs[l].clone();
                    if l + 1 < n_layers {
                        for v in tail[0].iter_mut() {
                            if *v < 0.0 {
                                *v *= LEAK;
                            }
                        }
                    }
                }
                let p = sigmoid(acts[n_layers][0]);
                let target = if *y { 1.0 } else { 0.0 };
                let weight = if *y { pos_weight } else { 1.0 };
                // dL/dz for sigmoid+BCE.
                let mut delta = vec![weight * (p - target)];
                // Backward.
                #[allow(clippy::needless_range_loop)]
                for l in (0..n_layers).rev() {
                    let layer = &mut self.layers[l];
                    let input = &acts[l];
                    let mut next_delta = vec![0.0f32; layer.in_dim];
                    for o in 0..layer.out_dim {
                        let d = delta[o];
                        let row_start = o * layer.in_dim;
                        for i_in in 0..layer.in_dim {
                            next_delta[i_in] += layer.w[row_start + i_in] * d;
                            let g = d * input[i_in];
                            let v = &mut layer.vw[row_start + i_in];
                            *v = cfg.momentum * *v - cfg.lr * g;
                            layer.w[row_start + i_in] += *v;
                        }
                        let vb = &mut layer.vb[o];
                        *vb = cfg.momentum * *vb - cfg.lr * d;
                        layer.b[o] += *vb;
                    }
                    if l > 0 {
                        // Backprop through the leaky ReLU of the previous layer.
                        for (nd, z) in next_delta.iter_mut().zip(&zs[l - 1]) {
                            if *z <= 0.0 {
                                *nd *= LEAK;
                            }
                        }
                    }
                    delta = next_delta;
                }
            }
        }
    }

    /// Evaluates the classifier on labelled data.
    pub fn evaluate(&self, data: &[(Vec<f32>, bool)]) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        for (x, y) in data {
            m.record(self.classify(x), *y);
        }
        m
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// Splits samples into (train, test) deterministically.
pub fn split_samples(samples: &[Sample], test_fraction: f64, seed: u64) -> (Vec<Sample>, Vec<Sample>) {
    let mut idx: Vec<usize> = (0..samples.len()).collect();
    let mut rng = TrainRng::new(seed);
    rng.shuffle(&mut idx);
    let n_test = ((samples.len() as f64) * test_fraction) as usize;
    let (test_idx, train_idx) = idx.split_at(n_test);
    (train_idx.iter().map(|&i| samples[i]).collect(), test_idx.iter().map(|&i| samples[i]).collect())
}

/// Converts samples to a model's (input, label) pairs.
pub fn to_xy(set: FeatureSet, samples: &[Sample]) -> Vec<(Vec<f32>, bool)> {
    samples.iter().map(|s| (set.extract(s), s.costly)).collect()
}

/// Trains one of the Table 2 networks on `train` and evaluates on `test`.
pub fn train_and_evaluate(
    set: FeatureSet,
    train: &[Sample],
    test: &[Sample],
    cfg: &TrainConfig,
) -> (Mlp, ConfusionMatrix) {
    let mut mlp = Mlp::new(&set.layer_sizes(), cfg.seed);
    mlp.train(&to_xy(set, train), cfg);
    let m = mlp.evaluate(&to_xy(set, test));
    (mlp, m)
}

/// Evaluates the production comparator on labelled samples (Table 2's
/// final column).
pub fn evaluate_comparator(thresholds: &Thresholds, samples: &[Sample]) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for s in samples {
        let pred = PtwCostPredictor::classify(thresholds, s.ptw_frequency, s.ptw_cost);
        m.record(pred, s.costly);
    }
    m
}

/// Fig. 16: NN-2's decision over every (frequency, cost) pair. Returns a
/// `(freq, cost, costly)` triple per grid point (freq 0..=7, cost 0..=15).
pub fn decision_grid(nn2: &Mlp) -> Vec<(u8, u8, bool)> {
    let mut grid = Vec::with_capacity(8 * 16);
    for freq in 0..=7u8 {
        for cost in 0..=15u8 {
            let x = vec![freq as f32 / 7.0, cost as f32 / 15.0];
            grid.push((freq, cost, nn2.classify(&x)));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic dataset whose ground truth *is* the bounding box.
    fn box_dataset(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = TrainRng::new(seed);
        (0..n)
            .map(|_| {
                let freq: u8 = rng.below(8) as u8;
                let cost: u8 = rng.below(16) as u8;
                let costly = (1..=7).contains(&freq) && (1..=12).contains(&cost);
                let mut features = [0f32; 10];
                features[1] = freq as f32 / 7.0;
                features[2] = cost as f32 / 15.0;
                Sample { features, ptw_frequency: freq, ptw_cost: cost, costly }
            })
            .collect()
    }

    #[test]
    fn param_counts_scale_with_architecture() {
        let nn10 = Mlp::new(&FeatureSet::All10.layer_sizes(), 1);
        let nn5 = Mlp::new(&FeatureSet::Top5.layer_sizes(), 1);
        let nn2 = Mlp::new(&FeatureSet::Two.layer_sizes(), 1);
        assert!(nn5.param_count() > nn10.param_count(), "NN-5's 64-wide layers dominate");
        assert!(nn2.param_count() < nn10.param_count());
        assert_eq!(nn10.param_count(), 10 * 16 + 16 + 16 * 16 + 16 + 16 + 1);
    }

    #[test]
    fn untrained_network_produces_probabilities() {
        let mlp = Mlp::new(&[2, 4, 1], 7);
        let p = mlp.predict(&[0.5, 0.5]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn nn2_learns_the_bounding_box() {
        let data = box_dataset(3000, 42);
        let (train, test) = split_samples(&data, 0.3, 9);
        let cfg = TrainConfig { epochs: 120, ..TrainConfig::default() };
        let (_, m) = train_and_evaluate(FeatureSet::Two, &train, &test, &cfg);
        // The paper's NN-2 itself only reaches an F1 of 0.81 (Table 2);
        // the 6-layer / 4-wide architecture is deliberately tiny.
        assert!(m.f1() > 0.75, "NN-2 should mostly learn a separable box, got f1={}", m.f1());
    }

    #[test]
    fn comparator_is_perfect_on_box_ground_truth() {
        let data = box_dataset(1000, 5);
        let m = evaluate_comparator(&Thresholds::default(), &data);
        assert!((m.accuracy() - 1.0).abs() < 1e-9);
        assert!((m.f1() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn split_is_deterministic_and_partitioning() {
        let data = box_dataset(100, 1);
        let (tr1, te1) = split_samples(&data, 0.3, 3);
        let (tr2, te2) = split_samples(&data, 0.3, 3);
        assert_eq!(tr1.len(), tr2.len());
        assert_eq!(te1.len(), te2.len());
        assert_eq!(tr1.len() + te1.len(), 100);
        assert_eq!(te1.len(), 30);
    }

    #[test]
    fn decision_grid_has_full_coverage() {
        let nn2 = Mlp::new(&FeatureSet::Two.layer_sizes(), 3);
        let grid = decision_grid(&nn2);
        assert_eq!(grid.len(), 8 * 16);
        assert!(grid.iter().any(|&(f, c, _)| f == 7 && c == 15));
    }

    #[test]
    fn feature_sets_extract_expected_columns() {
        let mut features = [0f32; 10];
        for (i, f) in features.iter_mut().enumerate() {
            *f = i as f32;
        }
        let s = Sample { features, ptw_frequency: 0, ptw_cost: 0, costly: false };
        assert_eq!(FeatureSet::Two.extract(&s), vec![1.0, 2.0]);
        assert_eq!(FeatureSet::Top5.extract(&s), vec![2.0, 1.0, 3.0, 8.0, 9.0]);
        assert_eq!(FeatureSet::All10.extract(&s).len(), 10);
    }

    #[test]
    fn training_on_empty_data_is_a_noop() {
        let mut mlp = Mlp::new(&[2, 4, 1], 7);
        let before = mlp.predict(&[0.1, 0.9]);
        mlp.train(&[], &TrainConfig::default());
        assert_eq!(mlp.predict(&[0.1, 0.9]), before);
    }
}
