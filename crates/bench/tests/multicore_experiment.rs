//! The figs. 12–13 acceptance gate, enforced as a test: at the pinned
//! Tiny check profile, Victima's weighted speedup must meet or beat the
//! radix baseline on at least 3 of the 4 mixes in each figure, and the
//! reports must be schedule-independent.

use victima_bench::{experiments, ExpCtx, ExperimentReport};

fn fig(ctx: &ExpCtx, id: &str) -> ExperimentReport {
    experiments::by_id(ctx, id).expect("known id").remove(0)
}

#[test]
fn victima_wins_most_mixes_at_check_profile() {
    let ctx = ExpCtx::check().with_jobs(4);
    for id in ["fig12", "fig13"] {
        let r = fig(&ctx, id);
        let wins = r.metric("victima_wins_vs_radix").expect("metric present").value;
        assert!(wins >= 3.0, "{id}: Victima beats radix on only {wins} of 4 mixes");
        let gmean = r.metric("gmean_ws/Victima").expect("metric present").value;
        assert!(gmean > 0.0 && gmean.is_finite(), "{id}: degenerate weighted speedup {gmean}");
    }
}

#[test]
fn mix_reports_are_byte_stable_across_worker_counts() {
    let a = fig(&ExpCtx::check().with_jobs(1), "fig12");
    let b = fig(&ExpCtx::check().with_jobs(3), "fig12");
    assert_eq!(report::json::to_json(&a), report::json::to_json(&b), "fig12 must not depend on --jobs");
}

#[test]
fn fig12_13_alias_runs_both_figures() {
    let ctx = ExpCtx::check().with_jobs(4);
    let both = experiments::by_id(&ctx, "fig12_13").expect("alias registered");
    let ids: Vec<&str> = both.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(ids, vec!["fig12", "fig13"]);
}
