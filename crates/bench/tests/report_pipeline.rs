//! End-to-end results-pipeline tests: worker-count byte-stability of the
//! rendered `REPORT.md` (golden file), canonical committed baselines, and
//! the check gate against those baselines.

use sim::Runner;
use victima_bench::{experiments, ExpCtx};
use workloads::Scale;

/// Experiments the golden test renders: fig04/fig11 share the Radix
/// suite, fig24 adds the Victima suite — 22 Tiny runs, a few seconds.
const GOLDEN_IDS: [&str; 3] = ["fig04", "fig11", "fig24"];

fn golden_reports(jobs: usize) -> Vec<victima_bench::ExperimentReport> {
    let ctx = ExpCtx::custom(Runner::with_budget(Scale::Tiny, 1_000, 10_000), jobs);
    GOLDEN_IDS.iter().flat_map(|id| experiments::by_id(&ctx, id).expect("known id")).collect()
}

/// `REPORT.md` must be byte-identical whether the suite ran on one worker
/// or four, and must match the committed golden file. Set
/// `VICTIMA_UPDATE_GOLDEN=1` to regenerate the golden after an
/// intentional change.
#[test]
fn report_md_is_byte_stable_across_worker_counts() {
    let md_1 = report::markdown::render_combined(&golden_reports(1));
    let md_4 = report::markdown::render_combined(&golden_reports(4));
    assert_eq!(md_1, md_4, "REPORT.md must not depend on VICTIMA_JOBS");

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/REPORT_tiny.md");
    if std::env::var_os("VICTIMA_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &md_1).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with VICTIMA_UPDATE_GOLDEN=1 to create it");
    assert_eq!(md_1, golden, "REPORT.md drifted from the golden; VICTIMA_UPDATE_GOLDEN=1 if intentional");
}

/// The text and JSON artifacts must be equally schedule-independent.
#[test]
fn text_and_json_artifacts_are_byte_stable_across_worker_counts() {
    let (a, b) = (golden_reports(1), golden_reports(3));
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(report::text::render(ra), report::text::render(rb), "{}", ra.id);
        assert_eq!(report::json::to_json(ra), report::json::to_json(rb), "{}", ra.id);
        assert_eq!(report::csv::to_csv(ra), report::csv::to_csv(rb), "{}", ra.id);
    }
}

/// Every committed baseline parses, is canonical (re-serialising is
/// byte-identical) and carries the pinned check profile's provenance.
#[test]
fn committed_baselines_are_canonical_artifacts() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines");
    let mut seen = 0;
    for id in experiments::checked_ids() {
        let path = format!("{dir}/{id}.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e}; run experiments --save-baselines"));
        let r = report::json::from_json(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert_eq!(r.id, id, "{path}: id mismatch");
        assert_eq!(report::json::to_json(&r), text, "{path}: not canonical");
        // Every baseline runs at a pinned profile: the Tiny check
        // profile, except sampled_small, which pins its own Small-scale
        // sampling profile (see experiments::sampled_small).
        let (scale, budget) =
            if id == "sampled_small" { ("Small", (20_000, 100_000)) } else { ("Tiny", (5_000, 50_000)) };
        assert_eq!(r.provenance.scale, scale, "{path}: baselines must use their pinned profile");
        assert_eq!((r.provenance.warmup, r.provenance.instructions), budget, "{path}");
        assert_eq!(r.provenance.engine, sim::ENGINE_ID, "{path}");
        assert!(!r.metrics.is_empty(), "{path}: a baseline without metrics gates nothing");
        seen += 1;
    }
    assert_eq!(seen, experiments::checked_ids().len());
}

/// The check gate passes for a cheap experiment subset computed in-process
/// at the pinned profile (the full run is the CI smoke job).
#[test]
fn check_gate_matches_committed_baselines() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines");
    let ctx = ExpCtx::check();
    for id in ["calibrate", "fig04", "fig11"] {
        let fresh = experiments::by_id(&ctx, id).expect("known id").remove(0);
        let text = std::fs::read_to_string(format!("{dir}/{id}.json")).expect("baseline present");
        let baseline = report::json::from_json(&text).expect("baseline parses");
        let outcome = report::check_report(&fresh, &baseline);
        assert!(outcome.passed(), "{id}: {}", outcome.summary());
    }
}
