//! End-to-end sweep-service checks against the real `experiments`
//! binary: a daemon process driving worker *processes* (the svc crate's
//! own tests use the in-process backend). Covers the full CLI surface —
//! `serve`, `submit` (daemon and `--local`), `status` — plus the two
//! crash contracts: an aborting worker is isolated to its spec, and a
//! SIGKILLed daemon restarts into its on-disk cache and journal.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

/// Tiny sweep shared by every test: 2 configs x 2 workloads, small
/// enough that even the 1-vCPU CI host clears a cold pass in seconds.
const SWEEP: &[&str] =
    &["--configs", "radix,victima", "--workloads", "RND,XS", "--warmup", "200", "--instr", "2000"];

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("victima-svc-cli-{}-{label}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A `serve` child that is killed (best effort) when the test ends, so
/// a failing assertion doesn't leak daemons.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

fn serve(dir: &Path, envs: &[(&str, &str)]) -> Daemon {
    let mut cmd = Command::new(BIN);
    cmd.args(["serve", "--dir", dir.to_str().unwrap(), "--workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    // Wrapped immediately: `Daemon`'s Drop kills and reaps the child
    // even when the readiness wait below panics.
    let daemon = Daemon(cmd.spawn().expect("serve spawns"));
    // The daemon advertises readiness by writing its address file.
    let addr = dir.join(svc::ADDR_FILE);
    for _ in 0..600 {
        if addr.is_file() {
            return daemon;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon did not write {} within 12s", addr.display());
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(BIN).args(args).output().expect("spawn binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn submit(dir: &Path, extra: &[&str]) -> (bool, String, String) {
    let mut args = vec!["submit", "--dir", dir.to_str().unwrap()];
    args.extend_from_slice(SWEEP);
    args.extend_from_slice(extra);
    run(&args)
}

#[test]
fn daemon_cli_cold_warm_local_and_status_roundtrip() {
    let dir = scratch("roundtrip");
    let _daemon = serve(&dir, &[]);

    // Cold pass: every spec simulates in a worker process.
    let cold_out = dir.join("cold.jsonl");
    let (ok, cold_stdout, stderr) = submit(&dir, &["--out", cold_out.to_str().unwrap()]);
    assert!(ok, "cold submit failed: {stderr}");
    assert_eq!(cold_stdout.lines().count(), 4, "{cold_stdout}");
    assert!(stderr.contains("4 result(s), 0 cached, 0 error(s)"), "{stderr}");

    // Warm pass: zero simulation, byte-identical artifact.
    let warm_out = dir.join("warm.jsonl");
    let (ok, warm_stdout, stderr) = submit(&dir, &["--out", warm_out.to_str().unwrap()]);
    assert!(ok, "warm submit failed: {stderr}");
    assert!(stderr.contains("4 cached"), "{stderr}");
    assert_eq!(warm_stdout, cold_stdout, "warm stream must replay the cold bytes");
    let (cold_file, warm_file) = (std::fs::read(&cold_out).unwrap(), std::fs::read(&warm_out).unwrap());
    assert_eq!(warm_file, cold_file, "--out artifacts must be byte-identical across resubmits");

    // The daemon-free path emits the very same bytes (CI diffs this).
    let (ok, local_stdout, stderr) = submit(&dir, &["--local"]);
    assert!(ok, "local submit failed: {stderr}");
    assert_eq!(local_stdout, cold_stdout, "--local must emit the daemon's bytes");

    // Every streamed line is a parseable result carrying a report.
    for line in cold_stdout.lines() {
        match svc::parse_stream_line(line).expect("stream lines parse") {
            svc::StreamLine::Result { report, .. } => assert_eq!(report.id, "sweep_result"),
            other => panic!("expected a result line, got {other:?}"),
        }
    }

    let (ok, status_stdout, stderr) = run(&["status", "--dir", dir.to_str().unwrap()]);
    assert!(ok, "status failed: {stderr}");
    assert!(status_stdout.contains(svc::PROTO_ID), "{status_stdout}");
    assert!(stderr.contains("2/2 done"), "{stderr}");

    let (ok, _, stderr) = run(&["status", "--dir", dir.to_str().unwrap(), "--shutdown"]);
    assert!(ok, "shutdown failed: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aborting_worker_process_is_isolated_to_its_spec() {
    let dir = scratch("crash");
    // The daemon's workers inherit the crash knob: any spec simulating
    // BC calls abort() mid-run, killing that worker process for real.
    let _daemon = serve(&dir, &[(svc::CRASH_ENV, "BC")]);

    let args = [
        "submit",
        "--dir",
        dir.to_str().unwrap(),
        "--configs",
        "radix,victima",
        "--workloads",
        "RND,BC",
        "--warmup",
        "200",
        "--instr",
        "2000",
    ];
    let (ok, stdout, stderr) = run(&args);
    assert!(!ok, "a sweep with failed specs must exit nonzero");
    assert!(stderr.contains("2 result(s)"), "{stderr}");
    assert!(stderr.contains("2 error(s)"), "{stderr}");
    let mut results = 0;
    let mut errors = 0;
    for line in stdout.lines() {
        match svc::parse_stream_line(line).expect("stream lines parse") {
            svc::StreamLine::Result { report, .. } => {
                results += 1;
                assert_eq!(report.provenance.workloads, ["RND"]);
            }
            svc::StreamLine::Error { workload, error, .. } => {
                errors += 1;
                assert_eq!(workload, "BC");
                assert!(error.contains("worker process exited unexpectedly"), "{error}");
            }
            other => panic!("unexpected line {other:?}"),
        }
    }
    assert_eq!((results, errors), (2, 2), "{stdout}");

    // The daemon survived both worker deaths: a follow-up sweep of the
    // healthy workload completes on a respawned worker.
    let (ok, _, stderr) = submit(&dir, &[]);
    assert!(ok, "post-crash submit failed: {stderr}");
    assert!(stderr.contains("0 error(s)"), "{stderr}");

    let (ok, _, stderr) = run(&["status", "--dir", dir.to_str().unwrap(), "--shutdown"]);
    assert!(ok, "shutdown failed: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkilled_daemon_restarts_into_cache_and_resumes_journal() {
    let dir = scratch("sigkill");
    let daemon = serve(&dir, &[]);

    let (ok, cold_stdout, stderr) = submit(&dir, &[]);
    assert!(ok, "cold submit failed: {stderr}");

    // SIGKILL the daemon — no shutdown handshake, no cleanup.
    drop(daemon);
    std::fs::remove_file(dir.join(svc::ADDR_FILE)).ok();

    // Forge the state a SIGKILL mid-sweep leaves behind: a journaled job
    // with no done marker. The restarted daemon must finish it unasked.
    let journal = svc::Journal::open(dir.join("journal")).unwrap();
    let pending = svc::SweepRequest {
        configs: vec!["radix".into()],
        workloads: vec!["XS".into()],
        scale: workloads::Scale::Tiny,
        warmup: 200,
        instructions: 2_000,
        seed: vm_types::DEFAULT_SEED,
        sampling: None,
    };
    journal.record(&svc::Journal::job_id(2), &pending.to_line()).unwrap();

    let _daemon = serve(&dir, &[]);
    let deadline = std::time::Instant::now() + Duration::from_secs(12);
    loop {
        let (ok, _, stderr) = run(&["status", "--dir", dir.to_str().unwrap()]);
        if ok && stderr.contains("jobs 1/1 done") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "journaled job not resumed: {stderr}");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(journal.pending().unwrap().is_empty(), "resumed job must be marked done");

    // The pre-kill cache survived on disk: the same sweep replays
    // byte-identically with zero simulation.
    let (ok, warm_stdout, stderr) = submit(&dir, &[]);
    assert!(ok, "post-restart submit failed: {stderr}");
    assert!(stderr.contains("4 cached"), "{stderr}");
    assert_eq!(warm_stdout, cold_stdout, "restart must serve the pre-kill bytes");

    let (ok, _, stderr) = run(&["status", "--dir", dir.to_str().unwrap(), "--shutdown"]);
    assert!(ok, "shutdown failed: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submit_without_a_daemon_points_at_serve() {
    let dir = scratch("nodaemon");
    let (ok, _, stderr) = submit(&dir, &[]);
    assert!(!ok);
    assert!(stderr.contains("experiments serve"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
