//! Chaos suite against the real `experiments` binary with real worker
//! *processes*: injected hangs are killed by the wall-clock deadline,
//! injected aborts kill actual workers, poisoned cache entries are
//! quarantined on disk, and dropped connections are healed by the
//! client's reconnect-and-resume — all through the public CLI, nothing
//! mocked. (The in-process half of the fault matrix lives in the svc
//! crate's chaos tests.)

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

const SWEEP: &[&str] =
    &["--configs", "radix,victima", "--workloads", "RND,XS", "--warmup", "200", "--instr", "2000"];

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("victima-chaos-cli-{}-{label}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

/// Spawns `serve --workers 1` plus the given extra flags and waits for
/// the address file.
fn serve(dir: &Path, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(BIN);
    cmd.args(["serve", "--dir", dir.to_str().unwrap(), "--workers", "1"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let daemon = Daemon(cmd.spawn().expect("serve spawns"));
    let addr = dir.join(svc::ADDR_FILE);
    for _ in 0..600 {
        if addr.is_file() {
            return daemon;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon did not write {} within 12s", addr.display());
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(BIN).args(args).output().expect("spawn binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn submit(dir: &Path, extra: &[&str]) -> (bool, String, String) {
    let mut args = vec!["submit", "--dir", dir.to_str().unwrap()];
    args.extend_from_slice(SWEEP);
    args.extend_from_slice(extra);
    run(&args)
}

#[test]
fn hung_worker_is_killed_at_the_deadline_and_respawned() {
    let dir = scratch("hang");
    // A genuinely hung worker process (injected infinite sleep), a tight
    // deadline so the test stays fast, one retry to prove the ladder.
    let _daemon = serve(&dir, &["--faults", "hang=BC", "--deadline-ms", "500", "--retries", "1"]);

    let args = [
        "submit",
        "--dir",
        dir.to_str().unwrap(),
        "--configs",
        "radix",
        "--workloads",
        "RND,BC",
        "--warmup",
        "200",
        "--instr",
        "2000",
    ];
    let (ok, stdout, stderr) = run(&args);
    assert!(!ok, "a sweep with timed-out specs must exit nonzero");
    assert!(stderr.contains("1 error(s)"), "{stderr}");
    let mut timeouts = 0;
    for line in stdout.lines() {
        match svc::parse_stream_line(line).expect("stream lines parse") {
            svc::StreamLine::Result { report, .. } => assert_eq!(report.provenance.workloads, ["RND"]),
            svc::StreamLine::Timeout { workload, error, .. } => {
                timeouts += 1;
                assert_eq!(workload, "BC");
                assert!(error.contains("deadline"), "{error}");
                assert!(error.contains("2 attempt(s)"), "the retry must be spent: {error}");
            }
            other => panic!("unexpected line {other:?}"),
        }
    }
    assert_eq!(timeouts, 1, "{stdout}");

    // The killed worker was respawned: a healthy sweep still completes.
    let (ok, _, stderr) = submit(&dir, &[]);
    assert!(ok, "post-timeout submit failed: {stderr}");
    assert!(stderr.contains("0 error(s)"), "{stderr}");

    let (ok, _, stderr) = run(&["status", "--dir", dir.to_str().unwrap(), "--shutdown"]);
    assert!(ok, "shutdown failed: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_cache_is_quarantined_and_the_stream_stays_byte_identical() {
    let dir = scratch("poison");
    let _daemon = serve(&dir, &["--faults", "cache-corrupt"]);

    let (ok, cold_stdout, stderr) = submit(&dir, &[]);
    assert!(ok, "cold submit failed: {stderr}");

    // Every warm lookup must detect the corrupt entry, quarantine it,
    // and re-simulate: zero cache hits, identical bytes.
    let (ok, warm_stdout, stderr) = submit(&dir, &[]);
    assert!(ok, "warm submit failed: {stderr}");
    assert!(stderr.contains("0 cached"), "poisoned entries must not serve: {stderr}");
    assert_eq!(warm_stdout, cold_stdout, "corruption must never reach the stream");

    let (ok, _, status_stderr) = run(&["status", "--dir", dir.to_str().unwrap()]);
    assert!(ok, "status failed: {status_stderr}");
    assert!(status_stderr.contains("4 quarantined"), "{status_stderr}");
    let quarantined: Vec<_> =
        std::fs::read_dir(dir.join("cache").join("quarantine")).expect("quarantine dir exists").collect();
    assert_eq!(quarantined.len(), 4, "poisoned entries must be preserved for forensics");

    let (ok, _, stderr) = run(&["status", "--dir", dir.to_str().unwrap(), "--shutdown"]);
    assert!(ok, "shutdown failed: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_submit_stream_reconnects_and_reassembles_the_clean_bytes() {
    let dir = scratch("dropconn");

    // Reference bytes from the daemon-free path (same bytes a clean
    // daemon streams — the CI smoke job relies on exactly this identity).
    let (ok, clean_stdout, stderr) = submit(&dir, &["--local"]);
    assert!(ok, "local reference failed: {stderr}");

    let _daemon = serve(&dir, &["--faults", "drop-conn=1"]);

    // One connection's worth of drop budget: the stream dies mid-sweep,
    // the client reconnects and resumes, and the output is whole.
    let (ok, stdout, stderr) = submit(&dir, &["--attempts", "3"]);
    assert!(ok, "resumed submit failed: {stderr}");
    assert!(stderr.contains("reconnect"), "the drop must have forced a reconnect: {stderr}");
    assert_eq!(stdout, clean_stdout, "resumed stream must equal a clean run");

    // With the budget spent, the next submit streams uninterrupted.
    let (ok, stdout, stderr) = submit(&dir, &[]);
    assert!(ok, "post-budget submit failed: {stderr}");
    assert!(!stderr.contains("reconnect"), "{stderr}");
    assert_eq!(stdout, clean_stdout);

    let (ok, _, stderr) = run(&["status", "--dir", dir.to_str().unwrap(), "--shutdown"]);
    assert!(ok, "shutdown failed: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flaky_worker_deaths_are_healed_by_retries() {
    let dir = scratch("flaky");
    // Seed chosen so that with p=0.5 over 4 specs × 3 attempts the sweep
    // completes with zero errors but at least one retry fires — the svc
    // chaos suite scans seeds for the same property; 0x2 exhibits it
    // here (deterministic: the draw only hashes seed/site/spec/attempt).
    for seed in 1..32 {
        let plan = format!("seed=0x{seed:x},abort=*@0.5");
        std::fs::remove_dir_all(&dir).ok();
        let daemon = serve(&dir, &["--faults", &plan]);
        let (ok, _, stderr) = submit(&dir, &[]);
        let (sok, _, status_stderr) = run(&["status", "--dir", dir.to_str().unwrap()]);
        assert!(sok, "status failed: {status_stderr}");
        drop(daemon);
        if ok && !status_stderr.contains(" 0 retried") {
            assert!(stderr.contains("0 error(s)"), "{stderr}");
            std::fs::remove_dir_all(&dir).ok();
            return;
        }
    }
    panic!("no seed in 1..32 recovered via retry — retry path untested");
}
