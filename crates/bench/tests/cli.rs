//! End-to-end checks of the `experiments` binary surface: the trace
//! subcommands and the `--out` contract (missing output directories —
//! parents included — are created, never reported as errors).

use std::path::PathBuf;
use std::process::Command;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vtrace-cli-{}-{label}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments")).args(args).output().expect("spawn binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn trace_record_info_replay_create_missing_out_dirs() {
    let dir = scratch("roundtrip");
    // The trace file's parent directories don't exist yet.
    let trace = dir.join("deep/nested/rnd.vtrace");
    let (ok, stdout, stderr) = run(&[
        "trace",
        "record",
        "RND",
        "--out",
        trace.to_str().unwrap(),
        "--warmup",
        "500",
        "--instr",
        "5000",
    ]);
    assert!(ok, "record failed: {stderr}");
    assert!(stdout.contains("recorded"), "{stdout}");
    assert!(trace.is_file(), "record must create missing parent directories");

    // `--out DIR` artifact emission shares the experiments `--out` path:
    // a missing nested directory is created, not reported as an error.
    let artifacts = dir.join("artifacts/also/missing");
    let (ok, _, stderr) = run(&[
        "trace",
        "info",
        trace.to_str().unwrap(),
        "--format",
        "json",
        "--out",
        artifacts.to_str().unwrap(),
    ]);
    assert!(ok, "info failed: {stderr}");
    let info_json = artifacts.join("trace_info.json");
    assert!(info_json.is_file(), "info artifact lands in the created directory");
    assert!(artifacts.join("REPORT.md").is_file());
    let parsed = report::json::from_json(&std::fs::read_to_string(&info_json).unwrap())
        .expect("trace info emits a valid report-schema artifact");
    assert_eq!(parsed.id, "trace_info");
    assert!(parsed.metric("records").unwrap().value > 0.0);
    assert!(parsed.metric("file_bytes").unwrap().value > 0.0);

    // Replay through the same binary (single worker keeps it cheap).
    let (ok, stdout, stderr) = run(&["trace", "replay", trace.to_str().unwrap(), "--jobs", "1"]);
    assert!(ok, "replay failed: {stderr}");
    assert!(stdout.contains("Trace replay"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_cli_rejects_bad_inputs() {
    let (ok, _, stderr) = run(&["trace", "record", "RND"]);
    assert!(!ok);
    assert!(stderr.contains("--out"), "{stderr}");

    let (ok, _, stderr) = run(&["trace", "info", "/nonexistent/nope.vtrace"]);
    assert!(!ok);
    assert!(stderr.contains("trace info failed"), "{stderr}");

    let (ok, _, stderr) = run(&["trace", "record", "RND", "--out", "/tmp/x.vtrace", "--config", "warp"]);
    assert!(!ok);
    assert!(stderr.contains("unknown config"), "{stderr}");

    // A non-trace file is refused with a format diagnostic, not a crash.
    let bogus = scratch("bogus");
    std::fs::create_dir_all(&bogus).unwrap();
    let not_a_trace = bogus.join("not_a_trace.vtrace");
    std::fs::write(&not_a_trace, b"definitely not VTRC").unwrap();
    let (ok, _, stderr) = run(&["trace", "info", not_a_trace.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("magic"), "{stderr}");
    std::fs::remove_dir_all(&bogus).ok();
}
