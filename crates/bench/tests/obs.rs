//! Observability determinism gate: enabling the full observability
//! layer (hot-path metrics + phase-span tracing) must not move a single
//! byte of any `--check` artifact, at any worker count.
//!
//! The committed baselines are the reference: they were generated with
//! observability off, and `report_pipeline.rs` pins them as canonical
//! (`to_json(parse(text)) == text`). So rendering a fresh obs-enabled
//! run to JSON and byte-comparing against the committed file proves the
//! strongest form of the contract — obs-on output is indistinguishable
//! from obs-off output, not merely within tolerance. The CI `obs-smoke`
//! job runs the same property through the real CLI (`VICTIMA_OBS=1
//! experiments --check` at `--jobs 1` and `--jobs 4`).

use victima_bench::{experiments, ExpCtx};

/// Renders every report an experiment id produces, in order.
fn rendered(ctx: &ExpCtx, id: &str) -> Vec<(String, String)> {
    experiments::by_id(ctx, id)
        .expect("known id")
        .into_iter()
        .map(|r| (r.id.clone(), report::json::to_json(&r)))
        .collect()
}

/// Every checked baseline must be byte-identical to a fresh run with
/// observability fully enabled (metrics + tracing) on four workers —
/// and the run must actually have collected observability data, so the
/// gate cannot silently pass with obs accidentally off.
#[test]
fn check_artifacts_are_byte_identical_with_obs_enabled() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines");
    let ctx = ExpCtx::check().with_jobs(4).with_obs();
    for id in experiments::checked_ids() {
        for (report_id, fresh) in rendered(&ctx, id) {
            let path = format!("{dir}/{report_id}.json");
            let baseline = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{path}: {e}; run experiments --save-baselines"));
            assert_eq!(fresh, baseline, "{report_id}: artifact bytes moved with observability enabled");
        }
    }
    assert!(!ctx.obs_spans().is_empty(), "gate ran with tracing off — proves nothing");
    assert!(!ctx.obs_metrics().is_empty(), "gate ran with metrics off — proves nothing");
}

/// Worker-count independence with obs enabled: one worker and four
/// produce identical bytes (the full suite runs above; a representative
/// subset keeps this variant cheap).
#[test]
fn obs_enabled_artifacts_are_byte_stable_across_worker_counts() {
    let ctx1 = ExpCtx::check().with_jobs(1).with_obs();
    let ctx4 = ExpCtx::check().with_jobs(4).with_obs();
    for id in ["calibrate", "fig04", "fig11"] {
        assert_eq!(rendered(&ctx1, id), rendered(&ctx4, id), "{id}: bytes depend on worker count");
    }
}

/// The collector side of the contract: an obs-enabled context gathers
/// spans and merged metrics; a default context gathers nothing.
#[test]
fn obs_context_collects_and_default_context_does_not() {
    let on = ExpCtx::check().with_obs();
    experiments::by_id(&on, "calibrate").expect("known id");
    let spans = on.obs_spans();
    assert!(spans.iter().any(|s| s.name == "warmup"), "warmup spans expected");
    assert!(spans.iter().any(|s| s.name == "measured"), "measured spans expected");
    let metrics = on.obs_metrics();
    assert!(
        metrics.iter().any(|(n, _)| n == "sim.ptw.walks"),
        "merged registry missing sim.ptw.walks: {:?}",
        metrics.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    let off = ExpCtx::check();
    experiments::by_id(&off, "calibrate").expect("known id");
    assert!(off.obs_spans().is_empty() && off.obs_metrics().is_empty(), "default ctx must not collect");
}
