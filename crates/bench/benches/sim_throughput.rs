//! Simulator throughput macro-benchmark (harness = false): measures
//! Minstr/s (millions of simulated instructions per wall-clock second)
//! for each of the 11 Tiny-scale workloads under the Victima config, the
//! configuration with the heaviest per-access hot path.
//!
//! ```text
//! cargo bench --bench sim_throughput
//! ```
//!
//! Results are written to `BENCH_throughput.json` (override with
//! `VICTIMA_BENCH_OUT`) in the `report` crate's JSON schema and compared
//! against a reference: `VICTIMA_BENCH_REF` when set (CI points it at a
//! per-runner cached artifact), else the committed dev-box reference at
//! `crates/bench/baselines/BENCH_throughput.json`. A per-workload
//! regression beyond 25% fails the run. Wall-clock is machine-dependent
//! — only same-machine comparisons are meaningful — so the gate is
//! deliberately loose and can be skipped on noisy runners with
//! `VICTIMA_SKIP_PERF_GATE=1`.

use report::{Column, ExperimentReport, Metric, Provenance, Unit, Value};
use sim::{RunSpec, SimEngine, SystemConfig};
use std::time::Instant;
use victima_bench::perf;
use workloads::{registry::WORKLOAD_NAMES, Scale};

const WARMUP: u64 = 50_000;
const INSTRUCTIONS: u64 = 2_000_000;

fn main() {
    let cfg = SystemConfig::victima();
    println!(
        "sim_throughput: 11-workload Tiny suite, {WARMUP} warmup + {INSTRUCTIONS} measured instructions, config {}",
        cfg.name
    );

    let mut report = ExperimentReport::new(perf::THROUGHPUT_ID, "Simulator throughput (Minstr/s)")
        .with_columns([Column::new("Minstr/s", Unit::Raw), Column::new("wall", Unit::Raw).with_precision(3)])
        .with_provenance(Provenance {
            scale: format!("{:?}", Scale::Tiny),
            warmup: WARMUP,
            instructions: INSTRUCTIONS,
            seed: vm_types::DEFAULT_SEED,
            engine: sim::ENGINE_ID.to_owned(),
            configs: vec![cfg.name.clone()],
            workloads: WORKLOAD_NAMES.iter().map(|&w| w.to_owned()).collect(),
        });
    report.note("Minstr/s = simulated instructions (warmup + measured) / wall seconds, jobs=1");

    // Each workload runs alone on one thread: per-workload Minstr/s is a
    // scheduling-free measurement of the simulator's hot path.
    let mut total_instr = 0u64;
    let mut total_wall = 0.0f64;
    for &w in WORKLOAD_NAMES.iter() {
        let spec = RunSpec::new(w, cfg.clone(), Scale::Tiny, WARMUP, INSTRUCTIONS);
        let t = Instant::now();
        let r = SimEngine::run_one(0, &spec);
        let wall = t.elapsed().as_secs_f64();
        // The run simulates warmup + measured instructions end to end.
        let simulated = WARMUP + r.stats.instructions;
        let minstr_s = simulated as f64 / 1e6 / wall;
        println!("  {w:<5} {minstr_s:>7.3} Minstr/s  ({wall:.3}s)");
        report.push_row(w, [Value::from(minstr_s), Value::from(wall)]);
        report.push_metric(Metric::new(format!("minstr_per_s/{w}"), minstr_s, Unit::Raw));
        total_instr += simulated;
        total_wall += wall;
    }
    let aggregate = total_instr as f64 / 1e6 / total_wall;
    println!("  aggregate: {aggregate:.3} Minstr/s over {total_wall:.2}s");
    report.push_metric(Metric::new("minstr_per_s/aggregate", aggregate, Unit::Raw));

    // Persist (merging so engine_scaling's wall-clock metrics survive).
    let path = perf::artifact_path();
    perf::merge_into(&path, report);
    println!("  artifact: {}", path.display());

    // The regression gate (VICTIMA_BENCH_REF or the committed reference).
    let fresh = perf::load(&path).expect("artifact just written");
    match perf::load(&perf::reference_path()) {
        None => println!("  gate: no committed reference at {} (skipped)", perf::reference_path().display()),
        Some(reference) => {
            let failures = perf::regressions(&fresh, &reference, "minstr_per_s/");
            if failures.is_empty() {
                println!("  gate: all workloads within 25% of the reference throughput");
            } else if perf::gate_skipped() {
                println!("  gate: {} regression(s) ignored (VICTIMA_SKIP_PERF_GATE=1)", failures.len());
                for f in &failures {
                    println!("    {f}");
                }
            } else {
                eprintln!("  gate: throughput regressed >25% vs the reference:");
                for f in &failures {
                    eprintln!("    {f}");
                }
                eprintln!("  (set VICTIMA_SKIP_PERF_GATE=1 to skip on a noisy machine)");
                std::process::exit(1);
            }
        }
    }
}
