//! Engine scaling macro-benchmark (harness = false): runs the full
//! 11-workload Tiny-scale suite through [`sim::SimEngine`] at 1 worker
//! and at 4 workers, prints the wall-clock for each, and checks the
//! results are byte-identical.
//!
//! ```text
//! cargo bench --bench engine_scaling
//! ```
//!
//! The jobs=1/jobs=4 wall-clocks are merged into the shared
//! `BENCH_throughput.json` artifact (the `sim_throughput` bench's
//! report), so CI uploads one JSON with every perf number instead of the
//! figures vanishing into the log.
//!
//! Determinism is always enforced. The wall-clock comparison is
//! reported for the log; set `VICTIMA_ENFORCE_SCALING=1` to also assert
//! the 4-worker run wins (only meaningful on a quiet multi-core
//! machine — shared CI runners throttle unpredictably).

use report::{ExperimentReport, Metric, Unit};
use sim::{suite_specs, SimEngine, SystemConfig};
use std::time::Instant;
use victima_bench::perf;
use workloads::Scale;

fn main() {
    let warmup = 20_000;
    let instructions = 400_000;
    let cfg = SystemConfig::victima();
    let specs = suite_specs(&cfg, Scale::Tiny, warmup, instructions);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "engine_scaling: 11-workload Tiny suite, {warmup} warmup + {instructions} measured instructions, {cores} core(s)"
    );

    let t1 = Instant::now();
    let seq = SimEngine::with_jobs(1).run_batch(specs.clone());
    let wall_1 = t1.elapsed();
    println!("  jobs=1: {:.2}s", wall_1.as_secs_f64());

    let t4 = Instant::now();
    let par = SimEngine::with_jobs(4).run_batch(specs);
    let wall_4 = t4.elapsed();
    println!(
        "  jobs=4: {:.2}s  (speedup {:.2}x)",
        wall_4.as_secs_f64(),
        wall_1.as_secs_f64() / wall_4.as_secs_f64()
    );

    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.workload, b.workload, "result order must match submission order");
        assert_eq!(a.stats, b.stats, "{}: stats diverged across worker counts", a.workload);
    }
    println!("  determinism: all 11 results byte-identical across worker counts");

    // Land the wall-clocks in the shared perf artifact next to the
    // sim_throughput numbers (metrics merge by name; a metrics-only
    // report never disturbs sim_throughput's per-workload rows).
    let path = perf::artifact_path();
    let mut contribution = ExperimentReport::new(perf::THROUGHPUT_ID, "Simulator throughput (Minstr/s)");
    contribution.push_metric(Metric::new("engine_scaling/wall_s_jobs1", wall_1.as_secs_f64(), Unit::Raw));
    contribution.push_metric(Metric::new("engine_scaling/wall_s_jobs4", wall_4.as_secs_f64(), Unit::Raw));
    contribution.push_metric(Metric::new(
        "engine_scaling/speedup_jobs4",
        wall_1.as_secs_f64() / wall_4.as_secs_f64(),
        Unit::Factor,
    ));
    perf::merge_into(&path, contribution);
    println!("  artifact: {} (engine_scaling/* metrics merged)", path.display());

    let enforce = std::env::var("VICTIMA_ENFORCE_SCALING").map(|v| v == "1").unwrap_or(false);
    if enforce && cores >= 2 {
        assert!(
            wall_4 < wall_1,
            "4 workers must beat 1 worker on a {cores}-core machine: {:.2}s vs {:.2}s",
            wall_4.as_secs_f64(),
            wall_1.as_secs_f64()
        );
        println!("  scaling: 4 workers beat 1 worker (enforced)");
    } else {
        println!("  scaling: wall-clock comparison reported, not enforced (set VICTIMA_ENFORCE_SCALING=1 on a quiet multi-core machine)");
    }
}
