//! Criterion micro-benchmarks for the hot data structures: cache access,
//! TLB probe, radix walk, and Victima's probe + transform.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mem_sim::{BlockKind, Cache, CacheConfig, Hierarchy, HierarchyConfig, MemClass, ReplacementCtx};
use page_table::{FrameAllocator, RadixPageTable};
use std::hint::black_box;
use tlb_sim::{PageTableWalker, SetAssocTlb, TlbConfig, TlbEntry};
use victima::{tlb_block, TlbAwareSrrip, Victima};
use vm_types::{Asid, PageSize, PhysAddr, SplitMix64, VirtAddr};

fn bench_cache(c: &mut Criterion) {
    let ctx = ReplacementCtx::default();
    let mut cache = Cache::new(
        CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
        Box::new(mem_sim::Srrip::new()),
    );
    let mut rng = SplitMix64::new(1);
    c.bench_function("cache_access_random", |b| {
        b.iter(|| {
            let pa = PhysAddr::new(rng.next_below(64 << 20) & !63);
            if !cache.access_data(black_box(pa), false, &ctx) {
                cache.fill_data(pa, false, false, &ctx);
            }
        })
    });

    let mut hier = Hierarchy::new(HierarchyConfig::default());
    let mut rng2 = SplitMix64::new(2);
    c.bench_function("hierarchy_access_random", |b| {
        b.iter(|| {
            let pa = PhysAddr::new(rng2.next_below(256 << 20) & !63);
            black_box(hier.access(pa, false, MemClass::Data, &ctx));
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    let mut tlb = SetAssocTlb::new(TlbConfig::l2_unified(1536, 12));
    let asid = Asid::new(1);
    for vpn in 0..1536u64 {
        tlb.fill(TlbEntry::new(vpn, asid, PageSize::Size4K, vpn));
    }
    let mut rng = SplitMix64::new(3);
    c.bench_function("l2_tlb_probe", |b| {
        b.iter(|| {
            let vpn = rng.next_below(4096);
            black_box(tlb.probe(vpn, asid, PageSize::Size4K));
        })
    });
}

fn bench_walk(c: &mut Criterion) {
    let ctx = ReplacementCtx::default();
    let mut alloc = FrameAllocator::new(4 << 30, 4);
    let mut pt = RadixPageTable::new(&mut alloc);
    for i in 0..10_000u64 {
        let frame = alloc.alloc_4k();
        pt.map(VirtAddr::new(0x4000_0000 + i * 4096), frame, PageSize::Size4K, &mut alloc);
    }
    let mut hier = Hierarchy::new(HierarchyConfig::default());
    let mut walker = PageTableWalker::new();
    let mut rng = SplitMix64::new(5);
    c.bench_function("radix_walk", |b| {
        b.iter(|| {
            let va = VirtAddr::new(0x4000_0000 + rng.next_below(10_000) * 4096);
            black_box(walker.walk(&mut pt, va, Asid::new(1), &mut hier, &ctx));
        })
    });
}

fn bench_victima(c: &mut Criterion) {
    let ctx = ReplacementCtx { l2_tlb_mpki: 10.0, l2_cache_mpki: 0.0 };
    let mut rng = SplitMix64::new(6);
    c.bench_function("victima_probe", |b| {
        let mut l2 = Cache::new(
            CacheConfig { name: "L2", size_bytes: 2 << 20, ways: 16, block_bytes: 64, latency: 16 },
            Box::new(TlbAwareSrrip::new()),
        );
        let mut v = Victima::default();
        let sets = l2.num_sets();
        for g in 0..4096u64 {
            let (set, tag) = tlb_block::group_index(g, sets);
            l2.fill_translation(set, tag, BlockKind::Tlb, Asid::new(1), PageSize::Size4K, &ctx);
        }
        b.iter(|| {
            let va = VirtAddr::new(rng.next_below(1 << 30) & !0xfff);
            black_box(v.probe(&mut l2, va, Asid::new(1), BlockKind::Tlb, &ctx));
        })
    });

    c.bench_function("tlb_block_index_math", |b| {
        b.iter_batched(
            || VirtAddr::new(rng.next_u64()),
            |va| black_box(tlb_block::tlb_block_index(va, PageSize::Size4K, 2048)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_cache, bench_tlb, bench_walk, bench_victima);
criterion_main!(benches);
